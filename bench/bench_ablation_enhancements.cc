// Ablation: the three §IV-A enhancements of the skyline algorithms,
// toggled one at a time on CEA (all results stay identical; only cost
// changes): direct first-NN reporting, the shrinking-stage facility
// filter, and per-cost expansion early stop.
#include <cstdio>

#include "harness.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/stopwatch.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig config;
  config = config.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  std::printf("== Ablation: skyline enhancements (CEA) ==\n");
  std::printf("config: %s; %d queries\n", config.ToString().c_str(),
              env.queries);
  std::printf("%-28s | %12s | %10s | %10s\n", "variant", "time(s)", "IOs",
              "NN pops");

  struct Case {
    const char* name;
    bool first_nn;
    bool filter;
    bool stop;
  };
  for (const Case& c : {Case{"all enhancements", true, true, true},
                        Case{"no first-NN report", false, true, true},
                        Case{"no facility filter", true, false, true},
                        Case{"no expansion early-stop", true, true, false},
                        Case{"none (base algorithm)", false, false, false}}) {
    Random rng(1371);
    double modeled = 0;
    uint64_t misses_total = 0, pops = 0;
    for (int qi = 0; qi < env.queries; ++qi) {
      graph::Location q = (*instance)->RandomQueryLocation(rng);
      (*instance)->ResetIoState();
      Stopwatch watch;
      auto engine =
          expand::CeaEngine::Create((*instance)->reader.get(), q);
      MCN_CHECK(engine.ok());
      algo::SkylineOptions opts;
      opts.report_first_nn = c.first_nn;
      opts.use_facility_filter = c.filter;
      opts.stop_finished_expansions = c.stop;
      algo::SkylineQuery query(engine.value().get(), opts);
      MCN_CHECK(query.ComputeAll().ok());
      uint64_t misses = (*instance)->pool->stats().misses;
      modeled += watch.ElapsedSeconds() + misses * env.io_latency_ms / 1e3;
      misses_total += misses;
      pops += query.stats().nn_pops;
    }
    std::printf("%-28s | %12.4f | %10.1f | %10.1f\n", c.name,
                modeled / env.queries,
                static_cast<double>(misses_total) / env.queries,
                static_cast<double>(pops) / env.queries);
  }
  std::printf("\n");
  return 0;
}
