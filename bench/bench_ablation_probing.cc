// Ablation: expansion probing policy (paper §IV-A discussion, Fig. 4).
// Round-robin (the paper's choice) vs smallest-frontier-first vs
// largest-frontier-first, on CEA skylines. Expected: round-robin pins the
// first facility early; the frontier-driven policies let one cheap cost
// type monopolize probing and blow up the candidate set.
#include <cstdio>

#include "harness.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/stopwatch.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig config;  // paper defaults
  config = config.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  std::printf("== Ablation: probing policy (CEA skyline) ==\n");
  std::printf("config: %s; %d queries\n", config.ToString().c_str(),
              env.queries);
  std::printf("%-18s | %12s | %10s | %12s | %10s\n", "policy", "time(s)",
              "IOs", "cand. peak", "NN pops");

  struct Case {
    const char* name;
    algo::ProbePolicy policy;
  };
  for (const Case& c :
       {Case{"round-robin", algo::ProbePolicy::kRoundRobin},
        Case{"smallest-first", algo::ProbePolicy::kSmallestFrontier},
        Case{"largest-first", algo::ProbePolicy::kLargestFrontier}}) {
    Random rng(991);
    double modeled = 0;
    uint64_t misses_total = 0, cand_peak = 0, pops = 0;
    for (int qi = 0; qi < env.queries; ++qi) {
      graph::Location q = (*instance)->RandomQueryLocation(rng);
      (*instance)->ResetIoState();
      Stopwatch watch;
      auto engine =
          expand::CeaEngine::Create((*instance)->reader.get(), q);
      MCN_CHECK(engine.ok());
      algo::SkylineOptions opts;
      opts.probe_policy = c.policy;
      algo::SkylineQuery query(engine.value().get(), opts);
      MCN_CHECK(query.ComputeAll().ok());
      uint64_t misses = (*instance)->pool->stats().misses;
      modeled += watch.ElapsedSeconds() + misses * env.io_latency_ms / 1e3;
      misses_total += misses;
      cand_peak = std::max(cand_peak, query.stats().candidates_peak);
      pops += query.stats().nn_pops;
    }
    std::printf("%-18s | %12.4f | %10.1f | %12llu | %10.1f\n", c.name,
                modeled / env.queries,
                static_cast<double>(misses_total) / env.queries,
                static_cast<unsigned long long>(cand_peak),
                static_cast<double>(pops) / env.queries);
  }
  std::printf("\n");
  return 0;
}
