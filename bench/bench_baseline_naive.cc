// The strawman baseline of §IV's introduction — d complete network
// expansions + a conventional skyline — against LSA and CEA. Run at a
// smaller default scale than the figures: the baseline reads the whole
// MCN d times per query ("prohibitively long running time").
#include <cstdio>
#include <cstdlib>

#include "harness.h"
#include "mcn/algo/naive.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/stopwatch.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  env.scale = std::min(env.scale, 0.02);  // the baseline is slow by design
  env.queries = std::min(env.queries, 8);
  gen::ExperimentConfig config;
  config = config.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  std::printf("== Baseline: naive d-full-expansions vs LSA vs CEA "
              "(skyline) ==\n");
  std::printf("config: %s; %d queries\n", config.ToString().c_str(),
              env.queries);
  std::printf("%-10s | %12s | %12s\n", "algorithm", "time(s)", "IOs");

  Random rng(777);
  std::vector<graph::Location> queries;
  for (int qi = 0; qi < env.queries; ++qi) {
    queries.push_back((*instance)->RandomQueryLocation(rng));
  }

  // Naive.
  {
    double modeled = 0;
    uint64_t misses_total = 0;
    for (const auto& q : queries) {
      (*instance)->ResetIoState();
      Stopwatch watch;
      MCN_CHECK(algo::NaiveSkyline(*(*instance)->reader, q).ok());
      uint64_t misses = (*instance)->pool->stats().misses;
      modeled += watch.ElapsedSeconds() + misses * env.io_latency_ms / 1e3;
      misses_total += misses;
    }
    std::printf("%-10s | %12.4f | %12.1f\n", "naive",
                modeled / queries.size(),
                static_cast<double>(misses_total) / queries.size());
  }
  // LSA / CEA.
  for (auto kind : {expand::EngineKind::kLsa, expand::EngineKind::kCea}) {
    double modeled = 0;
    uint64_t misses_total = 0;
    for (const auto& q : queries) {
      (*instance)->ResetIoState();
      Stopwatch watch;
      auto engine = expand::MakeEngine(kind, (*instance)->reader.get(), q);
      MCN_CHECK(engine.ok());
      algo::SkylineQuery query(engine.value().get());
      MCN_CHECK(query.ComputeAll().ok());
      uint64_t misses = (*instance)->pool->stats().misses;
      modeled += watch.ElapsedSeconds() + misses * env.io_latency_ms / 1e3;
      misses_total += misses;
    }
    std::printf("%-10s | %12.4f | %12.1f\n",
                kind == expand::EngineKind::kLsa ? "LSA" : "CEA",
                modeled / queries.size(),
                static_cast<double>(misses_total) / queries.size());
  }
  std::printf("\n");
  return 0;
}
