// Fault-recovery benchmark (DESIGN.md §10): the full client/server stack
// driven through a fault storm and back out of it, with hard gates.
//
// Builds the fig. 8(a) base instance at MCN_BENCH_SCALE, stands up an
// exec::QueryService behind an api::Server, and runs the same fixed mixed
// spec list (both engine flavors) through three phases:
//
//   baseline   no injector: every request must succeed; records the
//              reference result hashes (identical to what the fig. 8(a)
//              replay produces on this instance).
//   faulted    deterministic FaultInjector storm (disk EIO + delays, send
//              EIO, torn writes, recv EIO) against retrying clients: every
//              outcome must be success-with-baseline-hash or a *typed*
//              failure-model Status — anything else aborts.
//   healed     injector disabled (the injector heals, nothing restarts):
//              every request must succeed again and hash byte-identically
//              to the baseline — the no-fault-parity gate proving injected
//              failures poisoned no cache or on-disk state.
//
// Leak gates: open-fd count must return to its pre-server level after
// teardown, no session may outlive its connection (Server::Stop asserts),
// and the process exits cleanly (no leaked thread keeps it alive).
//
// Output: one PrintRow per phase (mcn-bench-v2 rows; qps + client RTT
// percentiles; result_hash is the reference mix, which all three phases
// proved equal to). Extra environment knobs:
//   MCN_FAULT_REQUESTS  specs per engine per phase        (default 36)
//   MCN_FAULT_WORKERS   service workers                   (default 4)
//   MCN_FAULT_CLIENTS   concurrent client connections     (default 3)
//   MCN_FAULT_SEED      injector + retry jitter seed      (default 4242)
//   MCN_FAULT_SPEC      injector spec for the storm phase (default
//                       "disk_eio=0.002,send_eio=0.02,torn_write=0.02,
//                        recv_eio=0.01")
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/common/fault_injector.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/exec/query_service.h"
#include "mcn/exec/service_stats.h"
#include "mcn/gen/workload.h"

namespace mcn::bench {
namespace {

const char* EnvString(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && value[0] != '\0') ? value : fallback;
}

int CountOpenFds() {
  int count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count - 1;  // the iterator's own fd
}

std::vector<api::QuerySpec> MixedSpecs(gen::Instance& instance,
                                       expand::EngineKind engine,
                                       uint64_t seed, int count) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<api::QuerySpec> specs;
  specs.reserve(count);
  for (int i = 0; i < count; ++i) {
    const graph::Location loc = instance.RandomQueryLocation(rng);
    api::QuerySpec spec;
    switch (i % 3) {
      case 0:
        spec = api::SkylineSpec(loc);
        break;
      default: {
        std::vector<double> weights(d);
        for (double& w : weights) w = rng.NextDouble();
        spec = i % 3 == 1 ? api::TopKSpec(loc, 4, std::move(weights))
                          : api::IncrementalSpec(loc, 3, std::move(weights));
        break;
      }
    }
    spec.engine = engine;
    specs.push_back(std::move(spec));
  }
  return specs;
}

bool IsFailureModelStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

struct PhaseOutcome {
  RunMetrics metrics;
  uint64_t ok = 0;
  uint64_t faulted = 0;
};

/// Drives `specs` from `num_clients` concurrent retrying clients.
/// `allow_faults` = the storm phase: typed failures are counted, anything
/// untyped (or a success that diverges from `ref_hashes`) aborts. With
/// allow_faults = false every request must succeed and match.
PhaseOutcome DrivePhase(int port, int num_clients,
                        const std::vector<api::QuerySpec>& specs,
                        const std::vector<uint64_t>& ref_hashes,
                        uint64_t jitter_seed, bool allow_faults,
                        const char* phase) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> rtts_ms(num_clients);
  std::vector<uint64_t> oks(num_clients, 0), faults(num_clients, 0);
  std::vector<uint64_t> misses(num_clients, 0);
  std::vector<int> hard_failures(num_clients, 0);
  Stopwatch wall;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      api::Client::Options options;
      options.retry.max_attempts = 4;
      options.retry.base_backoff_ms = 1;
      options.retry.max_backoff_ms = 8;
      options.retry.seed = jitter_seed + static_cast<uint64_t>(c);
      auto client = api::Client::Connect("127.0.0.1", port, options);
      for (size_t i = 0; i < specs.size(); ++i) {
        if (!client.ok()) {
          // The dial itself lost to the storm; typed, count and redial.
          if (!allow_faults ||
              !IsFailureModelStatus(client.status())) {
            hard_failures[c] = 1;
            return;
          }
          ++faults[c];
          client = api::Client::Connect("127.0.0.1", port, options);
          if (!client.ok()) continue;
        }
        Stopwatch rtt;
        auto response = (*client)->Execute(specs[i]);
        rtts_ms[c].push_back(rtt.ElapsedSeconds() * 1e3);
        const Status status =
            response.ok() ? response.value().status : response.status();
        if (status.ok()) {
          if (response.value().result_hash != ref_hashes[i]) {
            std::fprintf(stderr,
                         "PARITY FAILURE [%s]: query %zu hash %016" PRIx64
                         " != baseline %016" PRIx64 "\n",
                         phase, i, response.value().result_hash,
                         ref_hashes[i]);
            hard_failures[c] = 2;
            return;
          }
          ++oks[c];
          misses[c] += response.value().buffer_misses;
        } else if (allow_faults && IsFailureModelStatus(status)) {
          ++faults[c];
        } else {
          std::fprintf(stderr, "FAILURE [%s]: query %zu: %s\n", phase, i,
                       status.ToString().c_str());
          hard_failures[c] = 3;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  for (int c = 0; c < num_clients; ++c) MCN_CHECK(hard_failures[c] == 0);

  PhaseOutcome outcome;
  std::vector<double> all_rtts;
  for (int c = 0; c < num_clients; ++c) {
    outcome.ok += oks[c];
    outcome.faulted += faults[c];
    outcome.metrics.buffer_misses += misses[c];
    all_rtts.insert(all_rtts.end(), rtts_ms[c].begin(), rtts_ms[c].end());
  }
  std::sort(all_rtts.begin(), all_rtts.end());
  outcome.metrics.queries = static_cast<int>(specs.size()) * num_clients;
  outcome.metrics.latency_p50_ms = exec::PercentileSorted(all_rtts, 50);
  outcome.metrics.latency_p95_ms = exec::PercentileSorted(all_rtts, 95);
  outcome.metrics.latency_p99_ms = exec::PercentileSorted(all_rtts, 99);
  outcome.metrics.qps =
      static_cast<double>(outcome.metrics.queries) / wall_seconds;
  // All three phases prove (hash-for-hash) equality with the reference,
  // so the row hash is the reference mix for each of them — a drifting
  // phase aborts before it could report one.
  outcome.metrics.result_hash = kFnvOffsetBasis;
  for (uint64_t h : ref_hashes) {
    outcome.metrics.result_hash =
        algo::FnvMixU64(outcome.metrics.result_hash, h);
  }
  return outcome;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int num_requests =
      static_cast<int>(EnvDouble("MCN_FAULT_REQUESTS", 36));
  const int workers = static_cast<int>(EnvDouble("MCN_FAULT_WORKERS", 4));
  const int clients = static_cast<int>(EnvDouble("MCN_FAULT_CLIENTS", 3));
  const auto seed =
      static_cast<uint64_t>(EnvDouble("MCN_FAULT_SEED", 4242));
  const char* fault_spec = EnvString(
      "MCN_FAULT_SPEC",
      "disk_eio=0.002,send_eio=0.02,torn_write=0.02,recv_eio=0.01");
  MCN_CHECK(num_requests > 0 && workers > 0 && clients > 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: the paper's defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("building instance (%s)...\n", scaled.ToString().c_str());
  auto instance = gen::BuildInstance(scaled);
  MCN_CHECK(instance.ok());

  const int fds_baseline = CountOpenFds();

  exec::ServiceOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = 256;
  opts.pool_frames_per_worker = (*instance)->pool->capacity();
  auto service = exec::QueryService::Create(&(*instance)->disk,
                                            (*instance)->files, opts);
  MCN_CHECK(service.ok());

  const auto specs_lsa =
      MixedSpecs(**instance, expand::EngineKind::kLsa, 8086, num_requests);
  const auto specs_cea =
      MixedSpecs(**instance, expand::EngineKind::kCea, 8086, num_requests);

  // In-process reference: what the fig. 8(a)-style replay of these specs
  // must hash to in every phase.
  std::vector<uint64_t> ref_lsa, ref_cea;
  for (const auto* specs : {&specs_lsa, &specs_cea}) {
    auto& ref = specs == &specs_lsa ? ref_lsa : ref_cea;
    for (const api::QuerySpec& spec : *specs) {
      exec::QueryResult result = (*service)->Submit(spec).get();
      MCN_CHECK(result.status.ok());
      ref.push_back(result.result_hash);
    }
  }

  auto parsed = FaultInjector::ParseSpec(fault_spec);
  MCN_CHECK(parsed.ok());
  FaultInjector::Options fault_options = parsed.value();
  fault_options.seed = seed;
  FaultInjector injector(fault_options);
  injector.set_enabled(false);  // armed later, for the storm phase only
  FaultInjector::Install(&injector);

  auto server = api::Server::Start((*service).get(), {});
  MCN_CHECK(server.ok());
  const int port = (*server)->port();
  std::printf("server up on 127.0.0.1:%d (%d workers, %d clients)\n", port,
              workers, clients);

  PrintHeader("Fault recovery: chaos storm + heal parity (fig. 8(a) base)",
              "phase", scaled, env);
  std::printf("requests/engine=%d storm spec: %s (seed %" PRIu64 ")\n",
              num_requests, fault_spec, seed);

  struct Phase {
    const char* name;
    bool faults;
  };
  uint64_t storm_faulted = 0;
  for (const Phase phase : {Phase{"baseline", false}, Phase{"faulted", true},
                            Phase{"healed", false}}) {
    injector.set_enabled(phase.faults);
    PhaseOutcome lsa = DrivePhase(port, clients, specs_lsa, ref_lsa,
                                  seed ^ 0x15a, phase.faults, phase.name);
    PhaseOutcome cea = DrivePhase(port, clients, specs_cea, ref_cea,
                                  seed ^ 0xcea, phase.faults, phase.name);
    AlgoComparison row;
    row.lsa = lsa.metrics;
    row.cea = cea.metrics;
    PrintRow(phase.name, row);
    std::printf("    %s: LSA ok=%" PRIu64 " faulted=%" PRIu64
                " | CEA ok=%" PRIu64 " faulted=%" PRIu64
                " | injected so far=%" PRIu64 "\n",
                phase.name, lsa.ok, lsa.faulted, cea.ok, cea.faulted,
                injector.injected());
    if (phase.faults) storm_faulted = lsa.faulted + cea.faulted;
  }
  PrintFooter();

  // Gates. The storm must have actually stormed, and the heal must have
  // actually healed (DrivePhase already aborted on any hash divergence).
  MCN_CHECK(injector.injected() > 0);
  std::printf("storm: %" PRIu64 " requests hit typed faults, %" PRIu64
              " faults injected; healed replay byte-identical to "
              "baseline.\n",
              storm_faulted, injector.injected());

  (*server)->Stop();  // asserts zero leaked sessions
  MCN_CHECK((*service)->num_open_sessions() == 0);
  (*service)->Shutdown();
  service->reset();
  server->reset();
  FaultInjector::Install(nullptr);
  const int fds_after = CountOpenFds();
  if (fds_after != fds_baseline) {
    std::fprintf(stderr, "FAILURE: fd leak: %d open before, %d after\n",
                 fds_baseline, fds_after);
    return 1;
  }
  std::printf("no fd/session leak (fds %d -> %d); clean exit.\n",
              fds_baseline, fds_after);
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
