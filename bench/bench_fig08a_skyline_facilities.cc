// Figure 8(a): skyline processing time vs |P| (25K..200K at paper scale),
// d=4, anti-correlated costs, 1% buffer. Expected shape: both algorithms
// get slower as the facility set gets sparser; CEA >~2.3x faster than LSA.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;  // paper defaults
  bench::PrintHeader("Figure 8(a): skyline, time vs |P|", "|P|",
                     base.Scaled(env.scale), env);

  for (uint32_t facilities : {25000u, 50000u, 100000u, 150000u, 200000u}) {
    gen::ExperimentConfig config = base;
    config.facilities = facilities;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
                                           bench::SkylineRunner());
    bench::PrintRow(std::to_string(config.facilities), comparison);
  }
  bench::PrintFooter();
  return 0;
}
