// Figure 8(b): skyline processing time vs the number of cost types d
// (2..5), |P|=100K at paper scale, anti-correlated, 1% buffer. Expected
// shape: time grows with d; the CEA/LSA gap widens with d (LSA re-reads
// records up to d times).
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 8(b): skyline, time vs d", "d",
                     base.Scaled(env.scale), env);

  for (int d : {2, 3, 4, 5}) {
    gen::ExperimentConfig config = base;
    config.num_costs = d;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
                                           bench::SkylineRunner());
    bench::PrintRow(std::to_string(d), comparison);
  }
  bench::PrintFooter();
  return 0;
}
