// Figure 9(a): skyline processing time vs the edge-cost distribution
// (anti-correlated / independent / correlated), defaults otherwise.
// Expected shape: anti-correlated slowest (more candidates, larger
// skyline), correlated fastest; CEA wins throughout.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 9(a): skyline, time vs cost distribution",
                     "distribution", base.Scaled(env.scale), env);

  for (auto dist : {gen::CostDistribution::kAntiCorrelated,
                    gen::CostDistribution::kIndependent,
                    gen::CostDistribution::kCorrelated}) {
    gen::ExperimentConfig config = base;
    config.distribution = dist;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
        bench::SkylineRunner());
    bench::PrintRow(std::string(gen::ToString(dist)), comparison);
  }
  bench::PrintFooter();
  return 0;
}
