// Figure 9(b): skyline processing time vs LRU buffer size (0%..2% of the
// MCN pages), defaults otherwise. Expected shape: both algorithms improve
// with buffer, LSA more (its repeated reads become hits); the CEA/LSA gap
// is largest at 0% and smallest at 2%.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 9(b): skyline, time vs buffer size",
                     "buffer %", base.Scaled(env.scale), env);

  gen::ExperimentConfig config = base.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  for (double pct : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    (*instance)->pool->SetCapacity(
        gen::BufferFrames(pct, (*instance)->files.total_pages));
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
        bench::SkylineRunner());
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f%%", pct);
    bench::PrintRow(label, comparison);
  }
  bench::PrintFooter();
  return 0;
}
