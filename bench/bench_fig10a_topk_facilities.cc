// Figure 10(a): top-k processing time vs |P| (k=4, d=4, anti-correlated,
// 1% buffer; aggregate = weighted sum with per-query random coefficients).
// Expected shape: slower at small |P|; CEA 2.1-3.4x faster; top-4 slightly
// cheaper than the skyline on the same configuration.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 10(a): top-k, time vs |P| (k=4)", "|P|",
                     base.Scaled(env.scale), env);

  for (uint32_t facilities : {25000u, 50000u, 100000u, 150000u, 200000u}) {
    gen::ExperimentConfig config = base;
    config.facilities = facilities;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
        bench::TopKRunner(4, config.num_costs));
    bench::PrintRow(std::to_string(config.facilities), comparison);
  }
  bench::PrintFooter();
  return 0;
}
