// Figure 10(b): top-k processing time vs the number of cost types d (2..5),
// k=4, defaults otherwise. Expected shape: time grows with d; the CEA/LSA
// gap widens with d.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 10(b): top-k, time vs d (k=4)", "d",
                     base.Scaled(env.scale), env);

  for (int d : {2, 3, 4, 5}) {
    gen::ExperimentConfig config = base;
    config.num_costs = d;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison =
        bench::CompareLsaCea(**instance, env, 4242,
                             bench::TopKRunner(4, d));
    bench::PrintRow(std::to_string(d), comparison);
  }
  bench::PrintFooter();
  return 0;
}
