// Figure 11(a): top-k processing time vs the edge-cost distribution,
// k=4, defaults otherwise. Expected shape: anti-correlated slowest,
// correlated fastest; CEA ~3x faster throughout.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 11(a): top-k, time vs cost distribution (k=4)",
                     "distribution", base.Scaled(env.scale), env);

  for (auto dist : {gen::CostDistribution::kAntiCorrelated,
                    gen::CostDistribution::kIndependent,
                    gen::CostDistribution::kCorrelated}) {
    gen::ExperimentConfig config = base;
    config.distribution = dist;
    config = config.Scaled(env.scale);
    auto instance = gen::BuildInstance(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
        bench::TopKRunner(4, config.num_costs));
    bench::PrintRow(std::string(gen::ToString(dist)), comparison);
  }
  bench::PrintFooter();
  return 0;
}
