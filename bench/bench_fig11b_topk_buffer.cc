// Figure 11(b): top-k processing time vs LRU buffer size (0%..2%), k=4,
// defaults otherwise. Expected shape: both improve with buffer, LSA more;
// CEA up to ~3.4x faster at 0%, ~1.8x at 2%.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 11(b): top-k, time vs buffer size (k=4)",
                     "buffer %", base.Scaled(env.scale), env);

  gen::ExperimentConfig config = base.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  for (double pct : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    (*instance)->pool->SetCapacity(
        gen::BufferFrames(pct, (*instance)->files.total_pages));
    auto comparison = bench::CompareLsaCea(**instance, env, 4242,
        bench::TopKRunner(4, config.num_costs));
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f%%", pct);
    bench::PrintRow(label, comparison);
  }
  bench::PrintFooter();
  return 0;
}
