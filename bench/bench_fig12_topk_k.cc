// Figure 12: top-k processing time vs k (1..16), defaults otherwise.
// Expected shape: time grows with k (more pins, broader expansion); LSA's
// multiple-read penalty grows with k, up to ~3.4x slower than CEA.
#include <cstdio>

#include "harness.h"

int main() {
  using namespace mcn;
  bench::BenchEnv env = bench::BenchEnv::FromEnvironment();
  gen::ExperimentConfig base;
  bench::PrintHeader("Figure 12: top-k, time vs k", "k",
                     base.Scaled(env.scale), env);

  gen::ExperimentConfig config = base.Scaled(env.scale);
  auto instance = gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  for (int k : {1, 2, 4, 8, 16}) {
    auto comparison = bench::CompareLsaCea(**instance, env, 4242, bench::TopKRunner(k, config.num_costs));
    bench::PrintRow(std::to_string(k), comparison);
  }
  bench::PrintFooter();
  return 0;
}
