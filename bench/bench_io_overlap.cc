// Overlapped batch I/O benchmark (DESIGN.md §13).
//
// Builds the fig. 8(a) base instance (the paper's d=4 skyline defaults at
// MCN_BENCH_SCALE) and runs the same fixed skyline query set through an
// exec::QueryService three times — one worker, turn-mode requests
// (parallelism 1), sequential submission, cold cache per query:
//
//   serial       StallModel::kSerial + simulated stalls: every buffer
//                miss sleeps MCN_IO_STALL_US — the classic one-fetch-at-
//                a-time charge.
//   overlapped   StallModel::kOverlapped + simulated stalls: each turn
//                sleeps only its max per-probe miss delta at the barrier
//                (misses outside probes stay serial) — the latency model
//                of a batched read per turn.
//   file_backed  the disk spilled to an on-disk image
//                (DiskManager::AttachFileBackend) with replay_batch_io:
//                each turn's misses are physically read back as one
//                ReadPagesBatch (io_uring or the preadv worker ring — see
//                MCN_IO_BACKEND). No sleeps; wall time is real I/O.
//
// Parity gate: per-query result hashes AND per-query logical buffer-miss
// counts must be byte-identical across all three legs — the stall model
// and the physical backend change *when time passes*, never what is
// fetched or returned. Performance gate: mean request latency must drop
// by at least MCN_IO_MIN_OVERLAP_SPEEDUP x from serial to overlapped.
//
// Extra environment knobs (on top of the harness ones):
//   MCN_IO_REQUESTS             queries per leg               (default 24)
//   MCN_IO_STALL_US             slept stall per charged miss  (default 100)
//   MCN_IO_MIN_OVERLAP_SPEEDUP  latency-cut gate, 0 disables  (default 1.5)
//   MCN_IO_BACKEND              auto | preadv | io_uring      (default auto:
//                               io_uring when available, else preadv)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "mcn/storage/io_backend.h"

namespace mcn::bench {
namespace {

struct LegResult {
  RunMetrics metrics;
  std::vector<uint64_t> hashes;  ///< per request, submission order
  std::vector<uint64_t> misses;  ///< per request, submission order
  double mean_latency_s = 0;
  uint64_t io_batches = 0;
  uint64_t io_batch_pages = 0;
  obs::Snapshot snapshot;
};

LegResult RunLeg(gen::Instance& instance, const BenchEnv& env,
                 double stall_us, exec::StallModel model, bool simulate,
                 bool replay, const std::vector<graph::Location>& locations) {
  exec::ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = locations.size() + 1;
  opts.pool_frames_per_worker = instance.pool->capacity();
  opts.io_latency_ms = stall_us / 1000.0;
  opts.simulate_io_stalls = simulate;
  opts.stall_model = model;
  opts.replay_batch_io = replay;
  auto service =
      exec::QueryService::Create(&instance.disk, instance.files, opts);
  MCN_CHECK(service.ok());

  LegResult leg;
  leg.metrics.queries = static_cast<int>(locations.size());
  double latency_sum = 0;
  for (const graph::Location& loc : locations) {
    api::QuerySpec spec;
    spec.kind = exec::QueryKind::kSkyline;
    spec.location = loc;
    spec.parallelism = 1;  // inline turn schedule: the overlap unit
    // Sequential submission: latency is exec + modeled stall, free of
    // queueing — exactly the quantity the two stall models disagree on.
    exec::QueryResult result = (*service)->Submit(std::move(spec)).get();
    MCN_CHECK(result.status.ok());
    leg.hashes.push_back(result.result_hash);
    leg.misses.push_back(result.stats.buffer_misses);
    leg.metrics.result_hash =
        algo::FnvMixU64(leg.metrics.result_hash, result.result_hash);
    leg.metrics.result_size += static_cast<double>(result.skyline.size());
    leg.metrics.cpu_seconds += result.stats.exec_seconds;
    leg.metrics.buffer_misses += result.stats.buffer_misses;
    leg.metrics.buffer_accesses += result.stats.buffer_accesses;
    // Modeled time charges the row's own stall model at the harness I/O
    // latency (rows are tagged; bench_diff refuses cross-model compares).
    const uint64_t charged = model == exec::StallModel::kOverlapped
                                 ? result.stats.overlapped_misses
                                 : result.stats.buffer_misses;
    leg.metrics.modeled_seconds +=
        result.stats.exec_seconds +
        static_cast<double>(charged) * env.io_latency_ms / 1000.0;
    latency_sum += result.stats.latency_seconds;
  }
  leg.metrics.result_size /= static_cast<double>(locations.size());
  leg.mean_latency_s = latency_sum / static_cast<double>(locations.size());

  exec::ServiceStats stats = (*service)->Snapshot();
  leg.metrics.latency_p50_ms = stats.latency_p50_ms;
  leg.metrics.latency_p95_ms = stats.latency_p95_ms;
  leg.metrics.latency_p99_ms = stats.latency_p99_ms;
  leg.io_batches = stats.io_batches;
  leg.io_batch_pages = stats.io_batch_pages;
  leg.snapshot = (*service)->MetricsSnapshot();
  (*service)->Shutdown();
  return leg;
}

void CheckParity(const char* leg_name, const LegResult& ref,
                 const LegResult& leg) {
  MCN_CHECK(ref.hashes.size() == leg.hashes.size());
  for (size_t i = 0; i < ref.hashes.size(); ++i) {
    if (ref.hashes[i] != leg.hashes[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: leg %s query %zu hash %016" PRIx64
                   " != serial %016" PRIx64 "\n",
                   leg_name, i, leg.hashes[i], ref.hashes[i]);
      std::abort();
    }
    if (ref.misses[i] != leg.misses[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: leg %s query %zu logical misses "
                   "%" PRIu64 " != serial %" PRIu64 "\n",
                   leg_name, i, leg.misses[i], ref.misses[i]);
      std::abort();
    }
  }
}

storage::IoBackendKind RequestedBackend() {
  const char* env = std::getenv("MCN_IO_BACKEND");
  const std::string v = env == nullptr ? "auto" : env;
  if (v == "preadv") return storage::IoBackendKind::kPreadv;
  if (v == "io_uring") return storage::IoBackendKind::kIoUring;
  MCN_CHECK(v == "auto" || v.empty());
  // Open() degrades io_uring to preadv when the kernel refuses.
  return storage::IoBackendKind::kIoUring;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int num_requests = static_cast<int>(EnvDouble("MCN_IO_REQUESTS", 24));
  const double stall_us = EnvDouble("MCN_IO_STALL_US", 100.0);
  const double min_speedup = EnvDouble("MCN_IO_MIN_OVERLAP_SPEEDUP", 1.5);
  MCN_CHECK(num_requests > 0 && stall_us >= 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: d=4 skyline defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("building instance (%s)...\n", scaled.ToString().c_str());
  auto instance = gen::BuildInstance(scaled);
  MCN_CHECK(instance.ok());

  Random rng(2026);
  std::vector<graph::Location> locations;
  locations.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    locations.push_back((*instance)->RandomQueryLocation(rng));
  }

  PrintHeader(
      "Overlapped I/O: stall models + file-backed batch reads (fig. 8(a) "
      "base)",
      "leg", scaled, env);
  std::printf(
      "requests/leg=%d stall/miss=%.1fus "
      "(MCN_IO_REQUESTS / MCN_IO_STALL_US)\n",
      num_requests, stall_us);

  LegResult serial =
      RunLeg(**instance, env, stall_us, exec::StallModel::kSerial,
             /*simulate=*/true, /*replay=*/false, locations);
  AlgoComparison c_serial;
  c_serial.cea = serial.metrics;
  SetNextRowMeta("serial", "memory");
  PrintRow("serial", c_serial, serial.snapshot);
  std::printf("    mean latency %8.2f ms\n", serial.mean_latency_s * 1e3);

  LegResult overlapped =
      RunLeg(**instance, env, stall_us, exec::StallModel::kOverlapped,
             /*simulate=*/true, /*replay=*/false, locations);
  CheckParity("overlapped", serial, overlapped);
  AlgoComparison c_overlapped;
  c_overlapped.cea = overlapped.metrics;
  SetNextRowMeta("overlapped", "memory");
  PrintRow("overlapped", c_overlapped, overlapped.snapshot);
  std::printf("    mean latency %8.2f ms\n",
              overlapped.mean_latency_s * 1e3);

  // Spill the frozen pages to an image and re-run with physical batched
  // replay — the real-I/O anchor of the modeled overlap.
  const std::string image_path =
      "/tmp/mcn_io_overlap_" + std::to_string(getpid()) + ".img";
  Status attached =
      (*instance)->disk.AttachFileBackend(image_path, RequestedBackend());
  MCN_CHECK(attached.ok());
  const storage::IoBackendKind backend = (*instance)->disk.io_backend();
  LegResult file_backed =
      RunLeg(**instance, env, stall_us, exec::StallModel::kOverlapped,
             /*simulate=*/false, /*replay=*/true, locations);
  CheckParity("file_backed", serial, file_backed);
  (*instance)->disk.DetachFileBackend();
  std::remove(image_path.c_str());
  AlgoComparison c_file;
  c_file.cea = file_backed.metrics;
  SetNextRowMeta("overlapped", storage::IoBackendKindName(backend));
  PrintRow("file_backed", c_file, file_backed.snapshot);
  std::printf(
      "    mean latency %8.2f ms | backend=%s batches=%" PRIu64
      " pages=%" PRIu64 "\n",
      file_backed.mean_latency_s * 1e3, storage::IoBackendKindName(backend),
      file_backed.io_batches, file_backed.io_batch_pages);
  PrintFooter();

  std::printf(
      "result hashes + per-query logical miss counts: identical across "
      "serial, overlapped and file-backed legs.\n");
  const double speedup = overlapped.mean_latency_s > 0
                             ? serial.mean_latency_s / overlapped.mean_latency_s
                             : 0;
  std::printf("latency cut serial -> overlapped (d=%d): %.2fx\n",
              scaled.num_costs, speedup);
  if (file_backed.io_batches == 0) {
    std::fprintf(stderr,
                 "FAILURE: file-backed leg issued no batched reads\n");
    return 1;
  }
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAILURE: overlapped latency cut %.2fx below %.2fx "
                 "(MCN_IO_MIN_OVERLAP_SPEEDUP)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
