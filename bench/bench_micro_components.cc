// google-benchmark microbenchmarks for the substrate components: buffer
// pool, B+-tree, slotted pages, Dijkstra/expansion, classic skyline and
// top-k operators, and MCPP.
#include <benchmark/benchmark.h>

#include "mcn/algo/common.h"
#include "mcn/common/random.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/gen/facility_generator.h"
#include "mcn/gen/road_network_generator.h"
#include "mcn/index/bplus_tree.h"
#include "mcn/mcpp/pareto_paths.h"
#include "mcn/skyline/skyline.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/slotted_page.h"
#include "mcn/topk/topk.h"

namespace mcn {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("f");
  disk.AllocatePage(f).value();
  storage::BufferPool pool(&disk, 4);
  for (auto _ : state) {
    auto guard = pool.Fetch({f, 0});
    benchmark::DoNotOptimize(guard.value().data());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("f");
  for (int i = 0; i < 64; ++i) disk.AllocatePage(f).value();
  storage::BufferPool pool(&disk, 8);
  uint32_t p = 0;
  for (auto _ : state) {
    auto guard = pool.Fetch({f, p});
    benchmark::DoNotOptimize(guard.value().data());
    p = (p + 9) % 64;  // stride > capacity: always miss
  }
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_BPlusTreeLookup(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("tree");
  std::vector<index::BPlusTree::Entry> entries;
  int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) entries.push_back({uint64_t(k), k * 2ull});
  auto tree = index::BPlusTree::BulkLoad(&disk, f, entries).value();
  storage::BufferPool pool(&disk, 4096);
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(pool, rng.Uniform(uint64_t(n))).value());
  }
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(200000);

void BM_SlottedPageAppend(benchmark::State& state) {
  std::vector<std::byte> page(storage::kPageSize);
  std::vector<std::byte> record(48);
  for (auto _ : state) {
    std::fill(page.begin(), page.end(), std::byte{0});
    storage::SlottedPageBuilder builder(page.data());
    while (builder.TryAppend(record, nullptr)) {
    }
    benchmark::DoNotOptimize(builder.count());
  }
}
BENCHMARK(BM_SlottedPageAppend);

graph::MultiCostGraph BenchGraph(uint32_t nodes, int d) {
  gen::RoadNetworkOptions road;
  road.target_nodes = nodes;
  road.target_edges = static_cast<uint32_t>(nodes * 1.27);
  auto topo = gen::GenerateRoadNetwork(road).value();
  gen::CostGenOptions costs;
  costs.num_costs = d;
  return gen::BuildMultiCostGraph(topo, costs).value();
}

void BM_DijkstraSssp(benchmark::State& state) {
  graph::MultiCostGraph g = BenchGraph(uint32_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expand::ShortestPathCosts(g, 0, graph::Location::AtNode(0)));
  }
}
BENCHMARK(BM_DijkstraSssp)->Arg(5000)->Arg(20000);

void BM_ClassicSkyline(benchmark::State& state) {
  Random rng(4);
  std::vector<skyline::Tuple> data;
  for (int i = 0; i < state.range(0); ++i) {
    data.push_back(skyline::Tuple{
        uint32_t(i),
        gen::GenerateEdgeCosts(rng, gen::CostDistribution::kAntiCorrelated,
                               4, 1.0)});
  }
  for (auto _ : state) {
    if (state.range(1) == 0) {
      benchmark::DoNotOptimize(skyline::BlockNestedLoopSkyline(data));
    } else {
      benchmark::DoNotOptimize(skyline::SortFilterSkyline(data));
    }
  }
}
BENCHMARK(BM_ClassicSkyline)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({10000, 1});

void BM_ThresholdAlgorithm(benchmark::State& state) {
  Random rng(5);
  std::vector<skyline::Tuple> data;
  for (int i = 0; i < state.range(0); ++i) {
    data.push_back(skyline::Tuple{
        uint32_t(i),
        gen::GenerateEdgeCosts(rng, gen::CostDistribution::kIndependent, 4,
                               1.0)});
  }
  algo::AggregateFn f = algo::WeightedSum({0.4, 0.3, 0.2, 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::ThresholdAlgorithm(data, f, 10));
  }
}
BENCHMARK(BM_ThresholdAlgorithm)->Arg(10000);

void BM_McppLabelSetting(benchmark::State& state) {
  // Pareto path sets grow quickly with graph size and d; keep the instance
  // small and bound the label budget so one iteration stays sub-second.
  graph::MultiCostGraph g = BenchGraph(400, int(state.range(0)));
  mcpp::McppOptions opts;
  opts.max_labels = 2'000'000;
  for (auto _ : state) {
    auto paths =
        mcpp::ParetoShortestPaths(g, 0, g.num_nodes() - 1, opts);
    benchmark::DoNotOptimize(paths.ok());
  }
}
BENCHMARK(BM_McppLabelSetting)->Arg(2)->Iterations(4);

}  // namespace
}  // namespace mcn

BENCHMARK_MAIN();
