// google-benchmark microbenchmarks for the substrate components: buffer
// pool, B+-tree, slotted pages, Dijkstra/expansion, classic skyline and
// top-k operators, and MCPP — plus before/after pairs for the flattened
// hot-path structures (d-ary heap vs std::priority_queue, dense candidate
// store vs unordered_map, flat fetch-cache maps vs unordered_map).
#include <benchmark/benchmark.h>

#include <queue>
#include <unordered_map>

#include "mcn/algo/candidate_store.h"
#include "mcn/algo/common.h"
#include "mcn/common/flat_u64_map.h"
#include "mcn/common/random.h"
#include "mcn/expand/dary_heap.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/gen/facility_generator.h"
#include "mcn/gen/road_network_generator.h"
#include "mcn/index/bplus_tree.h"
#include "mcn/mcpp/pareto_paths.h"
#include "mcn/skyline/skyline.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/slotted_page.h"
#include "mcn/topk/topk.h"

namespace mcn {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("f");
  disk.AllocatePage(f).value();
  storage::BufferPool pool(&disk, 4);
  for (auto _ : state) {
    auto guard = pool.Fetch({f, 0});
    benchmark::DoNotOptimize(guard.value().data());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("f");
  for (int i = 0; i < 64; ++i) disk.AllocatePage(f).value();
  storage::BufferPool pool(&disk, 8);
  uint32_t p = 0;
  for (auto _ : state) {
    auto guard = pool.Fetch({f, p});
    benchmark::DoNotOptimize(guard.value().data());
    p = (p + 9) % 64;  // stride > capacity: always miss
  }
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_BPlusTreeLookup(benchmark::State& state) {
  storage::DiskManager disk;
  storage::FileId f = disk.CreateFile("tree");
  std::vector<index::BPlusTree::Entry> entries;
  int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) entries.push_back({uint64_t(k), k * 2ull});
  auto tree = index::BPlusTree::BulkLoad(&disk, f, entries).value();
  storage::BufferPool pool(&disk, 4096);
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(pool, rng.Uniform(uint64_t(n))).value());
  }
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(200000);

void BM_SlottedPageAppend(benchmark::State& state) {
  std::vector<std::byte> page(storage::kPageSize);
  std::vector<std::byte> record(48);
  for (auto _ : state) {
    std::fill(page.begin(), page.end(), std::byte{0});
    storage::SlottedPageBuilder builder(page.data());
    while (builder.TryAppend(record, nullptr)) {
    }
    benchmark::DoNotOptimize(builder.count());
  }
}
BENCHMARK(BM_SlottedPageAppend);

graph::MultiCostGraph BenchGraph(uint32_t nodes, int d) {
  gen::RoadNetworkOptions road;
  road.target_nodes = nodes;
  road.target_edges = static_cast<uint32_t>(nodes * 1.27);
  auto topo = gen::GenerateRoadNetwork(road).value();
  gen::CostGenOptions costs;
  costs.num_costs = d;
  return gen::BuildMultiCostGraph(topo, costs).value();
}

void BM_DijkstraSssp(benchmark::State& state) {
  graph::MultiCostGraph g = BenchGraph(uint32_t(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expand::ShortestPathCosts(g, 0, graph::Location::AtNode(0)));
  }
}
BENCHMARK(BM_DijkstraSssp)->Arg(5000)->Arg(20000);

void BM_ClassicSkyline(benchmark::State& state) {
  Random rng(4);
  std::vector<skyline::Tuple> data;
  for (int i = 0; i < state.range(0); ++i) {
    data.push_back(skyline::Tuple{
        uint32_t(i),
        gen::GenerateEdgeCosts(rng, gen::CostDistribution::kAntiCorrelated,
                               4, 1.0)});
  }
  for (auto _ : state) {
    if (state.range(1) == 0) {
      benchmark::DoNotOptimize(skyline::BlockNestedLoopSkyline(data));
    } else {
      benchmark::DoNotOptimize(skyline::SortFilterSkyline(data));
    }
  }
}
BENCHMARK(BM_ClassicSkyline)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({10000, 1});

void BM_ThresholdAlgorithm(benchmark::State& state) {
  Random rng(5);
  std::vector<skyline::Tuple> data;
  for (int i = 0; i < state.range(0); ++i) {
    data.push_back(skyline::Tuple{
        uint32_t(i),
        gen::GenerateEdgeCosts(rng, gen::CostDistribution::kIndependent, 4,
                               1.0)});
  }
  algo::AggregateFn f = algo::WeightedSum({0.4, 0.3, 0.2, 0.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::ThresholdAlgorithm(data, f, 10));
  }
}
BENCHMARK(BM_ThresholdAlgorithm)->Arg(10000);

void BM_McppLabelSetting(benchmark::State& state) {
  // Pareto path sets grow quickly with graph size and d; keep the instance
  // small and bound the label budget so one iteration stays sub-second.
  graph::MultiCostGraph g = BenchGraph(400, int(state.range(0)));
  mcpp::McppOptions opts;
  opts.max_labels = 2'000'000;
  for (auto _ : state) {
    auto paths =
        mcpp::ParetoShortestPaths(g, 0, g.num_nodes() - 1, opts);
    benchmark::DoNotOptimize(paths.ok());
  }
}
BENCHMARK(BM_McppLabelSetting)->Arg(2)->Iterations(4);

// ------------------------------------------------------------------------
// Before/after pairs for the flattened hot-path structures. The "before"
// variants reproduce the seed implementation's data structures so the
// refactor's effect stays measurable in one binary.

struct ExpansionHeapItem {
  double key;
  uint64_t tagged_id;

  bool operator>(const ExpansionHeapItem& o) const {
    if (key != o.key) return key > o.key;
    return tagged_id > o.tagged_id;
  }
};
struct ExpansionHeapBefore {
  bool operator()(const ExpansionHeapItem& a,
                  const ExpansionHeapItem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.tagged_id < b.tagged_id;
  }
};

// A Dijkstra-like workload: bursts of pushes with drifting keys, one pop
// per burst (the expansion settle loop's shape).
template <typename PushFn, typename PopFn>
void RunHeapWorkload(Random& rng, int64_t ops, const PushFn& push,
                     const PopFn& pop) {
  double base = 0.0;
  for (int64_t i = 0; i < ops; ++i) {
    for (int b = 0; b < 3; ++b) {
      push(ExpansionHeapItem{base + rng.NextDouble() * 10.0,
                             uint64_t(rng.Uniform(1u << 20))});
    }
    base = pop();
  }
}

void BM_ExpansionHeapStdPriorityQueue(benchmark::State& state) {
  for (auto _ : state) {
    std::priority_queue<ExpansionHeapItem, std::vector<ExpansionHeapItem>,
                        std::greater<>>
        heap;
    Random rng(11);
    RunHeapWorkload(
        rng, state.range(0),
        [&](ExpansionHeapItem item) { heap.push(item); },
        [&]() {
          double key = heap.top().key;
          heap.pop();
          return key;
        });
    benchmark::DoNotOptimize(heap.size());
  }
}
BENCHMARK(BM_ExpansionHeapStdPriorityQueue)->Arg(100000);

void BM_ExpansionHeapDary(benchmark::State& state) {
  for (auto _ : state) {
    expand::DaryHeap<ExpansionHeapItem, ExpansionHeapBefore> heap;
    heap.reserve(4096);
    Random rng(11);
    RunHeapWorkload(
        rng, state.range(0),
        [&](ExpansionHeapItem item) { heap.push(item); },
        [&]() {
          double key = heap.top().key;
          heap.pop();
          return key;
        });
    benchmark::DoNotOptimize(heap.size());
  }
}
BENCHMARK(BM_ExpansionHeapDary)->Arg(100000);

// The seed's per-facility bookkeeping record (algo/common.h at the time).
struct MapTrackedFacility {
  graph::CostVector costs;
  uint32_t known_mask = 0;
  int known_count = 0;
  bool in_result = false;
  bool eliminated = false;
  bool pinned = false;
  bool pending = false;
};

// Pop + dominance-sweep workload of a skyline run: facilities are popped
// in random interleaving, and every "pin" sweeps all live candidates.
void BM_CandidateBookkeepingUnorderedMap(benchmark::State& state) {
  const int d = 4;
  const uint32_t facilities = uint32_t(state.range(0));
  for (auto _ : state) {
    std::unordered_map<graph::FacilityId, MapTrackedFacility> tracked;
    Random rng(17);
    uint64_t sweeps = 0;
    for (int64_t pop = 0; pop < state.range(0) * d; ++pop) {
      graph::FacilityId f = rng.Uniform(facilities);
      auto [it, created] = tracked.try_emplace(
          f, MapTrackedFacility{graph::CostVector(d, expand::kInfCost)});
      MapTrackedFacility& st = it->second;
      if (st.pinned || st.eliminated) continue;
      int i = int(pop % d);
      if (st.known_mask & (1u << i)) continue;
      st.costs[i] = rng.NextDouble();
      st.known_mask |= 1u << i;
      if (++st.known_count == d) {
        st.pinned = true;
        // Seed-style sweep: the full map, live or not.
        for (auto& [fid, ost] : tracked) {
          if (ost.pinned || ost.eliminated) continue;
          if (st.costs.DominatesOrEquals(ost.costs)) ost.eliminated = true;
          ++sweeps;
        }
      }
    }
    benchmark::DoNotOptimize(sweeps);
  }
}
BENCHMARK(BM_CandidateBookkeepingUnorderedMap)->Arg(2000);

void BM_CandidateBookkeepingDenseStore(benchmark::State& state) {
  const int d = 4;
  const uint32_t facilities = uint32_t(state.range(0));
  for (auto _ : state) {
    algo::CandidateStore store(facilities, d, expand::kInfCost);
    Random rng(17);
    uint64_t sweeps = 0;
    for (int64_t pop = 0; pop < state.range(0) * d; ++pop) {
      graph::FacilityId f = rng.Uniform(facilities);
      bool created = false;
      uint32_t s = store.Acquire(f, &created);
      if (created) store.AddCandidate(s);
      if (store.slot(s).pinned || store.slot(s).eliminated) continue;
      int i = int(pop % d);
      if (store.slot(s).Knows(i)) continue;
      store.SetCost(s, i, rng.NextDouble());
      if (store.slot(s).known_count == d) {
        store.slot(s).pinned = true;
        store.RemoveCandidate(s);
        // Dense-store sweep: live candidates only, contiguous cost rows.
        const auto& cs = store.candidates();
        for (size_t pos = 0; pos < cs.size();) {
          uint32_t o = cs[pos];
          ++sweeps;
          if (store.costs(s).DominatesOrEquals(store.costs(o))) {
            store.slot(o).eliminated = true;
            store.RemoveCandidate(o);
          } else {
            ++pos;
          }
        }
      }
    }
    benchmark::DoNotOptimize(sweeps);
  }
}
BENCHMARK(BM_CandidateBookkeepingDenseStore)->Arg(2000);

// Fetch-cache lookup shape: mostly-hit lookups keyed by edge.
void BM_FetchCacheUnorderedMap(benchmark::State& state) {
  std::unordered_map<graph::EdgeKey, uint32_t, graph::EdgeKeyHash> cache;
  Random rng(23);
  for (uint32_t i = 0; i < 20000; ++i) {
    cache.emplace(graph::EdgeKey(rng.Uniform(40000u), rng.Uniform(40000u)),
                  i);
  }
  Random probe(29);
  uint64_t found = 0;
  for (auto _ : state) {
    graph::EdgeKey key(probe.Uniform(40000u), probe.Uniform(40000u));
    auto it = cache.find(key);
    if (it != cache.end()) found += it->second;
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_FetchCacheUnorderedMap);

void BM_FetchCacheFlatMap(benchmark::State& state) {
  FlatU64Map cache;
  Random rng(23);
  for (uint32_t i = 0; i < 20000; ++i) {
    uint64_t key =
        graph::EdgeKey(rng.Uniform(40000u), rng.Uniform(40000u)).Pack();
    if (cache.Find(key) == FlatU64Map::kNoValue) cache.Insert(key, i);
  }
  Random probe(29);
  uint64_t found = 0;
  for (auto _ : state) {
    uint64_t key =
        graph::EdgeKey(probe.Uniform(40000u), probe.Uniform(40000u)).Pack();
    uint32_t v = cache.Find(key);
    if (v != FlatU64Map::kNoValue) found += v;
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_FetchCacheFlatMap);

}  // namespace
}  // namespace mcn

BENCHMARK_MAIN();
