// Intra-query parallel d-expansion benchmark (DESIGN.md §7): single-query
// skyline latency for a d / parallelism sweep, with the I/O stall of every
// physical record fetch slept for real inside the StripedCachedFetch (on
// the fetching probe's thread, outside all stripe locks) — the stalls the
// turn-barrier schedule exists to overlap.
//
// Each d gets one figure; rows sweep parallelism 1 (inline turns — the
// serial anchor), 2 and 4 probe workers. All parallelism levels run the
// identical turn schedule on the identical query set, so the bench aborts
// on any result-hash or logical-fetch-count divergence (the determinism
// contract), and on a latency speedup at d = 4 / 4 workers below
// MCN_PARALLEL_MIN_SPEEDUP x the inline run.
//
// Row semantics (schema mcn-bench-v2, via the shared harness): the `lsa`
// column holds the parallelism-1 anchor of the figure, the `cea` column
// the row's parallelism level; time(s) is measured wall latency including
// the slept stalls; latency percentiles and QPS are per-query wall times.
//
// Extra environment knobs (on top of the harness ones):
//   MCN_PARALLEL_QUERIES      queries per data point       (default 8)
//   MCN_PARALLEL_STALL_US     slept stall per record fetch (default 100)
//   MCN_PARALLEL_MIN_SPEEDUP  abort threshold, 0 disables  (default 1.8)
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/exec/expansion_executor.h"
#include "mcn/exec/service_stats.h"
#include "mcn/expand/probe_scheduler.h"
#include "mcn/gen/workload.h"

namespace mcn::bench {
namespace {

struct PointRun {
  RunMetrics metrics;
  std::vector<uint64_t> hashes;            ///< per query
  std::vector<uint64_t> logical_requests;  ///< adjacency + facility
  std::vector<uint64_t> physical_fetches;
};

PointRun RunPoint(gen::Instance& instance, int parallelism, double stall_us,
                  const BenchEnv& env,
                  const std::vector<graph::Location>& locations,
                  expand::ParallelProbeScheduler::Mode mode =
                      expand::ParallelProbeScheduler::Mode::kTurnBarrier) {
  auto executor =
      exec::ExpansionExecutor::Create(&instance.disk, instance.files,
                                      parallelism,
                                      instance.pool->capacity());
  MCN_CHECK(executor.ok());

  PointRun run;
  run.metrics.queries = static_cast<int>(locations.size());
  std::vector<double> latencies_ms;
  for (const graph::Location& q : locations) {
    (*executor)->ResetIoState();
    auto rig = (*executor)->NewQuery(q, mode);
    MCN_CHECK(rig.ok());
    rig->engine->striped_fetch()->set_simulated_stall_us(stall_us);

    algo::SkylineOptions opts;
    opts.exec.parallelism = parallelism;
    opts.exec.scheduler = rig->scheduler.get();
    algo::SkylineQuery query(rig->engine.get(), opts);

    Stopwatch watch;
    auto rows = query.ComputeAll();
    double seconds = watch.ElapsedSeconds();
    MCN_CHECK(rows.ok());

    // Hash outside the measured window, like the figure benchmarks.
    uint64_t hash = algo::HashResult(rows.value());
    run.hashes.push_back(hash);
    run.metrics.result_hash = algo::FnvMixU64(run.metrics.result_hash, hash);
    run.metrics.result_size += static_cast<double>(rows.value().size());
    run.metrics.cpu_seconds += seconds;
    run.metrics.modeled_seconds += seconds;
    latencies_ms.push_back(seconds * 1e3);

    const expand::FetchProvider::Stats& fs = rig->engine->fetch().stats();
    run.logical_requests.push_back(fs.adjacency_requests +
                                   fs.facility_requests);
    run.physical_fetches.push_back(fs.adjacency_fetches +
                                   fs.facility_fetches);
    const storage::BufferPool::Stats ps = (*executor)->PoolStats();
    run.metrics.buffer_misses += ps.misses;
    run.metrics.buffer_accesses += ps.accesses();
  }
  run.metrics.result_size /= static_cast<double>(locations.size());

  std::sort(latencies_ms.begin(), latencies_ms.end());
  run.metrics.latency_p50_ms = exec::PercentileSorted(latencies_ms, 50);
  run.metrics.latency_p95_ms = exec::PercentileSorted(latencies_ms, 95);
  run.metrics.latency_p99_ms = exec::PercentileSorted(latencies_ms, 99);
  run.metrics.qps = run.metrics.cpu_seconds > 0
                        ? static_cast<double>(locations.size()) /
                              run.metrics.cpu_seconds
                        : 0;
  (void)env;
  return run;
}

void CheckParity(int d, int parallelism, const PointRun& anchor,
                 const PointRun& run) {
  MCN_CHECK(anchor.hashes.size() == run.hashes.size());
  for (size_t i = 0; i < anchor.hashes.size(); ++i) {
    if (run.hashes[i] != anchor.hashes[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: d=%d parallelism=%d query %zu hash "
                   "%016" PRIx64 " != inline %016" PRIx64 "\n",
                   d, parallelism, i, run.hashes[i], anchor.hashes[i]);
      std::abort();
    }
    if (run.logical_requests[i] != anchor.logical_requests[i] ||
        run.physical_fetches[i] != anchor.physical_fetches[i]) {
      std::fprintf(stderr,
                   "I/O PARITY FAILURE: d=%d parallelism=%d query %zu "
                   "logical %" PRIu64 "/physical %" PRIu64
                   " != inline %" PRIu64 "/%" PRIu64 "\n",
                   d, parallelism, i, run.logical_requests[i],
                   run.physical_fetches[i], anchor.logical_requests[i],
                   anchor.physical_fetches[i]);
      std::abort();
    }
  }
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int queries =
      static_cast<int>(EnvDouble("MCN_PARALLEL_QUERIES", 8));
  const double stall_us = EnvDouble("MCN_PARALLEL_STALL_US", 100.0);
  const double min_speedup = EnvDouble("MCN_PARALLEL_MIN_SPEEDUP", 1.8);
  MCN_CHECK(queries > 0 && stall_us >= 0);

  const int parallelism_sweep[] = {1, 2, 4};
  double latency_d4_p1 = 0, latency_d4_p4 = 0;
  for (int d : {2, 3, 4}) {
    gen::ExperimentConfig config;  // paper defaults, varying d
    config.num_costs = d;
    gen::ExperimentConfig scaled = config.Scaled(env.scale);
    std::printf("building instance (%s)...\n", scaled.ToString().c_str());
    auto instance = gen::BuildInstance(scaled);
    MCN_CHECK(instance.ok());

    Random rng(2026 + d);
    std::vector<graph::Location> locations;
    locations.reserve(queries);
    for (int i = 0; i < queries; ++i) {
      locations.push_back((*instance)->RandomQueryLocation(rng));
    }

    PrintHeader("Parallel d-expansion: skyline latency vs parallelism (d=" +
                    std::to_string(d) + ")",
                "parallelism", scaled, env);
    std::printf(
        "queries/point=%d stall/fetch=%.1fus "
        "(MCN_PARALLEL_QUERIES / MCN_PARALLEL_STALL_US)\n",
        queries, stall_us);

    PointRun anchor;
    for (int parallelism : parallelism_sweep) {
      PointRun run =
          RunPoint(**instance, parallelism, stall_us, env, locations);
      if (parallelism == 1) {
        anchor = run;
      } else {
        CheckParity(d, parallelism, anchor, run);
      }
      AlgoComparison c;
      c.lsa = anchor.metrics;
      c.cea = run.metrics;
      PrintRow("p=" + std::to_string(parallelism), c);
      std::printf(
          "    per-query wall: avg %7.2f ms  p50/p95/p99 "
          "%7.2f/%7.2f/%7.2f ms  speedup vs inline %5.2fx\n",
          run.metrics.AvgCpu() * 1e3, run.metrics.latency_p50_ms,
          run.metrics.latency_p95_ms, run.metrics.latency_p99_ms,
          run.metrics.cpu_seconds > 0
              ? anchor.metrics.cpu_seconds / run.metrics.cpu_seconds
              : 0);
      if (d == 4 && parallelism == 1) latency_d4_p1 = run.metrics.cpu_seconds;
      if (d == 4 && parallelism == 4) latency_d4_p4 = run.metrics.cpu_seconds;
    }
    // Ablation: the relaxed frontier-ordered delivery mode — a different
    // (still deterministic) schedule, so it carries its own inline anchor
    // for the parity check instead of comparing against the turn-barrier
    // rows.
    {
      const auto relaxed =
          expand::ParallelProbeScheduler::Mode::kFrontierOrdered;
      PointRun anchor_relaxed =
          RunPoint(**instance, 1, stall_us, env, locations, relaxed);
      PointRun run =
          RunPoint(**instance, 4, stall_us, env, locations, relaxed);
      CheckParity(d, 4, anchor_relaxed, run);
      AlgoComparison c;
      c.lsa = anchor_relaxed.metrics;
      c.cea = run.metrics;
      PrintRow("p=4 relaxed", c);
      std::printf(
          "    per-query wall: avg %7.2f ms  p50/p95/p99 "
          "%7.2f/%7.2f/%7.2f ms  speedup vs inline %5.2fx "
          "(frontier-ordered delivery)\n",
          run.metrics.AvgCpu() * 1e3, run.metrics.latency_p50_ms,
          run.metrics.latency_p95_ms, run.metrics.latency_p99_ms,
          run.metrics.cpu_seconds > 0
              ? anchor_relaxed.metrics.cpu_seconds / run.metrics.cpu_seconds
              : 0);
    }
    PrintFooter();
  }

  double speedup = latency_d4_p4 > 0 ? latency_d4_p1 / latency_d4_p4 : 0;
  std::printf(
      "result hashes + logical/physical fetch counts: identical across "
      "every parallelism level.\n");
  std::printf("single-query latency speedup at d=4, 4 threads: %.2fx\n",
              speedup);
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "SPEEDUP FAILURE: %.2fx at d=4/p=4 is below the "
                 "MCN_PARALLEL_MIN_SPEEDUP=%.2f gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
