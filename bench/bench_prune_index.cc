// Landmark prune-index benchmark (DESIGN.md §12).
//
// Builds the fig. 8(a) base configuration once, with a landmark lower-bound
// index alongside the network files, and runs an identical fixed set of
// skyline queries twice per engine flavor: index off (the oracle never
// consulted) and index on (frontier pops dominance-pruned before their
// adjacency probe fetches a page). Both rows report honest I/O: the on-row's
// buffer misses include the index reader's own dedicated pool, so the win
// is net of the pages the oracle itself reads.
//
// Output: one figure with rows "off" and "on" (both engine flavors), plus
// the measured miss-cut ratio off/on per engine. The run aborts if
//   * any query's result hash differs between the off and on runs (the
//     exactness contract: pruning may only skip probes, never change
//     results), or
//   * the CEA miss-cut ratio falls below MCN_PRUNE_MIN_MISS_CUT
//     (default 2.0; 0 disables — CI smoke runs at tiny scale, where the
//     graph is too small for the index to pay for its own reads).
//
// Extra environment knobs (on top of the harness ones):
//   MCN_PRUNE_LANDMARKS     landmarks L in the index    (default 64)
//   MCN_PRUNE_MIN_MISS_CUT  abort threshold, 0 disables (default 2.0)
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/gen/workload.h"
#include "mcn/net/landmark_index.h"

namespace mcn::bench {
namespace {

struct SweepRun {
  RunMetrics metrics;
  std::vector<uint64_t> hashes;  ///< per-query, for off/on parity
  uint64_t index_misses = 0;     ///< the index pool's share of the misses
  uint64_t index_accesses = 0;   ///< index pool hits + misses
  uint64_t prune_checked = 0;
  uint64_t prune_cut = 0;
};

SweepRun RunSkylineSweep(gen::Instance& instance, expand::EngineKind kind,
                         const std::vector<graph::Location>& locations,
                         net::LandmarkIndexReader* index,
                         const BenchEnv& env) {
  SweepRun run;
  run.metrics.queries = static_cast<int>(locations.size());
  for (const graph::Location& loc : locations) {
    instance.ResetIoState();  // cold caches, index pool included
    Stopwatch watch;
    auto engine = expand::MakeEngine(kind, instance.reader.get(), loc);
    MCN_CHECK(engine.ok());
    algo::SkylineOptions opts;
    opts.exec.landmark_index = index;
    algo::SkylineQuery query(engine.value().get(), opts);
    auto rows = query.ComputeAll();
    MCN_CHECK(rows.ok());
    run.metrics.cpu_seconds += watch.ElapsedSeconds();
    run.prune_checked += query.stats().prune_checked;
    run.prune_cut += query.stats().prune_cut;

    const uint64_t hash = algo::HashResult(rows.value());
    run.hashes.push_back(hash);
    run.metrics.result_hash = algo::FnvMixU64(run.metrics.result_hash, hash);
    run.metrics.result_size += static_cast<double>(rows.value().size());

    // Honest accounting: the index reader's dedicated pool counts against
    // the on-run — the prune win must be net of the oracle's own reads.
    storage::BufferPool::Stats io = instance.pool->stats();
    if (index != nullptr) {
      const storage::BufferPool::Stats lm = index->pool().stats();
      io.hits += lm.hits;
      io.misses += lm.misses;
      run.index_misses += lm.misses;
      run.index_accesses += lm.hits + lm.misses;
    }
    run.metrics.buffer_misses += io.misses;
    run.metrics.buffer_accesses += io.hits + io.misses;
  }
  run.metrics.modeled_seconds =
      run.metrics.cpu_seconds +
      static_cast<double>(run.metrics.buffer_misses) * env.io_latency_ms /
          1000.0;
  run.metrics.result_size /= static_cast<double>(locations.size());
  return run;
}

double MissCut(const RunMetrics& off, const RunMetrics& on) {
  return on.buffer_misses > 0 ? static_cast<double>(off.buffer_misses) /
                                    static_cast<double>(on.buffer_misses)
                              : 0.0;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const uint32_t landmarks =
      static_cast<uint32_t>(EnvDouble("MCN_PRUNE_LANDMARKS", 64));
  const double min_cut = EnvDouble("MCN_PRUNE_MIN_MISS_CUT", 2.0);
  MCN_CHECK(landmarks > 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: the paper's defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  scaled.landmarks = landmarks;
  std::printf("building indexed instance (%s)...\n",
              scaled.ToString().c_str());
  auto instance = gen::BuildInstance(scaled);
  MCN_CHECK(instance.ok());
  MCN_CHECK((*instance)->landmark_reader != nullptr);

  Random rng(2027);
  std::vector<graph::Location> locations;
  locations.reserve(env.queries);
  for (int i = 0; i < env.queries; ++i) {
    locations.push_back((*instance)->RandomQueryLocation(rng));
  }

  PrintHeader("Prune index: skyline I/O, index off vs on (fig. 8(a) base)",
              "index", scaled, env);
  std::printf("landmarks=%u min_miss_cut=%.2f (MCN_PRUNE_LANDMARKS / "
              "MCN_PRUNE_MIN_MISS_CUT)\n",
              landmarks, min_cut);

  SweepRun runs[2][2];  // [engine][off=0 / on=1]
  const expand::EngineKind kinds[2] = {expand::EngineKind::kLsa,
                                       expand::EngineKind::kCea};
  const char* kind_names[2] = {"LSA", "CEA"};
  for (int e = 0; e < 2; ++e) {
    runs[e][0] = RunSkylineSweep(**instance, kinds[e], locations,
                                 /*index=*/nullptr, env);
    runs[e][1] = RunSkylineSweep(**instance, kinds[e], locations,
                                 (*instance)->landmark_reader.get(), env);
    for (size_t i = 0; i < locations.size(); ++i) {
      if (runs[e][0].hashes[i] != runs[e][1].hashes[i]) {
        std::fprintf(stderr,
                     "PARITY FAILURE: %s query %zu hash %016" PRIx64
                     " (off) != %016" PRIx64 " (on)\n",
                     kind_names[e], i, runs[e][0].hashes[i],
                     runs[e][1].hashes[i]);
        std::abort();
      }
    }
  }

  for (int side = 0; side < 2; ++side) {
    AlgoComparison c;
    c.lsa = runs[0][side].metrics;
    c.cea = runs[1][side].metrics;
    PrintRow(side == 0 ? "off" : "on", c);
  }
  PrintFooter();

  std::printf("result hashes: identical off vs on for both engines.\n");
  const double cut_lsa = MissCut(runs[0][0].metrics, runs[0][1].metrics);
  const double cut_cea = MissCut(runs[1][0].metrics, runs[1][1].metrics);
  std::printf("miss cut (off/on): LSA %.2fx  CEA %.2fx  (on-side index-pool "
              "share: LSA %" PRIu64 "/%" PRIu64 "  CEA %" PRIu64 "/%" PRIu64
              ")\n",
              cut_lsa, cut_cea, runs[0][1].index_misses,
              runs[0][1].metrics.buffer_misses, runs[1][1].index_misses,
              runs[1][1].metrics.buffer_misses);
  std::printf("oracle (CEA, totals): checked %" PRIu64 "  cut %" PRIu64
              "  index row loads %" PRIu64 "\n",
              runs[1][1].prune_checked, runs[1][1].prune_cut,
              runs[1][1].index_accesses);
  if (min_cut > 0 && cut_cea < min_cut) {
    std::fprintf(stderr,
                 "FAILURE: CEA miss cut %.2fx below %.2fx "
                 "(MCN_PRUNE_MIN_MISS_CUT)\n",
                 cut_cea, min_cut);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
