// Concurrent query-service throughput/latency benchmark (DESIGN.md §6).
//
// Builds the fig. 8(a) base instance (the paper's default skyline
// configuration at MCN_BENCH_SCALE), then serves the same fixed set of
// skyline queries through an exec::QueryService at 1/2/4/8 workers, for
// both engine flavors. Each worker owns its own LRU pool (sized exactly
// like the single-threaded experiments) over the shared read-only disk;
// per-miss I/O stalls are slept for real (MCN_SERVICE_STALL_US per miss),
// so the measured wall-clock QPS reflects genuinely overlapped I/O — the
// effect the executor exists to exploit.
//
// Output: one PrintRow per worker count (the JSON rows carry the
// mcn-bench-v2 latency_p50/p95/p99_ms + qps fields) plus a speedup
// summary. The run aborts if
//   * any worker count produces a result hash or per-query buffer-miss
//     count different from direct single-threaded execution, or
//   * QPS at 4 workers is below MCN_SERVICE_MIN_SPEEDUP (default 2.5) x
//     the QPS at 1 worker for either engine.
//
// Extra environment knobs (on top of the harness ones):
//   MCN_SERVICE_REQUESTS     queries per sweep point      (default 96;
//                            keep >= ~2x workers x the miss-count skew, or
//                            the longest queries dominate the makespan)
//   MCN_SERVICE_STALL_US     slept stall per miss, in us  (default 20;
//                            modeled_seconds still uses MCN_IO_LATENCY_MS)
//   MCN_SERVICE_MIN_SPEEDUP  abort threshold, 0 disables  (default 2.5)
//
// A second figure ("Service result cache", DESIGN.md §13) replays a
// Zipf-skewed stream of repeated queries (MCN_SERVICE_CACHE_REQUESTS,
// default 192, over ~16 distinct locations) twice — result cache off vs
// on (64 entries) — at 4 workers with the same slept stalls. Every
// response hash is checked against the single-threaded reference; the run
// aborts on any mismatch and fails when the cached QPS is below
// MCN_SERVICE_CACHE_MIN_SPEEDUP (default 2.0) x the uncached QPS.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"

namespace mcn::bench {
namespace {

struct ServiceRun {
  RunMetrics metrics;
  std::vector<uint64_t> hashes;  ///< per request, submission order
  std::vector<uint64_t> misses;  ///< per request, submission order
  obs::Snapshot snapshot;        ///< registry snapshot at shutdown
};

struct Reference {
  std::vector<uint64_t> hashes;
  std::vector<uint64_t> misses;
  double avg_result_size = 0;
};

// Direct single-threaded execution on the instance's own pool/reader —
// the parity anchor every service run is compared against.
Reference DirectReference(gen::Instance& instance, expand::EngineKind kind,
                          const std::vector<graph::Location>& locations) {
  Reference ref;
  double total_size = 0;
  for (const graph::Location& loc : locations) {
    instance.ResetIoState();
    auto engine = expand::MakeEngine(kind, instance.reader.get(), loc);
    MCN_CHECK(engine.ok());
    algo::SkylineQuery query(engine.value().get());
    auto rows = query.ComputeAll();
    MCN_CHECK(rows.ok());
    ref.hashes.push_back(algo::HashResult(rows.value()));
    ref.misses.push_back(instance.pool->stats().misses);
    total_size += static_cast<double>(rows.value().size());
  }
  ref.avg_result_size = total_size / static_cast<double>(locations.size());
  return ref;
}

ServiceRun RunService(gen::Instance& instance, expand::EngineKind kind,
                      int workers, double stall_us, const BenchEnv& env,
                      const std::vector<graph::Location>& locations) {
  exec::ServiceOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = locations.size() + 1;
  opts.pool_frames_per_worker = instance.pool->capacity();
  opts.io_latency_ms = stall_us / 1000.0;
  opts.simulate_io_stalls = stall_us > 0;
  auto service =
      exec::QueryService::Create(&instance.disk, instance.files, opts);
  MCN_CHECK(service.ok());

  std::vector<std::future<exec::QueryResult>> futures;
  futures.reserve(locations.size());
  Stopwatch wall;
  for (const graph::Location& loc : locations) {
    exec::QueryRequest request;
    request.kind = exec::QueryKind::kSkyline;
    request.engine = kind;
    request.location = loc;
    futures.push_back((*service)->Submit(std::move(request)));
  }

  ServiceRun run;
  run.metrics.queries = static_cast<int>(locations.size());
  for (auto& future : futures) {
    exec::QueryResult result = future.get();
    MCN_CHECK(result.status.ok());
    run.hashes.push_back(result.result_hash);
    run.misses.push_back(result.stats.buffer_misses);
    run.metrics.result_hash =
        algo::FnvMixU64(run.metrics.result_hash, result.result_hash);
    run.metrics.result_size +=
        static_cast<double>(result.skyline.size());
    run.metrics.cpu_seconds += result.stats.exec_seconds;
    run.metrics.buffer_misses += result.stats.buffer_misses;
    run.metrics.buffer_accesses += result.stats.buffer_accesses;
    // Modeled time stays on the harness's I/O latency so rows are
    // comparable with the single-threaded figure benchmarks.
    run.metrics.modeled_seconds +=
        result.stats.exec_seconds +
        static_cast<double>(result.stats.buffer_misses) *
            env.io_latency_ms / 1000.0;
  }
  double wall_seconds = wall.ElapsedSeconds();
  run.metrics.result_size /= static_cast<double>(locations.size());

  exec::ServiceStats stats = (*service)->Snapshot();
  run.metrics.latency_p50_ms = stats.latency_p50_ms;
  run.metrics.latency_p95_ms = stats.latency_p95_ms;
  run.metrics.latency_p99_ms = stats.latency_p99_ms;
  run.metrics.qps =
      static_cast<double>(locations.size()) / wall_seconds;
  run.snapshot = (*service)->MetricsSnapshot();
  (*service)->Shutdown();
  return run;
}

void CheckParity(const char* engine, int workers, const Reference& ref,
                 const ServiceRun& run) {
  MCN_CHECK(ref.hashes.size() == run.hashes.size());
  for (size_t i = 0; i < ref.hashes.size(); ++i) {
    if (ref.hashes[i] != run.hashes[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: %s workers=%d query %zu hash "
                   "%016" PRIx64 " != single-threaded %016" PRIx64 "\n",
                   engine, workers, i, run.hashes[i], ref.hashes[i]);
      std::abort();
    }
    if (ref.misses[i] != run.misses[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: %s workers=%d query %zu misses "
                   "%" PRIu64 " != single-threaded %" PRIu64 "\n",
                   engine, workers, i, run.misses[i], ref.misses[i]);
      std::abort();
    }
  }
}

// One leg of the result-cache figure: serves `order` (indexes into
// `distinct`) through a 4-worker service after a one-pass warmup, checks
// every response hash against the reference, and measures replay QPS.
ServiceRun RunCacheLeg(gen::Instance& instance, size_t cache_entries,
                       double stall_us, const BenchEnv& env,
                       const std::vector<graph::Location>& distinct,
                       const std::vector<size_t>& order,
                       const Reference& ref) {
  exec::ServiceOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = order.size() + distinct.size() + 1;
  opts.pool_frames_per_worker = instance.pool->capacity();
  opts.io_latency_ms = stall_us / 1000.0;
  opts.simulate_io_stalls = stall_us > 0;
  opts.result_cache_entries = cache_entries;
  auto service =
      exec::QueryService::Create(&instance.disk, instance.files, opts);
  MCN_CHECK(service.ok());

  auto submit = [&](const graph::Location& loc) {
    api::QuerySpec spec;
    spec.kind = exec::QueryKind::kSkyline;
    spec.engine = expand::EngineKind::kCea;
    spec.location = loc;
    return (*service)->Submit(std::move(spec));
  };

  // Warmup pass: each distinct query once, so the cached leg measures
  // steady-state hits (the uncached leg pays the same pass for fairness).
  std::vector<std::future<exec::QueryResult>> warm;
  warm.reserve(distinct.size());
  for (const graph::Location& loc : distinct) warm.push_back(submit(loc));
  for (size_t i = 0; i < warm.size(); ++i) {
    exec::QueryResult result = warm[i].get();
    MCN_CHECK(result.status.ok());
    MCN_CHECK(result.result_hash == ref.hashes[i]);
  }
  (*service)->Drain();

  std::vector<std::future<exec::QueryResult>> futures;
  futures.reserve(order.size());
  Stopwatch wall;
  for (size_t idx : order) futures.push_back(submit(distinct[idx]));

  ServiceRun run;
  run.metrics.queries = static_cast<int>(order.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    exec::QueryResult result = futures[i].get();
    MCN_CHECK(result.status.ok());
    if (result.result_hash != ref.hashes[order[i]]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: cache=%zu request %zu hash %016" PRIx64
                   " != single-threaded %016" PRIx64 "\n",
                   cache_entries, i, result.result_hash,
                   ref.hashes[order[i]]);
      std::abort();
    }
    run.metrics.result_hash =
        algo::FnvMixU64(run.metrics.result_hash, result.result_hash);
    run.metrics.result_size += static_cast<double>(result.skyline.size());
    run.metrics.cpu_seconds += result.stats.exec_seconds;
    // Cache hits return sanitized stats (zero misses): the aggregate
    // counts only the work actually executed during the replay.
    run.metrics.buffer_misses += result.stats.buffer_misses;
    run.metrics.buffer_accesses += result.stats.buffer_accesses;
    run.metrics.modeled_seconds +=
        result.stats.exec_seconds +
        static_cast<double>(result.stats.buffer_misses) *
            env.io_latency_ms / 1000.0;
  }
  double wall_seconds = wall.ElapsedSeconds();
  run.metrics.result_size /= static_cast<double>(order.size());
  run.metrics.qps = static_cast<double>(order.size()) / wall_seconds;

  exec::ServiceStats stats = (*service)->Snapshot();
  run.metrics.latency_p50_ms = stats.latency_p50_ms;
  run.metrics.latency_p95_ms = stats.latency_p95_ms;
  run.metrics.latency_p99_ms = stats.latency_p99_ms;
  run.snapshot = (*service)->MetricsSnapshot();
  (*service)->Shutdown();
  return run;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int num_requests =
      static_cast<int>(EnvDouble("MCN_SERVICE_REQUESTS", 96));
  const double stall_us = EnvDouble("MCN_SERVICE_STALL_US", 20.0);
  const double min_speedup = EnvDouble("MCN_SERVICE_MIN_SPEEDUP", 2.5);
  MCN_CHECK(num_requests > 0 && stall_us >= 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: the paper's defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("building instance (%s)...\n", scaled.ToString().c_str());
  auto instance = gen::BuildInstance(scaled);
  MCN_CHECK(instance.ok());

  Random rng(2026);
  std::vector<graph::Location> locations;
  locations.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    locations.push_back((*instance)->RandomQueryLocation(rng));
  }

  std::printf("computing single-threaded reference (%d queries)...\n",
              num_requests);
  Reference ref_lsa =
      DirectReference(**instance, expand::EngineKind::kLsa, locations);
  Reference ref_cea =
      DirectReference(**instance, expand::EngineKind::kCea, locations);

  PrintHeader("Service throughput: skyline QPS vs workers (fig. 8(a) base)",
              "workers", scaled, env);
  std::printf(
      "requests/point=%d stall/miss=%.1fus "
      "(MCN_SERVICE_REQUESTS / MCN_SERVICE_STALL_US)\n",
      num_requests, stall_us);

  const int worker_sweep[] = {1, 2, 4, 8};
  double qps1_lsa = 0, qps4_lsa = 0, qps1_cea = 0, qps4_cea = 0;
  for (int workers : worker_sweep) {
    ServiceRun lsa = RunService(**instance, expand::EngineKind::kLsa,
                                workers, stall_us, env, locations);
    ServiceRun cea = RunService(**instance, expand::EngineKind::kCea,
                                workers, stall_us, env, locations);
    CheckParity("LSA", workers, ref_lsa, lsa);
    CheckParity("CEA", workers, ref_cea, cea);
    AlgoComparison c;
    c.lsa = lsa.metrics;
    c.cea = cea.metrics;
    // One "obs" object per row: both engines' service registries merged
    // (same instrument names, values add).
    obs::Snapshot row_obs = lsa.snapshot;
    row_obs.Merge(cea.snapshot);
    PrintRow(std::to_string(workers), c, row_obs);
    std::printf(
        "    service: LSA %7.2f qps  p50/p95/p99 %7.1f/%7.1f/%7.1f ms | "
        "CEA %7.2f qps  p50/p95/p99 %7.1f/%7.1f/%7.1f ms\n",
        lsa.metrics.qps, lsa.metrics.latency_p50_ms,
        lsa.metrics.latency_p95_ms, lsa.metrics.latency_p99_ms,
        cea.metrics.qps, cea.metrics.latency_p50_ms,
        cea.metrics.latency_p95_ms, cea.metrics.latency_p99_ms);
    if (workers == 1) {
      qps1_lsa = lsa.metrics.qps;
      qps1_cea = cea.metrics.qps;
    } else if (workers == 4) {
      qps4_lsa = lsa.metrics.qps;
      qps4_cea = cea.metrics.qps;
    }
  }
  PrintFooter();

  double speedup_lsa = qps1_lsa > 0 ? qps4_lsa / qps1_lsa : 0;
  double speedup_cea = qps1_cea > 0 ? qps4_cea / qps1_cea : 0;
  std::printf(
      "result hashes + per-query miss counts: identical to "
      "single-threaded execution at every worker count.\n");
  std::printf("QPS speedup at 4 workers vs 1: LSA %.2fx, CEA %.2fx\n",
              speedup_lsa, speedup_cea);
  if (min_speedup > 0 &&
      (speedup_lsa < min_speedup || speedup_cea < min_speedup)) {
    std::fprintf(stderr,
                 "FAILURE: 4-worker QPS speedup below %.2fx "
                 "(MCN_SERVICE_MIN_SPEEDUP)\n",
                 min_speedup);
    return 1;
  }

  // ---- Result-cache figure (DESIGN.md §13) ----
  const int cache_requests =
      static_cast<int>(EnvDouble("MCN_SERVICE_CACHE_REQUESTS", 192));
  const double cache_min_speedup =
      EnvDouble("MCN_SERVICE_CACHE_MIN_SPEEDUP", 2.0);
  MCN_CHECK(cache_requests > 0);
  const size_t num_distinct =
      std::min<size_t>(16, locations.size());
  std::vector<graph::Location> distinct(locations.begin(),
                                        locations.begin() + num_distinct);
  Reference ref_distinct;
  ref_distinct.hashes.assign(ref_cea.hashes.begin(),
                             ref_cea.hashes.begin() + num_distinct);

  // Zipf(1) popularity over the distinct queries: rank r drawn with
  // weight 1/(r+1) — the repeat-heavy stream result sharing exists for.
  std::vector<double> cumulative(num_distinct);
  double mass = 0;
  for (size_t r = 0; r < num_distinct; ++r) {
    mass += 1.0 / static_cast<double>(r + 1);
    cumulative[r] = mass;
  }
  Random zipf_rng(4051);
  std::vector<size_t> order;
  order.reserve(static_cast<size_t>(cache_requests));
  for (int i = 0; i < cache_requests; ++i) {
    const double u = zipf_rng.NextDouble() * mass;
    size_t rank = 0;
    while (rank + 1 < num_distinct && cumulative[rank] < u) ++rank;
    order.push_back(rank);
  }

  PrintHeader(
      "Service result cache: Zipf repeat QPS, off vs on (fig. 8(a) base)",
      "cache", scaled, env);
  std::printf(
      "replay=%d requests over %zu distinct queries, 4 workers "
      "(MCN_SERVICE_CACHE_REQUESTS)\n",
      cache_requests, num_distinct);
  ServiceRun off = RunCacheLeg(**instance, /*cache_entries=*/0, stall_us,
                               env, distinct, order, ref_distinct);
  AlgoComparison c_off;
  c_off.cea = off.metrics;
  SetNextRowMeta("serial", "memory");
  PrintRow("off", c_off, off.snapshot);
  ServiceRun on = RunCacheLeg(**instance, /*cache_entries=*/64, stall_us,
                              env, distinct, order, ref_distinct);
  exec::ServiceStats on_stats = exec::ServiceStatsFromSnapshot(on.snapshot);
  AlgoComparison c_on;
  c_on.cea = on.metrics;
  SetNextRowMeta("serial", "memory");
  PrintRow("on", c_on, on.snapshot);
  std::printf(
      "    cache: %" PRIu64 " hits, %" PRIu64 " misses, %" PRIu64
      " coalesced | CEA off %7.2f qps -> on %7.2f qps\n",
      on_stats.cache_hits, on_stats.cache_misses, on_stats.cache_coalesced,
      off.metrics.qps, on.metrics.qps);
  PrintFooter();

  const double cache_speedup =
      off.metrics.qps > 0 ? on.metrics.qps / off.metrics.qps : 0;
  std::printf(
      "every replayed response hash identical to single-threaded "
      "execution; cached QPS gain: %.2fx\n",
      cache_speedup);
  if (on_stats.cache_hits == 0) {
    std::fprintf(stderr, "FAILURE: cached leg served no hits\n");
    return 1;
  }
  if (cache_min_speedup > 0 && cache_speedup < cache_min_speedup) {
    std::fprintf(stderr,
                 "FAILURE: cached QPS gain %.2fx below %.2fx "
                 "(MCN_SERVICE_CACHE_MIN_SPEEDUP)\n",
                 cache_speedup, cache_min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
