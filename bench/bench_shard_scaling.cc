// Sharded-partition scaling benchmark (DESIGN.md §8).
//
// Builds the fig. 8(a) base configuration once per shard count K in
// {1, 2, 4} — the *same* generated network every time, laid out as K
// per-tile file sets — and serves an identical fixed set of skyline
// queries through a shard-affine exec::QueryService at a fixed worker
// count, for both engine flavors. Submit routes each query to the worker
// group owning its location; per-miss I/O stalls are slept for real so
// QPS reflects overlapped I/O across the shard pools.
//
// Pool memory model (MCN_SHARD_POOL_MODE): "socket" (default) gives every
// shard pool the full per-worker frame budget — the ROADMAP's per-socket
// model, where each socket contributes its own DIMMs and aggregate buffer
// grows with K. "split" divides the budget across the K shard pools
// (iso-memory with the flat layout); it isolates the cost of statically
// partitioning LRU capacity, which inflates misses at the paper's small
// buffer sizes — the honest price of the cut, reported rather than hidden.
//
// Output: one PrintRow per K (mcn-bench-v2 rows carrying qps + latency
// percentiles + the local/remote routed-fetch split), plus the per-K
// remote-fetch ratio — the §2 accounting of how often a d-expansion
// escapes its home tile. The run aborts if
//   * any K produces a result hash different from direct single-threaded
//     execution on the flat layout (the determinism contract), or
//   * K = 1 reports any remote fetch, or
//   * QPS at K = 4 falls below MCN_SHARD_MIN_QPS_RATIO x the K = 1 QPS
//     (default 0.5 in socket mode, 0.15 in split mode; 0 disables).
//
// Extra environment knobs (on top of the harness ones):
//   MCN_SHARD_WORKERS        service workers per sweep point (default 4)
//   MCN_SHARD_REQUESTS       queries per sweep point         (default 96)
//   MCN_SHARD_STALL_US       slept stall per miss, in us     (default 20)
//   MCN_SHARD_PIN_WORKERS    1 = pin worker threads (default 0: CI-safe)
//   MCN_SHARD_POOL_MODE      "socket" (default) or "split"; see above
//   MCN_SHARD_MIN_QPS_RATIO  abort threshold, 0 disables
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"

namespace mcn::bench {
namespace {

struct Reference {
  std::vector<uint64_t> hashes;
  double avg_result_size = 0;
};

// Direct single-threaded execution on the flat instance — the parity
// anchor every sharded run is compared against.
Reference DirectReference(gen::Instance& instance, expand::EngineKind kind,
                          const std::vector<graph::Location>& locations) {
  Reference ref;
  double total_size = 0;
  for (const graph::Location& loc : locations) {
    instance.ResetIoState();
    auto engine = expand::MakeEngine(kind, instance.reader.get(), loc);
    MCN_CHECK(engine.ok());
    algo::SkylineQuery query(engine.value().get());
    auto rows = query.ComputeAll();
    MCN_CHECK(rows.ok());
    ref.hashes.push_back(algo::HashResult(rows.value()));
    total_size += static_cast<double>(rows.value().size());
  }
  ref.avg_result_size = total_size / static_cast<double>(locations.size());
  return ref;
}

RunMetrics RunSharded(gen::ShardedInstance& instance,
                      expand::EngineKind kind, int workers, double stall_us,
                      bool pin, bool split_pools, const BenchEnv& env,
                      const std::vector<graph::Location>& locations,
                      const Reference& ref) {
  exec::ServiceOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = locations.size() + 1;
  opts.pool_frames_per_worker = instance.pool_frames;
  opts.io_latency_ms = stall_us / 1000.0;
  opts.simulate_io_stalls = stall_us > 0;
  opts.pin_workers = pin;
  opts.split_pool_across_shards = split_pools;
  auto service =
      exec::QueryService::Create(&instance.storage, instance.files, opts);
  MCN_CHECK(service.ok());

  std::vector<std::future<exec::QueryResult>> futures;
  futures.reserve(locations.size());
  Stopwatch wall;
  for (const graph::Location& loc : locations) {
    exec::QueryRequest request;
    request.kind = exec::QueryKind::kSkyline;
    request.engine = kind;
    request.location = loc;
    futures.push_back((*service)->Submit(std::move(request)));
  }

  RunMetrics metrics;
  metrics.queries = static_cast<int>(locations.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    exec::QueryResult result = futures[i].get();
    MCN_CHECK(result.status.ok());
    if (result.result_hash != ref.hashes[i]) {
      std::fprintf(stderr,
                   "PARITY FAILURE: K=%d query %zu hash %016" PRIx64
                   " != flat single-threaded %016" PRIx64 "\n",
                   instance.storage.num_shards(), i, result.result_hash,
                   ref.hashes[i]);
      std::abort();
    }
    metrics.result_hash =
        algo::FnvMixU64(metrics.result_hash, result.result_hash);
    metrics.result_size += static_cast<double>(result.skyline.size());
    metrics.cpu_seconds += result.stats.exec_seconds;
    metrics.buffer_misses += result.stats.buffer_misses;
    metrics.buffer_accesses += result.stats.buffer_accesses;
    metrics.modeled_seconds +=
        result.stats.exec_seconds +
        static_cast<double>(result.stats.buffer_misses) * env.io_latency_ms /
            1000.0;
  }
  const double wall_seconds = wall.ElapsedSeconds();
  metrics.result_size /= static_cast<double>(locations.size());

  exec::ServiceStats stats = (*service)->Snapshot();
  metrics.latency_p50_ms = stats.latency_p50_ms;
  metrics.latency_p95_ms = stats.latency_p95_ms;
  metrics.latency_p99_ms = stats.latency_p99_ms;
  metrics.qps = static_cast<double>(locations.size()) / wall_seconds;
  for (const auto& row : stats.per_shard) {
    metrics.local_fetches += row.local_fetches;
    metrics.remote_fetches += row.remote_fetches;
  }
  (*service)->Shutdown();
  return metrics;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int workers = static_cast<int>(EnvDouble("MCN_SHARD_WORKERS", 4));
  const int num_requests =
      static_cast<int>(EnvDouble("MCN_SHARD_REQUESTS", 96));
  const double stall_us = EnvDouble("MCN_SHARD_STALL_US", 20.0);
  const bool pin = EnvDouble("MCN_SHARD_PIN_WORKERS", 0) > 0;
  const char* pool_mode_env = std::getenv("MCN_SHARD_POOL_MODE");
  const std::string pool_mode =
      pool_mode_env != nullptr && *pool_mode_env != '\0' ? pool_mode_env
                                                         : "socket";
  MCN_CHECK(pool_mode == "socket" || pool_mode == "split");
  const bool split_pools = pool_mode == "split";
  const double min_qps_ratio =
      EnvDouble("MCN_SHARD_MIN_QPS_RATIO", split_pools ? 0.15 : 0.5);
  MCN_CHECK(workers > 0 && num_requests > 0 && stall_us >= 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: the paper's defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("building flat reference instance (%s)...\n",
              scaled.ToString().c_str());
  auto flat = gen::BuildInstance(scaled);
  MCN_CHECK(flat.ok());

  Random rng(2026);
  std::vector<graph::Location> locations;
  locations.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    locations.push_back((*flat)->RandomQueryLocation(rng));
  }

  std::printf("computing flat single-threaded reference (%d queries)...\n",
              num_requests);
  Reference ref_lsa =
      DirectReference(**flat, expand::EngineKind::kLsa, locations);
  Reference ref_cea =
      DirectReference(**flat, expand::EngineKind::kCea, locations);

  PrintHeader("Shard scaling: skyline QPS + remote-fetch ratio vs K "
              "(fig. 8(a) base)",
              "shards", scaled, env);
  std::printf(
      "workers=%d requests/point=%d stall/miss=%.1fus pin=%d pools=%s "
      "(MCN_SHARD_WORKERS / MCN_SHARD_REQUESTS / MCN_SHARD_STALL_US / "
      "MCN_SHARD_PIN_WORKERS / MCN_SHARD_POOL_MODE)\n",
      workers, num_requests, stall_us, pin ? 1 : 0, pool_mode.c_str());

  const int shard_sweep[] = {1, 2, 4};
  double qps_k1 = 0, qps_k4 = 0;
  for (int k : shard_sweep) {
    std::printf("building K=%d sharded layout...\n", k);
    auto instance = gen::BuildShardedInstance(scaled, k);
    MCN_CHECK(instance.ok());
    RunMetrics lsa = RunSharded(**instance, expand::EngineKind::kLsa,
                                workers, stall_us, pin, split_pools, env,
                                locations, ref_lsa);
    RunMetrics cea = RunSharded(**instance, expand::EngineKind::kCea,
                                workers, stall_us, pin, split_pools, env,
                                locations, ref_cea);
    if (k == 1 && (lsa.remote_fetches != 0 || cea.remote_fetches != 0)) {
      std::fprintf(stderr,
                   "FAILURE: K=1 reported remote fetches (%" PRIu64
                   " / %" PRIu64 ")\n",
                   lsa.remote_fetches, cea.remote_fetches);
      return 1;
    }
    AlgoComparison c;
    c.lsa = lsa;
    c.cea = cea;
    PrintRow(std::to_string(k), c);
    std::printf(
        "    K=%d: LSA %7.2f qps  remote %5.1f%% | CEA %7.2f qps  "
        "remote %5.1f%%  p50/p95/p99 %6.1f/%6.1f/%6.1f ms\n",
        k, lsa.qps, 100.0 * lsa.RemoteRatio(), cea.qps,
        100.0 * cea.RemoteRatio(), cea.latency_p50_ms, cea.latency_p95_ms,
        cea.latency_p99_ms);
    if (k == 1) qps_k1 = cea.qps;
    if (k == 4) qps_k4 = cea.qps;
  }
  PrintFooter();

  std::printf(
      "result hashes: identical to flat single-threaded execution at every "
      "K.\n");
  if (min_qps_ratio > 0 && qps_k1 > 0 && qps_k4 < min_qps_ratio * qps_k1) {
    std::fprintf(stderr,
                 "FAILURE: K=4 QPS %.2f below %.2fx of K=1 QPS %.2f "
                 "(MCN_SHARD_MIN_QPS_RATIO)\n",
                 qps_k4, min_qps_ratio, qps_k1);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
