// Wire-protocol throughput/latency benchmark (DESIGN.md §9).
//
// Builds the fig. 8(a) base instance at MCN_BENCH_SCALE, stands up an
// exec::QueryService (fixed worker count) behind an api::Server on
// 127.0.0.1, and drives a closed-loop multi-client load: each client is
// its own api::Client connection on its own thread, executing the same
// fixed mixed QuerySpec list (skyline / top-k / incremental) synchronously
// over the wire. The sweep varies the client count; per-miss I/O stalls
// are slept for real on the server, so the measured QPS reflects how well
// concurrent connections overlap across the service workers.
//
// Parity gate (the transport-determinism contract): every wire response
// must carry the same result hash AND the same logical fetch counts as
// in-process QueryService execution of the identical spec — checked for
// both engine flavors before the sweep, plus a wire-streamed incremental
// session that must replay the in-process session stream batch for batch.
// Any divergence aborts the run. The run also aborts when QPS at 4
// clients is below MCN_WIRE_MIN_SPEEDUP (default 2.0) x the 1-client QPS.
//
// Output: one PrintRow per client count (mcn-bench-v2 rows: qps, client-
// observed RTT percentiles in latency_p50/p95/p99_ms, result hash mixed
// over the responses in submission order).
//
// Extra environment knobs (on top of the harness ones):
//   MCN_WIRE_REQUESTS     specs in the per-client loop    (default 48)
//   MCN_WIRE_WORKERS      service workers                 (default 4)
//   MCN_WIRE_STALL_US     slept stall per miss, in us     (default 20)
//   MCN_WIRE_MIN_SPEEDUP  abort threshold, 0 disables     (default 2.0)
//   MCN_TRACE_OUT         when set, an extra post-sweep capture run stands
//                         up a K=4 *sharded* service, enables the tracer,
//                         drives a short mixed wire load, and writes the
//                         merged Chrome trace_event JSON (Perfetto-loadable)
//                         to this path — the CI bench-smoke trace artifact
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "mcn/algo/result_hash.h"
#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/common/macros.h"
#include "mcn/common/random.h"
#include "mcn/common/stopwatch.h"
#include "mcn/exec/query_service.h"
#include "mcn/exec/service_stats.h"
#include "mcn/gen/workload.h"
#include "mcn/obs/trace.h"

namespace mcn::bench {
namespace {

std::vector<api::QuerySpec> MixedSpecs(gen::Instance& instance,
                                       expand::EngineKind engine,
                                       uint64_t seed, int count) {
  Random rng(seed);
  const int d = instance.graph.num_costs();
  std::vector<api::QuerySpec> specs;
  specs.reserve(count);
  for (int i = 0; i < count; ++i) {
    const graph::Location loc = instance.RandomQueryLocation(rng);
    api::QuerySpec spec;
    switch (i % 3) {
      case 0:
        spec = api::SkylineSpec(loc);
        break;
      case 1: {
        std::vector<double> weights(d);
        for (double& w : weights) w = rng.NextDouble();
        spec = api::TopKSpec(loc, 4, std::move(weights));
        break;
      }
      case 2: {
        std::vector<double> weights(d);
        for (double& w : weights) w = rng.NextDouble();
        spec = api::IncrementalSpec(loc, 3, std::move(weights));
        break;
      }
    }
    spec.engine = engine;
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct Reference {
  std::vector<uint64_t> hashes;  ///< per spec, list order
  std::vector<uint64_t> misses;
  double avg_result_size = 0;
};

Reference InProcessReference(exec::QueryService& service,
                             const std::vector<api::QuerySpec>& specs) {
  Reference ref;
  double total_size = 0;
  for (const api::QuerySpec& spec : specs) {
    exec::QueryResult result = service.Submit(spec).get();
    MCN_CHECK(result.status.ok());
    ref.hashes.push_back(result.result_hash);
    ref.misses.push_back(result.stats.buffer_misses);
    total_size += static_cast<double>(result.kind == api::QueryKind::kSkyline
                                          ? result.skyline.size()
                                          : result.topk.size());
  }
  ref.avg_result_size = total_size / static_cast<double>(specs.size());
  return ref;
}

/// Streams one incremental session over the wire and in process; aborts
/// on any sequence divergence (the session leg of the parity gate).
void CheckSessionParity(exec::QueryService& service, int port,
                        gen::Instance& instance, int d, uint64_t seed) {
  Random rng(seed);
  std::vector<double> weights(d);
  for (double& w : weights) w = rng.NextDouble();
  const api::QuerySpec spec = api::IncrementalSpec(
      instance.RandomQueryLocation(rng), 8, weights);
  constexpr int kBatches = 8;
  constexpr int kBatchSize = 8;

  auto local_id = service.OpenSession(spec);
  MCN_CHECK(local_id.ok());
  auto client = api::Client::Connect("127.0.0.1", port);
  MCN_CHECK(client.ok());
  auto wire_id = (*client)->OpenSession(spec);
  MCN_CHECK(wire_id.ok());

  for (int b = 0; b < kBatches; ++b) {
    exec::QueryResult local =
        service.SessionNext(*local_id, kBatchSize).get();
    MCN_CHECK(local.status.ok());
    auto wire = (*client)->Next(*wire_id, kBatchSize);
    MCN_CHECK(wire.ok());
    MCN_CHECK(wire.value().status.ok());
    if (wire.value().result_hash != local.result_hash ||
        wire.value().exhausted != local.exhausted) {
      std::fprintf(stderr,
                   "PARITY FAILURE: session batch %d wire hash %016" PRIx64
                   " != in-process %016" PRIx64 "\n",
                   b, wire.value().result_hash, local.result_hash);
      std::abort();
    }
    if (local.exhausted) break;
  }
  MCN_CHECK(service.CloseSession(*local_id).ok());
  MCN_CHECK((*client)->CloseSession(*wire_id).ok());
}

struct SweepPoint {
  RunMetrics metrics;
};

/// MCN_TRACE_OUT capture run (after the sweep, outside the timed window):
/// stands up a K=4 *sharded* service behind a fresh wire server, turns the
/// tracer on, drives a short mixed load with intra-query parallelism (so
/// the trace shows pooled kExpansionTurn spans and kProbeFetch events with
/// miss + local/remote flags), and writes the merged Chrome trace_event
/// JSON to `path` — loadable in https://ui.perfetto.dev.
void CaptureShardedTrace(const BenchEnv& env, const char* path) {
  constexpr int kShards = 4;
  gen::ExperimentConfig config;
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("trace capture: building K=%d sharded layout...\n", kShards);
  auto instance = gen::BuildShardedInstance(scaled, kShards);
  MCN_CHECK(instance.ok());
  exec::ServiceOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 64;
  opts.pool_frames_per_worker = (*instance)->pool_frames;
  opts.per_query_parallelism = 2;  // spec.parallelism below clamps to this
  auto service = exec::QueryService::Create(&(*instance)->storage,
                                            (*instance)->files, opts);
  MCN_CHECK(service.ok());
  auto server = api::Server::Start((*service).get(), {});
  MCN_CHECK(server.ok());

  obs::Tracer::Global().Enable();
  Random rng(777);
  const int d = (*instance)->graph.num_costs();
  auto client = api::Client::Connect("127.0.0.1", (*server)->port());
  MCN_CHECK(client.ok());
  for (int i = 0; i < 12; ++i) {
    const graph::Location loc = (*instance)->RandomQueryLocation(rng);
    api::QuerySpec spec;
    if (i % 3 == 0) {
      spec = api::SkylineSpec(loc);
    } else {
      std::vector<double> weights(d);
      for (double& w : weights) w = rng.NextDouble();
      spec = i % 3 == 1 ? api::TopKSpec(loc, 4, std::move(weights))
                        : api::IncrementalSpec(loc, 3, std::move(weights));
    }
    spec.parallelism = 2;  // pooled turns -> kExpansionTurn trace spans
    auto response = (*client)->Execute(spec);
    MCN_CHECK(response.ok());
    MCN_CHECK(response.value().status.ok());
  }
  // Scrape the trace over the wire (kGetTrace) — the same bytes a live
  // tools/mcn_stat.py --trace pull would see.
  auto trace = (*client)->GetTrace();
  MCN_CHECK(trace.ok());
  obs::Tracer::Global().Disable();
  std::FILE* f = std::fopen(path, "w");
  MCN_CHECK(f != nullptr);
  std::fwrite(trace.value().data(), 1, trace.value().size(), f);
  std::fclose(f);
  std::printf(
      "trace capture: %zu bytes -> %s (load in https://ui.perfetto.dev)\n",
      trace.value().size(), path);
  (*server)->Stop();
  (*service)->Shutdown();
}

SweepPoint RunClients(int port, int num_clients,
                      const std::vector<api::QuerySpec>& specs,
                      const Reference& ref, const BenchEnv& env,
                      const char* engine_name) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> rtts_ms(num_clients);
  std::vector<uint64_t> client_misses(num_clients, 0);
  std::vector<int> failures(num_clients, 0);
  Stopwatch wall;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = api::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      rtts_ms[c].reserve(specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        Stopwatch rtt;
        auto response = (*client)->Execute(specs[i]);
        rtts_ms[c].push_back(rtt.ElapsedSeconds() * 1e3);
        if (!response.ok() || !response.value().status.ok()) {
          failures[c] = 2;
          return;
        }
        // Closed-loop parity: every response, from every client, must
        // match the in-process reference bit for bit (hash) and count
        // for count (logical I/O).
        if (response.value().result_hash != ref.hashes[i] ||
            response.value().buffer_misses != ref.misses[i]) {
          std::fprintf(stderr,
                       "PARITY FAILURE: %s clients=%d query %zu wire hash "
                       "%016" PRIx64 " misses %" PRIu64
                       " != in-process %016" PRIx64 " / %" PRIu64 "\n",
                       engine_name, num_clients, i,
                       response.value().result_hash,
                       response.value().buffer_misses, ref.hashes[i],
                       ref.misses[i]);
          failures[c] = 3;
          return;
        }
        client_misses[c] += response.value().buffer_misses;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  for (int c = 0; c < num_clients; ++c) {
    if (failures[c] != 0) {
      std::fprintf(stderr, "FAILURE: client %d failed (code %d)\n", c,
                   failures[c]);
      std::abort();
    }
  }

  SweepPoint point;
  point.metrics.queries = static_cast<int>(specs.size()) * num_clients;
  point.metrics.result_size = ref.avg_result_size;
  std::vector<double> all_rtts;
  for (int c = 0; c < num_clients; ++c) {
    all_rtts.insert(all_rtts.end(), rtts_ms[c].begin(), rtts_ms[c].end());
    point.metrics.buffer_misses += client_misses[c];
  }
  // One deterministic hash per row: the reference hashes mixed in spec
  // order (every client's stream already proved equal to it above).
  point.metrics.result_hash = kFnvOffsetBasis;
  for (uint64_t h : ref.hashes) {
    point.metrics.result_hash = algo::FnvMixU64(point.metrics.result_hash, h);
  }
  // Every client executed the same spec list: the modeled per-query time
  // stays constant across the sweep (misses x latency, once per request).
  for (uint64_t m : ref.misses) {
    point.metrics.modeled_seconds += static_cast<double>(m) *
                                     env.io_latency_ms / 1000.0 *
                                     num_clients;
  }
  std::sort(all_rtts.begin(), all_rtts.end());
  point.metrics.latency_p50_ms = exec::PercentileSorted(all_rtts, 50);
  point.metrics.latency_p95_ms = exec::PercentileSorted(all_rtts, 95);
  point.metrics.latency_p99_ms = exec::PercentileSorted(all_rtts, 99);
  point.metrics.qps =
      static_cast<double>(point.metrics.queries) / wall_seconds;
  return point;
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int num_requests =
      static_cast<int>(EnvDouble("MCN_WIRE_REQUESTS", 48));
  const int workers = static_cast<int>(EnvDouble("MCN_WIRE_WORKERS", 4));
  const double stall_us = EnvDouble("MCN_WIRE_STALL_US", 20.0);
  const double min_speedup = EnvDouble("MCN_WIRE_MIN_SPEEDUP", 2.0);
  MCN_CHECK(num_requests > 0 && workers > 0 && stall_us >= 0);

  gen::ExperimentConfig config;  // fig. 8(a) base: the paper's defaults
  gen::ExperimentConfig scaled = config.Scaled(env.scale);
  std::printf("building instance (%s)...\n", scaled.ToString().c_str());
  auto instance = gen::BuildInstance(scaled);
  MCN_CHECK(instance.ok());
  const int d = (*instance)->graph.num_costs();

  exec::ServiceOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = 256;
  opts.pool_frames_per_worker = (*instance)->pool->capacity();
  opts.io_latency_ms = stall_us / 1000.0;
  opts.simulate_io_stalls = stall_us > 0;
  auto service = exec::QueryService::Create(&(*instance)->disk,
                                            (*instance)->files, opts);
  MCN_CHECK(service.ok());
  auto server = api::Server::Start((*service).get(), {});
  MCN_CHECK(server.ok());
  std::printf("server up on 127.0.0.1:%d (%d workers)\n",
              (*server)->port(), workers);

  const auto specs_lsa =
      MixedSpecs(**instance, expand::EngineKind::kLsa, 2026, num_requests);
  const auto specs_cea =
      MixedSpecs(**instance, expand::EngineKind::kCea, 2026, num_requests);
  std::printf("computing in-process reference (%d specs x 2 engines)...\n",
              num_requests);
  const Reference ref_lsa = InProcessReference(**service, specs_lsa);
  const Reference ref_cea = InProcessReference(**service, specs_cea);

  std::printf("checking wire session parity...\n");
  CheckSessionParity(**service, (*server)->port(), **instance, d, 4242);

  PrintHeader(
      "Wire throughput: closed-loop QPS vs clients (fig. 8(a) base)",
      "clients", scaled, env);
  std::printf(
      "requests/client=%d workers=%d stall/miss=%.1fus "
      "(MCN_WIRE_REQUESTS / MCN_WIRE_WORKERS / MCN_WIRE_STALL_US)\n",
      num_requests, workers, stall_us);

  const int client_sweep[] = {1, 2, 4, 8};
  double qps1 = 0, qps4 = 0;
  for (int clients : client_sweep) {
    (*service)->ResetStats();
    SweepPoint lsa = RunClients((*server)->port(), clients, specs_lsa,
                                ref_lsa, env, "LSA");
    SweepPoint cea = RunClients((*server)->port(), clients, specs_cea,
                                ref_cea, env, "CEA");
    AlgoComparison c;
    c.lsa = lsa.metrics;
    c.cea = cea.metrics;
    // Row "obs" object: the service registry after both engines' sweeps
    // (ResetStats above scoped it to this client count).
    PrintRow(std::to_string(clients), c, (*service)->MetricsSnapshot());
    std::printf(
        "    wire: LSA %7.2f qps  rtt p50/p95/p99 %6.2f/%6.2f/%6.2f ms | "
        "CEA %7.2f qps  rtt p50/p95/p99 %6.2f/%6.2f/%6.2f ms\n",
        lsa.metrics.qps, lsa.metrics.latency_p50_ms,
        lsa.metrics.latency_p95_ms, lsa.metrics.latency_p99_ms,
        cea.metrics.qps, cea.metrics.latency_p50_ms,
        cea.metrics.latency_p95_ms, cea.metrics.latency_p99_ms);
    if (clients == 1) qps1 = cea.metrics.qps;
    if (clients == 4) qps4 = cea.metrics.qps;
  }
  PrintFooter();

  std::printf(
      "wire parity: every response hash-identical and logical-I/O-"
      "identical to in-process execution, both engines, all client "
      "counts; session stream batch-identical.\n");
  const double speedup = qps1 > 0 ? qps4 / qps1 : 0;
  std::printf("QPS speedup at 4 clients vs 1: %.2fx\n", speedup);
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAILURE: 4-client QPS speedup below %.2fx "
                 "(MCN_WIRE_MIN_SPEEDUP)\n",
                 min_speedup);
    return 1;
  }
  (*server)->Stop();
  (*service)->Shutdown();

  if (const char* trace_out = std::getenv("MCN_TRACE_OUT");
      trace_out != nullptr && *trace_out != '\0') {
    CaptureShardedTrace(env, trace_out);
  }
  return 0;
}

}  // namespace
}  // namespace mcn::bench

int main() { return mcn::bench::Main(); }
