#include "harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/stopwatch.h"

namespace mcn::bench {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

namespace {

// Fills a QueryOutcome from a result list: size, order-sensitive FNV hash
// (shared entry hashing from algo/result_hash.h), and the time the hashing
// itself took, which the driver subtracts from the measured CPU window.
template <typename Entry>
QueryOutcome MakeOutcome(const std::vector<Entry>& entries) {
  QueryOutcome outcome;
  outcome.result_size = entries.size();
  Stopwatch hash_watch;
  outcome.result_hash = algo::HashResult(entries);
  outcome.hash_seconds = hash_watch.ElapsedSeconds();
  return outcome;
}

// ------------------------------------------------------------- JSON record
//
// One record per process: every figure run through PrintHeader/PrintRow/
// PrintFooter is accumulated and the whole file rewritten on each footer, so
// a crashed sweep still leaves the completed figures on disk.

struct JsonRow {
  std::string param;
  AlgoComparison c;
  /// Row provenance tags (may be empty; see SetNextRowMeta): which stall
  /// model and I/O backend produced the row's timings.
  std::string stall_model;
  std::string io_backend;
  /// Flattened registry snapshot (may be empty): name -> value pairs for
  /// the row's "obs" object. Informational only; bench_diff.py ignores it.
  std::vector<std::pair<std::string, double>> obs;
};

std::vector<std::pair<std::string, double>> FlattenSnapshot(
    const obs::Snapshot& snap) {
  std::vector<std::pair<std::string, double>> flat;
  flat.reserve(snap.counters.size() + snap.gauges.size() +
               3 * snap.histograms.size());
  for (const obs::CounterRow& c : snap.counters) {
    flat.emplace_back(c.name, static_cast<double>(c.value));
  }
  for (const obs::GaugeRow& g : snap.gauges) {
    flat.emplace_back(g.name, g.value);
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    flat.emplace_back(h.name + ".count", static_cast<double>(h.count));
    flat.emplace_back(h.name + ".mean", h.Mean());
    flat.emplace_back(h.name + ".p99", h.ValueAtQuantile(0.99));
  }
  return flat;
}

struct JsonFigure {
  std::string figure;
  std::string varying;
  std::string base_config;
  std::vector<JsonRow> rows;
};

struct JsonState {
  BenchEnv env;
  std::vector<JsonFigure> figures;
  bool figure_open = false;
  /// One-shot row tags staged by SetNextRowMeta for the next PrintRow.
  std::string next_stall_model;
  std::string next_io_backend;
};

JsonState& State() {
  static JsonState state;
  return state;
}

// Minimal escaping: the strings we emit hold figure titles and config
// summaries (no control characters in practice).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void WriteMetrics(std::FILE* f, const char* name, const RunMetrics& m) {
  std::fprintf(
      f,
      "        \"%s\": {\"avg_cpu_s\": %.9g, \"avg_modeled_s\": %.9g, "
      "\"avg_misses\": %.9g, \"total_cpu_s\": %.9g, \"buffer_misses\": "
      "%" PRIu64 ", \"buffer_accesses\": %" PRIu64 ", \"avg_result_size\": "
      "%.9g, \"result_hash\": \"%016" PRIx64 "\", \"queries\": %d, "
      "\"latency_p50_ms\": %.9g, \"latency_p95_ms\": %.9g, "
      "\"latency_p99_ms\": %.9g, \"qps\": %.9g, "
      "\"local_fetches\": %" PRIu64 ", \"remote_fetches\": %" PRIu64 ", "
      "\"remote_fetch_ratio\": %.9g}",
      name, m.AvgCpu(), m.AvgModeled(), m.AvgMisses(), m.cpu_seconds,
      m.buffer_misses, m.buffer_accesses, m.result_size, m.result_hash,
      m.queries, m.latency_p50_ms, m.latency_p95_ms, m.latency_p99_ms,
      m.qps, m.local_fetches, m.remote_fetches, m.RemoteRatio());
}

void WriteJson() {
  JsonState& st = State();
  if (st.env.json_path.empty()) return;
  std::FILE* f = std::fopen(st.env.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "MCN_BENCH_JSON: cannot open %s\n",
                 st.env.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"mcn-bench-v3\",\n");
  std::fprintf(f,
               "  \"scale\": %.9g,\n  \"queries_per_point\": %d,\n"
               "  \"io_latency_ms\": %.9g,\n  \"figures\": [\n",
               st.env.scale, st.env.queries, st.env.io_latency_ms);
  for (size_t fi = 0; fi < st.figures.size(); ++fi) {
    const JsonFigure& fig = st.figures[fi];
    std::fprintf(f,
                 "    {\"figure\": \"%s\", \"varying\": \"%s\",\n"
                 "     \"base_config\": \"%s\",\n     \"rows\": [\n",
                 JsonEscape(fig.figure).c_str(),
                 JsonEscape(fig.varying).c_str(),
                 JsonEscape(fig.base_config).c_str());
    for (size_t ri = 0; ri < fig.rows.size(); ++ri) {
      const JsonRow& row = fig.rows[ri];
      std::fprintf(f, "      {\"param\": \"%s\",\n",
                   JsonEscape(row.param).c_str());
      if (!row.stall_model.empty()) {
        std::fprintf(f, "        \"stall_model\": \"%s\",\n",
                     JsonEscape(row.stall_model).c_str());
      }
      if (!row.io_backend.empty()) {
        std::fprintf(f, "        \"io_backend\": \"%s\",\n",
                     JsonEscape(row.io_backend).c_str());
      }
      WriteMetrics(f, "lsa", row.c.lsa);
      std::fprintf(f, ",\n");
      WriteMetrics(f, "cea", row.c.cea);
      if (!row.obs.empty()) {
        std::fprintf(f, ",\n        \"obs\": {");
        for (size_t oi = 0; oi < row.obs.size(); ++oi) {
          std::fprintf(f, "%s\"%s\": %.9g", oi > 0 ? ", " : "",
                       JsonEscape(row.obs[oi].first).c_str(),
                       row.obs[oi].second);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n      }%s\n", ri + 1 < fig.rows.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", fi + 1 < st.figures.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

RunMetrics RunOne(gen::Instance& instance, expand::EngineKind kind,
                  const BenchEnv& env, uint64_t query_seed,
                  const QueryFn& run) {
  RunMetrics metrics;
  Random rng(query_seed);
  for (int qi = 0; qi < env.queries; ++qi) {
    graph::Location q = instance.RandomQueryLocation(rng);
    Random per_query(query_seed * 1000003 + qi);
    // Cold buffer per query, as in the paper (each query is independent).
    instance.ResetIoState();
    Stopwatch watch;
    auto engine = expand::MakeEngine(kind, instance.reader.get(), q);
    MCN_CHECK(engine.ok());
    QueryOutcome outcome = run(engine.value().get(), per_query);
    double cpu = watch.ElapsedSeconds() - outcome.hash_seconds;
    metrics.result_size += static_cast<double>(outcome.result_size);
    metrics.result_hash =
        algo::FnvMixU64(metrics.result_hash, outcome.result_hash);
    uint64_t misses = instance.pool->stats().misses;
    metrics.cpu_seconds += cpu;
    metrics.buffer_misses += misses;
    metrics.buffer_accesses += instance.pool->stats().accesses();
    metrics.modeled_seconds += cpu + misses * env.io_latency_ms / 1000.0;
    ++metrics.queries;
  }
  metrics.result_size /= metrics.queries;
  return metrics;
}

}  // namespace

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.scale = EnvDouble("MCN_BENCH_SCALE", 0.15);
  env.queries = static_cast<int>(EnvDouble("MCN_BENCH_QUERIES", 24));
  env.io_latency_ms = EnvDouble("MCN_IO_LATENCY_MS", 5.0);
  const char* json = std::getenv("MCN_BENCH_JSON");
  if (json != nullptr && *json != '\0') env.json_path = json;
  MCN_CHECK(env.scale > 0 && env.queries > 0 && env.io_latency_ms >= 0);
  return env;
}

AlgoComparison CompareLsaCea(gen::Instance& instance, const BenchEnv& env,
                             uint64_t query_seed, const QueryFn& run) {
  AlgoComparison c;
  c.lsa = RunOne(instance, expand::EngineKind::kLsa, env, query_seed, run);
  c.cea = RunOne(instance, expand::EngineKind::kCea, env, query_seed, run);
  return c;
}

QueryFn SkylineRunner() {
  return [](expand::NnEngine* engine, Random&) -> QueryOutcome {
    algo::SkylineQuery query(engine);
    auto result = query.ComputeAll();
    MCN_CHECK(result.ok());
    return MakeOutcome(result.value());
  };
}

QueryFn TopKRunner(int k, int num_costs) {
  return [k, num_costs](expand::NnEngine* engine,
                        Random& rng) -> QueryOutcome {
    // Random independent coefficients in [0,1] per query (paper §VI).
    std::vector<double> weights(num_costs);
    for (double& w : weights) w = rng.NextDouble();
    algo::TopKOptions opts;
    opts.k = k;
    algo::TopKQuery query(engine, algo::WeightedSum(weights), opts);
    auto result = query.Run();
    MCN_CHECK(result.ok());
    return MakeOutcome(result.value());
  };
}

void PrintHeader(const std::string& figure, const std::string& varying,
                 const gen::ExperimentConfig& base, const BenchEnv& env) {
  JsonState& st = State();
  st.env = env;
  st.figures.push_back(
      JsonFigure{figure, varying, base.ToString(), {}});
  st.figure_open = true;

  std::printf("== %s ==\n", figure.c_str());
  std::printf("base config: %s\n", base.ToString().c_str());
  std::printf(
      "scale=%.3g queries/point=%d io_latency=%.1fms "
      "(MCN_BENCH_SCALE / MCN_BENCH_QUERIES / MCN_IO_LATENCY_MS)\n",
      env.scale, env.queries, env.io_latency_ms);
  std::printf(
      "%-14s | %12s %12s | %10s %10s | %9s %9s | %7s | %6s\n",
      varying.c_str(), "LSA time(s)", "CEA time(s)", "LSA IOs", "CEA IOs",
      "LSA cpu", "CEA cpu", "speedup", "|res|");
  std::printf(
      "---------------+---------------------------+-----------------------+"
      "---------------------+---------+-------\n");
}

void PrintRow(const std::string& param_value, const AlgoComparison& c) {
  PrintRow(param_value, c, obs::Snapshot{});
}

void SetNextRowMeta(const std::string& stall_model,
                    const std::string& io_backend) {
  JsonState& st = State();
  st.next_stall_model = stall_model;
  st.next_io_backend = io_backend;
}

void PrintRow(const std::string& param_value, const AlgoComparison& c,
              const obs::Snapshot& obs_snapshot) {
  JsonState& st = State();
  if (st.figure_open) {
    st.figures.back().rows.push_back(
        JsonRow{param_value, c, std::move(st.next_stall_model),
                std::move(st.next_io_backend), FlattenSnapshot(obs_snapshot)});
  }
  st.next_stall_model.clear();
  st.next_io_backend.clear();
  double speedup = c.cea.AvgModeled() > 0
                       ? c.lsa.AvgModeled() / c.cea.AvgModeled()
                       : 0.0;
  std::printf(
      "%-14s | %12.4f %12.4f | %10.1f %10.1f | %9.4f %9.4f | %6.2fx | %6.1f\n",
      param_value.c_str(), c.lsa.AvgModeled(), c.cea.AvgModeled(),
      c.lsa.AvgMisses(), c.cea.AvgMisses(), c.lsa.AvgCpu(), c.cea.AvgCpu(),
      speedup, c.cea.result_size);
  std::fflush(stdout);
}

void PrintFooter() {
  JsonState& st = State();
  st.figure_open = false;
  WriteJson();
  std::printf(
      "time(s) = modeled per-query time: buffer misses x io_latency + "
      "measured CPU.\n\n");
}

}  // namespace mcn::bench
