#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/macros.h"
#include "mcn/common/stopwatch.h"

namespace mcn::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

RunMetrics RunOne(gen::Instance& instance, expand::EngineKind kind,
                  const BenchEnv& env, uint64_t query_seed,
                  const QueryFn& run) {
  RunMetrics metrics;
  Random rng(query_seed);
  for (int qi = 0; qi < env.queries; ++qi) {
    graph::Location q = instance.RandomQueryLocation(rng);
    Random per_query(query_seed * 1000003 + qi);
    // Cold buffer per query, as in the paper (each query is independent).
    instance.ResetIoState();
    Stopwatch watch;
    auto engine = expand::MakeEngine(kind, instance.reader.get(), q);
    MCN_CHECK(engine.ok());
    metrics.result_size += static_cast<double>(
        run(engine.value().get(), per_query));
    double cpu = watch.ElapsedSeconds();
    uint64_t misses = instance.pool->stats().misses;
    metrics.cpu_seconds += cpu;
    metrics.buffer_misses += misses;
    metrics.buffer_accesses += instance.pool->stats().accesses();
    metrics.modeled_seconds += cpu + misses * env.io_latency_ms / 1000.0;
    ++metrics.queries;
  }
  metrics.result_size /= metrics.queries;
  return metrics;
}

}  // namespace

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.scale = EnvDouble("MCN_BENCH_SCALE", 0.15);
  env.queries = static_cast<int>(EnvDouble("MCN_BENCH_QUERIES", 24));
  env.io_latency_ms = EnvDouble("MCN_IO_LATENCY_MS", 5.0);
  MCN_CHECK(env.scale > 0 && env.queries > 0 && env.io_latency_ms >= 0);
  return env;
}

AlgoComparison CompareLsaCea(gen::Instance& instance, const BenchEnv& env,
                             uint64_t query_seed, const QueryFn& run) {
  AlgoComparison c;
  c.lsa = RunOne(instance, expand::EngineKind::kLsa, env, query_seed, run);
  c.cea = RunOne(instance, expand::EngineKind::kCea, env, query_seed, run);
  return c;
}

QueryFn SkylineRunner() {
  return [](expand::NnEngine* engine, Random&) -> size_t {
    algo::SkylineQuery query(engine);
    auto result = query.ComputeAll();
    MCN_CHECK(result.ok());
    return result.value().size();
  };
}

QueryFn TopKRunner(int k, int num_costs) {
  return [k, num_costs](expand::NnEngine* engine, Random& rng) -> size_t {
    // Random independent coefficients in [0,1] per query (paper §VI).
    std::vector<double> weights(num_costs);
    for (double& w : weights) w = rng.NextDouble();
    algo::TopKOptions opts;
    opts.k = k;
    algo::TopKQuery query(engine, algo::WeightedSum(weights), opts);
    auto result = query.Run();
    MCN_CHECK(result.ok());
    return result.value().size();
  };
}

void PrintHeader(const std::string& figure, const std::string& varying,
                 const gen::ExperimentConfig& base, const BenchEnv& env) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("base config: %s\n", base.ToString().c_str());
  std::printf(
      "scale=%.3g queries/point=%d io_latency=%.1fms "
      "(MCN_BENCH_SCALE / MCN_BENCH_QUERIES / MCN_IO_LATENCY_MS)\n",
      env.scale, env.queries, env.io_latency_ms);
  std::printf(
      "%-14s | %12s %12s | %10s %10s | %9s %9s | %7s | %6s\n",
      varying.c_str(), "LSA time(s)", "CEA time(s)", "LSA IOs", "CEA IOs",
      "LSA cpu", "CEA cpu", "speedup", "|res|");
  std::printf(
      "---------------+---------------------------+-----------------------+"
      "---------------------+---------+-------\n");
}

void PrintRow(const std::string& param_value, const AlgoComparison& c) {
  double speedup = c.cea.AvgModeled() > 0
                       ? c.lsa.AvgModeled() / c.cea.AvgModeled()
                       : 0.0;
  std::printf(
      "%-14s | %12.4f %12.4f | %10.1f %10.1f | %9.4f %9.4f | %6.2fx | %6.1f\n",
      param_value.c_str(), c.lsa.AvgModeled(), c.cea.AvgModeled(),
      c.lsa.AvgMisses(), c.cea.AvgMisses(), c.lsa.AvgCpu(), c.cea.AvgCpu(),
      speedup, c.cea.result_size);
  std::fflush(stdout);
}

void PrintFooter() {
  std::printf(
      "time(s) = modeled per-query time: buffer misses x io_latency + "
      "measured CPU.\n\n");
}

}  // namespace mcn::bench
