// Shared driver for the figure-reproduction benchmarks: builds instances
// for a sweep of experiment configurations, runs LSA and CEA over a fixed
// set of random query locations, and prints one table row per parameter
// value with the measured CPU time, buffer misses (I/Os) and a modeled
// total time (misses x configurable I/O latency + CPU), which is the
// machine-independent analogue of the paper's wall-clock seconds
// (I/O-dominated; see DESIGN.md §3).
//
// Environment knobs:
//   MCN_BENCH_SCALE    fraction of the paper's San Francisco scale
//                      (default 0.15; 1.0 = the paper's 174,956 nodes)
//   MCN_BENCH_QUERIES  query locations per data point (default 24;
//                      paper = 100)
//   MCN_IO_LATENCY_MS  modeled per-miss latency in ms (default 5)
#ifndef MCN_BENCH_HARNESS_H_
#define MCN_BENCH_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"

namespace mcn::bench {

/// Scale / repetition knobs resolved from the environment.
struct BenchEnv {
  double scale = 0.15;
  int queries = 24;
  double io_latency_ms = 5.0;

  static BenchEnv FromEnvironment();
};

/// Aggregated measurements for one algorithm on one configuration.
struct RunMetrics {
  double cpu_seconds = 0;      ///< measured wall time of the computation
  double modeled_seconds = 0;  ///< misses * latency + cpu
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  double result_size = 0;      ///< avg |skyline| or k
  int queries = 0;

  /// Per-query averages.
  double AvgCpu() const { return queries ? cpu_seconds / queries : 0; }
  double AvgModeled() const {
    return queries ? modeled_seconds / queries : 0;
  }
  double AvgMisses() const {
    return queries ? static_cast<double>(buffer_misses) / queries : 0;
  }
};

/// What to run for each query location; returns the result size.
using QueryFn = std::function<size_t(expand::NnEngine* engine, Random& rng)>;

/// Runs `queries` random-location queries with both LSA and CEA on
/// `instance`, resetting buffer state between algorithms so they see
/// identical cold caches.
struct AlgoComparison {
  RunMetrics lsa;
  RunMetrics cea;
};
AlgoComparison CompareLsaCea(gen::Instance& instance, const BenchEnv& env,
                             uint64_t query_seed, const QueryFn& run);

/// Skyline / top-k query runners for CompareLsaCea.
QueryFn SkylineRunner();
/// Weighted-sum top-k with per-query random coefficients (paper §VI).
QueryFn TopKRunner(int k, int num_costs);

/// Table output helpers.
void PrintHeader(const std::string& figure, const std::string& varying,
                 const gen::ExperimentConfig& base, const BenchEnv& env);
void PrintRow(const std::string& param_value, const AlgoComparison& c);
void PrintFooter();

}  // namespace mcn::bench

#endif  // MCN_BENCH_HARNESS_H_
