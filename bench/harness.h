// Shared driver for the figure-reproduction benchmarks: builds instances
// for a sweep of experiment configurations, runs LSA and CEA over a fixed
// set of random query locations, and prints one table row per parameter
// value with the measured CPU time, buffer misses (I/Os) and a modeled
// total time (misses x configurable I/O latency + CPU), which is the
// machine-independent analogue of the paper's wall-clock seconds
// (I/O-dominated; see DESIGN.md §3).
//
// Environment knobs:
//   MCN_BENCH_SCALE    fraction of the paper's San Francisco scale
//                      (default 0.15; 1.0 = the paper's 174,956 nodes)
//   MCN_BENCH_QUERIES  query locations per data point (default 24;
//                      paper = 100)
//   MCN_IO_LATENCY_MS  modeled per-miss latency in ms (default 5)
//   MCN_BENCH_JSON     when set, a machine-readable record of every figure
//                      run by the process is (re)written to this path after
//                      each PrintFooter (schema mcn-bench-v3: DESIGN.md §5;
//                      rows may carry an "obs" object of registry metrics —
//                      tools/bench_diff.py ignores obs-only keys)
#ifndef MCN_BENCH_HARNESS_H_
#define MCN_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/algo/result_hash.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"
#include "mcn/obs/metrics.h"
#include "mcn/shard/partition.h"

namespace mcn::bench {

/// FNV-1a offset basis: the seed of every result hash (per-query hashes
/// and the cross-query combination in RunMetrics). One definition shared
/// with the exec::QueryService parity checks (algo/result_hash.h).
inline constexpr uint64_t kFnvOffsetBasis = algo::kFnvOffsetBasis;

/// Reads a double from the environment (`fallback` when unset/empty).
double EnvDouble(const char* name, double fallback);

/// Scale / repetition knobs resolved from the environment.
struct BenchEnv {
  double scale = 0.15;
  int queries = 24;
  double io_latency_ms = 5.0;
  std::string json_path;  ///< empty = no JSON output

  static BenchEnv FromEnvironment();
};

/// Aggregated measurements for one algorithm on one configuration.
struct RunMetrics {
  double cpu_seconds = 0;      ///< measured wall time of the computation
  double modeled_seconds = 0;  ///< misses * latency + cpu
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  double result_size = 0;      ///< avg |skyline| or k
  /// Order-sensitive FNV-1a over every query's result entries (facility
  /// ids + cost bit patterns): refactors must keep it byte-identical.
  uint64_t result_hash = kFnvOffsetBasis;
  int queries = 0;
  /// Service-level metrics (schema mcn-bench-v2). Zero for the
  /// single-threaded figure benchmarks, filled by the concurrent service
  /// benchmarks: request latency percentiles (queue wait + execution +
  /// modeled I/O stall) and measured wall-clock throughput.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double qps = 0;
  /// Sharded benches only (DESIGN.md §8): record fetches the workers
  /// routed to their home shard vs across a shard boundary. Zero for
  /// flat benchmarks.
  uint64_t local_fetches = 0;
  uint64_t remote_fetches = 0;

  double RemoteRatio() const {
    return shard::RemoteRatio(local_fetches, remote_fetches);
  }

  /// Per-query averages.
  double AvgCpu() const { return queries ? cpu_seconds / queries : 0; }
  double AvgModeled() const {
    return queries ? modeled_seconds / queries : 0;
  }
  double AvgMisses() const {
    return queries ? static_cast<double>(buffer_misses) / queries : 0;
  }
};

/// What one query produced: the result size and an order-sensitive hash of
/// the full result (ids, costs, scores) for cross-refactor parity checks.
/// `hash_seconds` is the time the runner spent computing the hash; the
/// driver subtracts it from the measured window so parity instrumentation
/// never contaminates the reported CPU metrics.
struct QueryOutcome {
  size_t result_size = 0;
  uint64_t result_hash = 0;
  double hash_seconds = 0;
};

/// What to run for each query location.
using QueryFn =
    std::function<QueryOutcome(expand::NnEngine* engine, Random& rng)>;

/// Runs `queries` random-location queries with both LSA and CEA on
/// `instance`, resetting buffer state between algorithms so they see
/// identical cold caches.
struct AlgoComparison {
  RunMetrics lsa;
  RunMetrics cea;
};
AlgoComparison CompareLsaCea(gen::Instance& instance, const BenchEnv& env,
                             uint64_t query_seed, const QueryFn& run);

/// Skyline / top-k query runners for CompareLsaCea.
QueryFn SkylineRunner();
/// Weighted-sum top-k with per-query random coefficients (paper §VI).
QueryFn TopKRunner(int k, int num_costs);

/// Table output helpers. When MCN_BENCH_JSON is set they also accumulate a
/// machine-readable record: PrintHeader opens a figure, PrintRow appends a
/// data point, PrintFooter closes the figure and rewrites the JSON file.
void PrintHeader(const std::string& figure, const std::string& varying,
                 const gen::ExperimentConfig& base, const BenchEnv& env);
void PrintRow(const std::string& param_value, const AlgoComparison& c);
/// As above, additionally attaching a metrics-registry snapshot to the
/// row's JSON record as a flat "obs" object (counters and gauges by name,
/// histograms as <name>.count / <name>.mean / <name>.p99). Observability
/// keys are informational: tools/bench_diff.py ignores them.
void PrintRow(const std::string& param_value, const AlgoComparison& c,
              const obs::Snapshot& obs_snapshot);
void PrintFooter();

/// Tags the *next* PrintRow's JSON record with the stall model
/// ("serial"/"overlapped") and I/O backend ("memory"/"preadv"/"io_uring")
/// it ran under (DESIGN.md §13); empty strings omit the key. One-shot:
/// consumed by the next PrintRow. tools/bench_diff.py refuses to compare
/// rows whose tags both exist and differ — modeled times under different
/// stall models (or wall times under different backends) are different
/// quantities, not regressions.
void SetNextRowMeta(const std::string& stall_model,
                    const std::string& io_backend);

}  // namespace mcn::bench

#endif  // MCN_BENCH_HARNESS_H_
