file(REMOVE_RECURSE
  "CMakeFiles/astar_test.dir/tests/astar_test.cc.o"
  "CMakeFiles/astar_test.dir/tests/astar_test.cc.o.d"
  "astar_test"
  "astar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
