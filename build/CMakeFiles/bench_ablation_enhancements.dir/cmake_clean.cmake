file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_enhancements.dir/bench/bench_ablation_enhancements.cc.o"
  "CMakeFiles/bench_ablation_enhancements.dir/bench/bench_ablation_enhancements.cc.o.d"
  "bench_ablation_enhancements"
  "bench_ablation_enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
