# Empty dependencies file for bench_ablation_enhancements.
# This may be replaced when dependencies are built.
