file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probing.dir/bench/bench_ablation_probing.cc.o"
  "CMakeFiles/bench_ablation_probing.dir/bench/bench_ablation_probing.cc.o.d"
  "bench_ablation_probing"
  "bench_ablation_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
