# Empty dependencies file for bench_ablation_probing.
# This may be replaced when dependencies are built.
