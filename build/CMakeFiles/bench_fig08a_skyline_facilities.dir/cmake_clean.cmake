file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08a_skyline_facilities.dir/bench/bench_fig08a_skyline_facilities.cc.o"
  "CMakeFiles/bench_fig08a_skyline_facilities.dir/bench/bench_fig08a_skyline_facilities.cc.o.d"
  "bench_fig08a_skyline_facilities"
  "bench_fig08a_skyline_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08a_skyline_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
