# Empty dependencies file for bench_fig08a_skyline_facilities.
# This may be replaced when dependencies are built.
