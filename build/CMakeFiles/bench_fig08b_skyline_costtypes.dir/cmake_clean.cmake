file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08b_skyline_costtypes.dir/bench/bench_fig08b_skyline_costtypes.cc.o"
  "CMakeFiles/bench_fig08b_skyline_costtypes.dir/bench/bench_fig08b_skyline_costtypes.cc.o.d"
  "bench_fig08b_skyline_costtypes"
  "bench_fig08b_skyline_costtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08b_skyline_costtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
