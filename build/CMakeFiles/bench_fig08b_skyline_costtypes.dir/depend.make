# Empty dependencies file for bench_fig08b_skyline_costtypes.
# This may be replaced when dependencies are built.
