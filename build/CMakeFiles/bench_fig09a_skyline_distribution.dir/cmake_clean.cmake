file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09a_skyline_distribution.dir/bench/bench_fig09a_skyline_distribution.cc.o"
  "CMakeFiles/bench_fig09a_skyline_distribution.dir/bench/bench_fig09a_skyline_distribution.cc.o.d"
  "bench_fig09a_skyline_distribution"
  "bench_fig09a_skyline_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09a_skyline_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
