# Empty dependencies file for bench_fig09a_skyline_distribution.
# This may be replaced when dependencies are built.
