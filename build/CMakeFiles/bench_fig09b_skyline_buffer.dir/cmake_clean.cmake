file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09b_skyline_buffer.dir/bench/bench_fig09b_skyline_buffer.cc.o"
  "CMakeFiles/bench_fig09b_skyline_buffer.dir/bench/bench_fig09b_skyline_buffer.cc.o.d"
  "bench_fig09b_skyline_buffer"
  "bench_fig09b_skyline_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09b_skyline_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
