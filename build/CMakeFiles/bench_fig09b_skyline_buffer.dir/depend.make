# Empty dependencies file for bench_fig09b_skyline_buffer.
# This may be replaced when dependencies are built.
