file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_topk_facilities.dir/bench/bench_fig10a_topk_facilities.cc.o"
  "CMakeFiles/bench_fig10a_topk_facilities.dir/bench/bench_fig10a_topk_facilities.cc.o.d"
  "bench_fig10a_topk_facilities"
  "bench_fig10a_topk_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_topk_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
