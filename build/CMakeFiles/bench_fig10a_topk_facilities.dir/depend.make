# Empty dependencies file for bench_fig10a_topk_facilities.
# This may be replaced when dependencies are built.
