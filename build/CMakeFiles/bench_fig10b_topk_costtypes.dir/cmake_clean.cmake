file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_topk_costtypes.dir/bench/bench_fig10b_topk_costtypes.cc.o"
  "CMakeFiles/bench_fig10b_topk_costtypes.dir/bench/bench_fig10b_topk_costtypes.cc.o.d"
  "bench_fig10b_topk_costtypes"
  "bench_fig10b_topk_costtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_topk_costtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
