# Empty dependencies file for bench_fig10b_topk_costtypes.
# This may be replaced when dependencies are built.
