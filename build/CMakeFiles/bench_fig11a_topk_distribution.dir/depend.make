# Empty dependencies file for bench_fig11a_topk_distribution.
# This may be replaced when dependencies are built.
