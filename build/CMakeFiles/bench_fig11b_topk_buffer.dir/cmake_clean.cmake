file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_topk_buffer.dir/bench/bench_fig11b_topk_buffer.cc.o"
  "CMakeFiles/bench_fig11b_topk_buffer.dir/bench/bench_fig11b_topk_buffer.cc.o.d"
  "bench_fig11b_topk_buffer"
  "bench_fig11b_topk_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_topk_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
