# Empty dependencies file for bench_fig11b_topk_buffer.
# This may be replaced when dependencies are built.
