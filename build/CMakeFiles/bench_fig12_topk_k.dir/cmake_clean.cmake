file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_topk_k.dir/bench/bench_fig12_topk_k.cc.o"
  "CMakeFiles/bench_fig12_topk_k.dir/bench/bench_fig12_topk_k.cc.o.d"
  "bench_fig12_topk_k"
  "bench_fig12_topk_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_topk_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
