# Empty dependencies file for bench_fig12_topk_k.
# This may be replaced when dependencies are built.
