file(REMOVE_RECURSE
  "CMakeFiles/dense_store_sweep_test.dir/tests/dense_store_sweep_test.cc.o"
  "CMakeFiles/dense_store_sweep_test.dir/tests/dense_store_sweep_test.cc.o.d"
  "dense_store_sweep_test"
  "dense_store_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_store_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
