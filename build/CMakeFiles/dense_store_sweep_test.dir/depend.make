# Empty dependencies file for dense_store_sweep_test.
# This may be replaced when dependencies are built.
