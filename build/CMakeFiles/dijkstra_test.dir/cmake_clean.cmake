file(REMOVE_RECURSE
  "CMakeFiles/dijkstra_test.dir/tests/dijkstra_test.cc.o"
  "CMakeFiles/dijkstra_test.dir/tests/dijkstra_test.cc.o.d"
  "dijkstra_test"
  "dijkstra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
