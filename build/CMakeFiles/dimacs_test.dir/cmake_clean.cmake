file(REMOVE_RECURSE
  "CMakeFiles/dimacs_test.dir/tests/dimacs_test.cc.o"
  "CMakeFiles/dimacs_test.dir/tests/dimacs_test.cc.o.d"
  "dimacs_test"
  "dimacs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimacs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
