# Empty dependencies file for dimacs_test.
# This may be replaced when dependencies are built.
