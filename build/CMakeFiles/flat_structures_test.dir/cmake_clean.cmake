file(REMOVE_RECURSE
  "CMakeFiles/flat_structures_test.dir/tests/flat_structures_test.cc.o"
  "CMakeFiles/flat_structures_test.dir/tests/flat_structures_test.cc.o.d"
  "flat_structures_test"
  "flat_structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
