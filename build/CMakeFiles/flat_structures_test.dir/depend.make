# Empty dependencies file for flat_structures_test.
# This may be replaced when dependencies are built.
