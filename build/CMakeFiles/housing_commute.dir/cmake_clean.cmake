file(REMOVE_RECURSE
  "CMakeFiles/housing_commute.dir/examples/housing_commute.cpp.o"
  "CMakeFiles/housing_commute.dir/examples/housing_commute.cpp.o.d"
  "housing_commute"
  "housing_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/housing_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
