# Empty dependencies file for housing_commute.
# This may be replaced when dependencies are built.
