file(REMOVE_RECURSE
  "CMakeFiles/incremental_topk_test.dir/tests/incremental_topk_test.cc.o"
  "CMakeFiles/incremental_topk_test.dir/tests/incremental_topk_test.cc.o.d"
  "incremental_topk_test"
  "incremental_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
