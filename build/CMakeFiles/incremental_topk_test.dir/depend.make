# Empty dependencies file for incremental_topk_test.
# This may be replaced when dependencies are built.
