file(REMOVE_RECURSE
  "CMakeFiles/io_accounting_test.dir/tests/io_accounting_test.cc.o"
  "CMakeFiles/io_accounting_test.dir/tests/io_accounting_test.cc.o.d"
  "io_accounting_test"
  "io_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
