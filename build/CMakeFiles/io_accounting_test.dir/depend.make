# Empty dependencies file for io_accounting_test.
# This may be replaced when dependencies are built.
