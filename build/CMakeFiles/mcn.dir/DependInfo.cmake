
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcn/algo/common.cc" "CMakeFiles/mcn.dir/src/mcn/algo/common.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/algo/common.cc.o.d"
  "/root/repo/src/mcn/algo/incremental_topk.cc" "CMakeFiles/mcn.dir/src/mcn/algo/incremental_topk.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/algo/incremental_topk.cc.o.d"
  "/root/repo/src/mcn/algo/naive.cc" "CMakeFiles/mcn.dir/src/mcn/algo/naive.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/algo/naive.cc.o.d"
  "/root/repo/src/mcn/algo/skyline_query.cc" "CMakeFiles/mcn.dir/src/mcn/algo/skyline_query.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/algo/skyline_query.cc.o.d"
  "/root/repo/src/mcn/algo/topk_query.cc" "CMakeFiles/mcn.dir/src/mcn/algo/topk_query.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/algo/topk_query.cc.o.d"
  "/root/repo/src/mcn/common/logging.cc" "CMakeFiles/mcn.dir/src/mcn/common/logging.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/common/logging.cc.o.d"
  "/root/repo/src/mcn/common/random.cc" "CMakeFiles/mcn.dir/src/mcn/common/random.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/common/random.cc.o.d"
  "/root/repo/src/mcn/common/status.cc" "CMakeFiles/mcn.dir/src/mcn/common/status.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/common/status.cc.o.d"
  "/root/repo/src/mcn/expand/astar.cc" "CMakeFiles/mcn.dir/src/mcn/expand/astar.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/expand/astar.cc.o.d"
  "/root/repo/src/mcn/expand/dijkstra.cc" "CMakeFiles/mcn.dir/src/mcn/expand/dijkstra.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/expand/dijkstra.cc.o.d"
  "/root/repo/src/mcn/expand/engines.cc" "CMakeFiles/mcn.dir/src/mcn/expand/engines.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/expand/engines.cc.o.d"
  "/root/repo/src/mcn/expand/fetch_provider.cc" "CMakeFiles/mcn.dir/src/mcn/expand/fetch_provider.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/expand/fetch_provider.cc.o.d"
  "/root/repo/src/mcn/expand/single_expansion.cc" "CMakeFiles/mcn.dir/src/mcn/expand/single_expansion.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/expand/single_expansion.cc.o.d"
  "/root/repo/src/mcn/gen/cost_generator.cc" "CMakeFiles/mcn.dir/src/mcn/gen/cost_generator.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/gen/cost_generator.cc.o.d"
  "/root/repo/src/mcn/gen/facility_generator.cc" "CMakeFiles/mcn.dir/src/mcn/gen/facility_generator.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/gen/facility_generator.cc.o.d"
  "/root/repo/src/mcn/gen/road_network_generator.cc" "CMakeFiles/mcn.dir/src/mcn/gen/road_network_generator.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/gen/road_network_generator.cc.o.d"
  "/root/repo/src/mcn/gen/workload.cc" "CMakeFiles/mcn.dir/src/mcn/gen/workload.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/gen/workload.cc.o.d"
  "/root/repo/src/mcn/graph/facility.cc" "CMakeFiles/mcn.dir/src/mcn/graph/facility.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/graph/facility.cc.o.d"
  "/root/repo/src/mcn/graph/multi_cost_graph.cc" "CMakeFiles/mcn.dir/src/mcn/graph/multi_cost_graph.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/graph/multi_cost_graph.cc.o.d"
  "/root/repo/src/mcn/index/bplus_tree.cc" "CMakeFiles/mcn.dir/src/mcn/index/bplus_tree.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/index/bplus_tree.cc.o.d"
  "/root/repo/src/mcn/io/dimacs.cc" "CMakeFiles/mcn.dir/src/mcn/io/dimacs.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/io/dimacs.cc.o.d"
  "/root/repo/src/mcn/mcpp/pareto_paths.cc" "CMakeFiles/mcn.dir/src/mcn/mcpp/pareto_paths.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/mcpp/pareto_paths.cc.o.d"
  "/root/repo/src/mcn/net/catalog.cc" "CMakeFiles/mcn.dir/src/mcn/net/catalog.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/net/catalog.cc.o.d"
  "/root/repo/src/mcn/net/format.cc" "CMakeFiles/mcn.dir/src/mcn/net/format.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/net/format.cc.o.d"
  "/root/repo/src/mcn/net/network_builder.cc" "CMakeFiles/mcn.dir/src/mcn/net/network_builder.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/net/network_builder.cc.o.d"
  "/root/repo/src/mcn/net/network_reader.cc" "CMakeFiles/mcn.dir/src/mcn/net/network_reader.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/net/network_reader.cc.o.d"
  "/root/repo/src/mcn/skyline/bnl.cc" "CMakeFiles/mcn.dir/src/mcn/skyline/bnl.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/skyline/bnl.cc.o.d"
  "/root/repo/src/mcn/skyline/sfs.cc" "CMakeFiles/mcn.dir/src/mcn/skyline/sfs.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/skyline/sfs.cc.o.d"
  "/root/repo/src/mcn/storage/buffer_pool.cc" "CMakeFiles/mcn.dir/src/mcn/storage/buffer_pool.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/storage/buffer_pool.cc.o.d"
  "/root/repo/src/mcn/storage/disk_manager.cc" "CMakeFiles/mcn.dir/src/mcn/storage/disk_manager.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/storage/disk_manager.cc.o.d"
  "/root/repo/src/mcn/storage/persistence.cc" "CMakeFiles/mcn.dir/src/mcn/storage/persistence.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/storage/persistence.cc.o.d"
  "/root/repo/src/mcn/storage/slotted_page.cc" "CMakeFiles/mcn.dir/src/mcn/storage/slotted_page.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/storage/slotted_page.cc.o.d"
  "/root/repo/src/mcn/topk/nra.cc" "CMakeFiles/mcn.dir/src/mcn/topk/nra.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/topk/nra.cc.o.d"
  "/root/repo/src/mcn/topk/threshold_algorithm.cc" "CMakeFiles/mcn.dir/src/mcn/topk/threshold_algorithm.cc.o" "gcc" "CMakeFiles/mcn.dir/src/mcn/topk/threshold_algorithm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
