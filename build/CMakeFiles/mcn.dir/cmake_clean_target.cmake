file(REMOVE_RECURSE
  "libmcn.a"
)
