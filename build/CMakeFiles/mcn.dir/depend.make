# Empty dependencies file for mcn.
# This may be replaced when dependencies are built.
