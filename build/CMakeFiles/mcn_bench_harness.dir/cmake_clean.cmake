file(REMOVE_RECURSE
  "CMakeFiles/mcn_bench_harness.dir/bench/harness.cc.o"
  "CMakeFiles/mcn_bench_harness.dir/bench/harness.cc.o.d"
  "libmcn_bench_harness.a"
  "libmcn_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcn_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
