file(REMOVE_RECURSE
  "libmcn_bench_harness.a"
)
