# Empty dependencies file for mcn_bench_harness.
# This may be replaced when dependencies are built.
