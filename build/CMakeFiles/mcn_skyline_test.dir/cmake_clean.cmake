file(REMOVE_RECURSE
  "CMakeFiles/mcn_skyline_test.dir/tests/mcn_skyline_test.cc.o"
  "CMakeFiles/mcn_skyline_test.dir/tests/mcn_skyline_test.cc.o.d"
  "mcn_skyline_test"
  "mcn_skyline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcn_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
