# Empty dependencies file for mcn_skyline_test.
# This may be replaced when dependencies are built.
