file(REMOVE_RECURSE
  "CMakeFiles/mcn_test_util.dir/tests/test_util.cc.o"
  "CMakeFiles/mcn_test_util.dir/tests/test_util.cc.o.d"
  "libmcn_test_util.a"
  "libmcn_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcn_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
