file(REMOVE_RECURSE
  "libmcn_test_util.a"
)
