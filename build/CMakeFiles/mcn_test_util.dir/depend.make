# Empty dependencies file for mcn_test_util.
# This may be replaced when dependencies are built.
