file(REMOVE_RECURSE
  "CMakeFiles/mcn_topk_test.dir/tests/mcn_topk_test.cc.o"
  "CMakeFiles/mcn_topk_test.dir/tests/mcn_topk_test.cc.o.d"
  "mcn_topk_test"
  "mcn_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcn_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
