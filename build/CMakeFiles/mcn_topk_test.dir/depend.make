# Empty dependencies file for mcn_topk_test.
# This may be replaced when dependencies are built.
