file(REMOVE_RECURSE
  "CMakeFiles/mcpp_test.dir/tests/mcpp_test.cc.o"
  "CMakeFiles/mcpp_test.dir/tests/mcpp_test.cc.o.d"
  "mcpp_test"
  "mcpp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
