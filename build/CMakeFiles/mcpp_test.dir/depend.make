# Empty dependencies file for mcpp_test.
# This may be replaced when dependencies are built.
