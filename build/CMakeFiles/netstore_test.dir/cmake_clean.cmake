file(REMOVE_RECURSE
  "CMakeFiles/netstore_test.dir/tests/netstore_test.cc.o"
  "CMakeFiles/netstore_test.dir/tests/netstore_test.cc.o.d"
  "netstore_test"
  "netstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
