# Empty dependencies file for netstore_test.
# This may be replaced when dependencies are built.
