file(REMOVE_RECURSE
  "CMakeFiles/network_tool.dir/examples/network_tool.cpp.o"
  "CMakeFiles/network_tool.dir/examples/network_tool.cpp.o.d"
  "network_tool"
  "network_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
