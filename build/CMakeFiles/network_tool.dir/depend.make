# Empty dependencies file for network_tool.
# This may be replaced when dependencies are built.
