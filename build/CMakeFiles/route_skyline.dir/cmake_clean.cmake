file(REMOVE_RECURSE
  "CMakeFiles/route_skyline.dir/examples/route_skyline.cpp.o"
  "CMakeFiles/route_skyline.dir/examples/route_skyline.cpp.o.d"
  "route_skyline"
  "route_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
