# Empty dependencies file for route_skyline.
# This may be replaced when dependencies are built.
