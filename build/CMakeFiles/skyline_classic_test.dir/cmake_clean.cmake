file(REMOVE_RECURSE
  "CMakeFiles/skyline_classic_test.dir/tests/skyline_classic_test.cc.o"
  "CMakeFiles/skyline_classic_test.dir/tests/skyline_classic_test.cc.o.d"
  "skyline_classic_test"
  "skyline_classic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
