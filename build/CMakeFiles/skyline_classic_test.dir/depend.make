# Empty dependencies file for skyline_classic_test.
# This may be replaced when dependencies are built.
