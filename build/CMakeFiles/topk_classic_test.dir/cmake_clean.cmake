file(REMOVE_RECURSE
  "CMakeFiles/topk_classic_test.dir/tests/topk_classic_test.cc.o"
  "CMakeFiles/topk_classic_test.dir/tests/topk_classic_test.cc.o.d"
  "topk_classic_test"
  "topk_classic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
