# Empty dependencies file for topk_classic_test.
# This may be replaced when dependencies are built.
