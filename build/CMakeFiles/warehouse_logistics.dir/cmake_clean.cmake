file(REMOVE_RECURSE
  "CMakeFiles/warehouse_logistics.dir/examples/warehouse_logistics.cpp.o"
  "CMakeFiles/warehouse_logistics.dir/examples/warehouse_logistics.cpp.o.d"
  "warehouse_logistics"
  "warehouse_logistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_logistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
