# Empty dependencies file for warehouse_logistics.
# This may be replaced when dependencies are built.
