// The paper's university-housing scenario (§I): choose a residential block
// for students and instructors who commute on foot or by car. Closeness is
// a per-mode notion (walking vs driving time differ because of one-way and
// pedestrian-only streets), so the selection is an MCN preference query
// with d=2 cost types. With the walking/driving split known (70%/30%), a
// top-k query ranks blocks; when the committee keeps asking "and the next
// one?", the incremental variant answers without recomputation.
//
//   ./examples/housing_commute
#include <cstdio>

#include "mcn/mcn.h"

int main() {
  using namespace mcn;

  // cost 0 = walking minutes, cost 1 = driving minutes. Independent
  // fields: pedestrian shortcuts and fast roads do not coincide.
  gen::ExperimentConfig config;
  config.nodes = 5000;
  config.edges = 6373;
  config.facilities = 250;  // available residential blocks
  config.clusters = 4;
  config.num_costs = 2;
  config.distribution = gen::CostDistribution::kIndependent;
  config.seed = 2210;
  auto instance = gen::BuildInstance(config).value();

  Random rng(11);
  graph::Location university = instance->RandomQueryLocation(rng);
  std::printf("university at %s; %zu candidate blocks\n\n",
              university.ToString().c_str(), instance->facilities.size());

  // --- Which blocks are defensible at all? ------------------------------
  auto sky_engine =
      expand::CeaEngine::Create(instance->reader.get(), university).value();
  algo::SkylineQuery skyline(sky_engine.get());
  auto defensible = skyline.ComputeAll().value();
  std::printf("%zu blocks on the walk/drive skyline (no other block is\n"
              "closer for both commuting modes)\n\n",
              defensible.size());

  // --- Rank with the 70/30 mode split -----------------------------------
  algo::AggregateFn f = algo::WeightedSum({0.7, 0.3});
  auto inc_engine =
      expand::CeaEngine::Create(instance->reader.get(), university).value();
  algo::IncrementalTopK ranking(inc_engine.get(), f);

  std::printf("committee session (f = 0.7*walk + 0.3*drive):\n");
  for (int rank = 1; rank <= 5; ++rank) {
    auto next = ranking.NextBest().value();
    if (!next.has_value()) break;
    std::printf("  \"next best?\"  -> block %-6u score=%6.2f "
                "(walk %.1f min, drive %.1f min)\n",
                next->facility, next->score, next->costs[0],
                next->costs[1]);
  }
  std::printf("\n...three more, without recomputing from scratch:\n");
  for (int rank = 6; rank <= 8; ++rank) {
    auto next = ranking.NextBest().value();
    if (!next.has_value()) break;
    std::printf("  #%d block %-6u score=%6.2f\n", rank, next->facility,
                next->score);
  }
  std::printf("\nexpansion statistics: %llu facility pops, %llu reported\n",
              static_cast<unsigned long long>(ranking.stats().nn_pops),
              static_cast<unsigned long long>(ranking.stats().reported));

  // Cross-check the first answer against the one-shot top-1 query.
  auto k_engine =
      expand::CeaEngine::Create(instance->reader.get(), university).value();
  algo::TopKOptions opts;
  opts.k = 1;
  algo::TopKQuery top1(k_engine.get(), f, opts);
  auto one = top1.Run().value();
  std::printf("one-shot top-1 agrees: block %u, score %.2f\n",
              one[0].facility, one[0].score);
  return 0;
}
