// Command-line utility around the library: generate synthetic multi-cost
// networks, export/import the extended DIMACS format, and answer skyline /
// top-k queries from the shell.
//
//   network_tool generate <nodes> <edges> <d> <dist> <out.gr>
//   network_tool facilities <graph.gr> <count> <clusters> <out.fac>
//   network_tool skyline <graph.gr> <facilities.fac> <node-id>
//   network_tool topk <graph.gr> <facilities.fac> <node-id> <k> [w1,w2,...]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mcn/mcn.h"

namespace {

using namespace mcn;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  network_tool generate <nodes> <edges> <d> "
      "<anti|ind|corr> <out.gr>\n"
      "  network_tool facilities <graph.gr> <count> <clusters> <out.fac>\n"
      "  network_tool skyline <graph.gr> <facilities.fac> <node-id>\n"
      "  network_tool topk <graph.gr> <facilities.fac> <node-id> <k> "
      "[w1,w2,...]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(int argc, char** argv) {
  if (argc != 7) return Usage();
  gen::RoadNetworkOptions road;
  road.target_nodes = static_cast<uint32_t>(std::atoll(argv[2]));
  road.target_edges = static_cast<uint32_t>(std::atoll(argv[3]));
  auto topo = gen::GenerateRoadNetwork(road);
  if (!topo.ok()) return Fail(topo.status());
  gen::CostGenOptions costs;
  costs.num_costs = std::atoi(argv[4]);
  auto dist = gen::ParseCostDistribution(argv[5]);
  if (!dist.ok()) return Fail(dist.status());
  costs.distribution = dist.value();
  auto g = gen::BuildMultiCostGraph(*topo, costs);
  if (!g.ok()) return Fail(g.status());
  Status s = io::WriteGraphToFile(argv[6], *g);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %u nodes / %u edges / d=%d to %s\n", g->num_nodes(),
              g->num_edges(), g->num_costs(), argv[6]);
  return 0;
}

int Facilities(int argc, char** argv) {
  if (argc != 6) return Usage();
  auto g = io::ReadGraphFromFile(argv[2]);
  if (!g.ok()) return Fail(g.status());
  gen::FacilityGenOptions opts;
  opts.count = static_cast<uint32_t>(std::atoll(argv[3]));
  opts.num_clusters = std::atoi(argv[4]);
  auto facs = gen::GenerateFacilities(*g, opts);
  if (!facs.ok()) return Fail(facs.status());
  Status s = io::WriteFacilitiesToFile(argv[5], *g, *facs);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu facilities to %s\n", facs->size(), argv[5]);
  return 0;
}

struct LoadedNetwork {
  graph::MultiCostGraph g{1};
  graph::FacilitySet facilities;
  storage::DiskManager disk;
  net::NetworkFiles files;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<net::NetworkReader> reader;
};

Result<std::unique_ptr<LoadedNetwork>> Load(const char* graph_path,
                                            const char* fac_path) {
  auto loaded = std::make_unique<LoadedNetwork>();
  MCN_ASSIGN_OR_RETURN(loaded->g, io::ReadGraphFromFile(graph_path));
  MCN_ASSIGN_OR_RETURN(loaded->facilities,
                       io::ReadFacilitiesFromFile(fac_path, loaded->g));
  MCN_ASSIGN_OR_RETURN(
      loaded->files,
      net::BuildNetwork(&loaded->disk, loaded->g, loaded->facilities));
  loaded->pool = std::make_unique<storage::BufferPool>(
      &loaded->disk, gen::BufferFrames(1.0, loaded->files.total_pages));
  loaded->reader = std::make_unique<net::NetworkReader>(loaded->files,
                                                        loaded->pool.get());
  return loaded;
}

int Skyline(int argc, char** argv) {
  if (argc != 5) return Usage();
  auto loaded = Load(argv[2], argv[3]);
  if (!loaded.ok()) return Fail(loaded.status());
  graph::NodeId node = static_cast<graph::NodeId>(std::atoll(argv[4]));
  auto engine = expand::CeaEngine::Create((*loaded)->reader.get(),
                                          graph::Location::AtNode(node));
  if (!engine.ok()) return Fail(engine.status());
  algo::SkylineQuery query(engine.value().get());
  auto result = query.ComputeAll();
  if (!result.ok()) return Fail(result.status());
  std::printf("skyline of node %u: %zu facilities\n", node,
              result->size());
  for (const auto& entry : *result) {
    std::printf("  facility %-8u costs=%s\n", entry.facility,
                entry.costs.ToString().c_str());
  }
  std::printf("I/O: %llu page reads\n",
              static_cast<unsigned long long>(
                  (*loaded)->pool->stats().misses));
  return 0;
}

int TopK(int argc, char** argv) {
  if (argc != 6 && argc != 7) return Usage();
  auto loaded = Load(argv[2], argv[3]);
  if (!loaded.ok()) return Fail(loaded.status());
  graph::NodeId node = static_cast<graph::NodeId>(std::atoll(argv[4]));
  int k = std::atoi(argv[5]);
  int d = (*loaded)->g.num_costs();
  std::vector<double> weights(d, 1.0 / d);
  if (argc == 7) {
    weights.clear();
    for (const char* at = argv[6]; *at != '\0';) {
      weights.push_back(std::strtod(at, const_cast<char**>(&at)));
      if (*at == ',') ++at;
    }
    if (static_cast<int>(weights.size()) != d) {
      std::fprintf(stderr, "need %d weights\n", d);
      return 2;
    }
  }
  auto engine = expand::CeaEngine::Create((*loaded)->reader.get(),
                                          graph::Location::AtNode(node));
  if (!engine.ok()) return Fail(engine.status());
  algo::TopKOptions opts;
  opts.k = k;
  algo::TopKQuery query(engine.value().get(), algo::WeightedSum(weights),
                        opts);
  auto result = query.Run();
  if (!result.ok()) return Fail(result.status());
  std::printf("top-%d of node %u:\n", k, node);
  for (const auto& entry : *result) {
    std::printf("  facility %-8u score=%.4f costs=%s\n", entry.facility,
                entry.score, entry.costs.ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "facilities") == 0) return Facilities(argc, argv);
  if (std::strcmp(argv[1], "skyline") == 0) return Skyline(argc, argv);
  if (std::strcmp(argv[1], "topk") == 0) return TopK(argc, argv);
  return Usage();
}
