// query_server: the preference-query service end to end (DESIGN.md §6,
// §8, §9) — now an actual TCP server speaking the api/wire protocol.
//
// Builds a mid-sized instance, stands up an exec::QueryService with
// shard-affine worker groups, and binds an api::Server on 127.0.0.1. Two
// modes:
//
//   demo (default)   an in-process api::Client connects through the real
//                    socket and drives a mixed workload — skyline, top-k
//                    and incremental requests with per-request weights, a
//                    constrained (cost-capped) skyline, and a streamed
//                    incremental session pulled batch by batch. Prints a
//                    few representative results plus the service stats
//                    and per-shard table, then exits.
//   --serve          stays in the foreground serving the wire protocol
//                    until stdin closes (pipe or Ctrl-D) — point any
//                    api::Client at the printed port.
//
// Flags:
//   --port=P         TCP port (default 0 = ephemeral; printed on start).
//   --serve          foreground server mode (see above).
//   --shards=K       serve from a K-way sharded layout (grid-tile
//                    partition, affinity-routed execution). Default 1.
//   --workers=N      service workers (default 4).
//   --pin-workers    best-effort CPU pinning of each shard group's
//                    threads (ignored where unsupported).
//   --deadline-ms=D  per-request deadline stamped into every demo spec
//                    (0 = none). Expired queries resolve DeadlineExceeded.
//   --max-inflight=M admission cap per worker group; requests over the cap
//                    are load-shed with ResourceExhausted (0 = unbounded).
//   --inject-faults=SPEC
//                    install a deterministic fault injector, e.g.
//                    "seed=7,disk_eio=0.01,recv_delay=0.05" (see
//                    common/fault_injector.h for the key set).
//
// Observability flags (DESIGN.md §11; see examples/PROFILING.md for a
// profiling walkthrough):
//   --metrics-port=P bind a second wire endpoint on port P dedicated to
//                    introspection scrapes (kGetMetrics/kGetTrace) — point
//                    tools/mcn_stat.py at it without contending with query
//                    traffic. The main port answers them too.
//   --trace-out=PATH enable the query tracer at startup and write the
//                    merged Chrome trace_event JSON to PATH on shutdown
//                    (load in https://ui.perfetto.dev).
//   --slow-query-ms=T
//                    attach a flight recorder and log every query slower
//                    than T ms as one JSON line (with a replay_hex frame
//                    for tools/replay_query.py). 0 = record digests only.
//   --slow-query-log=PATH
//                    append slow-query lines to PATH instead of stderr.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mcn/api/client.h"
#include "mcn/api/server.h"
#include "mcn/common/fault_injector.h"
#include "mcn/common/random.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"
#include "mcn/obs/flight_recorder.h"
#include "mcn/obs/trace.h"

using mcn::Random;
using mcn::api::QueryKind;
using mcn::api::QueryKindName;
using mcn::api::QueryResponse;
using mcn::api::QuerySpec;
using mcn::exec::QueryService;
using mcn::exec::ServiceOptions;
using mcn::exec::ServiceStats;

namespace {

struct Flags {
  int port = 0;
  bool serve = false;
  int shards = 1;
  int workers = 4;
  bool pin_workers = false;
  int deadline_ms = 0;
  int max_inflight = 0;
  std::string inject_faults;
  int metrics_port = -1;  ///< -1 = no dedicated introspection endpoint
  std::string trace_out;
  int slow_query_ms = -1;  ///< -1 = no flight recorder
  std::string slow_query_log;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      flags->port = std::atoi(arg + 7);
      if (flags->port < 0 || flags->port > 65535) return false;
    } else if (std::strcmp(arg, "--serve") == 0) {
      flags->serve = true;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      flags->shards = std::atoi(arg + 9);
      if (flags->shards < 1) return false;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      flags->workers = std::atoi(arg + 10);
      if (flags->workers < 1) return false;
    } else if (std::strcmp(arg, "--pin-workers") == 0) {
      flags->pin_workers = true;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      flags->deadline_ms = std::atoi(arg + 14);
      if (flags->deadline_ms < 0) return false;
    } else if (std::strncmp(arg, "--max-inflight=", 15) == 0) {
      flags->max_inflight = std::atoi(arg + 15);
      if (flags->max_inflight < 0) return false;
    } else if (std::strncmp(arg, "--inject-faults=", 16) == 0) {
      flags->inject_faults = arg + 16;
    } else if (std::strncmp(arg, "--metrics-port=", 15) == 0) {
      flags->metrics_port = std::atoi(arg + 15);
      if (flags->metrics_port < 0 || flags->metrics_port > 65535) {
        return false;
      }
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      flags->trace_out = arg + 12;
    } else if (std::strncmp(arg, "--slow-query-ms=", 16) == 0) {
      flags->slow_query_ms = std::atoi(arg + 16);
      if (flags->slow_query_ms < 0) return false;
    } else if (std::strncmp(arg, "--slow-query-log=", 17) == 0) {
      flags->slow_query_log = arg + 17;
    } else {
      return false;
    }
  }
  return true;
}

void PrintResponse(int i, const QueryResponse& r) {
  std::printf("query %2d  %-11s rows=%-3zu  server exec=%6.2fms  "
              "misses=%" PRIu64 "\n",
              i, QueryKindName(r.kind), r.num_rows(), r.exec_seconds * 1e3,
              r.buffer_misses);
  if (r.kind == QueryKind::kSkyline) {
    for (size_t j = 0; j < r.skyline.size() && j < 3; ++j) {
      std::printf("          facility %u, costs %s\n", r.skyline[j].facility,
                  r.skyline[j].costs.ToString().c_str());
    }
  } else {
    for (size_t j = 0; j < r.topk.size() && j < 3; ++j) {
      std::printf("          facility %u, score %.3f\n", r.topk[j].facility,
                  r.topk[j].score);
    }
  }
}

/// True for the failure-model statuses the robustness flags provoke on
/// purpose — counted, not fatal to the demo.
bool IsRobustnessStatus(const mcn::Status& s) {
  return s.code() == mcn::StatusCode::kDeadlineExceeded ||
         s.code() == mcn::StatusCode::kResourceExhausted ||
         s.code() == mcn::StatusCode::kCancelled ||
         s.code() == mcn::StatusCode::kIOError;
}

int RunDemo(QueryService& service, int port, int deadline_ms,
            const mcn::gen::ShardedInstance& instance) {
  auto client = mcn::api::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "client connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("client connected over the wire protocol (v%d)\n\n",
              mcn::api::kWireVersion);

  // A mixed workload: every third query is a skyline, the rest are
  // (incremental) top-k with random preference weights, as a fleet of
  // heterogeneous clients would issue them — all through the socket.
  constexpr int kRequests = 60;
  Random rng(42);
  const int d = instance.graph.num_costs();
  uint64_t shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    QuerySpec spec;
    const auto loc = instance.RandomQueryLocation(rng);
    std::vector<double> weights(d);
    for (double& w : weights) w = rng.NextDouble();
    switch (i % 3) {
      case 0:
        spec = mcn::api::SkylineSpec(loc);
        break;
      case 1:
        spec = mcn::api::TopKSpec(loc, 5, std::move(weights));
        break;
      case 2:
        spec = mcn::api::IncrementalSpec(loc, 3, std::move(weights));
        break;
    }
    spec.deadline_ms = deadline_ms;
    auto response = (*client)->Execute(spec);
    const mcn::Status status =
        response.ok() ? response.value().status : response.status();
    if (!status.ok()) {
      // Under --deadline-ms / --max-inflight / --inject-faults these are
      // the intended outcomes — count them and keep driving load.
      if (IsRobustnessStatus(status)) {
        ++shed;
        continue;
      }
      std::fprintf(stderr, "query %d failed: %s\n", i,
                   status.ToString().c_str());
      return 1;
    }
    if (i < 6) PrintResponse(i, response.value());
  }
  if (shed > 0) {
    std::printf("%" PRIu64 " of %d requests shed/timed out "
                "(client retries: %" PRIu64 ")\n",
                shed, kRequests, (*client)->retries());
  }

  // A constrained skyline: cost caps ride the spec and are applied
  // server-side as a post-dominance filter.
  {
    QuerySpec spec = mcn::api::SkylineSpec(instance.RandomQueryLocation(rng));
    spec.preference.constraints.cost_caps.assign(d, 1e4);
    spec.deadline_ms = deadline_ms;
    auto response = (*client)->Execute(spec);
    const mcn::Status status =
        response.ok() ? response.value().status : response.status();
    if (!status.ok()) {
      if (!IsRobustnessStatus(status)) {
        std::fprintf(stderr, "constrained skyline failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("\nconstrained skyline shed: %s\n",
                  status.ToString().c_str());
    } else {
      std::printf("\nconstrained skyline (caps 1e4 on every dimension): "
                  "%zu rows\n",
                  response.value().num_rows());
    }
  }

  // A streamed incremental session: the engine stays pinned server-side;
  // each Next pulls a further ranked batch over the same expansion state.
  {
    std::vector<double> weights(d, 1.0);
    QuerySpec spec = mcn::api::IncrementalSpec(
        instance.RandomQueryLocation(rng), 4, weights);
    auto session = (*client)->OpenSession(spec);
    if (!session.ok()) {
      if (!IsRobustnessStatus(session.status())) {
        std::fprintf(stderr, "open session failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      std::printf("\nstreaming session shed: %s\n",
                  session.status().ToString().c_str());
    } else {
      std::printf("\nstreaming session %" PRIu64 " (batches of 4):\n",
                  *session);
      int rank = 1;
      for (int batch = 0; batch < 3; ++batch) {
        auto response = (*client)->Next(*session, 4);
        const mcn::Status status =
            response.ok() ? response.value().status : response.status();
        if (!status.ok()) {
          // Sessions are never retried (DESIGN.md §10): a shed or
          // timed-out batch ends the stream for this demo.
          if (!IsRobustnessStatus(status)) {
            std::fprintf(stderr, "session next failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
          std::printf("  (batch shed: %s)\n", status.ToString().c_str());
          break;
        }
        for (const auto& row : response.value().topk) {
          std::printf("  #%-2d facility %u, score %.3f\n", rank++,
                      row.facility, row.score);
        }
        if (response.value().exhausted) {
          std::printf("  (component exhausted)\n");
          break;
        }
      }
      if ((*client)->connected()) (void)(*client)->CloseSession(*session);
    }
  }

  ServiceStats stats = service.Snapshot();
  std::printf(
      "\nservice stats: %llu completed, %llu failed, %llu session batches\n"
      "  failure model       = %llu rejected (load shed), %llu timed out, "
      "%llu cancelled\n"
      "  latency p50/p95/p99 = %.2f / %.2f / %.2f ms\n"
      "  throughput          = %.1f qps (wall %.2fs)\n"
      "  buffer misses       = %llu (%.1f per query)\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.session_batches),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.cancelled),
      stats.latency_p50_ms, stats.latency_p95_ms, stats.latency_p99_ms,
      stats.qps, stats.wall_seconds,
      static_cast<unsigned long long>(stats.buffer_misses),
      static_cast<double>(stats.buffer_misses) /
          static_cast<double>(stats.completed ? stats.completed : 1));

  // Per-shard table: who executed what, and how often expansions escaped
  // their home tile (the §8 remote-fetch accounting).
  std::printf(
      "\n  shard | workers | completed | misses   | local    | remote   | "
      "remote%%\n"
      "  ------+---------+-----------+----------+----------+----------+--------\n");
  for (const auto& row : stats.per_shard) {
    std::printf("  %5d | %7d | %9" PRIu64 " | %8" PRIu64 " | %8" PRIu64
                " | %8" PRIu64 " | %6.1f%%\n",
                row.shard, row.workers, row.completed, row.buffer_misses,
                row.local_fetches, row.remote_fetches,
                100.0 * row.RemoteRatio());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: %s [--port=P] [--serve] [--shards=K] [--workers=N] "
                 "[--pin-workers] [--deadline-ms=D] [--max-inflight=M] "
                 "[--inject-faults=SPEC] [--metrics-port=P] "
                 "[--trace-out=PATH] [--slow-query-ms=T] "
                 "[--slow-query-log=PATH]\n",
                 argv[0]);
    return 2;
  }

  // The injector must outlive all I/O; install it before any query
  // touches storage and leave it for the process lifetime.
  std::unique_ptr<mcn::FaultInjector> injector;
  if (!flags.inject_faults.empty()) {
    auto fault_options = mcn::FaultInjector::ParseSpec(flags.inject_faults);
    if (!fault_options.ok()) {
      std::fprintf(stderr, "--inject-faults: %s\n",
                   fault_options.status().ToString().c_str());
      return 2;
    }
    injector = std::make_unique<mcn::FaultInjector>(fault_options.value());
    mcn::FaultInjector::Install(injector.get());
    std::printf("fault injector installed: %s\n",
                flags.inject_faults.c_str());
  }

  // A small-city instance: ~9k nodes, 4 cost types, clustered facilities.
  mcn::gen::ExperimentConfig config;
  config = config.Scaled(0.05);
  std::printf("building instance: %s (%d shard%s)\n",
              config.ToString().c_str(), flags.shards,
              flags.shards == 1 ? "" : "s");
  auto instance = mcn::gen::BuildShardedInstance(config, flags.shards);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("layout: %u nodes, %u boundary edges across %d shard(s)\n",
              (*instance)->files.num_nodes,
              (*instance)->files.num_boundary_edges,
              (*instance)->files.num_shards());

  // Observability wiring (DESIGN.md §11): tracer on when a trace sink is
  // named; a flight recorder when a slow-query threshold is set.
  if (!flags.trace_out.empty()) {
    mcn::obs::Tracer::Global().Enable();
    std::printf("tracing enabled: Chrome JSON -> %s on shutdown\n",
                flags.trace_out.c_str());
  }
  std::unique_ptr<mcn::obs::FlightRecorder> flight_recorder;
  if (flags.slow_query_ms >= 0) {
    mcn::obs::FlightRecorder::Options recorder_options;
    recorder_options.slow_query_ms =
        static_cast<double>(flags.slow_query_ms);
    recorder_options.log_path = flags.slow_query_log;
    flight_recorder =
        std::make_unique<mcn::obs::FlightRecorder>(recorder_options);
    std::printf("flight recorder on: slow-query threshold %dms -> %s\n",
                flags.slow_query_ms,
                flags.slow_query_log.empty() ? "stderr"
                                             : flags.slow_query_log.c_str());
  }

  ServiceOptions options;
  options.num_workers = flags.workers;
  options.queue_capacity = 256;
  options.pool_frames_per_worker = (*instance)->pool_frames;
  options.io_latency_ms = 5.0;  // accounted, not slept, in this demo
  options.pin_workers = flags.pin_workers;
  options.max_inflight = static_cast<size_t>(flags.max_inflight);
  options.flight_recorder = flight_recorder.get();
  auto service = QueryService::Create(&(*instance)->storage,
                                      (*instance)->files, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  mcn::api::Server::Options server_options;
  server_options.port = flags.port;
  auto server = mcn::api::Server::Start((*service).get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "serving the wire protocol on 127.0.0.1:%d — %d workers in %d "
      "shard-affine group(s), %zu-frame pool budget each%s\n",
      (*server)->port(), (*service)->num_workers(), (*service)->num_groups(),
      options.pool_frames_per_worker,
      flags.pin_workers ? ", workers pinned (best effort)" : "");

  // Optional dedicated introspection endpoint: a second wire server over
  // the same service, so ops scrapes never queue behind query traffic.
  std::unique_ptr<mcn::api::Server> metrics_server;
  if (flags.metrics_port >= 0) {
    mcn::api::Server::Options metrics_options;
    metrics_options.port = flags.metrics_port;
    auto started =
        mcn::api::Server::Start((*service).get(), metrics_options);
    if (!started.ok()) {
      std::fprintf(stderr, "metrics server failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    metrics_server = std::move(started).value();
    std::printf(
        "introspection endpoint on 127.0.0.1:%d — scrape with "
        "tools/mcn_stat.py --port %d\n",
        metrics_server->port(), metrics_server->port());
  }

  int rc = 0;
  if (flags.serve) {
    std::printf("--serve: accepting connections until stdin closes...\n");
    std::fflush(stdout);
    // Block on stdin; EOF (pipe closed, Ctrl-D) shuts the server down.
    int c;
    while ((c = std::getchar()) != EOF) {
    }
    std::printf("stdin closed: shutting down (%" PRIu64 " connections "
                "served)\n",
                (*server)->connections_accepted());
  } else {
    rc = RunDemo(**service, (*server)->port(), flags.deadline_ms, **instance);
  }
  if (metrics_server != nullptr) metrics_server->Stop();
  (*server)->Stop();
  (*service)->Shutdown();
  if (!flags.trace_out.empty()) {
    const std::string json = mcn::obs::Tracer::Global().ExportChromeJson();
    std::FILE* f = std::fopen(flags.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--trace-out: cannot open %s\n",
                   flags.trace_out.c_str());
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %zu trace bytes to %s\n", json.size(),
                  flags.trace_out.c_str());
    }
  }
  if (flight_recorder != nullptr) {
    std::printf("flight recorder: %" PRIu64 " digests recorded, %" PRIu64
                " slow queries logged\n",
                flight_recorder->recorded(), flight_recorder->slow_logged());
  }
  {
    ServiceStats stats = (*service)->Snapshot();
    std::printf("exit stats: %" PRIu64 " completed, %" PRIu64 " failed, "
                "%" PRIu64 " rejected, %" PRIu64 " timed out, %" PRIu64
                " cancelled",
                stats.completed, stats.failed, stats.rejected,
                stats.timed_out, stats.cancelled);
    if (injector != nullptr) {
      std::printf(", %" PRIu64 " faults injected", injector->injected());
    }
    std::printf("\n");
  }
  mcn::FaultInjector::Install(nullptr);
  return rc;
}
