// query_server: the concurrent serving layer end to end (DESIGN.md §6, §8).
//
// Builds a mid-sized instance, stands up an exec::QueryService with four
// workers, and drives a mixed workload — skyline, top-k and incremental
// top-k requests with per-request weights — through the future-based API.
// Prints a few representative results and the service-level statistics
// (QPS, latency percentiles, I/O totals).
//
// Flags:
//   --shards=K       serve from a K-way sharded layout (grid-tile
//                    partition, shard-affine worker groups, affinity-
//                    routed Submit). Default 1 shard — but still through
//                    the sharded stack, whose K=1 case degenerates to the
//                    flat layout. A per-shard stats table (completions,
//                    misses, local/remote fetches) prints on exit.
//   --pin-workers    best-effort CPU pinning of each shard group's
//                    threads (ignored where unsupported).
//   --workers=N      service workers (default 4).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"

using mcn::Random;
using mcn::exec::QueryKind;
using mcn::exec::QueryRequest;
using mcn::exec::QueryResult;
using mcn::exec::QueryService;
using mcn::exec::ServiceOptions;
using mcn::exec::ServiceStats;

namespace {

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSkyline:
      return "skyline";
    case QueryKind::kTopK:
      return "top-k";
    case QueryKind::kIncrementalTopK:
      return "incremental";
  }
  return "?";
}

struct Flags {
  int shards = 1;
  int workers = 4;
  bool pin_workers = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      flags->shards = std::atoi(arg + 9);
      if (flags->shards < 1) return false;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      flags->workers = std::atoi(arg + 10);
      if (flags->workers < 1) return false;
    } else if (std::strcmp(arg, "--pin-workers") == 0) {
      flags->pin_workers = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: %s [--shards=K] [--workers=N] [--pin-workers]\n",
                 argv[0]);
    return 2;
  }

  // A small-city instance: ~9k nodes, 4 cost types, clustered facilities.
  mcn::gen::ExperimentConfig config;
  config = config.Scaled(0.05);
  std::printf("building instance: %s (%d shard%s)\n",
              config.ToString().c_str(), flags.shards,
              flags.shards == 1 ? "" : "s");
  auto instance = mcn::gen::BuildShardedInstance(config, flags.shards);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("layout: %u nodes, %u boundary edges across %d shard(s)\n",
              (*instance)->files.num_nodes,
              (*instance)->files.num_boundary_edges,
              (*instance)->files.num_shards());

  ServiceOptions options;
  options.num_workers = flags.workers;
  options.queue_capacity = 256;
  options.pool_frames_per_worker = (*instance)->pool_frames;
  options.io_latency_ms = 5.0;  // accounted, not slept, in this demo
  options.pin_workers = flags.pin_workers;
  auto service = QueryService::Create(&(*instance)->storage,
                                      (*instance)->files, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "service up: %d workers in %d shard-affine group(s), %zu-frame pool "
      "budget each%s\n\n",
      (*service)->num_workers(), (*service)->num_groups(),
      options.pool_frames_per_worker,
      flags.pin_workers ? ", workers pinned (best effort)" : "");

  // A mixed workload: every third query is a skyline, the rest are
  // (incremental) top-k with random preference weights, as a fleet of
  // heterogeneous clients would issue them.
  constexpr int kRequests = 60;
  Random rng(42);
  int d = (*instance)->graph.num_costs();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    QueryRequest request;
    request.location = (*instance)->RandomQueryLocation(rng);
    request.engine = mcn::expand::EngineKind::kCea;
    switch (i % 3) {
      case 0:
        request.kind = QueryKind::kSkyline;
        break;
      case 1:
        request.kind = QueryKind::kTopK;
        request.k = 5;
        break;
      case 2:
        request.kind = QueryKind::kIncrementalTopK;
        request.k = 3;
        break;
    }
    if (request.kind != QueryKind::kSkyline) {
      request.weights.resize(d);
      for (double& w : request.weights) w = rng.NextDouble();
    }
    futures.push_back((*service)->Submit(std::move(request)));
  }

  for (int i = 0; i < kRequests; ++i) {
    QueryResult result = futures[i].get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "query %d failed: %s\n", i,
                   result.status.ToString().c_str());
      return 1;
    }
    if (i >= 6) continue;  // print only the first few in full
    size_t rows = result.kind == QueryKind::kSkyline
                      ? result.skyline.size()
                      : result.topk.size();
    std::printf(
        "query %2d  %-11s worker=%d shard=%d  rows=%-3zu  exec=%6.2fms  "
        "misses=%" PRIu64 "\n",
        i, KindName(result.kind), result.stats.worker, result.stats.shard,
        rows, result.stats.exec_seconds * 1e3, result.stats.buffer_misses);
    if (result.kind == QueryKind::kSkyline) {
      for (size_t r = 0; r < result.skyline.size() && r < 3; ++r) {
        const auto& e = result.skyline[r];
        std::printf("          facility %u, costs %s\n", e.facility,
                    e.costs.ToString().c_str());
      }
    } else {
      for (size_t r = 0; r < result.topk.size() && r < 3; ++r) {
        const auto& e = result.topk[r];
        std::printf("          facility %u, score %.3f\n", e.facility,
                    e.score);
      }
    }
  }

  ServiceStats stats = (*service)->Snapshot();
  std::printf(
      "\nservice stats: %llu completed, %llu failed\n"
      "  latency p50/p95/p99 = %.2f / %.2f / %.2f ms\n"
      "  throughput          = %.1f qps (wall %.2fs)\n"
      "  buffer misses       = %llu (%.1f per query)\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed), stats.latency_p50_ms,
      stats.latency_p95_ms, stats.latency_p99_ms, stats.qps,
      stats.wall_seconds,
      static_cast<unsigned long long>(stats.buffer_misses),
      static_cast<double>(stats.buffer_misses) /
          static_cast<double>(stats.completed ? stats.completed : 1));

  // Per-shard table: who executed what, and how often expansions escaped
  // their home tile (the §8 remote-fetch accounting).
  std::printf(
      "\n  shard | workers | completed | misses   | local    | remote   | "
      "remote%%\n"
      "  ------+---------+-----------+----------+----------+----------+--------\n");
  for (const auto& row : stats.per_shard) {
    std::printf("  %5d | %7d | %9" PRIu64 " | %8" PRIu64 " | %8" PRIu64
                " | %8" PRIu64 " | %6.1f%%\n",
                row.shard, row.workers, row.completed, row.buffer_misses,
                row.local_fetches, row.remote_fetches,
                100.0 * row.RemoteRatio());
  }
  (*service)->Shutdown();
  return 0;
}
