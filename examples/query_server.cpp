// query_server: the concurrent serving layer end to end (DESIGN.md §6).
//
// Builds a mid-sized instance, stands up an exec::QueryService with four
// workers (shared read-only disk, one LRU pool per worker), and drives a
// mixed workload — skyline, top-k and incremental top-k requests with
// per-request weights — through the future-based API. Prints a few
// representative results and the service-level statistics (QPS, latency
// percentiles, I/O totals).
#include <cinttypes>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/exec/query_service.h"
#include "mcn/gen/workload.h"

using mcn::Random;
using mcn::exec::QueryKind;
using mcn::exec::QueryRequest;
using mcn::exec::QueryResult;
using mcn::exec::QueryService;
using mcn::exec::ServiceOptions;
using mcn::exec::ServiceStats;

namespace {

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSkyline:
      return "skyline";
    case QueryKind::kTopK:
      return "top-k";
    case QueryKind::kIncrementalTopK:
      return "incremental";
  }
  return "?";
}

}  // namespace

int main() {
  // A small-city instance: ~9k nodes, 4 cost types, clustered facilities.
  mcn::gen::ExperimentConfig config;
  config = config.Scaled(0.05);
  std::printf("building instance: %s\n", config.ToString().c_str());
  auto instance = mcn::gen::BuildInstance(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.pool_frames_per_worker = (*instance)->pool->capacity();
  options.io_latency_ms = 5.0;  // accounted, not slept, in this demo
  auto service = QueryService::Create(&(*instance)->disk, (*instance)->files,
                                      options);
  if (!service.ok()) {
    std::fprintf(stderr, "service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("service up: %d workers, %zu-frame pool each\n\n",
              (*service)->num_workers(), options.pool_frames_per_worker);

  // A mixed workload: every third query is a skyline, the rest are
  // (incremental) top-k with random preference weights, as a fleet of
  // heterogeneous clients would issue them.
  constexpr int kRequests = 60;
  Random rng(42);
  int d = (*instance)->graph.num_costs();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    QueryRequest request;
    request.location = (*instance)->RandomQueryLocation(rng);
    request.engine = mcn::expand::EngineKind::kCea;
    switch (i % 3) {
      case 0:
        request.kind = QueryKind::kSkyline;
        break;
      case 1:
        request.kind = QueryKind::kTopK;
        request.k = 5;
        break;
      case 2:
        request.kind = QueryKind::kIncrementalTopK;
        request.k = 3;
        break;
    }
    if (request.kind != QueryKind::kSkyline) {
      request.weights.resize(d);
      for (double& w : request.weights) w = rng.NextDouble();
    }
    futures.push_back((*service)->Submit(std::move(request)));
  }

  for (int i = 0; i < kRequests; ++i) {
    QueryResult result = futures[i].get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "query %d failed: %s\n", i,
                   result.status.ToString().c_str());
      return 1;
    }
    if (i >= 6) continue;  // print only the first few in full
    size_t rows = result.kind == QueryKind::kSkyline
                      ? result.skyline.size()
                      : result.topk.size();
    std::printf(
        "query %2d  %-11s worker=%d  rows=%-3zu  exec=%6.2fms  "
        "misses=%" PRIu64 "\n",
        i, KindName(result.kind), result.stats.worker, rows,
        result.stats.exec_seconds * 1e3, result.stats.buffer_misses);
    if (result.kind == QueryKind::kSkyline) {
      for (size_t r = 0; r < result.skyline.size() && r < 3; ++r) {
        const auto& e = result.skyline[r];
        std::printf("          facility %u, costs %s\n", e.facility,
                    e.costs.ToString().c_str());
      }
    } else {
      for (size_t r = 0; r < result.topk.size() && r < 3; ++r) {
        const auto& e = result.topk[r];
        std::printf("          facility %u, score %.3f\n", e.facility,
                    e.score);
      }
    }
  }

  ServiceStats stats = (*service)->Snapshot();
  std::printf(
      "\nservice stats: %llu completed, %llu failed\n"
      "  latency p50/p95/p99 = %.2f / %.2f / %.2f ms\n"
      "  throughput          = %.1f qps (wall %.2fs)\n"
      "  buffer misses       = %llu (%.1f per query)\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed), stats.latency_p50_ms,
      stats.latency_p95_ms, stats.latency_p99_ms, stats.qps,
      stats.wall_seconds,
      static_cast<unsigned long long>(stats.buffer_misses),
      static_cast<double>(stats.buffer_misses) /
          static_cast<double>(stats.completed ? stats.completed : 1));
  (*service)->Shutdown();
  return 0;
}
