// Quickstart: build a small multi-cost network by hand, store it in the
// paged storage scheme, and run the three preference queries of the paper
// two ways — first against the raw query processors, then through the
// unified api::QuerySpec surface of the serving layer (DESIGN.md §9),
// including a constrained spec and a streaming incremental session.
//
//   ./examples/quickstart
#include <cstdio>
#include <limits>

#include "mcn/mcn.h"

int main() {
  using namespace mcn;

  // A toy network with two cost types per edge: minutes and dollars.
  //   0 --- 1 --- 2
  //   |     |     |
  //   3 --- 4 --- 5
  graph::MultiCostGraph g(/*num_costs=*/2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) g.AddNode(c, r);
  }
  auto edge = [&](graph::NodeId a, graph::NodeId b, double minutes,
                  double dollars) {
    return g.AddEdge(a, b, graph::CostVector{minutes, dollars}).value();
  };
  edge(0, 1, 10, 0);
  edge(1, 2, 12, 0);
  graph::EdgeId e03 = edge(0, 3, 5, 2);
  edge(1, 4, 4, 1);
  graph::EdgeId e25 = edge(2, 5, 3, 3);
  edge(3, 4, 8, 0);
  graph::EdgeId e45 = edge(4, 5, 9, 0);
  g.Finalize();

  // Three facilities on edges (fraction measured from the lower node id).
  graph::FacilitySet facilities;
  facilities.Add(e03, 0.5);  // facility 0
  facilities.Add(e45, 0.25);  // facility 1
  facilities.Add(e25, 1.0);  // facility 2 (at node 5)
  facilities.Finalize();

  // Materialize the disk-resident storage scheme (adjacency tree/file,
  // facility tree/file) and front it with a tiny LRU buffer.
  storage::DiskManager disk;
  auto files = net::BuildNetwork(&disk, g, facilities).value();
  storage::BufferPool pool(&disk, /*capacity_frames=*/8);
  net::NetworkReader reader(files, &pool);

  // Query location: on edge (0,1), a fifth of the way from node 0.
  graph::Location q = graph::Location::OnEdge(graph::EdgeKey(0, 1), 0.2);
  std::printf("query at %s\n\n", q.ToString().c_str());

  // --- Part 1: the raw query processors -------------------------------

  // Progressive skyline (CEA engine).
  {
    auto engine = expand::CeaEngine::Create(&reader, q).value();
    algo::SkylineQuery skyline(engine.get());
    std::printf("skyline facilities (reported progressively):\n");
    for (;;) {
      auto next = skyline.Next().value();
      if (!next.has_value()) break;
      std::printf("  facility %u  costs=%s\n", next->facility,
                  next->costs.ToString().c_str());
    }
    std::printf("buffer after skyline: %llu hits, %llu misses\n\n",
                static_cast<unsigned long long>(pool.stats().hits),
                static_cast<unsigned long long>(pool.stats().misses));
  }

  // Top-2 with a 70/30 minutes/dollars trade-off.
  {
    auto engine = expand::CeaEngine::Create(&reader, q).value();
    algo::TopKOptions opts;
    opts.k = 2;
    algo::TopKQuery topk(engine.get(),
                         algo::WeightedSum({0.7, 0.3}), opts);
    std::printf("top-2 by 0.7*minutes + 0.3*dollars:\n");
    for (const auto& entry : topk.Run().value()) {
      std::printf("  facility %u  score=%.2f  costs=%s\n", entry.facility,
                  entry.score, entry.costs.ToString().c_str());
    }
    std::printf("\n");
  }

  // --- Part 2: the unified API (api::QuerySpec -> QueryService) --------
  //
  // One value type expresses all three query kinds plus preference
  // constraints; the same spec also travels over the api/wire protocol
  // (see examples/query_server.cpp for the TCP side).
  exec::ServiceOptions options;
  options.num_workers = 2;
  options.pool_frames_per_worker = 8;
  auto service = exec::QueryService::Create(&disk, files, options).value();

  // The full skyline, as a spec.
  {
    exec::QueryResult result =
        service->Submit(api::SkylineSpec(q)).get();
    std::printf("skyline via QuerySpec: %zu facilities, hash %016llx\n",
                result.skyline.size(),
                static_cast<unsigned long long>(result.result_hash));
  }

  // The same skyline under a budget: dollars capped at 1.50. Constraints
  // are applied server-side as a post-dominance filter.
  {
    api::QuerySpec spec = api::SkylineSpec(q);
    spec.preference.constraints.cost_caps = {
        std::numeric_limits<double>::infinity(), 1.5};
    exec::QueryResult result = service->Submit(spec).get();
    std::printf("skyline with dollars <= 1.50: %zu facilities\n",
                result.skyline.size());
    for (const auto& e : result.skyline) {
      std::printf("  facility %u  costs=%s\n", e.facility,
                  e.costs.ToString().c_str());
    }
  }

  // Malformed specs come back as Status errors, never crashes.
  {
    exec::QueryResult bad =
        service->Submit(api::TopKSpec(q, 2, {0.7})).get();
    std::printf("malformed spec -> %s\n\n", bad.status.ToString().c_str());
  }

  // A streaming incremental session: one pinned engine server-side, one
  // more ranked batch per Next — ask for as many as you end up needing.
  {
    exec::SessionId session =
        service->OpenSession(api::IncrementalSpec(q, 1, {0.5, 0.5}))
            .value();
    std::printf("incremental session (50/50 weights), batches of 1:\n");
    int rank = 1;
    for (;;) {
      exec::QueryResult batch = service->SessionNext(session, 1).get();
      if (!batch.status.ok()) {
        std::printf("  session ended: %s\n", batch.status.ToString().c_str());
        break;
      }
      for (const auto& row : batch.topk) {
        std::printf("  #%d facility %u  score=%.2f\n", rank++, row.facility,
                    row.score);
      }
      if (batch.exhausted) break;
    }
    (void)service->CloseSession(session);
  }
  service->Shutdown();
  return 0;
}
