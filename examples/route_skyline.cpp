// Route skylines: all Pareto-optimal routes between two points of a
// multi-cost network (the MCPP problem of paper §II-D, after Martins 1984).
// Complements the facility skyline: instead of "which destinations are
// defensible", it answers "which ways of getting there are defensible".
//
//   ./examples/route_skyline [nodes]
#include <cstdio>
#include <cstdlib>

#include "mcn/mcn.h"

int main(int argc, char** argv) {
  using namespace mcn;
  uint32_t nodes =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1500;

  // cost 0 = minutes, cost 1 = dollars; anti-correlated fields give real
  // trade-offs (toll highways vs slow free roads).
  gen::RoadNetworkOptions road;
  road.target_nodes = nodes;
  road.target_edges = static_cast<uint32_t>(nodes * 1.27);
  road.seed = 5;
  auto topo = gen::GenerateRoadNetwork(road).value();
  gen::CostGenOptions costs;
  costs.num_costs = 2;
  costs.distribution = gen::CostDistribution::kAntiCorrelated;
  costs.seed = 6;
  auto g = gen::BuildMultiCostGraph(topo, costs).value();

  // Far-apart endpoints: lowest-id and highest-id node (spatially sorted by
  // the generator, so these are on opposite sides of the city).
  graph::NodeId source = 0;
  graph::NodeId target = g.num_nodes() - 1;

  mcpp::McppStats stats;
  auto paths = mcpp::ParetoShortestPaths(g, source, target, {}, &stats);
  if (!paths.ok()) {
    std::fprintf(stderr, "MCPP failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu Pareto-optimal routes from node %u to node %u\n",
              paths->size(), source, target);
  std::printf("(%llu labels created, %llu settled, %llu dominance "
              "checks)\n\n",
              static_cast<unsigned long long>(stats.labels_created),
              static_cast<unsigned long long>(stats.labels_settled),
              static_cast<unsigned long long>(stats.dominance_checks));
  std::printf("  %-8s %12s %12s %8s\n", "route", "minutes", "dollars",
              "hops");
  for (size_t i = 0; i < paths->size(); ++i) {
    const mcpp::ParetoPath& p = (*paths)[i];
    std::printf("  #%-7zu %12.2f %12.2f %8zu\n", i + 1, p.costs[0],
                p.costs[1], p.nodes.size() - 1);
  }

  // Sanity: the two single-criterion optima bracket the Pareto set.
  auto fastest = expand::ShortestPath(g, 0, source, target).value();
  auto cheapest = expand::ShortestPath(g, 1, source, target).value();
  std::printf("\nfastest-only route:  %.2f minutes\n", fastest.cost);
  std::printf("cheapest-only route: %.2f dollars\n", cheapest.cost);
  std::printf("every Pareto route trades between those extremes.\n");
  return 0;
}
