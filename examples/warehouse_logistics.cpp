// The paper's introductory logistics scenario (§I, Fig. 1): goods move from
// a port to one of many candidate warehouses. Sensitive goods need the
// fastest route; non-sensitive goods the cheapest. Warehouses that are both
// slower AND more expensive to reach than another are never a good choice —
// the MCN skyline returns exactly the defensible candidates, and a top-k
// query ranks them once the sensitive/non-sensitive mix is known.
//
//   ./examples/warehouse_logistics [num_warehouses]
#include <cstdio>
#include <cstdlib>

#include "mcn/mcn.h"

int main(int argc, char** argv) {
  using namespace mcn;
  uint32_t num_warehouses =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 400;

  // A generated city with two cost types per road segment:
  //   cost 0 = driving minutes, cost 1 = monetary cost (tolls, fuel).
  // Anti-correlated fields mimic toll highways: fast where expensive.
  gen::ExperimentConfig config;
  config.nodes = 6000;
  config.edges = 7647;
  config.facilities = num_warehouses;
  config.clusters = 5;  // industrial zones
  config.num_costs = 2;
  config.distribution = gen::CostDistribution::kAntiCorrelated;
  config.buffer_pct = 1.0;
  config.seed = 99;
  auto instance = gen::BuildInstance(config).value();

  // The port: a fixed location in the network.
  Random rng(7);
  graph::Location port = instance->RandomQueryLocation(rng);
  std::printf("port at %s; %u candidate warehouses\n\n",
              port.ToString().c_str(), num_warehouses);

  // --- Skyline: every warehouse not dominated in (minutes, dollars) -----
  auto engine = expand::CeaEngine::Create(instance->reader.get(), port)
                    .value();
  algo::SkylineQuery skyline(engine.get());
  auto candidates = skyline.ComputeAll().value();
  std::printf("%zu warehouses on the time/money skyline:\n",
              candidates.size());
  std::printf("  %-10s %12s %12s\n", "warehouse", "minutes", "dollars");
  for (const auto& entry : candidates) {
    std::printf("  %-10u %12.2f %12.2f\n", entry.facility,
                (entry.known_mask & 1u) ? entry.costs[0] : -1.0,
                (entry.known_mask & 2u) ? entry.costs[1] : -1.0);
  }
  std::printf("  (-1.00 = not computed: the algorithm confirmed skyline\n"
              "   membership without needing that cost)\n\n");

  // --- Top-3 when 90%% of shipments are time-sensitive ------------------
  auto engine2 = expand::CeaEngine::Create(instance->reader.get(), port)
                     .value();
  algo::TopKOptions opts;
  opts.k = 3;
  algo::TopKQuery topk(engine2.get(), algo::WeightedSum({0.9, 0.1}), opts);
  auto best = topk.Run().value();
  std::printf("top-3 for f = 0.9*minutes + 0.1*dollars:\n");
  for (const auto& entry : best) {
    std::printf("  warehouse %-6u score=%8.2f  (%.1f min, %.2f $)\n",
                entry.facility, entry.score, entry.costs[0],
                entry.costs[1]);
  }

  // --- Show the actual fastest route to the winner ----------------------
  if (!best.empty()) {
    const auto& winner = best[0];
    const graph::Facility& fac = instance->facilities[winner.facility];
    const graph::EdgeRecord& er = instance->graph.edge(fac.edge);
    // Route from the port edge's nearer endpoint to the warehouse edge's
    // nearer endpoint, w.r.t. driving minutes.
    graph::NodeId from = port.is_node() ? port.node() : port.edge().u;
    auto path = expand::ShortestPath(instance->graph, /*cost=*/0, from,
                                     er.u);
    if (path.ok()) {
      std::printf("\nfastest route to warehouse %u (%zu nodes, %.1f min "
                  "to the warehouse's street):\n  ",
                  winner.facility, path->nodes.size(), path->cost);
      for (size_t i = 0; i < path->nodes.size(); ++i) {
        if (i > 0) std::printf(" -> ");
        if (i == 8 && path->nodes.size() > 12) {
          std::printf("... -> %u", path->nodes.back());
          break;
        }
        std::printf("%u", path->nodes[i]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
