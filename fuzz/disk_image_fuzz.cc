// libFuzzer entry point for the disk-image target (MCN_FUZZ=ON builds).
#include <cstddef>
#include <cstdint>

#include "fuzz/disk_image_target.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (!mcn::fuzz::RunDiskImageTarget(data, size)) {
    __builtin_trap();  // surface the violation as a libFuzzer crash
  }
  return 0;
}
