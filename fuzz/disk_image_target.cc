#include "fuzz/disk_image_target.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "mcn/net/landmark_index.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/persistence.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::fuzz {
namespace {

uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Drives the MLI1 header parser over file `f` of a parsed image. The
/// catalog metadata normally comes from net::catalog; here it is
/// reconstructed from the (untrusted) header page so Validate exercises
/// its full check sequence instead of failing the catalog comparison.
void ProbeAsLandmarkIndex(storage::DiskManager* disk, storage::FileId f) {
  auto page = disk->PageData(storage::PageId{f, 0});
  if (!page.ok()) return;
  storage::SlottedPageReader reader(*page);
  if (reader.count() < 1) return;
  auto rec = reader.TryRecord(0);
  if (!rec.ok() || rec->size() < 24) return;
  net::LandmarkIndexFiles files;
  files.file = f;
  files.num_nodes = LoadU32(&(*rec)[8]);
  const uint32_t d = LoadU32(&(*rec)[12]);
  files.num_landmarks = LoadU32(&(*rec)[16]);
  files.records_per_page = LoadU32(&(*rec)[20]);
  auto pages = disk->NumPages(f);
  files.num_pages = pages.ok() ? *pages : 0;
  // A real index has a handful of cost dimensions; an implausible count
  // would only size the probe buffer, not find new parser states.
  if (d > 64 || files.num_landmarks > 4096) return;
  files.num_costs = static_cast<int>(d);
  net::LandmarkIndexReader index(disk, files);
  if (!index.Validate().ok()) return;
  if (files.num_nodes == 0) return;
  std::vector<float> row(static_cast<size_t>(d) * files.num_landmarks);
  (void)index.LoadNodeRow(0, row.data());
}

}  // namespace

bool RunDiskImageTarget(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto disk = storage::LoadDiskImageFromBuffer(bytes);
  if (!disk.ok()) return true;
  for (storage::FileId f = 0; f < disk->num_files(); ++f) {
    (void)shard::ReadRoutingTable(*disk, f);
    ProbeAsLandmarkIndex(&*disk, f);
  }
  return true;
}

bool DiskImageParses(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  return storage::LoadDiskImageFromBuffer(bytes).ok();
}

}  // namespace mcn::fuzz
