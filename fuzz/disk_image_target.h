// Fuzz target for the persisted storage formats, shared between the
// libFuzzer entry point (disk_image_fuzz.cc) and the seed corpus replay
// test (tests/fuzz_corpus_replay_test.cc).
//
// The input is treated as a full MCNDISK1 disk image and parsed through
// storage::LoadDiskImageFromBuffer. When the image parses, every file in
// it is additionally probed as a routing table (shard::ReadRoutingTable)
// and as an MLI1 landmark index (net::LandmarkIndexReader::Validate plus
// one LoadNodeRow), so the nested header parsers see the fuzzer's bytes
// too. All three layers must reject malformed input with a Status —
// never a crash, CHECK failure, or out-of-bounds access.
#ifndef MCN_FUZZ_DISK_IMAGE_TARGET_H_
#define MCN_FUZZ_DISK_IMAGE_TARGET_H_

#include <cstddef>
#include <cstdint>

namespace mcn::fuzz {

/// Returns true when every parser rejected or accepted the input
/// gracefully; the sanitizers catch the failure modes this target
/// exists for, so the return value only reports explicit violations.
bool RunDiskImageTarget(const uint8_t* data, size_t size);

/// True when the input parses as a disk image — the replay test uses it
/// to assert the seeds are meaningful.
bool DiskImageParses(const uint8_t* data, size_t size);

}  // namespace mcn::fuzz

#endif  // MCN_FUZZ_DISK_IMAGE_TARGET_H_
