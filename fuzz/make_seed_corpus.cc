// Regenerates the checked-in fuzz seed corpora (fuzz/corpus/{wire,disk})
// from the real encoders, so every seed is a valid instance of its format
// and deep parser states (session frames, metrics snapshots, landmark
// index pages, routing tables) are reachable from the first fuzz cycle.
//
//   make_seed_corpus <corpus-root>
//
// writes <corpus-root>/wire/* (frame payloads, no length prefix) and
// <corpus-root>/disk/* (full MCNDISK1 images). Output is deterministic;
// rerun it and commit the result whenever a format changes.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "mcn/api/wire.h"
#include "mcn/common/macros.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/landmark_index.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/persistence.h"
#include "mcn/storage/slotted_page.h"

namespace mcn {
namespace {

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MCN_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  MCN_CHECK(out.good());
}

/// Drops the u32 length prefix: fuzz inputs are frame payloads.
std::string Payload(const std::string& frame) { return frame.substr(4); }

void WriteWireSeeds(const std::filesystem::path& dir) {
  using api::MsgType;
  const graph::Location at = graph::Location::AtNode(7);

  api::WireRequest execute;
  execute.type = MsgType::kExecute;
  execute.spec = api::SkylineSpec(at);
  WriteFile(dir / "request_execute_skyline",
            Payload(api::EncodeRequestFrame(execute)));

  api::WireRequest topk;
  topk.type = MsgType::kExecute;
  topk.spec = api::TopKSpec(at, 4, {0.25, 0.75});
  topk.spec.parallelism = 4;
  topk.spec.deadline_ms = 250;
  topk.spec.preference.constraints.cost_caps = {50.0, 90.0};
  WriteFile(dir / "request_execute_topk",
            Payload(api::EncodeRequestFrame(topk)));

  api::WireRequest open;
  open.type = MsgType::kOpenSession;
  open.spec = api::IncrementalSpec(at, 8, {0.5, 0.5});
  WriteFile(dir / "request_open_session",
            Payload(api::EncodeRequestFrame(open)));

  api::WireRequest next;
  next.type = MsgType::kNext;
  next.session_id = 3;
  next.batch_n = 8;
  WriteFile(dir / "request_next", Payload(api::EncodeRequestFrame(next)));

  api::WireRequest close;
  close.type = MsgType::kCloseSession;
  close.session_id = 3;
  WriteFile(dir / "request_close_session",
            Payload(api::EncodeRequestFrame(close)));

  api::WireRequest metrics;
  metrics.type = MsgType::kGetMetrics;
  WriteFile(dir / "request_get_metrics",
            Payload(api::EncodeRequestFrame(metrics)));

  api::WireRequest trace;
  trace.type = MsgType::kGetTrace;
  WriteFile(dir / "request_get_trace",
            Payload(api::EncodeRequestFrame(trace)));

  api::WireResponse result;
  result.type = MsgType::kResponse;
  result.response.kind = api::QueryKind::kTopK;
  result.response.topk = {{2, {10.0, 20.0}, 15.0}, {5, {12.0, 18.0}, 15.5}};
  result.response.RehashRows();
  result.response.buffer_misses = 17;
  result.response.buffer_accesses = 123;
  result.response.exhausted = true;
  WriteFile(dir / "response_topk",
            Payload(api::EncodeResponseFrame(result)));

  api::WireResponse failed;
  failed.type = MsgType::kResponse;
  failed.response.status = Status::DeadlineExceeded("query deadline");
  WriteFile(dir / "response_failed",
            Payload(api::EncodeResponseFrame(failed)));

  api::WireResponse opened;
  opened.type = MsgType::kSessionOpened;
  opened.session_id = 3;
  WriteFile(dir / "response_session_opened",
            Payload(api::EncodeResponseFrame(opened)));

  api::WireResponse closed;
  closed.type = MsgType::kSessionClosed;
  closed.status = Status::NotFound("no such session");
  WriteFile(dir / "response_session_closed",
            Payload(api::EncodeResponseFrame(closed)));

  api::WireResponse metrics_resp;
  metrics_resp.type = MsgType::kMetrics;
  metrics_resp.snapshot.counters = {{"mcn_queries_total", 42}};
  metrics_resp.snapshot.gauges = {{"mcn_sessions_open", 2.0}};
  WriteFile(dir / "response_metrics",
            Payload(api::EncodeResponseFrame(metrics_resp)));

  api::WireResponse trace_resp;
  trace_resp.type = MsgType::kTrace;
  trace_resp.trace_json = "{\"traceEvents\": []}\n";
  WriteFile(dir / "response_trace",
            Payload(api::EncodeResponseFrame(trace_resp)));
}

/// A 6-node, 2-cost ring with a chord: big enough for two landmarks.
graph::MultiCostGraph SeedGraph() {
  graph::MultiCostGraph g(2);
  for (int i = 0; i < 6; ++i) {
    g.AddNode(static_cast<double>(i), 0.0);
  }
  auto edge = [&g](graph::NodeId a, graph::NodeId b, double c0, double c1) {
    MCN_CHECK(g.AddEdge(a, b, {c0, c1}).ok());
  };
  edge(0, 1, 1.0, 4.0);
  edge(1, 2, 2.0, 1.0);
  edge(2, 3, 1.0, 2.0);
  edge(3, 4, 3.0, 1.0);
  edge(4, 5, 1.0, 1.0);
  edge(5, 0, 2.0, 2.0);
  edge(1, 4, 5.0, 1.0);
  g.Finalize();
  return g;
}

void WriteDiskSeeds(const std::filesystem::path& dir) {
  {
    storage::DiskManager empty;
    MCN_CHECK(storage::SaveDiskImage(empty, dir / "image_empty").ok());
  }
  {
    storage::DiskManager disk;
    storage::FileId f = disk.CreateFile("adjacency");
    for (int p = 0; p < 3; ++p) {
      auto page = disk.AllocatePage(f);
      MCN_CHECK(page.ok());
      std::vector<std::byte> bytes(storage::kPageSize,
                                   std::byte{static_cast<unsigned char>(p)});
      MCN_CHECK(disk.WritePage({f, *page}, bytes.data()).ok());
    }
    disk.CreateFile("");  // empty name, zero pages: a legal edge case
    MCN_CHECK(storage::SaveDiskImage(disk, dir / "image_plain_files").ok());
  }
  {
    // Landmark index + routing table on one disk: both nested headers in
    // one seed.
    const graph::MultiCostGraph g = SeedGraph();
    storage::DiskManager disk;
    const std::vector<graph::NodeId> landmarks =
        net::SelectLandmarks(g, 2, 1, {});
    auto index = net::BuildLandmarkIndex(&disk, g, landmarks, "landmarks");
    MCN_CHECK(index.ok());
    shard::Partition partition;
    partition.num_shards = 2;
    partition.node_shard = {0, 0, 0, 1, 1, 1};
    auto routing =
        shard::WriteRoutingTable(&disk, partition, {0, 1, 1});
    MCN_CHECK(routing.ok());
    MCN_CHECK(storage::SaveDiskImage(disk, dir / "image_indexed").ok());
  }
  {
    // Regression seeds for the findings the fuzz-target audit surfaced:
    // a slotted record whose directory entry overruns the page (now
    // Corruption via SlottedPageReader::TryRecord, previously a CHECK
    // abort) and an MLI1 header with records_per_page == 0 (previously a
    // division by zero in LoadNodeRow).
    storage::DiskManager disk;
    storage::FileId bad_slot = disk.CreateFile("bad_slot");
    auto page = disk.AllocatePage(bad_slot);
    MCN_CHECK(page.ok());
    std::vector<std::byte> bytes(storage::kPageSize, std::byte{0});
    auto put_u16 = [&bytes](size_t at, uint16_t v) {
      std::memcpy(bytes.data() + at, &v, sizeof(v));
    };
    put_u16(0, 1);       // slot_count
    put_u16(2, 0xFFF0);  // free_end (nonsense)
    put_u16(4, 0xFFF0);  // slot 0 offset: past the page with...
    put_u16(6, 0x0100);  // ...a length that overruns it
    MCN_CHECK(disk.WritePage({bad_slot, *page}, bytes.data()).ok());

    storage::FileId rpp0 = disk.CreateFile("rpp0_index");
    page = disk.AllocatePage(rpp0);
    MCN_CHECK(page.ok());
    std::fill(bytes.begin(), bytes.end(), std::byte{0});
    storage::SlottedPageBuilder builder(bytes.data());
    std::vector<std::byte> header(28, std::byte{0});
    auto put_u32 = [&header](size_t at, uint32_t v) {
      std::memcpy(header.data() + at, &v, sizeof(v));
    };
    put_u32(0, 0x31494C4Du);  // 'MLI1'
    put_u32(4, 1);            // version
    put_u32(8, 6);            // num_nodes
    put_u32(12, 2);           // num_costs
    put_u32(16, 1);           // num_landmarks
    put_u32(20, 0);           // records_per_page: the regression
    put_u32(24, 3);           // landmark id
    MCN_CHECK(builder.TryAppend(header, nullptr));
    MCN_CHECK(disk.WritePage({rpp0, *page}, bytes.data()).ok());
    MCN_CHECK(storage::SaveDiskImage(disk, dir / "image_regression").ok());
  }
}

}  // namespace
}  // namespace mcn

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  std::filesystem::create_directories(root / "wire");
  std::filesystem::create_directories(root / "disk");
  mcn::WriteWireSeeds(root / "wire");
  mcn::WriteDiskSeeds(root / "disk");
  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
