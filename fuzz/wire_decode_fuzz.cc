// libFuzzer entry point for the wire decoder target (MCN_FUZZ=ON builds).
#include <cstddef>
#include <cstdint>

#include "fuzz/wire_decode_target.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (!mcn::fuzz::RunWireDecodeTarget(data, size)) {
    __builtin_trap();  // surface the violation as a libFuzzer crash
  }
  return 0;
}
