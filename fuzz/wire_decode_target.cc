#include "fuzz/wire_decode_target.h"

#include <cstdio>
#include <string>
#include <string_view>

#include "mcn/api/wire.h"

namespace mcn::fuzz {
namespace {

/// Frame payload produced by an Encode*Frame call (strips the u32 length
/// prefix).
std::string_view FramePayload(const std::string& frame) {
  return std::string_view(frame).substr(4);
}

bool CheckCanonical(const char* what, const std::string& payload,
                    std::string_view reencoded) {
  if (reencoded == payload) return true;
  std::fprintf(stderr,
               "wire_decode_target: %s decode accepted a non-canonical "
               "payload (%zu in, %zu re-encoded)\n",
               what, payload.size(), reencoded.size());
  return false;
}

}  // namespace

bool RunWireDecodeTarget(const uint8_t* data, size_t size) {
  const std::string payload(reinterpret_cast<const char*>(data), size);

  if (auto request = api::DecodeRequestPayload(payload); request.ok()) {
    const std::string frame = api::EncodeRequestFrame(*request);
    if (!CheckCanonical("request", payload, FramePayload(frame))) {
      return false;
    }
  }

  if (auto response = api::DecodeResponsePayload(payload); response.ok()) {
    // TryEncode: a decoded response is bounded by the input frame, but the
    // encoder's size check must still come back as Status, not CHECK.
    auto frame = api::TryEncodeResponseFrame(*response);
    if (!frame.ok()) {
      std::fprintf(stderr,
                   "wire_decode_target: decoded response failed to "
                   "re-encode: %s\n",
                   frame.status().message().c_str());
      return false;
    }
    if (!CheckCanonical("response", payload, FramePayload(*frame))) {
      return false;
    }
  }

  return true;
}

bool WireInputDecodes(const uint8_t* data, size_t size) {
  const std::string payload(reinterpret_cast<const char*>(data), size);
  return api::DecodeRequestPayload(payload).ok() ||
         api::DecodeResponsePayload(payload).ok();
}

}  // namespace mcn::fuzz
