// Fuzz target for the wire protocol decoders (api/wire.h), shared between
// the libFuzzer entry point (wire_decode_fuzz.cc) and the checked-in seed
// corpus replay test (tests/fuzz_corpus_replay_test.cc).
//
// The input is treated as one frame *payload* (the bytes after the u32
// length prefix) and fed to both DecodeRequestPayload and
// DecodeResponsePayload. A decode is allowed to reject the input with a
// Status; it must never crash, and when it accepts, re-encoding the
// decoded value must reproduce the input byte-for-byte (the canonical
// encoding invariant the result cache keys on).
#ifndef MCN_FUZZ_WIRE_DECODE_TARGET_H_
#define MCN_FUZZ_WIRE_DECODE_TARGET_H_

#include <cstddef>
#include <cstdint>

namespace mcn::fuzz {

/// Returns true when every invariant held on this input (a clean decode
/// rejection counts as held); false on a canonicality violation, with a
/// diagnostic on stderr.
bool RunWireDecodeTarget(const uint8_t* data, size_t size);

/// True when DecodeRequestPayload or DecodeResponsePayload accepts the
/// input — the replay test uses it to assert the seeds are meaningful.
bool WireInputDecodes(const uint8_t* data, size_t size);

}  // namespace mcn::fuzz

#endif  // MCN_FUZZ_WIRE_DECODE_TARGET_H_
