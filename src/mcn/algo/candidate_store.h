// CandidateStore: dense per-query bookkeeping for the facilities a
// preference query has encountered (the paper's candidate set CS plus
// reported/eliminated records). Replaces the per-pop unordered_map lookups
// of the original implementation with
//
//  * a FacilityId-indexed slot directory (`slot_of_`, one u32 per facility
//    in the network — the expansions already keep per-facility arrays of
//    the same size, so this adds no asymptotic memory),
//  * compact slot records appended in first-seen order, cost rows stored
//    contiguously (one CostVector per slot) so dominance sweeps stream
//    through memory instead of chasing hash buckets, and
//  * two intrusive swap-erase lists — the live candidate list and the
//    non-pinned skyline list — so sweeps touch only the records that can
//    still change state, never the full map (DESIGN.md §4).
//
// The store is shared by SkylineQuery, TopKQuery and IncrementalTopK; the
// algorithms own the state-transition logic and tell the store which lists
// a slot belongs to.
#ifndef MCN_ALGO_CANDIDATE_STORE_H_
#define MCN_ALGO_CANDIDATE_STORE_H_

#include <cstdint>
#include <vector>

#include "mcn/common/macros.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::algo {

class CandidateStore {
 public:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Per-slot record. Cost rows live in a parallel array (`costs()`), so
  /// this stays small and sweep loops that only read flags stay dense.
  struct Slot {
    graph::FacilityId id = 0;
    uint32_t known_mask = 0;
    uint8_t known_count = 0;
    bool in_result = false;
    bool eliminated = false;
    bool pinned = false;
    bool pending = false;
    uint32_t cand_pos = kNoSlot;  ///< position in candidates(), or kNoSlot
    uint32_t sky_pos = kNoSlot;   ///< position in sky_unpinned(), or kNoSlot

    bool Knows(int i) const { return (known_mask >> i) & 1u; }
  };

  CandidateStore(uint32_t num_facilities, int d, double fill)
      : d_(d), fill_(fill), slot_of_(num_facilities, kNoSlot) {
    slots_.reserve(64);
    costs_.reserve(64);
  }

  int dim() const { return d_; }
  uint32_t size() const { return static_cast<uint32_t>(slots_.size()); }

  /// Slot of facility `f`, or kNoSlot when unseen.
  uint32_t Find(graph::FacilityId f) const {
    MCN_DCHECK(f < slot_of_.size());
    return slot_of_[f];
  }

  /// Slot of `f`, creating a fresh record (costs = fill) when unseen.
  uint32_t Acquire(graph::FacilityId f, bool* created) {
    MCN_DCHECK(f < slot_of_.size());
    uint32_t s = slot_of_[f];
    if (s != kNoSlot) {
      *created = false;
      return s;
    }
    s = static_cast<uint32_t>(slots_.size());
    slot_of_[f] = s;
    slots_.emplace_back();
    slots_.back().id = f;
    costs_.emplace_back(d_, fill_);
    *created = true;
    return s;
  }

  Slot& slot(uint32_t s) { return slots_[s]; }
  const Slot& slot(uint32_t s) const { return slots_[s]; }
  graph::CostVector& costs(uint32_t s) { return costs_[s]; }
  const graph::CostVector& costs(uint32_t s) const { return costs_[s]; }

  /// Records cost type `i` of slot `s` (must not be known yet).
  void SetCost(uint32_t s, int i, double cost) {
    Slot& st = slots_[s];
    MCN_DCHECK(!st.Knows(i));
    costs_[s][i] = cost;
    st.known_mask |= 1u << i;
    ++st.known_count;
  }

  // Live candidate list (the paper's CS): slots swap-erase in O(1); sweep
  // loops iterate `candidates()` by index and must not advance after an
  // erase of the current position (the swapped-in tail lands there).
  const std::vector<uint32_t>& candidates() const { return candidates_; }
  int num_candidates() const { return static_cast<int>(candidates_.size()); }

  void AddCandidate(uint32_t s) {
    Slot& st = slots_[s];
    MCN_DCHECK(st.cand_pos == kNoSlot);
    st.cand_pos = static_cast<uint32_t>(candidates_.size());
    candidates_.push_back(s);
  }

  void RemoveCandidate(uint32_t s) {
    Slot& st = slots_[s];
    MCN_DCHECK(st.cand_pos != kNoSlot);
    uint32_t pos = st.cand_pos;
    uint32_t moved = candidates_.back();
    candidates_[pos] = moved;
    slots_[moved].cand_pos = pos;
    candidates_.pop_back();
    st.cand_pos = kNoSlot;
  }

  // Non-pinned skyline list (skyline queries only): directly-reported
  // first NNs whose dominance power must be retained until they are pinned
  // (DESIGN.md §3).
  const std::vector<uint32_t>& sky_unpinned() const { return sky_unpinned_; }

  void AddSkyUnpinned(uint32_t s) {
    Slot& st = slots_[s];
    MCN_DCHECK(st.sky_pos == kNoSlot);
    st.sky_pos = static_cast<uint32_t>(sky_unpinned_.size());
    sky_unpinned_.push_back(s);
  }

  void RemoveSkyUnpinned(uint32_t s) {
    Slot& st = slots_[s];
    MCN_DCHECK(st.sky_pos != kNoSlot);
    uint32_t pos = st.sky_pos;
    uint32_t moved = sky_unpinned_.back();
    sky_unpinned_[pos] = moved;
    slots_[moved].sky_pos = pos;
    sky_unpinned_.pop_back();
    st.sky_pos = kNoSlot;
  }

 private:
  int d_;
  double fill_;
  std::vector<uint32_t> slot_of_;
  std::vector<Slot> slots_;
  std::vector<graph::CostVector> costs_;
  std::vector<uint32_t> candidates_;
  std::vector<uint32_t> sky_unpinned_;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_CANDIDATE_STORE_H_
