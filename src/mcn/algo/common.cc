#include "mcn/algo/common.h"

#include "mcn/common/macros.h"

namespace mcn::algo {

AggregateFn WeightedSum(std::vector<double> weights) {
  for (double w : weights) MCN_CHECK(w >= 0.0);
  return [weights = std::move(weights)](const graph::CostVector& c) {
    MCN_DCHECK(c.dim() == static_cast<int>(weights.size()));
    double sum = 0.0;
    for (int i = 0; i < c.dim(); ++i) {
      // Skip zero weights so that +inf placeholder costs (lower-bound
      // vectors, unreachable facilities) do not produce 0 * inf = NaN.
      if (weights[i] > 0.0) sum += weights[i] * c[i];
    }
    return sum;
  };
}

}  // namespace mcn::algo
