// Shared types for the MCN preference-query algorithms (paper §IV/§V).
#ifndef MCN_ALGO_COMMON_H_
#define MCN_ALGO_COMMON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mcn/expand/dijkstra.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::algo {

/// Aggregate cost function f over a (complete) cost vector. Must be
/// increasingly monotone: componentwise <= implies f <= (paper §III).
using AggregateFn = std::function<double(const graph::CostVector&)>;

/// The paper's experimental aggregate: f(p) = sum_i alpha_i * c_i(p).
AggregateFn WeightedSum(std::vector<double> weights);

/// Multiplexing policy for the d expansions. The paper argues for
/// round-robin (Fig. 4); the others exist for the ablation benchmark.
enum class ProbePolicy { kRoundRobin, kSmallestFrontier, kLargestFrontier };

/// A skyline answer. `known_mask` marks which costs had been computed by the
/// time the entry was retrieved — the algorithms may confirm a facility
/// without ever completing its vector (paper §IV-A enhancements).
struct SkylineEntry {
  graph::FacilityId facility = 0;
  graph::CostVector costs;
  uint32_t known_mask = 0;
};

/// A top-k answer (vectors of pinned facilities are always complete).
struct TopKEntry {
  graph::FacilityId facility = 0;
  graph::CostVector costs;
  double score = 0.0;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_COMMON_H_
