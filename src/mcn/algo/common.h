// Shared types for the MCN preference-query algorithms (paper §IV/§V).
#ifndef MCN_ALGO_COMMON_H_
#define MCN_ALGO_COMMON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mcn/expand/dijkstra.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::expand {
class ParallelProbeScheduler;
}  // namespace mcn::expand

namespace mcn::net {
class LandmarkIndexReader;
}  // namespace mcn::net

namespace mcn::algo {

/// Aggregate cost function f over a (complete) cost vector. Must be
/// increasingly monotone: componentwise <= implies f <= (paper §III).
using AggregateFn = std::function<double(const graph::CostVector&)>;

/// Intra-query execution knobs shared by the three query processors
/// (DESIGN.md §7). Defaults select the classic per-probe serial schedule.
struct QueryOptions {
  /// Requested d-expansion parallelism. 0 = classic serial probing (the
  /// scheduler is ignored); >= 1 = the deterministic turn-barrier schedule
  /// driven through `scheduler` — 1 executes turns inline on the caller
  /// thread, > 1 concurrently on the scheduler's probe pool. Every value
  /// >= 1 yields byte-identical results and logical I/O counts; the thread
  /// count only changes how much physical I/O overlaps.
  int parallelism = 0;
  /// Required when parallelism >= 1; must be bound to the same engine the
  /// query runs on (wired by exec::ExpansionExecutor or the caller).
  expand::ParallelProbeScheduler* scheduler = nullptr;
  /// Settled elements per expansion per round-robin turn: amortizes the
  /// turn barrier over several (near-equal-I/O) probe steps. Part of the
  /// schedule — changing it changes the deterministic event order, so
  /// parity comparisons must hold it fixed. Ignored by the width-1
  /// ablation policies and the drain stage.
  int turn_stride = 8;
  /// Optional landmark lower-bound index (DESIGN.md §12). Must be validated
  /// and outlive the query; non-null arms the skyline prune oracle on
  /// serial round-robin runs (other schedules ignore it). Pruning is exact:
  /// results and report order are byte-identical with or without it.
  net::LandmarkIndexReader* landmark_index = nullptr;
};

/// The paper's experimental aggregate: f(p) = sum_i alpha_i * c_i(p).
AggregateFn WeightedSum(std::vector<double> weights);

/// Multiplexing policy for the d expansions. The paper argues for
/// round-robin (Fig. 4); the others exist for the ablation benchmark.
enum class ProbePolicy { kRoundRobin, kSmallestFrontier, kLargestFrontier };

/// A skyline answer. `known_mask` marks which costs had been computed by the
/// time the entry was retrieved — the algorithms may confirm a facility
/// without ever completing its vector (paper §IV-A enhancements).
struct SkylineEntry {
  graph::FacilityId facility = 0;
  graph::CostVector costs;
  uint32_t known_mask = 0;
};

/// A top-k answer (vectors of pinned facilities are always complete).
struct TopKEntry {
  graph::FacilityId facility = 0;
  graph::CostVector costs;
  double score = 0.0;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_COMMON_H_
