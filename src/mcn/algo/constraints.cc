#include "mcn/algo/constraints.h"

#include <cmath>
#include <cstdint>
#include <string>

namespace mcn::algo {

namespace {

/// True when every capped, known component of `costs` is within bounds.
/// `known_mask` bit j marks component j as computed; top-k rows pass the
/// all-ones mask (their vectors are always complete).
bool WithinCaps(const std::vector<double>& caps,
                const graph::CostVector& costs, uint32_t known_mask) {
  const int d = costs.dim();
  for (int j = 0; j < d && j < static_cast<int>(caps.size()); ++j) {
    if ((known_mask >> j) & 1u) {
      if (costs[j] > caps[j]) return false;
    }
  }
  return true;
}

/// (1+epsilon)-dominance on the components known in both rows: `a` must be
/// within the relaxed bound on every comparable component and strictly
/// comparable on at least one (rows with disjoint known sets never thin
/// each other).
bool EpsilonDominates(double epsilon, const SkylineEntry& a,
                      const SkylineEntry& b) {
  const uint32_t both = a.known_mask & b.known_mask;
  if (both == 0) return false;
  const int d = a.costs.dim();
  for (int j = 0; j < d; ++j) {
    if (!((both >> j) & 1u)) continue;
    if (a.costs[j] > (1.0 + epsilon) * b.costs[j]) return false;
  }
  return true;
}

}  // namespace

Status ValidateWeights(const std::vector<double>& weights, int num_costs) {
  if (static_cast<int>(weights.size()) != num_costs) {
    return Status::InvalidArgument(
        "preference weights: expected " + std::to_string(num_costs) +
        " coefficients, got " + std::to_string(weights.size()));
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] < 0.0) {
      return Status::InvalidArgument(
          "preference weights: coefficient " + std::to_string(i) +
          " must be finite and >= 0");
    }
  }
  return Status::OK();
}

Status ValidateConstraints(const PreferenceConstraints& constraints,
                           int num_costs, bool skyline) {
  if (!std::isfinite(constraints.epsilon) || constraints.epsilon < 0.0) {
    return Status::InvalidArgument(
        "constraints: epsilon must be finite and >= 0");
  }
  if (constraints.epsilon > 0.0 && !skyline) {
    return Status::InvalidArgument(
        "constraints: epsilon thinning applies to skyline queries only");
  }
  if (!constraints.cost_caps.empty() &&
      static_cast<int>(constraints.cost_caps.size()) != num_costs) {
    return Status::InvalidArgument(
        "constraints: expected " + std::to_string(num_costs) +
        " cost caps, got " + std::to_string(constraints.cost_caps.size()));
  }
  for (size_t j = 0; j < constraints.cost_caps.size(); ++j) {
    // +inf is the unbounded dimension; NaN and negative caps are malformed.
    if (std::isnan(constraints.cost_caps[j]) ||
        constraints.cost_caps[j] < 0.0) {
      return Status::InvalidArgument(
          "constraints: cost cap " + std::to_string(j) +
          " must be >= 0 (+inf = unbounded)");
    }
  }
  return Status::OK();
}

void ApplyConstraints(const PreferenceConstraints& constraints,
                      std::vector<SkylineEntry>* rows) {
  if (constraints.Unconstrained()) return;
  std::vector<SkylineEntry> kept;
  kept.reserve(rows->size());
  for (SkylineEntry& row : *rows) {
    if (!constraints.cost_caps.empty() &&
        !WithinCaps(constraints.cost_caps, row.costs, row.known_mask)) {
      continue;
    }
    if (constraints.epsilon > 0.0) {
      bool thinned = false;
      for (const SkylineEntry& prior : kept) {
        if (EpsilonDominates(constraints.epsilon, prior, row)) {
          thinned = true;
          break;
        }
      }
      if (thinned) continue;
    }
    kept.push_back(std::move(row));
  }
  *rows = std::move(kept);
}

void ApplyConstraints(const PreferenceConstraints& constraints,
                      std::vector<TopKEntry>* rows) {
  if (constraints.Unconstrained()) return;
  if (constraints.cost_caps.empty()) return;
  std::vector<TopKEntry> kept;
  kept.reserve(rows->size());
  for (TopKEntry& row : *rows) {
    if (WithinCaps(constraints.cost_caps, row.costs, ~0u)) {
      kept.push_back(std::move(row));
    }
  }
  *rows = std::move(kept);
}

bool PassesCaps(const PreferenceConstraints& constraints,
                const TopKEntry& row) {
  return constraints.cost_caps.empty() ||
         WithinCaps(constraints.cost_caps, row.costs, ~0u);
}

}  // namespace mcn::algo
