// Preference constraints (api_redesign): a post-dominance filter applied to
// finished query results, widening the preference surface beyond "skyline or
// weighted sum" (cf. ParetoPrep's per-dimension bounds and linear-preference
// route serving in PAPERS.md).
//
// Two constraint kinds compose:
//  * per-dimension cost caps — drop a row whose *known* cost in dimension j
//    exceeds cost_caps[j] (+inf = unbounded). Applies to every query kind.
//  * epsilon thinning (skyline only) — a row is dropped when an
//    earlier-reported kept row (1+epsilon)-dominates it on every component
//    known in both rows. The paper's exact skyline is the epsilon = 0 case.
//
// Contract: an unconstrained spec (empty caps, epsilon == 0) is a guaranteed
// no-op — the filtered result is the identical vector, so result hashes stay
// byte-identical to pre-API-redesign runs (the determinism anchor of every
// parity gate).
#ifndef MCN_ALGO_CONSTRAINTS_H_
#define MCN_ALGO_CONSTRAINTS_H_

#include <vector>

#include "mcn/algo/common.h"
#include "mcn/common/status.h"

namespace mcn::algo {

/// Value type carried by api::QuerySpec (and over the wire). Default
/// constructed = unconstrained.
struct PreferenceConstraints {
  /// Skyline-only relaxation factor, >= 0. 0 disables thinning.
  double epsilon = 0.0;
  /// Per-dimension upper bounds; empty = unconstrained, otherwise the size
  /// must equal the network's d (+inf entries are unbounded dimensions).
  std::vector<double> cost_caps;

  bool Unconstrained() const { return epsilon == 0.0 && cost_caps.empty(); }

  bool operator==(const PreferenceConstraints& o) const {
    return epsilon == o.epsilon && cost_caps == o.cost_caps;
  }
};

/// Validates `weights` as weighted-sum coefficients for a d-dimensional
/// network: exactly d entries, every entry finite and >= 0. This is the
/// Status-returning replacement for the MCN_CHECK/DCHECK path inside
/// algo::WeightedSum — services must reject malformed specs over the wire
/// instead of crashing a worker.
Status ValidateWeights(const std::vector<double>& weights, int num_costs);

/// Validates a constraint block against dimensionality `num_costs`;
/// `skyline` selects the query-kind rules (epsilon is skyline-only).
Status ValidateConstraints(const PreferenceConstraints& constraints,
                           int num_costs, bool skyline);

/// Applies caps + epsilon thinning to a finished skyline result, in place,
/// preserving report order. Exact no-op when unconstrained.
void ApplyConstraints(const PreferenceConstraints& constraints,
                      std::vector<SkylineEntry>* rows);

/// Applies caps to a finished (incremental) top-k result, in place,
/// preserving score order. Exact no-op when unconstrained.
void ApplyConstraints(const PreferenceConstraints& constraints,
                      std::vector<TopKEntry>* rows);

/// Per-row cap check for streaming consumers (incremental sessions filter
/// each NextBest result as it is pulled, so a batch still fills up to its
/// asked-for size under constraints). Always true when caps are empty.
bool PassesCaps(const PreferenceConstraints& constraints,
                const TopKEntry& row);

}  // namespace mcn::algo

#endif  // MCN_ALGO_CONSTRAINTS_H_
