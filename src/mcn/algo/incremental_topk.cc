#include "mcn/algo/incremental_topk.h"

#include <algorithm>

#include "mcn/algo/turn_dispatch.h"
#include "mcn/common/macros.h"
#include "mcn/expand/probe_scheduler.h"

namespace mcn::algo {

IncrementalTopK::IncrementalTopK(expand::NnEngine* engine, AggregateFn f,
                                 ProbePolicy policy, QueryOptions exec)
    : engine_(engine),
      f_(std::move(f)),
      policy_(policy),
      exec_(exec),
      turn_mode_(exec.parallelism >= 1),
      d_(engine->num_costs()),
      store_(engine->num_facilities(), d_, expand::kInfCost),
      active_(d_, true) {
  MCN_CHECK(engine != nullptr);
  if (turn_mode_) {
    MCN_CHECK(exec_.scheduler != nullptr);
    MCN_CHECK(exec_.scheduler->engine() == engine);
  }
}

int IncrementalTopK::PickExpansion() const {
  switch (policy_) {
    case ProbePolicy::kRoundRobin: {
      for (int step = 0; step < d_; ++step) {
        int i = (turn_ + step) % d_;
        if (active_[i]) return i;
      }
      return -1;
    }
    case ProbePolicy::kSmallestFrontier:
    case ProbePolicy::kLargestFrontier: {
      int best = -1;
      double best_key = 0.0;
      for (int i = 0; i < d_; ++i) {
        if (!active_[i]) continue;
        double key = engine_->Frontier(i);
        bool better = best < 0 ||
                      (policy_ == ProbePolicy::kSmallestFrontier
                           ? key < best_key
                           : key > best_key);
        if (better) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return -1;
}

TopKEntry IncrementalTopK::MakeEntry(graph::FacilityId f,
                                     double score) const {
  uint32_t s = store_.Find(f);
  MCN_DCHECK(s != CandidateStore::kNoSlot);
  return TopKEntry{f, store_.costs(s), score};
}

double IncrementalTopK::MinCandidateLowerBound() const {
  double min_lb = expand::kInfCost;
  for (uint32_t s : store_.candidates()) {
    const CandidateStore::Slot& st = store_.slot(s);
    graph::CostVector lb = store_.costs(s);
    for (int j = 0; j < d_; ++j) {
      if (!st.Knows(j)) lb[j] = engine_->Frontier(j);
    }
    min_lb = std::min(min_lb, f_(lb));
  }
  return min_lb;
}

Status IncrementalTopK::AdvanceTurn() {
  if (policy_ != ProbePolicy::kRoundRobin) {
    // Ablation frontier policies: width-1 turns (the serial schedule).
    int i = PickExpansion();
    MCN_DCHECK(i >= 0);  // caller checks for total exhaustion
    return DispatchWidthOneNextNN(
        *exec_.scheduler, i, active_,
        [&](int e, graph::FacilityId f, double cost) {
          return HandlePop(e, f, cost);
        });
  }
  // Round-robin: step-granular turns (see SkylineQuery::AdvanceTurn for
  // the balance rationale).
  std::vector<int>& targets = turn_targets_;
  targets.clear();
  for (int i = 0; i < d_; ++i) {
    if (active_[i]) targets.push_back(i);
  }
  MCN_DCHECK(!targets.empty());  // caller checks for total exhaustion
  MCN_ASSIGN_OR_RETURN(auto outcomes, exec_.scheduler->StepTurn(
                                          targets, exec_.turn_stride));
  return DispatchStepOutcomes(
      outcomes, active_, /*any_active=*/nullptr,
      [&](int i, graph::FacilityId f, double cost) {
        return HandlePop(i, f, cost);
      });
}

Result<std::optional<TopKEntry>> IncrementalTopK::NextBest() {
  for (;;) {
    if (!pinned_.empty()) {
      HeapEntry head = pinned_.top();
      ++stats_.safety_checks;
      if (MinCandidateLowerBound() >= head.score) {
        pinned_.pop();
        ++stats_.reported;
        return std::optional<TopKEntry>(
            MakeEntry(head.facility, head.score));
      }
    }
    if (turn_mode_) {
      bool any_active = false;
      for (int i = 0; i < d_; ++i) any_active |= active_[i];
      if (any_active) {
        MCN_RETURN_IF_ERROR(AdvanceTurn());
        continue;
      }
      // Fall through to the total-exhaustion report below (i < 0).
    }
    int i = turn_mode_ ? -1 : PickExpansion();
    if (i < 0) {
      // Total exhaustion: all frontiers are +inf, every remaining pinned
      // facility is safe in heap order; candidates with missing costs
      // cannot exist (see TopKQuery::RunGrowing reasoning).
      if (pinned_.empty()) {
        exhausted_ = true;
        return std::optional<TopKEntry>(std::nullopt);
      }
      HeapEntry head = pinned_.top();
      pinned_.pop();
      ++stats_.reported;
      return std::optional<TopKEntry>(MakeEntry(head.facility, head.score));
    }
    turn_ = (i + 1) % d_;
    MCN_ASSIGN_OR_RETURN(auto nn, engine_->NextNN(i));
    if (!nn.has_value()) {
      active_[i] = false;
      continue;
    }
    MCN_RETURN_IF_ERROR(HandlePop(i, nn->facility, nn->cost));
  }
}

Result<std::vector<TopKEntry>> IncrementalTopK::NextBatch(
    int n, const KeepFn& keep) {
  std::vector<TopKEntry> batch;
  if (n <= 0) return batch;
  // `n` can be remote-controlled (a wire kNext/kExecute frame): cap the
  // up-front reservation so a huge ask costs rows actually produced, not
  // an n-sized allocation.
  batch.reserve(std::min<size_t>(static_cast<size_t>(n), 1024));
  while (static_cast<int>(batch.size()) < n && !exhausted_) {
    MCN_ASSIGN_OR_RETURN(auto next, NextBest());
    if (!next.has_value()) break;
    if (keep != nullptr && !keep(*next)) continue;
    batch.push_back(*std::move(next));
  }
  return batch;
}

Status IncrementalTopK::HandlePop(int i, graph::FacilityId f, double cost) {
  ++stats_.nn_pops;
  bool created = false;
  uint32_t s = store_.Acquire(f, &created);
  if (created) {
    ++stats_.facilities_seen;
    store_.AddCandidate(s);
  }
  store_.SetCost(s, i, cost);
  CandidateStore::Slot& st = store_.slot(s);
  if (st.known_count == d_) {
    st.pinned = true;
    store_.RemoveCandidate(s);
    pinned_.push(HeapEntry{f_(store_.costs(s)), f});
  }
  return Status::OK();
}

}  // namespace mcn::algo
