// Incremental MCN top-k (paper §V): k is not known in advance; NextBest()
// returns the facility with the next-smallest aggregate cost on demand.
// There is no shrinking stage and nothing is ever eliminated; a pinned
// facility is safe to report once (i) it has the smallest score among
// pinned unreported facilities and (ii) no candidate's frontier-based lower
// bound can beat it (facilities first seen after its pinning are covered by
// the expansion-order argument — see paper §V and DESIGN.md).
//
// Candidates live in a dense CandidateStore: the per-report safety check
// streams over the live candidate list instead of scanning a hash map.
#ifndef MCN_ALGO_INCREMENTAL_TOPK_H_
#define MCN_ALGO_INCREMENTAL_TOPK_H_

#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "mcn/algo/candidate_store.h"
#include "mcn/algo/common.h"
#include "mcn/common/result.h"
#include "mcn/expand/engines.h"

namespace mcn::algo {

/// Iterator-style incremental top-k over a fresh engine. Only reachable
/// facilities are ever returned; after they are exhausted NextBest yields
/// nullopt forever.
class IncrementalTopK {
 public:
  struct Stats {
    uint64_t nn_pops = 0;
    uint64_t facilities_seen = 0;
    uint64_t reported = 0;
    uint64_t safety_checks = 0;
  };

  /// `f` must be increasingly monotone. `exec` enables the turn-barrier
  /// parallel schedule (DESIGN.md §7): with round-robin probing every
  /// active expansion advances once between report-safety checks; the
  /// ablation frontier policies degenerate to width-1 turns (exact serial
  /// replay).
  IncrementalTopK(expand::NnEngine* engine, AggregateFn f,
                  ProbePolicy policy = ProbePolicy::kRoundRobin,
                  QueryOptions exec = {});

  /// The facility with the next-larger aggregate cost, or nullopt when all
  /// reachable facilities have been reported.
  Result<std::optional<TopKEntry>> NextBest();

  /// Per-row admission filter for NextBatch (e.g. constraint cost caps);
  /// rejected rows are consumed from the ranking but not returned.
  using KeepFn = std::function<bool(const TopKEntry&)>;

  /// Session surface (DESIGN.md §9): up to `n` further NextBest results in
  /// rank order that pass `keep` (null = keep all). Fewer than `n` rows —
  /// including zero — means the reachable component is exhausted; later
  /// calls keep returning empty batches rather than failing, so a
  /// streaming client can over-ask safely. This is the one batch-pull
  /// loop; the service's session and one-shot incremental paths both call
  /// it.
  Result<std::vector<TopKEntry>> NextBatch(int n,
                                           const KeepFn& keep = nullptr);

  /// True once NextBest has returned nullopt (every reachable facility
  /// reported). A fresh query is not exhausted.
  bool exhausted() const { return exhausted_; }

  const Stats& stats() const { return stats_; }

 private:
  struct HeapEntry {
    double score;
    graph::FacilityId facility;
    bool operator>(const HeapEntry& o) const {
      if (score != o.score) return score > o.score;
      return facility > o.facility;
    }
  };

  int PickExpansion() const;
  /// Turn-mode probe phase of one NextBest iteration (DESIGN.md §7).
  Status AdvanceTurn();
  Status HandlePop(int i, graph::FacilityId f, double cost);
  /// Smallest frontier-based lower bound among current candidates (+inf if
  /// none). Reporting head is safe iff this is >= its score.
  double MinCandidateLowerBound() const;
  TopKEntry MakeEntry(graph::FacilityId f, double score) const;

  expand::NnEngine* engine_;
  AggregateFn f_;
  ProbePolicy policy_;
  QueryOptions exec_;
  bool turn_mode_;
  int d_;
  CandidateStore store_;
  std::vector<bool> active_;
  // Pinned but not yet reported, min-heap by score.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      pinned_;
  std::vector<int> turn_targets_;  ///< turn-mode scratch (no per-turn alloc)
  int turn_ = 0;
  bool exhausted_ = false;
  Stats stats_;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_INCREMENTAL_TOPK_H_
