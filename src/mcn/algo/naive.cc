#include "mcn/algo/naive.h"

#include <algorithm>
#include <unordered_map>

#include "mcn/common/macros.h"
#include "mcn/expand/engines.h"
#include "mcn/skyline/skyline.h"
#include "mcn/topk/topk.h"

namespace mcn::algo {

Result<std::vector<SkylineEntry>> NaiveAllCosts(
    const net::NetworkReader& reader, const graph::Location& q) {
  MCN_ASSIGN_OR_RETURN(auto engine, expand::LsaEngine::Create(&reader, q));
  int d = engine->num_costs();
  std::unordered_map<graph::FacilityId, SkylineEntry> found;
  // One full expansion per cost type, reading the network d times.
  for (int i = 0; i < d; ++i) {
    for (;;) {
      MCN_ASSIGN_OR_RETURN(auto nn, engine->NextNN(i));
      if (!nn.has_value()) break;
      auto [it, created] = found.try_emplace(
          nn->facility,
          SkylineEntry{nn->facility,
                       graph::CostVector(d, expand::kInfCost), 0});
      it->second.costs[i] = nn->cost;
      it->second.known_mask |= 1u << i;
    }
  }
  std::vector<SkylineEntry> all;
  all.reserve(found.size());
  for (auto& [fid, entry] : found) all.push_back(entry);
  std::sort(all.begin(), all.end(),
            [](const SkylineEntry& a, const SkylineEntry& b) {
              return a.facility < b.facility;
            });
  return all;
}

Result<std::vector<SkylineEntry>> NaiveSkyline(
    const net::NetworkReader& reader, const graph::Location& q) {
  MCN_ASSIGN_OR_RETURN(std::vector<SkylineEntry> all,
                       NaiveAllCosts(reader, q));
  std::vector<skyline::Tuple> tuples;
  tuples.reserve(all.size());
  for (const SkylineEntry& e : all) {
    tuples.push_back(skyline::Tuple{e.facility, e.costs});
  }
  std::vector<uint32_t> ids = skyline::SortFilterSkyline(tuples);
  std::unordered_map<graph::FacilityId, const SkylineEntry*> by_id;
  for (const SkylineEntry& e : all) by_id[e.facility] = &e;
  std::vector<SkylineEntry> result;
  result.reserve(ids.size());
  for (uint32_t id : ids) result.push_back(*by_id[id]);
  return result;
}

Result<std::vector<TopKEntry>> NaiveTopK(const net::NetworkReader& reader,
                                         const graph::Location& q,
                                         const AggregateFn& f, int k) {
  if (k < 1) return Status::InvalidArgument("NaiveTopK: k must be >= 1");
  MCN_ASSIGN_OR_RETURN(std::vector<SkylineEntry> all,
                       NaiveAllCosts(reader, q));
  std::vector<TopKEntry> scored;
  scored.reserve(all.size());
  for (const SkylineEntry& e : all) {
    scored.push_back(TopKEntry{e.facility, e.costs, f(e.costs)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.facility < b.facility;
            });
  if (static_cast<int>(scored.size()) > k) scored.resize(k);
  return scored;
}

}  // namespace mcn::algo
