// The straightforward baseline of paper §IV's introduction: perform d
// complete network expansions from q (reading the whole MCN d times),
// materialize every facility's cost vector, then run a conventional skyline
// or top-k operator. "Prohibitively" expensive — exists as the comparison
// strawman and as an end-to-end cross-check of the local algorithms.
#ifndef MCN_ALGO_NAIVE_H_
#define MCN_ALGO_NAIVE_H_

#include <vector>

#include "mcn/algo/common.h"
#include "mcn/common/result.h"
#include "mcn/graph/location.h"
#include "mcn/net/network_reader.h"

namespace mcn::algo {

/// Materializes the complete cost vectors of every facility reachable from
/// `q` via d full disk-based expansions (the baseline's first phase).
Result<std::vector<SkylineEntry>> NaiveAllCosts(
    const net::NetworkReader& reader, const graph::Location& q);

/// Baseline skyline: NaiveAllCosts + sort-filter-skyline.
Result<std::vector<SkylineEntry>> NaiveSkyline(
    const net::NetworkReader& reader, const graph::Location& q);

/// Baseline top-k: NaiveAllCosts + scan. Ascending score; fewer than k
/// entries when fewer facilities are reachable.
Result<std::vector<TopKEntry>> NaiveTopK(const net::NetworkReader& reader,
                                         const graph::Location& q,
                                         const AggregateFn& f, int k);

}  // namespace mcn::algo

#endif  // MCN_ALGO_NAIVE_H_
