#include "mcn/algo/prune_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "mcn/common/flat_u64_map.h"
#include "mcn/common/macros.h"
#include "mcn/graph/location.h"

namespace mcn::algo {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

PruneOracle::PruneOracle(const expand::NnEngine* engine,
                         net::LandmarkIndexReader* index,
                         const expand::FacilityFilter* filter,
                         uint64_t* checked, uint64_t* cut)
    : engine_(engine),
      index_(index),
      filter_(filter),
      checked_(checked),
      cut_(cut) {}

Result<std::unique_ptr<PruneOracle>> PruneOracle::Create(
    const expand::NnEngine* engine, net::LandmarkIndexReader* index,
    const expand::FacilityFilter* filter,
    std::vector<ProtectedFacility> protected_facilities, uint64_t* checked,
    uint64_t* cut) {
  MCN_CHECK(engine != nullptr && index != nullptr && filter != nullptr);
  MCN_CHECK(checked != nullptr && cut != nullptr);
  auto oracle = std::unique_ptr<PruneOracle>(
      new PruneOracle(engine, index, filter, checked, cut));
  oracle->d_ = engine->num_costs();
  oracle->L_ = index->num_landmarks();
  MCN_CHECK(oracle->d_ == index->num_costs());
  MCN_CHECK(oracle->L_ > 0);
  const int d = oracle->d_;
  const uint32_t L = oracle->L_;

  // Distinct endpoints, in first-appearance order (deterministic: the
  // snapshot arrives in BuildFilter's iteration order). Keys are node+1:
  // the map's empty-key sentinel must stay unused.
  FlatU64Map ep_of;
  for (const ProtectedFacility& pf : protected_facilities) {
    for (graph::NodeId node : {pf.u, pf.v}) {
      uint32_t k = ep_of.Find(static_cast<uint64_t>(node) + 1);
      if (k == FlatU64Map::kNoValue) {
        k = static_cast<uint32_t>(oracle->endpoints_.size());
        oracle->endpoints_.push_back(Endpoint{node, {}});
        ep_of.Insert(static_cast<uint64_t>(node) + 1, k);
      }
      oracle->endpoints_[k].facilities.push_back(pf.facility);
    }
  }

  const size_t row_len = static_cast<size_t>(d) * L;
  oracle->row_scratch_.assign(row_len, 0.0f);
  oracle->ep_lo_.assign(oracle->endpoints_.size() * row_len, 0.0);
  oracle->ep_hi_.assign(oracle->endpoints_.size() * row_len, 0.0);
  for (size_t k = 0; k < oracle->endpoints_.size(); ++k) {
    MCN_RETURN_IF_ERROR(index->LoadNodeRow(oracle->endpoints_[k].node,
                                           oracle->row_scratch_.data()));
    for (size_t j = 0; j < row_len; ++j) {
      const float lo = oracle->row_scratch_[j];
      oracle->ep_lo_[k * row_len + j] = lo;
      oracle->ep_hi_[k * row_len + j] = net::LandmarkUpperBound(lo);
    }
  }

  // Bounds on dist_i(q, lm), both ways. Node query: q's own row. Edge
  // query: through either endpoint, with the partial-edge cost rounded
  // *up* so the double product cannot undercut the true length — which
  // makes it safe on both sides (hi: add it; lo: subtract it).
  oracle->q_hi_.assign(row_len, kInf);
  oracle->q_lo_.assign(row_len, 0.0);
  const graph::Location& q = engine->query();
  if (q.is_node()) {
    MCN_RETURN_IF_ERROR(index->LoadNodeRow(q.node(),
                                           oracle->row_scratch_.data()));
    for (size_t j = 0; j < row_len; ++j) {
      oracle->q_lo_[j] = oracle->row_scratch_[j];
      oracle->q_hi_[j] = net::LandmarkUpperBound(oracle->row_scratch_[j]);
    }
  } else {
    const graph::CostVector& w = engine->seed_edge_costs();
    MCN_CHECK(w.dim() == d);
    std::vector<double> end_lo(2 * row_len, kInf);
    std::vector<double> end_hi(2 * row_len, kInf);
    const graph::NodeId ends[2] = {q.edge().u, q.edge().v};
    for (int s = 0; s < 2; ++s) {
      MCN_RETURN_IF_ERROR(
          index->LoadNodeRow(ends[s], oracle->row_scratch_.data()));
      for (size_t j = 0; j < row_len; ++j) {
        end_lo[s * row_len + j] = oracle->row_scratch_[j];
        end_hi[s * row_len + j] =
            net::LandmarkUpperBound(oracle->row_scratch_[j]);
      }
    }
    for (int i = 0; i < d; ++i) {
      const double to_u = std::nextafter(q.frac() * w[i], kInf);
      const double to_v = std::nextafter((1.0 - q.frac()) * w[i], kInf);
      for (uint32_t lm = 0; lm < L; ++lm) {
        const size_t j = static_cast<size_t>(i) * L + lm;
        oracle->q_hi_[j] =
            std::min(to_u + end_hi[j], to_v + end_hi[row_len + j]);
        if (std::isfinite(end_lo[j])) {
          // dist(q, lm) >= dist(end, lm) - dist(q, end) for either end.
          oracle->q_lo_[j] = std::max(
              0.0, std::max(end_lo[j] - to_u, end_lo[row_len + j] - to_v));
        }
      }
    }
  }

  oracle->ub0_.assign(oracle->endpoints_.size() * d, kInf);
  for (size_t k = 0; k < oracle->endpoints_.size(); ++k) {
    for (int i = 0; i < d; ++i) {
      double best = kInf;
      for (uint32_t lm = 0; lm < L; ++lm) {
        const size_t j = static_cast<size_t>(i) * L + lm;
        best = std::min(best, oracle->q_hi_[j] + oracle->ep_hi_[k * row_len + j]);
      }
      oracle->ub0_[k * d + i] = best;
    }
  }

  oracle->screen_.assign(row_len, -kInf);
  oracle->maxub_.assign(d, -kInf);
  oracle->gate_.assign(d, -kInf);
  oracle->refresh_in_.assign(d, 0);  // refresh on each expansion's first call
  return oracle;
}

bool PruneOracle::EndpointLive(int i, const Endpoint& ep) const {
  const expand::SingleExpansion& exp = engine_->expansion(i);
  for (graph::FacilityId f : ep.facilities) {
    if (filter_->Contains(f) && !exp.FacilitySettled(f)) return true;
  }
  return false;
}

double PruneOracle::UpperBound(int i, size_t ep_idx) const {
  // The endpoint is unsettled (callers check), so its tentative key is a
  // live upper bound (+inf when never relaxed).
  const double tent =
      engine_->expansion(i).NodeTentativeKey(endpoints_[ep_idx].node);
  return std::min(ub0_[ep_idx * d_ + i], tent);
}

void PruneOracle::RefreshScreens(int i) {
  double* screen = &screen_[static_cast<size_t>(i) * L_];
  for (uint32_t lm = 0; lm < L_; ++lm) screen[lm] = -kInf;
  maxub_[i] = -kInf;
  gate_[i] = -kInf;
  const expand::SingleExpansion& exp = engine_->expansion(i);
  const size_t row_len = static_cast<size_t>(d_) * L_;
  const double* q_hi = &q_hi_[static_cast<size_t>(i) * L_];
  const double* q_lo = &q_lo_[static_cast<size_t>(i) * L_];
  for (size_t k = 0; k < endpoints_.size(); ++k) {
    if (exp.NodeSettled(endpoints_[k].node)) continue;
    if (!EndpointLive(i, endpoints_[k])) continue;
    const double ub = UpperBound(i, k);
    maxub_[i] = std::max(maxub_[i], ub);
    const double* lo_e = &ep_lo_[k * row_len + static_cast<size_t>(i) * L_];
    const double* hi_e = &ep_hi_[k * row_len + static_cast<size_t>(i) * L_];
    // This endpoint's gate term: certifying it via landmark lm implies
    // 2*key exceeds one of the two thresholds (header, fast path 2), so
    // it implies 2*key > min over lm. Landmarks with non-finite inputs
    // cannot produce a certificate (unreachable component) and impose no
    // threshold; an endpoint with no usable landmark (or ub = inf) can
    // never be certified, its +inf term disables every check for free.
    double term = kInf;
    if (std::isfinite(ub)) {
      for (uint32_t lm = 0; lm < L_; ++lm) {
        if (!std::isfinite(q_hi[lm]) || !std::isfinite(hi_e[lm])) continue;
        term = std::min(term, ub + std::min(hi_e[lm] - q_hi[lm],
                                            q_lo[lm] - lo_e[lm]));
      }
    }
    gate_[i] = std::max(gate_[i], term);
    for (uint32_t lm = 0; lm < L_; ++lm) {
      screen[lm] = std::max(screen[lm], ub + hi_e[lm]);
    }
  }
}

bool PruneOracle::ShouldPrune(int cost_index, graph::NodeId v, double key) {
  ++*checked_;
  const int i = cost_index;
  if (refresh_in_[i] == 0) {
    RefreshScreens(i);
    refresh_in_[i] = kScreenRefresh;
  }
  --refresh_in_[i];

  // Zero-I/O fast path: past the farthest live endpoint's upper bound,
  // settling v cannot matter to anyone — lower_bound(dist_i(v, e)) = 0
  // already certifies every endpoint, so no index row is read. A node on
  // a shortest q->e path pops at g <= dist_i(q, e) <= UB_i(e) <= maxub
  // and never takes this branch (the strict > keeps the tree intact).
  if (key > maxub_[i]) {
    ++*cut_;
    return true;
  }

  // Zero-I/O fast path: below the certificate gate no landmark can
  // certify every live endpoint (header, fast path 2) — the check
  // declines without reading v's row. This is where most failing checks
  // land, so the oracle's index reads track its successful prunes instead
  // of its call count.
  if (2.0 * key <= gate_[i]) return false;

  // At most one counted fetch against the index pool per node per query
  // (the memo serves repeat checks from other expansions); a failed load
  // just declines to prune (pruning is an optimization, never a
  // correctness dependency).
  const size_t full_row = static_cast<size_t>(d_) * L_;
  uint32_t slot = row_cache_.Find(static_cast<uint64_t>(v) + 1);
  if (slot == FlatU64Map::kNoValue) {
    if (!index_->LoadNodeRow(v, row_scratch_.data()).ok()) return false;
    slot = static_cast<uint32_t>(row_arena_.size() / full_row);
    row_cache_.Insert(static_cast<uint64_t>(v) + 1, slot);
    row_arena_.insert(row_arena_.end(), row_scratch_.begin(),
                      row_scratch_.end());
  }
  const float* row = row_arena_.data() + slot * full_row +
                     static_cast<size_t>(i) * L_;

  // Fast path: one comparison certifies the prune for every live endpoint
  // at once. Screens may be stale but only ever too large (see header).
  const double* screen = &screen_[static_cast<size_t>(i) * L_];
  for (uint32_t lm = 0; lm < L_; ++lm) {
    if (screen[lm] < kInf && key + row[lm] > screen[lm]) {
      ++*cut_;
      return true;
    }
  }

  // Full check: every live protected endpoint needs its own certificate.
  const expand::SingleExpansion& exp = engine_->expansion(i);
  const size_t row_len = static_cast<size_t>(d_) * L_;
  for (size_t k = 0; k < endpoints_.size(); ++k) {
    const Endpoint& ep = endpoints_[k];
    if (exp.NodeSettled(ep.node)) continue;
    if (!EndpointLive(i, ep)) continue;
    const double ub = UpperBound(i, k);
    const double* lo_e = &ep_lo_[k * row_len + static_cast<size_t>(i) * L_];
    const double* hi_e = &ep_hi_[k * row_len + static_cast<size_t>(i) * L_];
    bool certified = false;
    for (uint32_t lm = 0; lm < L_ && !certified; ++lm) {
      const double lo_v = row[lm];
      if (std::isfinite(hi_e[lm]) && key + (lo_v - hi_e[lm]) > ub) {
        certified = true;
        break;
      }
      const double hi_v = net::LandmarkUpperBound(row[lm]);
      if (std::isfinite(hi_v) && key + (lo_e[lm] - hi_v) > ub) {
        certified = true;
      }
    }
    if (!certified) return false;
  }
  ++*cut_;
  return true;
}

}  // namespace mcn::algo
