// PruneOracle: the skyline shrinking-stage frontier pruner (DESIGN.md §12).
// Installed on the engine at the growing/shrinking transition (BuildFilter),
// it answers one question per node pop: can settling this node possibly
// still matter to any facility the query still needs pops for? If provably
// not, the expansion is elided before its adjacency probe touches a page.
//
// Exactness argument (why index-on and index-off runs are byte-identical):
//
// After BuildFilter the set of facilities whose future pops the algorithm
// consumes is exactly the candidate filter's membership (candidates plus
// non-pinned skyline members); the filter only shrinks from then on, and a
// facility leaves it precisely when its remaining pops stop mattering
// (pinned, promoted, or eliminated — eliminated pops are discarded by
// HandlePop). A facility's pop key in expansion i is determined by the
// settle distances of its edge endpoints (plus static along-edge offsets
// and, for the query edge, static seeds). So it suffices to keep the
// Dijkstra tree to every *protected endpoint* — an unsettled endpoint of a
// still-filtered, not-yet-settled facility's edge — intact.
//
// The oracle prunes node v popped at exact distance g in expansion i only
// when, for every protected endpoint e, some landmark lm certifies
//
//     g + lower_bound(dist_i(v, e)) > UB_i(e),
//
// where lower_bound comes from the landmark triangle inequality
// (lo_v - hi_e or lo_e - hi_v, rows from net::LandmarkIndexReader) and
// UB_i(e) = min(e's live tentative key, min_lm(hi_q + hi_e)) is a true
// upper bound on dist_i(q, e). Induction over pop order: if w lies on a
// shortest q->e path, then g_w + dist_i(w, e) = dist_i(q, e) <= UB_i(e),
// and no admissible lower bound can push the sum strictly above UB_i(e) —
// so every node of every shortest path to a protected endpoint survives,
// endpoint settle distances are unchanged, and every consumed pop (and
// every frontier value the control flow compares against) is identical.
// A protected endpoint never prunes itself: its own tentative key
// participates in UB_i(e), so g + (lo_v - hi_v) <= g <= UB fails the
// strict inequality.
//
// The oracle's own I/O is kept a small fraction of the probes it elides
// by zero-I/O paths that decide most checks without loading v's row:
//  1. prune-all: when no endpoint is live (maxub = -inf), or g exceeds
//     every live endpoint's UB, the prune is certified with
//     lower_bound(dist_i(v, e)) = 0 — no row needed.
//  2. the certificate gate: every certificate the full check can produce
//     implies 2g > gate_i, where gate_i is built from *known* rows only —
//     via the triangle inequality through q, lo_v(lm) <= g + hi_q(lm) and
//     hi_v(lm) >= lo_q(lm) - g bound the unseen row both ways, so
//       cert 1 (g + lo_v - hi_e > UB) implies 2g > UB + hi_e - hi_q, and
//       cert 2 (g + lo_e - hi_v > UB) implies 2g > UB + lo_q - lo_e.
//     A prune certifies *every* live endpoint through *some* landmark, so
//     prune implies 2g > gate_i = max_e min_lm of those thresholds, and a
//     check with 2g <= gate_i provably cannot prune: it declines with zero
//     I/O. Most failing checks sit below the nearest live endpoint's UB
//     and never touch the index.
//  3. a per-(expansion, landmark) screen max_e(UB_i(e) + hi_e(lm))
//     certifies all endpoints with one comparison against v's row.
// All three are refreshed deterministically every kScreenRefresh calls;
// stale UBs are only ever too large (they fall monotonically, the endpoint
// set only shrinks), which makes stale screens too large and the stale
// gate too large — both lose prunes, never correctness.
#ifndef MCN_ALGO_PRUNE_ORACLE_H_
#define MCN_ALGO_PRUNE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mcn/common/flat_u64_map.h"
#include "mcn/common/result.h"
#include "mcn/expand/engines.h"
#include "mcn/expand/single_expansion.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/landmark_index.h"

namespace mcn::algo {

class PruneOracle : public expand::NodePruner {
 public:
  /// One shrinking-stage facility with its edge endpoints, snapshotted at
  /// BuildFilter (the filter's membership at installation time).
  struct ProtectedFacility {
    graph::FacilityId facility;
    graph::NodeId u;
    graph::NodeId v;
  };

  /// `engine` and `filter` are the live query state (read every call);
  /// `index` must be validated and outlive the oracle. `checked`/`cut`
  /// point at the owner's stats counters. Construction loads one index row
  /// per distinct endpoint (charged to the index pool, never the network
  /// pools). Fails only on index I/O errors.
  static Result<std::unique_ptr<PruneOracle>> Create(
      const expand::NnEngine* engine, net::LandmarkIndexReader* index,
      const expand::FacilityFilter* filter,
      std::vector<ProtectedFacility> protected_facilities, uint64_t* checked,
      uint64_t* cut);

  bool ShouldPrune(int cost_index, graph::NodeId v, double key) override;

 private:
  /// Screens go stale for at most this many ShouldPrune calls per
  /// expansion. Deterministic (call-counted, not timed) so runs replay.
  static constexpr int kScreenRefresh = 64;

  struct Endpoint {
    graph::NodeId node;
    std::vector<graph::FacilityId> facilities;  ///< protected facs using it
  };

  PruneOracle(const expand::NnEngine* engine, net::LandmarkIndexReader* index,
              const expand::FacilityFilter* filter, uint64_t* checked,
              uint64_t* cut);

  /// Still-live check: some facility on this endpoint is still in the
  /// filter and not yet settled by expansion `i`.
  bool EndpointLive(int i, const Endpoint& ep) const;
  /// Current upper bound on dist_i(q, endpoint) — min of the static
  /// landmark bound and the endpoint's live tentative key.
  double UpperBound(int i, size_t ep_idx) const;
  void RefreshScreens(int i);

  const expand::NnEngine* engine_;
  net::LandmarkIndexReader* index_;
  const expand::FacilityFilter* filter_;
  uint64_t* checked_;
  uint64_t* cut_;

  int d_ = 0;
  uint32_t L_ = 0;
  std::vector<Endpoint> endpoints_;
  std::vector<double> ep_lo_;   ///< [ep][i][lm]: stored lower bounds
  std::vector<double> ep_hi_;   ///< [ep][i][lm]: matching upper bounds
  std::vector<double> ub0_;     ///< [ep][i]: min_lm(q_hi + ep_hi)
  std::vector<double> q_hi_;    ///< [i][lm]: upper bound on dist_i(q, lm)
  std::vector<double> q_lo_;    ///< [i][lm]: lower bound on dist_i(q, lm)
  std::vector<double> screen_;  ///< [i][lm]: fast-path threshold
  std::vector<double> maxub_;   ///< [i]: max live-endpoint UB (zero-I/O path)
  std::vector<double> gate_;    ///< [i]: certificate gate (zero-I/O path)
  std::vector<int> refresh_in_;  ///< [i]: calls until next screen refresh
  std::vector<float> row_scratch_;  ///< one node row (d_ * L_ floats)

  /// Per-query row memo (node+1 -> row index into row_arena_): round-robin
  /// probing checks the same node in up to d expansions, so each row is
  /// fetched from the index pool at most once per query — the same
  /// fetched-at-most-once contract the engine keeps for adjacency pages
  /// (DESIGN.md §4). The arena lives exactly as long as the query.
  FlatU64Map row_cache_;
  std::vector<float> row_arena_;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_PRUNE_ORACLE_H_
