// Order-sensitive FNV-1a hashing of query results (facility ids, cost bit
// patterns, scores). One definition shared by the benchmark harness and the
// exec::QueryService so that cross-refactor and single- vs multi-threaded
// parity checks compare byte-identical hashes (DESIGN.md §5/§6).
#ifndef MCN_ALGO_RESULT_HASH_H_
#define MCN_ALGO_RESULT_HASH_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/common/macros.h"

namespace mcn::algo {

/// FNV-1a offset basis: the seed of every result hash.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;

/// Folds the 8 bytes of `x` (LSB first) into an FNV-1a state.
MCN_NO_SANITIZE_INTEGER inline uint64_t FnvMixU64(uint64_t h, uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    h ^= (x >> (8 * b)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

inline uint64_t HashEntry(uint64_t h, const SkylineEntry& e) {
  h = FnvMixU64(h, e.facility);
  h = FnvMixU64(h, e.known_mask);
  for (int j = 0; j < e.costs.dim(); ++j) h = FnvMixU64(h, DoubleBits(e.costs[j]));
  return h;
}

inline uint64_t HashEntry(uint64_t h, const TopKEntry& e) {
  h = FnvMixU64(h, e.facility);
  h = FnvMixU64(h, DoubleBits(e.score));
  for (int j = 0; j < e.costs.dim(); ++j) h = FnvMixU64(h, DoubleBits(e.costs[j]));
  return h;
}

/// Hash of a full result list, seeded with the offset basis.
template <typename Entry>
uint64_t HashResult(const std::vector<Entry>& entries) {
  uint64_t h = kFnvOffsetBasis;
  for (const Entry& e : entries) h = HashEntry(h, e);
  return h;
}

}  // namespace mcn::algo

#endif  // MCN_ALGO_RESULT_HASH_H_
