#include "mcn/algo/skyline_query.h"

#include <algorithm>

#include "mcn/common/macros.h"

namespace mcn::algo {

SkylineQuery::SkylineQuery(expand::NnEngine* engine, SkylineOptions options)
    : engine_(engine),
      opts_(options),
      d_(engine->num_costs()),
      missing_per_cost_(d_, 0),
      sky_missing_per_cost_(d_, 0),
      active_(d_, true),
      first_nn_taken_(d_, false) {
  MCN_CHECK(engine != nullptr);
}

SkylineEntry SkylineQuery::MakeEntry(graph::FacilityId f) const {
  auto it = tracked_.find(f);
  MCN_DCHECK(it != tracked_.end());
  return SkylineEntry{f, it->second.costs, it->second.known_mask};
}

Result<std::optional<SkylineEntry>> SkylineQuery::Next() {
  while (output_.empty() && !done_) {
    MCN_RETURN_IF_ERROR(Advance());
  }
  if (output_.empty()) return std::optional<SkylineEntry>(std::nullopt);
  graph::FacilityId f = output_.front();
  output_.pop_front();
  return std::optional<SkylineEntry>(MakeEntry(f));
}

Result<std::vector<SkylineEntry>> SkylineQuery::ComputeAll() {
  std::vector<graph::FacilityId> order;
  for (;;) {
    while (output_.empty() && !done_) {
      MCN_RETURN_IF_ERROR(Advance());
    }
    if (output_.empty()) break;
    order.push_back(output_.front());
    output_.pop_front();
  }
  std::vector<SkylineEntry> entries;
  entries.reserve(order.size());
  for (graph::FacilityId f : order) entries.push_back(MakeEntry(f));
  return entries;
}

int SkylineQuery::PickExpansion() const {
  switch (opts_.probe_policy) {
    case ProbePolicy::kRoundRobin: {
      for (int step = 0; step < d_; ++step) {
        int i = (turn_ + step) % d_;
        if (active_[i]) return i;
      }
      return -1;
    }
    case ProbePolicy::kSmallestFrontier:
    case ProbePolicy::kLargestFrontier: {
      int best = -1;
      double best_key = 0.0;
      for (int i = 0; i < d_; ++i) {
        if (!active_[i]) continue;
        double key = engine_->Frontier(i);
        bool better =
            best < 0 ||
            (opts_.probe_policy == ProbePolicy::kSmallestFrontier
                 ? key < best_key
                 : key > best_key);
        if (better) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return -1;
}

Status SkylineQuery::Advance() {
  if (stage_ == Stage::kDrain) return DrainStep();
  int i = PickExpansion();
  if (i < 0) {
    // Every expansion exhausted or stopped.
    if (num_candidates_ > 0) return FinalizeRemaining();
    done_ = true;
    return Status::OK();
  }
  turn_ = (i + 1) % d_;
  MCN_ASSIGN_OR_RETURN(auto nn, engine_->NextNN(i));
  if (!nn.has_value()) {
    active_[i] = false;
    return Status::OK();
  }
  return HandlePop(i, nn->facility, nn->cost);
}

Status SkylineQuery::DrainStep() {
  ++stats_.drain_rounds;
  for (int i = 0; i < d_; ++i) {
    // Stopped expansions may still hold the boundary key: step them too
    // (their stopped status resumes after the drain).
    if (engine_->Exhausted(i)) continue;
    if (engine_->Frontier(i) > drain_boundary_[i]) continue;
    MCN_ASSIGN_OR_RETURN(expand::ExpansionEvent ev, engine_->Step(i));
    switch (ev.type) {
      case expand::ExpansionEvent::Type::kExhausted:
        active_[i] = false;
        return Status::OK();
      case expand::ExpansionEvent::Type::kNode:
        return Status::OK();
      case expand::ExpansionEvent::Type::kFacility:
        return HandlePop(i, ev.id, ev.cost);
    }
  }
  // All frontiers are strictly past the boundary: nothing at the boundary
  // is still unseen. Resolve deferred pins, then resume shrinking.
  stage_ = Stage::kShrinking;
  ResolvePendingPins();
  if (!growing_over_) {
    growing_over_ = true;
    if (num_candidates_ > 0 && opts_.use_facility_filter) {
      MCN_RETURN_IF_ERROR(BuildFilter());
    }
  }
  MaybeStopExpansions();
  if (num_candidates_ == 0) done_ = true;
  return Status::OK();
}

Status SkylineQuery::HandlePop(int i, graph::FacilityId f, double cost) {
  ++stats_.nn_pops;
  auto [it, created] = tracked_.try_emplace(
      f, TrackedFacility{graph::CostVector(d_, expand::kInfCost), 0, 0,
                         false, false, false, false});
  TrackedFacility& st = it->second;
  if (created) ++stats_.facilities_seen;
  if (st.eliminated) return Status::OK();
  // After the first drain, newly popped facilities are no longer part of
  // CS — the shrinking stage ignores them (paper §IV-A); any such facility
  // is strictly dominated by the first pinned one (DESIGN.md §3).
  bool growing_like = !growing_over_;
  if (!growing_like && created) {
    st.eliminated = true;
    return Status::OK();
  }

  MCN_DCHECK(!st.Knows(i));
  st.costs[i] = cost;
  st.known_mask |= 1u << i;
  ++st.known_count;

  if (growing_like) {
    if (created) {
      ++num_candidates_;
      for (int j = 0; j < d_; ++j) {
        if (j != i) ++missing_per_cost_[j];
      }
      stats_.candidates_peak = std::max(
          stats_.candidates_peak, static_cast<uint64_t>(num_candidates_));
    } else if (IsCandidate(st)) {
      --missing_per_cost_[i];
    }
    if (st.in_result && !st.pinned) {
      --sky_missing_per_cost_[i];
    }
    if (opts_.report_first_nn && !first_nn_taken_[i]) {
      // The i-th expansion's first NN cannot be dominated: report directly.
      first_nn_taken_[i] = true;
      if (!st.in_result) PromoteToSkyline(f, st);
    }
  } else if (IsCandidate(st)) {
    --missing_per_cost_[i];
  } else if (st.in_result && !st.pinned) {
    --sky_missing_per_cost_[i];
  }

  if (st.known_count == d_) {
    MCN_RETURN_IF_ERROR(Pin(f));
  }
  if (stage_ == Stage::kShrinking) MaybeStopExpansions();
  return Status::OK();
}

void SkylineQuery::PromoteToSkyline(graph::FacilityId f, TrackedFacility& st) {
  MCN_DCHECK(IsCandidate(st));
  st.in_result = true;
  --num_candidates_;
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) {
      --missing_per_cost_[j];
      ++sky_missing_per_cost_[j];
    }
  }
  filter_.Remove(f);
  output_.push_back(f);
  ++stats_.skyline_size;
}

void SkylineQuery::Eliminate(graph::FacilityId f, TrackedFacility& st) {
  MCN_DCHECK(IsCandidate(st));
  st.eliminated = true;
  --num_candidates_;
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) --missing_per_cost_[j];
  }
  filter_.Remove(f);
}

void SkylineQuery::EliminateDominatedBy(graph::FacilityId pinned) {
  const graph::CostVector& pc = tracked_[pinned].costs;
  for (auto& [fid, st] : tracked_) {
    if (fid == pinned || !IsCandidate(st)) continue;
    ++stats_.dominance_checks;
    // Known costs of the candidate are enough: its unknown costs are at
    // least the corresponding frontier, hence at least the pinned
    // facility's costs. Elimination requires a strict witness among the
    // known costs (DESIGN.md §3).
    bool leq_all = true;
    bool strict = false;
    for (int j = 0; j < d_; ++j) {
      if (!st.Knows(j)) continue;
      if (pc[j] > st.costs[j]) {
        leq_all = false;
        break;
      }
      if (pc[j] < st.costs[j]) strict = true;
    }
    if (leq_all && strict) Eliminate(fid, st);
  }
}

bool SkylineQuery::DominatedByPinnedSkyline(const graph::CostVector& costs) {
  for (graph::FacilityId m : pinned_skyline_) {
    ++stats_.dominance_checks;
    if (tracked_[m].costs.Dominates(costs)) return true;
  }
  return false;
}

bool SkylineQuery::ThreatenedByNonPinnedSkyline(
    const graph::CostVector& costs) {
  for (auto& [mid, mst] : tracked_) {
    if (!mst.in_result || mst.pinned) continue;
    ++stats_.dominance_checks;
    // m could dominate `costs` only if every known cost is <= (with a
    // strict witness) and every unknown cost sits exactly at a frontier
    // equal to ours (the frontier already reached our cost because we are
    // pinned, so anything larger disqualifies m).
    bool possible = true;
    bool strict = false;
    for (int j = 0; j < d_; ++j) {
      if (mst.Knows(j)) {
        if (mst.costs[j] > costs[j]) {
          possible = false;
          break;
        }
        if (mst.costs[j] < costs[j]) strict = true;
      } else if (engine_->Frontier(j) != costs[j]) {
        possible = false;
        break;
      }
    }
    if (possible && strict) return true;
  }
  return false;
}

void SkylineQuery::ResolvePendingPins() {
  for (graph::FacilityId f : pending_pins_) {
    TrackedFacility& st = tracked_[f];
    MCN_DCHECK(st.pending && st.pinned);
    st.pending = false;
    if (DominatedByPinnedSkyline(st.costs)) {
      st.eliminated = true;
    } else {
      st.in_result = true;
      output_.push_back(f);
      ++stats_.skyline_size;
      pinned_skyline_.push_back(f);
      EliminateDominatedBy(f);
    }
  }
  pending_pins_.clear();
}

Status SkylineQuery::Pin(graph::FacilityId f) {
  TrackedFacility& st = tracked_[f];
  MCN_DCHECK(!st.pinned);
  st.pinned = true;

  if (stage_ == Stage::kGrowing) {
    // First pinned facility: growing ends (paper §IV-A). Before the real
    // shrinking stage starts, drain exact frontier ties (DESIGN.md §3).
    stage_ = Stage::kDrain;
    stats_.reached_shrinking = true;
    drain_boundary_ = st.costs;
    if (!st.in_result) PromoteToSkyline(f, st);
    pinned_skyline_.push_back(f);
    EliminateDominatedBy(f);
    return Status::OK();
  }

  if (st.in_result) {
    // A facility reported via the first-NN enhancement got pinned later:
    // it now participates in candidate elimination (paper §IV-A).
    filter_.Remove(f);
    pinned_skyline_.push_back(f);
    EliminateDominatedBy(f);
  } else if (DominatedByPinnedSkyline(st.costs)) {
    Eliminate(f, st);
  } else if (ThreatenedByNonPinnedSkyline(st.costs)) {
    // Defer the report until a drain resolves the potential dominators.
    ++stats_.deferred_pins;
    st.pending = true;
    --num_candidates_;  // fully known: no missing_per_cost_ updates
    filter_.Remove(f);
    pending_pins_.push_back(f);
    if (stage_ != Stage::kDrain) {
      stage_ = Stage::kDrain;
      drain_boundary_ = st.costs;
    } else {
      for (int j = 0; j < d_; ++j) {
        drain_boundary_[j] = std::max(drain_boundary_[j], st.costs[j]);
      }
    }
  } else {
    PromoteToSkyline(f, st);
    pinned_skyline_.push_back(f);
    EliminateDominatedBy(f);
  }
  if (stage_ == Stage::kShrinking && num_candidates_ == 0 &&
      pending_pins_.empty()) {
    done_ = true;
  }
  return Status::OK();
}

Status SkylineQuery::BuildFilter() {
  for (const auto& [fid, st] : tracked_) {
    bool sky_unpinned = st.in_result && !st.pinned;
    if (!IsCandidate(st) && !sky_unpinned) continue;
    MCN_ASSIGN_OR_RETURN(graph::EdgeKey edge,
                         engine_->LocateFacilityEdge(fid));
    filter_.Add(edge, fid);
  }
  engine_->SetFilter(&filter_);
  filter_installed_ = true;
  return Status::OK();
}

void SkylineQuery::MaybeStopExpansions() {
  if (!opts_.stop_finished_expansions) return;
  MCN_DCHECK(stage_ == Stage::kShrinking);
  for (int i = 0; i < d_; ++i) {
    if (active_[i] && missing_per_cost_[i] == 0 &&
        sky_missing_per_cost_[i] == 0) {
      active_[i] = false;
    }
  }
}

Status SkylineQuery::FinalizeRemaining() {
  // Only reachable in pathological setups (e.g. every expansion exhausted
  // before any pin, which requires an empty reachable facility set, or
  // defensive recovery): resolve remaining candidates with what is known,
  // treating unknown costs as +infinity.
  std::vector<graph::FacilityId> remaining;
  for (auto& [fid, st] : tracked_) {
    if (IsCandidate(st)) remaining.push_back(fid);
  }
  std::sort(remaining.begin(), remaining.end());
  for (graph::FacilityId f : remaining) {
    TrackedFacility& st = tracked_[f];
    if (!IsCandidate(st)) continue;  // eliminated by an earlier iteration
    bool dominated = false;
    for (const auto& [oid, ost] : tracked_) {
      if (oid == f || ost.eliminated) continue;
      ++stats_.dominance_checks;
      if (ost.costs.Dominates(st.costs)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      Eliminate(f, st);
    } else {
      PromoteToSkyline(f, st);
    }
  }
  done_ = true;
  return Status::OK();
}

}  // namespace mcn::algo
