#include "mcn/algo/skyline_query.h"

#include <algorithm>
#include <utility>

#include "mcn/algo/prune_oracle.h"
#include "mcn/algo/turn_dispatch.h"
#include "mcn/common/macros.h"
#include "mcn/expand/probe_scheduler.h"
#include "mcn/obs/trace.h"

namespace mcn::algo {

SkylineQuery::SkylineQuery(expand::NnEngine* engine, SkylineOptions options)
    : engine_(engine),
      opts_(options),
      turn_mode_(options.exec.parallelism >= 1),
      d_(engine->num_costs()),
      store_(engine->num_facilities(), d_, expand::kInfCost),
      missing_per_cost_(d_, 0),
      sky_missing_per_cost_(d_, 0),
      active_(d_, true),
      first_nn_taken_(d_, false) {
  MCN_CHECK(engine != nullptr);
  if (turn_mode_) {
    MCN_CHECK(opts_.exec.scheduler != nullptr);
    MCN_CHECK(opts_.exec.scheduler->engine() == engine);
  }
}

SkylineQuery::~SkylineQuery() = default;

SkylineEntry SkylineQuery::MakeEntry(graph::FacilityId f) const {
  uint32_t s = store_.Find(f);
  MCN_DCHECK(s != CandidateStore::kNoSlot);
  return SkylineEntry{f, store_.costs(s), store_.slot(s).known_mask};
}

Result<std::optional<SkylineEntry>> SkylineQuery::Next() {
  while (output_.empty() && !done_) {
    MCN_RETURN_IF_ERROR(Advance());
  }
  if (output_.empty()) return std::optional<SkylineEntry>(std::nullopt);
  graph::FacilityId f = output_.front();
  output_.pop_front();
  return std::optional<SkylineEntry>(MakeEntry(f));
}

Result<std::vector<SkylineEntry>> SkylineQuery::ComputeAll() {
  std::vector<graph::FacilityId> order;
  for (;;) {
    while (output_.empty() && !done_) {
      MCN_RETURN_IF_ERROR(Advance());
    }
    if (output_.empty()) break;
    order.push_back(output_.front());
    output_.pop_front();
  }
  std::vector<SkylineEntry> entries;
  entries.reserve(order.size());
  for (graph::FacilityId f : order) entries.push_back(MakeEntry(f));
  return entries;
}

int SkylineQuery::PickExpansion() const {
  switch (opts_.probe_policy) {
    case ProbePolicy::kRoundRobin: {
      for (int step = 0; step < d_; ++step) {
        int i = (turn_ + step) % d_;
        if (active_[i]) return i;
      }
      return -1;
    }
    case ProbePolicy::kSmallestFrontier:
    case ProbePolicy::kLargestFrontier: {
      int best = -1;
      double best_key = 0.0;
      for (int i = 0; i < d_; ++i) {
        if (!active_[i]) continue;
        double key = engine_->Frontier(i);
        bool better =
            best < 0 ||
            (opts_.probe_policy == ProbePolicy::kSmallestFrontier
                 ? key < best_key
                 : key > best_key);
        if (better) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return -1;
}

Status SkylineQuery::Advance() {
  if (turn_mode_) return AdvanceTurn();
  if (stage_ == Stage::kDrain) return DrainStep();
  int i = PickExpansion();
  if (i < 0) {
    // Every expansion exhausted or stopped.
    if (store_.num_candidates() > 0) return FinalizeRemaining();
    done_ = true;
    return Status::OK();
  }
  turn_ = (i + 1) % d_;
  MCN_ASSIGN_OR_RETURN(auto nn, engine_->NextNN(i));
  if (!nn.has_value()) {
    active_[i] = false;
    return Status::OK();
  }
  return HandlePop(i, nn->facility, nn->cost);
}

Status SkylineQuery::DrainStep() {
  ++stats_.drain_rounds;
  obs::RecordInstant(obs::CurrentTraceContext(),
                     obs::EventType::kDominanceRound, stats_.drain_rounds);
  for (int i = 0; i < d_; ++i) {
    // Stopped expansions may still hold the boundary key: step them too
    // (their stopped status resumes after the drain).
    if (engine_->Exhausted(i)) continue;
    if (engine_->Frontier(i) > drain_boundary_[i]) continue;
    MCN_ASSIGN_OR_RETURN(expand::ExpansionEvent ev, engine_->Step(i));
    switch (ev.type) {
      case expand::ExpansionEvent::Type::kExhausted:
        active_[i] = false;
        return Status::OK();
      case expand::ExpansionEvent::Type::kNode:
        return Status::OK();
      case expand::ExpansionEvent::Type::kFacility:
        return HandlePop(i, ev.id, ev.cost);
    }
  }
  // All frontiers are strictly past the boundary: nothing at the boundary
  // is still unseen.
  return FinishDrain();
}

Status SkylineQuery::FinishDrain() {
  // Resolve deferred pins, then resume shrinking.
  stage_ = Stage::kShrinking;
  ResolvePendingPins();
  if (!growing_over_) {
    growing_over_ = true;
    if (store_.num_candidates() > 0 && opts_.use_facility_filter) {
      MCN_RETURN_IF_ERROR(BuildFilter());
    }
  }
  MaybeStopExpansions();
  if (store_.num_candidates() == 0) done_ = true;
  return Status::OK();
}

Status SkylineQuery::AdvanceTurn() {
  if (stage_ == Stage::kDrain) return DrainTurn();
  if (opts_.probe_policy != ProbePolicy::kRoundRobin) {
    // Ablation frontier policies: width-1 turns — the serial schedule,
    // probe by probe, merely routed through the scheduler.
    int i = PickExpansion();
    if (i < 0) {
      if (store_.num_candidates() > 0) return FinalizeRemaining();
      done_ = true;
      return Status::OK();
    }
    return DispatchWidthOneNextNN(
        *opts_.exec.scheduler, i, active_,
        [&](int e, graph::FacilityId f, double cost) {
          return HandlePop(e, f, cost);
        });
  }
  // Round-robin: step-granular turns — every active expansion settles one
  // element between barriers. One settled node is ~one adjacency fetch,
  // so the d probes of a turn carry near-equal I/O and overlap cleanly
  // (a NextNN-sized probe would serialize a whole multi-fetch node churn
  // behind the barrier).
  std::vector<int>& targets = turn_targets_;
  targets.clear();
  for (int i = 0; i < d_; ++i) {
    if (active_[i]) targets.push_back(i);
  }
  if (targets.empty()) {
    if (store_.num_candidates() > 0) return FinalizeRemaining();
    done_ = true;
    return Status::OK();
  }
  MCN_ASSIGN_OR_RETURN(
      auto outcomes,
      opts_.exec.scheduler->StepTurn(targets, opts_.exec.turn_stride));
  // A pin inside the dispatch switches stage_/drain_boundary_ for the
  // *next* turn; the remaining buffered pops of this turn are real
  // settled facilities and go through the same handler.
  return DispatchStepOutcomes(
      outcomes, active_, /*any_active=*/nullptr,
      [&](int i, graph::FacilityId f, double cost) {
        return HandlePop(i, f, cost);
      });
}

Status SkylineQuery::DrainTurn() {
  ++stats_.drain_rounds;
  obs::RecordInstant(obs::CurrentTraceContext(),
                     obs::EventType::kDominanceRound, stats_.drain_rounds);
  const bool batched = opts_.probe_policy == ProbePolicy::kRoundRobin;
  std::vector<int>& targets = turn_targets_;
  targets.clear();
  for (int i = 0; i < d_; ++i) {
    // Stopped expansions may still hold the boundary key: step them too.
    if (engine_->Exhausted(i)) continue;
    if (engine_->Frontier(i) > drain_boundary_[i]) continue;
    targets.push_back(i);
    if (!batched) break;  // serial drain steps the first eligible only
  }
  if (targets.empty()) return FinishDrain();
  // Stride 1: drain eligibility is re-checked per settled element.
  MCN_ASSIGN_OR_RETURN(auto outcomes,
                       opts_.exec.scheduler->StepTurn(targets, 1));
  return DispatchStepOutcomes(
      outcomes, active_, /*any_active=*/nullptr,
      [&](int i, graph::FacilityId f, double cost) {
        return HandlePop(i, f, cost);
      });
}

Status SkylineQuery::HandlePop(int i, graph::FacilityId f, double cost) {
  ++stats_.nn_pops;
  bool created = false;
  uint32_t s = store_.Acquire(f, &created);
  CandidateStore::Slot& st = store_.slot(s);
  if (created) ++stats_.facilities_seen;
  if (st.eliminated) return Status::OK();
  // After the first drain, newly popped facilities are no longer part of
  // CS — the shrinking stage ignores them (paper §IV-A); any such facility
  // is strictly dominated by the first pinned one (DESIGN.md §3).
  bool growing_like = !growing_over_;
  if (!growing_like && created) {
    st.eliminated = true;
    return Status::OK();
  }

  store_.SetCost(s, i, cost);

  if (growing_like) {
    if (created) {
      store_.AddCandidate(s);
      for (int j = 0; j < d_; ++j) {
        if (j != i) ++missing_per_cost_[j];
      }
      stats_.candidates_peak =
          std::max(stats_.candidates_peak,
                   static_cast<uint64_t>(store_.num_candidates()));
    } else if (IsCandidate(st)) {
      --missing_per_cost_[i];
    }
    if (st.in_result && !st.pinned) {
      --sky_missing_per_cost_[i];
    }
    if (opts_.report_first_nn && !first_nn_taken_[i]) {
      // The i-th expansion's first NN cannot be dominated: report directly.
      first_nn_taken_[i] = true;
      if (!st.in_result) PromoteToSkyline(s);
    }
  } else if (IsCandidate(st)) {
    --missing_per_cost_[i];
  } else if (st.in_result && !st.pinned) {
    --sky_missing_per_cost_[i];
  }

  if (st.known_count == d_) {
    MCN_RETURN_IF_ERROR(Pin(s));
  }
  if (stage_ == Stage::kShrinking) MaybeStopExpansions();
  return Status::OK();
}

void SkylineQuery::PromoteToSkyline(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(IsCandidate(st));
  st.in_result = true;
  store_.RemoveCandidate(s);
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) {
      --missing_per_cost_[j];
      ++sky_missing_per_cost_[j];
    }
  }
  if (!st.pinned) store_.AddSkyUnpinned(s);
  filter_.Remove(st.id);
  output_.push_back(st.id);
  ++stats_.skyline_size;
}

void SkylineQuery::Eliminate(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(IsCandidate(st));
  st.eliminated = true;
  store_.RemoveCandidate(s);
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) --missing_per_cost_[j];
  }
  filter_.Remove(st.id);
}

void SkylineQuery::EliminateDominatedBy(uint32_t pinned) {
  const graph::CostVector& pc = store_.costs(pinned);
  const std::vector<uint32_t>& cs = store_.candidates();
  // Swap-erase iteration: when the current slot is eliminated, the tail
  // lands at `pos`, so the index must not advance.
  for (size_t pos = 0; pos < cs.size();) {
    uint32_t s = cs[pos];
    // Every Pin path removes the pinned slot from CS before sweeping.
    MCN_DCHECK(s != pinned);
    const CandidateStore::Slot& st = store_.slot(s);
    ++stats_.dominance_checks;
    // Known costs of the candidate are enough: its unknown costs are at
    // least the corresponding frontier, hence at least the pinned
    // facility's costs. Elimination requires a strict witness among the
    // known costs (DESIGN.md §3).
    const graph::CostVector& sc = store_.costs(s);
    bool leq_all = true;
    bool strict = false;
    for (int j = 0; j < d_; ++j) {
      if (!st.Knows(j)) continue;
      if (pc[j] > sc[j]) {
        leq_all = false;
        break;
      }
      if (pc[j] < sc[j]) strict = true;
    }
    if (leq_all && strict) {
      Eliminate(s);
    } else {
      ++pos;
    }
  }
}

bool SkylineQuery::DominatedByPinnedSkyline(const graph::CostVector& costs) {
  for (uint32_t m : pinned_skyline_) {
    ++stats_.dominance_checks;
    if (store_.costs(m).Dominates(costs)) return true;
  }
  return false;
}

bool SkylineQuery::ThreatenedByNonPinnedSkyline(
    const graph::CostVector& costs) {
  for (uint32_t m : store_.sky_unpinned()) {
    const CandidateStore::Slot& mst = store_.slot(m);
    ++stats_.dominance_checks;
    // m could dominate `costs` only if every known cost is <= (with a
    // strict witness) and every unknown cost sits exactly at a frontier
    // equal to ours (the frontier already reached our cost because we are
    // pinned, so anything larger disqualifies m).
    const graph::CostVector& mc = store_.costs(m);
    bool possible = true;
    bool strict = false;
    for (int j = 0; j < d_; ++j) {
      if (mst.Knows(j)) {
        if (mc[j] > costs[j]) {
          possible = false;
          break;
        }
        if (mc[j] < costs[j]) strict = true;
      } else if (engine_->Frontier(j) != costs[j]) {
        possible = false;
        break;
      }
    }
    if (possible && strict) return true;
  }
  return false;
}

void SkylineQuery::ResolvePendingPins() {
  for (uint32_t s : pending_pins_) {
    CandidateStore::Slot& st = store_.slot(s);
    MCN_DCHECK(st.pending && st.pinned);
    st.pending = false;
    if (DominatedByPinnedSkyline(store_.costs(s))) {
      st.eliminated = true;
    } else {
      st.in_result = true;
      output_.push_back(st.id);
      ++stats_.skyline_size;
      pinned_skyline_.push_back(s);
      EliminateDominatedBy(s);
    }
  }
  pending_pins_.clear();
}

Status SkylineQuery::Pin(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(!st.pinned);
  st.pinned = true;

  if (stage_ == Stage::kGrowing) {
    // First pinned facility: growing ends (paper §IV-A). Before the real
    // shrinking stage starts, drain exact frontier ties (DESIGN.md §3).
    stage_ = Stage::kDrain;
    stats_.reached_shrinking = true;
    drain_boundary_ = store_.costs(s);
    if (!st.in_result) {
      PromoteToSkyline(s);
    } else {
      store_.RemoveSkyUnpinned(s);
    }
    pinned_skyline_.push_back(s);
    EliminateDominatedBy(s);
    return Status::OK();
  }

  if (st.in_result) {
    // A facility reported via the first-NN enhancement got pinned later:
    // it now participates in candidate elimination (paper §IV-A).
    store_.RemoveSkyUnpinned(s);
    filter_.Remove(st.id);
    pinned_skyline_.push_back(s);
    EliminateDominatedBy(s);
  } else if (DominatedByPinnedSkyline(store_.costs(s))) {
    Eliminate(s);
  } else if (ThreatenedByNonPinnedSkyline(store_.costs(s))) {
    // Defer the report until a drain resolves the potential dominators.
    ++stats_.deferred_pins;
    st.pending = true;
    store_.RemoveCandidate(s);  // fully known: no missing_per_cost_ updates
    filter_.Remove(st.id);
    pending_pins_.push_back(s);
    if (stage_ != Stage::kDrain) {
      stage_ = Stage::kDrain;
      drain_boundary_ = store_.costs(s);
    } else {
      for (int j = 0; j < d_; ++j) {
        drain_boundary_[j] = std::max(drain_boundary_[j], store_.costs(s)[j]);
      }
    }
  } else {
    PromoteToSkyline(s);
    pinned_skyline_.push_back(s);
    EliminateDominatedBy(s);
  }
  if (stage_ == Stage::kShrinking && store_.num_candidates() == 0 &&
      pending_pins_.empty()) {
    done_ = true;
  }
  return Status::OK();
}

Status SkylineQuery::BuildFilter() {
  // Landmark pruning (DESIGN.md §12) is confined to the serial round-robin
  // schedule: the ablation frontier policies compare live frontier keys in
  // PickExpansion, and turn mode strides through the scheduler — both
  // observe which nodes expanded, so eliding expansions there would change
  // the event order. Serial round-robin only observes facility pops.
  const bool want_pruner = opts_.exec.landmark_index != nullptr &&
                           !turn_mode_ &&
                           opts_.probe_policy == ProbePolicy::kRoundRobin;
  std::vector<PruneOracle::ProtectedFacility> snapshot;
  // Candidates and non-pinned skyline members both stay visible to the
  // shrinking-stage expansions.
  for (const std::vector<uint32_t>* list :
       {&store_.candidates(), &store_.sky_unpinned()}) {
    for (uint32_t s : *list) {
      graph::FacilityId id = store_.slot(s).id;
      MCN_ASSIGN_OR_RETURN(graph::EdgeKey edge,
                           engine_->LocateFacilityEdge(id));
      filter_.Add(edge, id);
      if (want_pruner) snapshot.push_back({id, edge.u, edge.v});
    }
  }
  engine_->SetFilter(&filter_);
  filter_installed_ = true;
  if (want_pruner && !snapshot.empty()) {
    MCN_ASSIGN_OR_RETURN(
        pruner_,
        PruneOracle::Create(engine_, opts_.exec.landmark_index, &filter_,
                            std::move(snapshot), &stats_.prune_checked,
                            &stats_.prune_cut));
    engine_->SetPruner(pruner_.get());
  }
  return Status::OK();
}

void SkylineQuery::MaybeStopExpansions() {
  if (!opts_.stop_finished_expansions) return;
  MCN_DCHECK(stage_ == Stage::kShrinking);
  for (int i = 0; i < d_; ++i) {
    if (active_[i] && missing_per_cost_[i] == 0 &&
        sky_missing_per_cost_[i] == 0) {
      active_[i] = false;
    }
  }
}

Status SkylineQuery::FinalizeRemaining() {
  // Only reachable in pathological setups (e.g. every expansion exhausted
  // before any pin, which requires an empty reachable facility set, or
  // defensive recovery): resolve remaining candidates with what is known,
  // treating unknown costs as +infinity.
  std::vector<uint32_t> remaining(store_.candidates());
  std::sort(remaining.begin(), remaining.end(),
            [this](uint32_t a, uint32_t b) {
              return store_.slot(a).id < store_.slot(b).id;
            });
  for (uint32_t s : remaining) {
    CandidateStore::Slot& st = store_.slot(s);
    if (!IsCandidate(st)) continue;  // eliminated by an earlier iteration
    bool dominated = false;
    for (uint32_t o = 0; o < store_.size(); ++o) {
      if (o == s || store_.slot(o).eliminated) continue;
      ++stats_.dominance_checks;
      if (store_.costs(o).Dominates(store_.costs(s))) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      Eliminate(s);
    } else {
      PromoteToSkyline(s);
    }
  }
  done_ = true;
  return Status::OK();
}

}  // namespace mcn::algo
