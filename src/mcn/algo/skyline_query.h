// Progressive MCN skyline processing (paper §IV). The query is driven over
// an NnEngine; plugging in LsaEngine yields the Local Search Algorithm,
// CeaEngine the Combined Expansion Algorithm (both traverse facilities in
// the same order, so results and report order are identical — only the I/O
// behavior differs), and MemEngine a zero-I/O in-memory run.
//
// The implementation includes all three §IV-A enhancements, each
// individually switchable for the ablation benchmarks:
//  1. the first NN of each cost type is reported as skyline immediately;
//  2. during shrinking, facility records are read only for candidate edges
//     (the candidate filter, built with one facility-tree probe per
//     candidate at the growing/shrinking transition);
//  3. an expansion stops once every candidate knows its cost type.
//
// Two soundness refinements over the paper (DESIGN.md §3):
//  * Tie handling: candidates are eliminated only on a *strict* known-cost
//    dominance witness, and exact frontier ties are drained before the
//    shrinking stage begins, so facilities with identical cost vectors are
//    all retained (the paper's footnote 4 assumes ties away).
//  * Enhancement-1 interaction: a pinned candidate is reported only after
//    no *non-pinned* skyline member (a directly-reported first NN that the
//    candidate filter excludes from further pops) can still dominate it;
//    potential dominators are resolved by a bounded frontier drain.
//
// Per-facility state lives in a dense CandidateStore (DESIGN.md §4):
// dominance sweeps iterate only the live candidate / non-pinned skyline
// lists instead of hashing into (or fully scanning) a map per event.
#ifndef MCN_ALGO_SKYLINE_QUERY_H_
#define MCN_ALGO_SKYLINE_QUERY_H_

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "mcn/algo/candidate_store.h"
#include "mcn/algo/common.h"
#include "mcn/common/result.h"
#include "mcn/expand/engines.h"

namespace mcn::algo {

class PruneOracle;

struct SkylineOptions {
  /// §IV-A enhancement 1: report each cost type's first NN directly.
  bool report_first_nn = true;
  /// §IV-A enhancement 2: shrinking-stage candidate filter.
  bool use_facility_filter = true;
  /// §IV-A enhancement 3: stop expansions with no missing candidate costs.
  bool stop_finished_expansions = true;
  /// Expansion multiplexing policy (round-robin per the paper).
  ProbePolicy probe_policy = ProbePolicy::kRoundRobin;
  /// Intra-query parallelism (DESIGN.md §7). With a scheduler and
  /// round-robin probing, turns advance every active expansion at once
  /// (concurrently when the scheduler has a pool); the ablation frontier
  /// policies degenerate to width-1 turns, which replay the serial
  /// schedule exactly.
  QueryOptions exec;
};

/// Progressive skyline computation: every facility returned by Next() is
/// definitely in the skyline (never retracted).
class SkylineQuery {
 public:
  struct Stats {
    uint64_t nn_pops = 0;           ///< facility pops across all expansions
    uint64_t dominance_checks = 0;
    uint64_t candidates_peak = 0;   ///< max |CS|
    uint64_t facilities_seen = 0;
    uint64_t skyline_size = 0;
    uint64_t drain_rounds = 0;      ///< tie/threat drain steps
    uint64_t deferred_pins = 0;     ///< candidate reports deferred
    uint64_t prune_checked = 0;     ///< node pops the prune oracle examined
    uint64_t prune_cut = 0;         ///< node expansions elided by the oracle
    bool reached_shrinking = false;
  };

  /// `engine` must outlive the query and be freshly created at the query
  /// location (engines are single-use).
  explicit SkylineQuery(expand::NnEngine* engine, SkylineOptions options = {});
  ~SkylineQuery();

  /// Next confirmed skyline facility, or nullopt when the skyline is
  /// complete. Costs reflect what is known at retrieval time.
  Result<std::optional<SkylineEntry>> Next();

  /// Runs the query to completion and returns all skyline facilities in
  /// report order, with their final (possibly still partial) cost vectors.
  Result<std::vector<SkylineEntry>> ComputeAll();

  const Stats& stats() const { return stats_; }
  bool done() const { return done_ && output_.empty(); }

 private:
  // kDrain is the (usually empty) transition used in two places: after the
  // first pin — stepping expansions while their frontier still ties the
  // pinned facility's cost, so exactly-tying unseen facilities are still
  // admitted — and after a deferred candidate pin, to resolve non-pinned
  // potential dominators. Costs no extra pops in generic position.
  enum class Stage { kGrowing, kDrain, kShrinking };

  bool IsCandidate(const CandidateStore::Slot& st) const {
    return !st.in_result && !st.eliminated && !st.pending;
  }

  /// One probing turn: advance one expansion to its next NN (serial), or
  /// one scheduler turn over the policy's target set (turn mode).
  Status Advance();
  /// One drain step; completes the transition back to shrinking when every
  /// frontier has moved past the drain boundary.
  Status DrainStep();
  /// Turn-mode counterparts (DESIGN.md §7): same per-event handling, but
  /// a whole target set advances between barriers.
  Status AdvanceTurn();
  Status DrainTurn();
  /// Shared epilogue of a completed drain (serial and turn mode).
  Status FinishDrain();
  Status HandlePop(int i, graph::FacilityId f, double cost);
  Status Pin(uint32_t s);
  /// Moves a candidate slot into the skyline and queues it for output.
  void PromoteToSkyline(uint32_t s);
  /// Removes a candidate slot from CS as dominated.
  void Eliminate(uint32_t s);
  /// Strict known-cost dominance sweep against a just-pinned slot.
  void EliminateDominatedBy(uint32_t pinned);
  /// True if some pinned skyline member strictly dominates `costs`.
  bool DominatedByPinnedSkyline(const graph::CostVector& costs);
  /// True if a non-pinned skyline member could still dominate `costs`
  /// (known costs all <=, a strict known witness, unknown costs exactly at
  /// the matching frontiers).
  bool ThreatenedByNonPinnedSkyline(const graph::CostVector& costs);
  /// Resolves deferred pins after a drain (report or eliminate).
  void ResolvePendingPins();
  Status BuildFilter();
  void MaybeStopExpansions();
  /// Picks the next expansion per the probing policy; -1 when none active.
  int PickExpansion() const;
  /// Defensive: resolves remaining candidates after total exhaustion.
  Status FinalizeRemaining();
  SkylineEntry MakeEntry(graph::FacilityId f) const;

  expand::NnEngine* engine_;
  SkylineOptions opts_;
  bool turn_mode_;
  int d_;
  Stage stage_ = Stage::kGrowing;
  bool done_ = false;
  /// True once the first drain finished: from then on, newly popped
  /// facilities are no longer admitted to CS (paper's shrinking rule).
  bool growing_over_ = false;
  CandidateStore store_;
  std::vector<int> missing_per_cost_;
  // Non-pinned skyline members (directly-reported first NNs) still missing
  // each cost: expansions stay alive for them while candidates remain, so
  // their dominance power is never lost (DESIGN.md §3).
  std::vector<int> sky_missing_per_cost_;
  std::vector<bool> active_;
  std::vector<bool> first_nn_taken_;
  std::vector<uint32_t> pinned_skyline_;  ///< store slots
  graph::CostVector drain_boundary_;
  std::vector<uint32_t> pending_pins_;    ///< store slots
  expand::FacilityFilter filter_;
  bool filter_installed_ = false;
  // Landmark prune oracle (DESIGN.md §12), created at BuildFilter when the
  // run is serial round-robin and a validated index was supplied.
  std::unique_ptr<PruneOracle> pruner_;
  std::vector<int> turn_targets_;  ///< turn-mode scratch (no per-turn alloc)
  std::deque<graph::FacilityId> output_;
  int turn_ = 0;
  Stats stats_;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_SKYLINE_QUERY_H_
