#include "mcn/algo/topk_query.h"

#include <algorithm>

#include "mcn/algo/turn_dispatch.h"
#include "mcn/common/macros.h"
#include "mcn/expand/probe_scheduler.h"

namespace mcn::algo {

TopKQuery::TopKQuery(expand::NnEngine* engine, AggregateFn f,
                     TopKOptions options)
    : engine_(engine),
      f_(std::move(f)),
      opts_(options),
      turn_mode_(options.exec.parallelism >= 1),
      d_(engine->num_costs()),
      store_(engine->num_facilities(), d_, expand::kInfCost),
      missing_per_cost_(d_, 0),
      active_(d_, true) {
  MCN_CHECK(engine != nullptr);
  MCN_CHECK(opts_.k >= 1);
  if (turn_mode_) {
    MCN_CHECK(opts_.exec.scheduler != nullptr);
    MCN_CHECK(opts_.exec.scheduler->engine() == engine);
  }
}

int TopKQuery::PickExpansion() const {
  switch (opts_.probe_policy) {
    case ProbePolicy::kRoundRobin: {
      for (int step = 0; step < d_; ++step) {
        int i = (turn_ + step) % d_;
        if (active_[i]) return i;
      }
      return -1;
    }
    case ProbePolicy::kSmallestFrontier:
    case ProbePolicy::kLargestFrontier: {
      int best = -1;
      double best_key = 0.0;
      for (int i = 0; i < d_; ++i) {
        if (!active_[i]) continue;
        double key = engine_->Frontier(i);
        bool better =
            best < 0 ||
            (opts_.probe_policy == ProbePolicy::kSmallestFrontier
                 ? key < best_key
                 : key > best_key);
        if (better) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return -1;
}

double TopKQuery::KthScore() const {
  MCN_DCHECK(!top_.empty());
  return top_.top().score;
}

Result<std::vector<TopKEntry>> TopKQuery::Run() {
  MCN_RETURN_IF_ERROR(turn_mode_ ? RunGrowingTurns() : RunGrowing());
  if (stats_.reached_shrinking) {
    MCN_RETURN_IF_ERROR(turn_mode_ ? RunShrinkingTurns() : RunShrinking());
  }
  return ExtractResult();
}

Status TopKQuery::RunGrowing() {
  while (static_cast<int>(top_.size()) < opts_.k) {
    int i = PickExpansion();
    if (i < 0) {
      // Total exhaustion: every encountered facility has been pinned, the
      // tentative top-k already holds the best of them.
      MCN_DCHECK(store_.num_candidates() == 0);
      return Status::OK();
    }
    turn_ = (i + 1) % d_;
    MCN_ASSIGN_OR_RETURN(auto nn, engine_->NextNN(i));
    if (!nn.has_value()) {
      active_[i] = false;
      continue;
    }
    MCN_RETURN_IF_ERROR(HandleGrowingPop(i, nn->facility, nn->cost));
  }
  stats_.reached_shrinking = true;
  return Status::OK();
}

Status TopKQuery::RunGrowingTurns() {
  expand::ParallelProbeScheduler* sched = opts_.exec.scheduler;
  const bool batched = opts_.probe_policy == ProbePolicy::kRoundRobin;
  while (static_cast<int>(top_.size()) < opts_.k) {
    if (!batched) {
      // Ablation frontier policies: width-1 turns (exact serial replay).
      int i = PickExpansion();
      if (i < 0) {
        MCN_DCHECK(store_.num_candidates() == 0);
        return Status::OK();
      }
      MCN_RETURN_IF_ERROR(DispatchWidthOneNextNN(
          *sched, i, active_,
          [&](int e, graph::FacilityId f, double cost) {
            return HandleGrowingPop(e, f, cost);
          }));
      continue;
    }
    // Round-robin: step-granular turns (see SkylineQuery::AdvanceTurn for
    // the balance rationale).
    std::vector<int>& targets = turn_targets_;
    targets.clear();
    for (int i = 0; i < d_; ++i) {
      if (active_[i]) targets.push_back(i);
    }
    if (targets.empty()) {
      // Total exhaustion (see RunGrowing).
      MCN_DCHECK(store_.num_candidates() == 0);
      return Status::OK();
    }
    MCN_ASSIGN_OR_RETURN(auto outcomes,
                         sched->StepTurn(targets, opts_.exec.turn_stride));
    MCN_RETURN_IF_ERROR(DispatchStepOutcomes(
        outcomes, active_, /*any_active=*/nullptr,
        [&](int i, graph::FacilityId f, double cost) {
          return HandleGrowingPop(i, f, cost);
        }));
  }
  stats_.reached_shrinking = true;
  return Status::OK();
}

Status TopKQuery::HandleGrowingPop(int i, graph::FacilityId f, double cost) {
  if (static_cast<int>(top_.size()) >= opts_.k) {
    // Only reachable in turn mode: a full-width turn keeps delivering
    // pops after the k-th pin. Give them exactly the serial
    // shrinking-stage treatment — first-seen facilities are ignored for
    // good, known candidates resolve strictly against the k-th score —
    // so the two schedules agree even on score ties at the boundary.
    return HandleShrinkingPop(i, f, cost);
  }
  ++stats_.nn_pops;
  bool created = false;
  uint32_t s = store_.Acquire(f, &created);
  if (created) ++stats_.facilities_seen;
  store_.SetCost(s, i, cost);
  if (created) {
    store_.AddCandidate(s);
    for (int j = 0; j < d_; ++j) {
      if (j != i) ++missing_per_cost_[j];
    }
    stats_.candidates_peak =
        std::max(stats_.candidates_peak,
                 static_cast<uint64_t>(store_.num_candidates()));
  } else {
    --missing_per_cost_[i];
  }
  if (store_.slot(s).known_count == d_) AcceptPinned(s);
  return Status::OK();
}

void TopKQuery::AcceptPinned(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(!st.pinned && IsCandidate(st));
  st.pinned = true;
  st.in_result = true;
  // All costs known, so no missing_per_cost_ updates.
  store_.RemoveCandidate(s);
  top_.push(HeapEntry{f_(store_.costs(s)), st.id});
}

Status TopKQuery::RunShrinking() {
  if (opts_.use_facility_filter) {
    MCN_RETURN_IF_ERROR(BuildFilter());
  }
  MaybeStopExpansions();
  while (store_.num_candidates() > 0) {
    bool any_active = false;
    // One heap element per expansion per round (paper §V: "each expansion
    // is suspended after popping one node from its heap").
    for (int i = 0; i < d_; ++i) {
      if (!active_[i]) continue;
      MCN_ASSIGN_OR_RETURN(expand::ExpansionEvent ev, engine_->Step(i));
      switch (ev.type) {
        case expand::ExpansionEvent::Type::kExhausted:
          active_[i] = false;
          break;
        case expand::ExpansionEvent::Type::kNode:
          any_active = true;
          break;
        case expand::ExpansionEvent::Type::kFacility:
          any_active = true;
          MCN_RETURN_IF_ERROR(HandleShrinkingPop(i, ev.id, ev.cost));
          break;
      }
    }
    if (opts_.lower_bound_pruning) LowerBoundSweep();
    MaybeStopExpansions();
    if (!any_active && store_.num_candidates() > 0) {
      // Every expansion exhausted or stopped: remaining candidates can
      // never be pinned; their lower bounds are +infinity (unreachable
      // costs), so they cannot beat any pinned facility.
      while (store_.num_candidates() > 0) {
        Eliminate(store_.candidates().back());
      }
    }
  }
  return Status::OK();
}

Status TopKQuery::RunShrinkingTurns() {
  expand::ParallelProbeScheduler* sched = opts_.exec.scheduler;
  if (opts_.use_facility_filter) {
    MCN_RETURN_IF_ERROR(BuildFilter());
  }
  MaybeStopExpansions();
  const bool batched = opts_.probe_policy == ProbePolicy::kRoundRobin;
  while (store_.num_candidates() > 0) {
    bool any_active = false;
    auto on_pop = [&](int i, graph::FacilityId f, double cost) {
      return HandleShrinkingPop(i, f, cost);
    };
    std::vector<int>& targets = turn_targets_;
    targets.clear();
    for (int i = 0; i < d_; ++i) {
      if (active_[i]) targets.push_back(i);
    }
    if (batched) {
      if (!targets.empty()) {
        // Stride 1: the paper's §V suspension rule is one heap element per
        // expansion between lower-bound sweeps.
        MCN_ASSIGN_OR_RETURN(auto outcomes, sched->StepTurn(targets, 1));
        MCN_RETURN_IF_ERROR(
            DispatchStepOutcomes(outcomes, active_, &any_active, on_pop));
      }
    } else {
      // Ablation frontier policies: width-1 turns, processing between
      // probes — the serial shrinking round, step by step.
      for (int i : targets) {
        MCN_ASSIGN_OR_RETURN(auto outcomes, sched->StepTurn({i}, 1));
        MCN_RETURN_IF_ERROR(
            DispatchStepOutcomes(outcomes, active_, &any_active, on_pop));
      }
    }
    if (opts_.lower_bound_pruning) LowerBoundSweep();
    MaybeStopExpansions();
    if (!any_active && store_.num_candidates() > 0) {
      // See RunShrinking: remaining candidates can never be pinned.
      while (store_.num_candidates() > 0) {
        Eliminate(store_.candidates().back());
      }
    }
  }
  return Status::OK();
}

Status TopKQuery::HandleShrinkingPop(int i, graph::FacilityId f,
                                     double cost) {
  ++stats_.nn_pops;
  uint32_t s = store_.Find(f);
  if (s == CandidateStore::kNoSlot) {
    // First popped during shrinking: not in CS, ignore for good.
    bool created = false;
    s = store_.Acquire(f, &created);
    MCN_DCHECK(created);
    store_.slot(s).eliminated = true;
    return Status::OK();
  }
  CandidateStore::Slot& st = store_.slot(s);
  if (st.eliminated || st.in_result) return Status::OK();
  store_.SetCost(s, i, cost);
  --missing_per_cost_[i];
  if (st.known_count == d_) ResolvePinned(s);
  return Status::OK();
}

void TopKQuery::ResolvePinned(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(IsCandidate(st));
  st.pinned = true;
  double score = f_(store_.costs(s));
  if (score < KthScore()) {
    // Replaces the current k-th best (paper §V shrinking stage).
    graph::FacilityId evicted = top_.top().facility;
    top_.pop();
    uint32_t es = store_.Find(evicted);
    MCN_DCHECK(es != CandidateStore::kNoSlot);
    store_.slot(es).in_result = false;
    store_.slot(es).eliminated = true;
    top_.push(HeapEntry{score, st.id});
    st.in_result = true;
    store_.RemoveCandidate(s);
    filter_.Remove(st.id);
    ++stats_.replacements;
  } else {
    Eliminate(s);
  }
}

void TopKQuery::Eliminate(uint32_t s) {
  CandidateStore::Slot& st = store_.slot(s);
  MCN_DCHECK(IsCandidate(st));
  st.eliminated = true;
  store_.RemoveCandidate(s);
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) --missing_per_cost_[j];
  }
  filter_.Remove(st.id);
}

void TopKQuery::LowerBoundSweep() {
  if (top_.empty()) return;
  double kth = KthScore();
  const std::vector<uint32_t>& cs = store_.candidates();
  // Swap-erase iteration: do not advance after eliminating the current
  // position (the tail slot lands there).
  for (size_t pos = 0; pos < cs.size();) {
    uint32_t s = cs[pos];
    const CandidateStore::Slot& st = store_.slot(s);
    graph::CostVector lb = store_.costs(s);
    for (int j = 0; j < d_; ++j) {
      if (!st.Knows(j)) lb[j] = engine_->Frontier(j);
    }
    if (f_(lb) >= kth) {
      Eliminate(s);
      ++stats_.lb_eliminations;
    } else {
      ++pos;
    }
  }
}

Status TopKQuery::BuildFilter() {
  for (uint32_t s : store_.candidates()) {
    MCN_ASSIGN_OR_RETURN(graph::EdgeKey edge,
                         engine_->LocateFacilityEdge(store_.slot(s).id));
    filter_.Add(edge, store_.slot(s).id);
  }
  engine_->SetFilter(&filter_);
  return Status::OK();
}

void TopKQuery::MaybeStopExpansions() {
  if (!opts_.stop_finished_expansions) return;
  for (int i = 0; i < d_; ++i) {
    if (active_[i] && missing_per_cost_[i] == 0) active_[i] = false;
  }
}

std::vector<TopKEntry> TopKQuery::ExtractResult() {
  std::vector<TopKEntry> result;
  result.reserve(top_.size());
  while (!top_.empty()) {
    HeapEntry e = top_.top();
    top_.pop();
    uint32_t s = store_.Find(e.facility);
    result.push_back(TopKEntry{e.facility, store_.costs(s), e.score});
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace mcn::algo
