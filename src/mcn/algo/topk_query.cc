#include "mcn/algo/topk_query.h"

#include <algorithm>

#include "mcn/common/macros.h"

namespace mcn::algo {

TopKQuery::TopKQuery(expand::NnEngine* engine, AggregateFn f,
                     TopKOptions options)
    : engine_(engine),
      f_(std::move(f)),
      opts_(options),
      d_(engine->num_costs()),
      missing_per_cost_(d_, 0),
      active_(d_, true) {
  MCN_CHECK(engine != nullptr);
  MCN_CHECK(opts_.k >= 1);
}

int TopKQuery::PickExpansion() const {
  switch (opts_.probe_policy) {
    case ProbePolicy::kRoundRobin: {
      for (int step = 0; step < d_; ++step) {
        int i = (turn_ + step) % d_;
        if (active_[i]) return i;
      }
      return -1;
    }
    case ProbePolicy::kSmallestFrontier:
    case ProbePolicy::kLargestFrontier: {
      int best = -1;
      double best_key = 0.0;
      for (int i = 0; i < d_; ++i) {
        if (!active_[i]) continue;
        double key = engine_->Frontier(i);
        bool better =
            best < 0 ||
            (opts_.probe_policy == ProbePolicy::kSmallestFrontier
                 ? key < best_key
                 : key > best_key);
        if (better) {
          best = i;
          best_key = key;
        }
      }
      return best;
    }
  }
  return -1;
}

double TopKQuery::KthScore() const {
  MCN_DCHECK(!top_.empty());
  return top_.top().score;
}

Result<std::vector<TopKEntry>> TopKQuery::Run() {
  MCN_RETURN_IF_ERROR(RunGrowing());
  if (stats_.reached_shrinking) {
    MCN_RETURN_IF_ERROR(RunShrinking());
  }
  return ExtractResult();
}

Status TopKQuery::RunGrowing() {
  while (static_cast<int>(top_.size()) < opts_.k) {
    int i = PickExpansion();
    if (i < 0) {
      // Total exhaustion: every encountered facility has been pinned, the
      // tentative top-k already holds the best of them.
      MCN_DCHECK(num_candidates_ == 0);
      return Status::OK();
    }
    turn_ = (i + 1) % d_;
    MCN_ASSIGN_OR_RETURN(auto nn, engine_->NextNN(i));
    if (!nn.has_value()) {
      active_[i] = false;
      continue;
    }
    MCN_RETURN_IF_ERROR(HandleGrowingPop(i, nn->facility, nn->cost));
  }
  stats_.reached_shrinking = true;
  return Status::OK();
}

Status TopKQuery::HandleGrowingPop(int i, graph::FacilityId f, double cost) {
  ++stats_.nn_pops;
  auto [it, created] = tracked_.try_emplace(
      f, TrackedFacility{graph::CostVector(d_, expand::kInfCost), 0, 0,
                         false, false, false});
  TrackedFacility& st = it->second;
  if (created) ++stats_.facilities_seen;
  MCN_DCHECK(!st.Knows(i));
  st.costs[i] = cost;
  st.known_mask |= 1u << i;
  ++st.known_count;
  if (created) {
    ++num_candidates_;
    for (int j = 0; j < d_; ++j) {
      if (j != i) ++missing_per_cost_[j];
    }
    stats_.candidates_peak = std::max(stats_.candidates_peak,
                                      static_cast<uint64_t>(num_candidates_));
  } else {
    --missing_per_cost_[i];
  }
  if (st.known_count == d_) AcceptPinned(f, st);
  return Status::OK();
}

void TopKQuery::AcceptPinned(graph::FacilityId f, TrackedFacility& st) {
  MCN_DCHECK(!st.pinned && IsCandidate(st));
  st.pinned = true;
  st.in_result = true;
  --num_candidates_;  // all costs known, so no missing_per_cost_ updates
  top_.push(HeapEntry{f_(st.costs), f});
}

Status TopKQuery::RunShrinking() {
  if (opts_.use_facility_filter) {
    MCN_RETURN_IF_ERROR(BuildFilter());
  }
  MaybeStopExpansions();
  while (num_candidates_ > 0) {
    bool any_active = false;
    // One heap element per expansion per round (paper §V: "each expansion
    // is suspended after popping one node from its heap").
    for (int i = 0; i < d_; ++i) {
      if (!active_[i]) continue;
      MCN_ASSIGN_OR_RETURN(expand::ExpansionEvent ev, engine_->Step(i));
      switch (ev.type) {
        case expand::ExpansionEvent::Type::kExhausted:
          active_[i] = false;
          break;
        case expand::ExpansionEvent::Type::kNode:
          any_active = true;
          break;
        case expand::ExpansionEvent::Type::kFacility:
          any_active = true;
          MCN_RETURN_IF_ERROR(HandleShrinkingPop(i, ev.id, ev.cost));
          break;
      }
    }
    if (opts_.lower_bound_pruning) LowerBoundSweep();
    MaybeStopExpansions();
    if (!any_active && num_candidates_ > 0) {
      // Every expansion exhausted or stopped: remaining candidates can
      // never be pinned; their lower bounds are +infinity (unreachable
      // costs), so they cannot beat any pinned facility.
      std::vector<graph::FacilityId> remaining;
      for (auto& [fid, st] : tracked_) {
        if (IsCandidate(st)) remaining.push_back(fid);
      }
      for (graph::FacilityId fid : remaining) Eliminate(fid, tracked_[fid]);
    }
  }
  return Status::OK();
}

Status TopKQuery::HandleShrinkingPop(int i, graph::FacilityId f,
                                     double cost) {
  ++stats_.nn_pops;
  auto it = tracked_.find(f);
  if (it == tracked_.end()) {
    // First popped during shrinking: not in CS, ignore for good.
    auto [nit, inserted] = tracked_.try_emplace(
        f, TrackedFacility{graph::CostVector(d_, expand::kInfCost), 0, 0,
                           false, true, false});
    (void)nit;
    (void)inserted;
    return Status::OK();
  }
  TrackedFacility& st = it->second;
  if (st.eliminated || st.in_result) return Status::OK();
  MCN_DCHECK(!st.Knows(i));
  st.costs[i] = cost;
  st.known_mask |= 1u << i;
  ++st.known_count;
  --missing_per_cost_[i];
  if (st.known_count == d_) ResolvePinned(f, st);
  return Status::OK();
}

void TopKQuery::ResolvePinned(graph::FacilityId f, TrackedFacility& st) {
  MCN_DCHECK(IsCandidate(st));
  st.pinned = true;
  double score = f_(st.costs);
  if (score < KthScore()) {
    // Replaces the current k-th best (paper §V shrinking stage).
    graph::FacilityId evicted = top_.top().facility;
    top_.pop();
    TrackedFacility& est = tracked_[evicted];
    est.in_result = false;
    est.eliminated = true;
    top_.push(HeapEntry{score, f});
    st.in_result = true;
    --num_candidates_;
    filter_.Remove(f);
    ++stats_.replacements;
  } else {
    Eliminate(f, st);
  }
}

void TopKQuery::Eliminate(graph::FacilityId f, TrackedFacility& st) {
  MCN_DCHECK(IsCandidate(st));
  st.eliminated = true;
  --num_candidates_;
  for (int j = 0; j < d_; ++j) {
    if (!st.Knows(j)) --missing_per_cost_[j];
  }
  filter_.Remove(f);
}

void TopKQuery::LowerBoundSweep() {
  if (top_.empty()) return;
  double kth = KthScore();
  std::vector<graph::FacilityId> victims;
  for (auto& [fid, st] : tracked_) {
    if (!IsCandidate(st)) continue;
    graph::CostVector lb = st.costs;
    for (int j = 0; j < d_; ++j) {
      if (!st.Knows(j)) lb[j] = engine_->Frontier(j);
    }
    if (f_(lb) >= kth) victims.push_back(fid);
  }
  for (graph::FacilityId fid : victims) {
    Eliminate(fid, tracked_[fid]);
    ++stats_.lb_eliminations;
  }
}

Status TopKQuery::BuildFilter() {
  for (const auto& [fid, st] : tracked_) {
    if (!IsCandidate(st)) continue;
    MCN_ASSIGN_OR_RETURN(graph::EdgeKey edge,
                         engine_->LocateFacilityEdge(fid));
    filter_.Add(edge, fid);
  }
  engine_->SetFilter(&filter_);
  return Status::OK();
}

void TopKQuery::MaybeStopExpansions() {
  if (!opts_.stop_finished_expansions) return;
  for (int i = 0; i < d_; ++i) {
    if (active_[i] && missing_per_cost_[i] == 0) active_[i] = false;
  }
}

std::vector<TopKEntry> TopKQuery::ExtractResult() {
  std::vector<TopKEntry> result;
  result.reserve(top_.size());
  while (!top_.empty()) {
    HeapEntry e = top_.top();
    top_.pop();
    result.push_back(TopKEntry{e.facility, tracked_[e.facility].costs,
                               e.score});
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace mcn::algo
