// MCN top-k processing with known k (paper §V): growing stage until k
// facilities are pinned, then a shrinking stage that steps every expansion
// one heap element per turn, pins or prunes the remaining candidates, and
// uses the frontier keys t_i for lower-bound elimination.
//
// Candidates live in a dense CandidateStore: the per-round lower-bound
// sweep streams over the live candidate list (cost rows contiguous)
// instead of scanning a hash map.
#ifndef MCN_ALGO_TOPK_QUERY_H_
#define MCN_ALGO_TOPK_QUERY_H_

#include <queue>
#include <vector>

#include "mcn/algo/candidate_store.h"
#include "mcn/algo/common.h"
#include "mcn/common/result.h"
#include "mcn/expand/engines.h"

namespace mcn::algo {

struct TopKOptions {
  int k = 4;
  /// Shrinking-stage candidate filter (as in the skyline algorithms).
  bool use_facility_filter = true;
  /// Stop expansions with no missing candidate costs.
  bool stop_finished_expansions = true;
  /// Frontier-based lower-bound elimination of candidates (paper §V).
  bool lower_bound_pruning = true;
  ProbePolicy probe_policy = ProbePolicy::kRoundRobin;
  /// Intra-query parallelism (DESIGN.md §7): round-robin turns advance
  /// every active expansion at once; the ablation frontier policies
  /// degenerate to width-1 turns (exact serial replay).
  QueryOptions exec;
};

/// One-shot top-k computation over a fresh engine. Only reachable
/// facilities are considered; fewer than k entries are returned when the
/// query's component holds fewer facilities.
class TopKQuery {
 public:
  struct Stats {
    uint64_t nn_pops = 0;
    uint64_t facilities_seen = 0;
    uint64_t candidates_peak = 0;
    uint64_t lb_eliminations = 0;
    uint64_t replacements = 0;
    bool reached_shrinking = false;
  };

  /// `f` must be increasingly monotone over complete cost vectors.
  TopKQuery(expand::NnEngine* engine, AggregateFn f, TopKOptions options);

  /// Runs to completion; entries sorted by ascending score.
  Result<std::vector<TopKEntry>> Run();

  const Stats& stats() const { return stats_; }

 private:
  struct HeapEntry {
    double score;
    graph::FacilityId facility;
    bool operator<(const HeapEntry& o) const {
      if (score != o.score) return score < o.score;
      return facility < o.facility;
    }
  };

  bool IsCandidate(const CandidateStore::Slot& st) const {
    return !st.in_result && !st.eliminated;
  }

  Status RunGrowing();
  Status RunShrinking();
  /// Turn-mode counterparts (DESIGN.md §7).
  Status RunGrowingTurns();
  Status RunShrinkingTurns();
  Status HandleGrowingPop(int i, graph::FacilityId f, double cost);
  Status HandleShrinkingPop(int i, graph::FacilityId f, double cost);
  /// Inserts a pinned facility into the tentative top-k (growing).
  void AcceptPinned(uint32_t s);
  /// Resolves a pinned candidate against the current k-th score (shrinking).
  void ResolvePinned(uint32_t s);
  void Eliminate(uint32_t s);
  double KthScore() const;
  void LowerBoundSweep();
  Status BuildFilter();
  void MaybeStopExpansions();
  int PickExpansion() const;
  std::vector<TopKEntry> ExtractResult();

  expand::NnEngine* engine_;
  AggregateFn f_;
  TopKOptions opts_;
  bool turn_mode_;
  int d_;
  CandidateStore store_;
  std::vector<int> missing_per_cost_;
  std::vector<bool> active_;
  // Tentative result: max-heap on score; holds at most k entries.
  std::priority_queue<HeapEntry> top_;
  expand::FacilityFilter filter_;
  std::vector<int> turn_targets_;  ///< turn-mode scratch (no per-turn alloc)
  int turn_ = 0;
  Stats stats_;
};

}  // namespace mcn::algo

#endif  // MCN_ALGO_TOPK_QUERY_H_
