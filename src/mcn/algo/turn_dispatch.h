// Shared dispatch for turn-mode probe outcomes (DESIGN.md §7): every query
// processor consumes a StepTurn the same way — exhaustion deactivates the
// expansion, settled nodes only advance it, settled facilities go to the
// processor's pop handler. One definition so a change to event semantics
// cannot drift between the five turn loops.
#ifndef MCN_ALGO_TURN_DISPATCH_H_
#define MCN_ALGO_TURN_DISPATCH_H_

#include <vector>

#include "mcn/common/macros.h"
#include "mcn/common/status.h"
#include "mcn/expand/single_expansion.h"

namespace mcn::algo {

/// Applies a turn's outcomes (expansion-major, events in execution order)
/// to `active`, forwarding facility pops to `on_facility(expansion, id,
/// cost) -> Status`. `any_active`, when non-null, is set if any expansion
/// produced a non-exhausted event (the top-k shrinking liveness test).
template <typename StepOutcomes, typename FacilityFn>
Status DispatchStepOutcomes(const StepOutcomes& outcomes,
                            std::vector<bool>& active, bool* any_active,
                            FacilityFn&& on_facility) {
  for (const auto& o : outcomes) {
    for (const expand::ExpansionEvent& ev : o.events) {
      switch (ev.type) {
        case expand::ExpansionEvent::Type::kExhausted:
          active[o.expansion] = false;
          break;
        case expand::ExpansionEvent::Type::kNode:
          if (any_active != nullptr) *any_active = true;
          break;
        case expand::ExpansionEvent::Type::kFacility:
          if (any_active != nullptr) *any_active = true;
          MCN_RETURN_IF_ERROR(on_facility(o.expansion, ev.id, ev.cost));
          break;
      }
    }
  }
  return Status::OK();
}

/// The width-1 (ablation frontier policy) turn: one NextNN for expansion
/// `i` through `scheduler`, deactivating on exhaustion, else forwarding
/// the pop — the serial schedule, probe by probe. Shared by the three
/// processors' non-round-robin turn paths.
template <typename Scheduler, typename FacilityFn>
Status DispatchWidthOneNextNN(Scheduler& scheduler, int i,
                              std::vector<bool>& active,
                              FacilityFn&& on_facility) {
  MCN_ASSIGN_OR_RETURN(auto outcomes, scheduler.NextNNTurn({i}));
  if (!outcomes[0].nn.has_value()) {
    active[i] = false;
    return Status::OK();
  }
  return on_facility(i, outcomes[0].nn->facility, outcomes[0].nn->cost);
}

}  // namespace mcn::algo

#endif  // MCN_ALGO_TURN_DISPATCH_H_
