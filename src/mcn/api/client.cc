#include "mcn/api/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mcn/api/socket_io.h"

namespace mcn::api {

Result<int> Client::Dial(const std::string& host, int port,
                         const Options& options) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("Client: port out of range");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("Client: not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status err = ErrnoStatus("connect");
    ::close(fd);
    return err;
  }
  // Request/response round trips are latency-bound; don't batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.io_timeout_ms > 0) {
    Status s = SetRecvTimeout(fd, options.io_timeout_ms);
    if (s.ok()) s = SetSendTimeout(fd, options.io_timeout_ms);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  return fd;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  return Connect(host, port, Options());
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                const Options& options) {
  if (options.retry.max_attempts < 1) {
    return Status::InvalidArgument("Client: retry.max_attempts must be >= 1");
  }
  if (options.io_timeout_ms < 0) {
    return Status::InvalidArgument("Client: io_timeout_ms must be >= 0");
  }
  MCN_ASSIGN_OR_RETURN(int fd, Dial(host, port, options));
  return std::unique_ptr<Client>(new Client(fd, host, port, options));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::MarkBroken() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

/// Negative int32 fields would encode as 10-byte sign-extended varints,
/// which the server rejects as a *framing* error and drops the whole
/// connection (taking its sessions with it). Catch them client-side so a
/// bad argument stays a per-call error, like the in-process API.
Status CheckEncodable(const QuerySpec& spec) {
  if (spec.k < 0 || spec.parallelism < 0) {
    return Status::InvalidArgument(
        "Client: spec.k and spec.parallelism must be >= 0");
  }
  if (spec.deadline_ms < 0) {
    return Status::InvalidArgument("Client: spec.deadline_ms must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<WireResponse> Client::RoundTrip(const std::string& frame,
                                       MsgType expected) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Client: connection is closed");
  }
  // Past this point any failure leaves the byte stream in an unknown state
  // (a half-written request, an unread response) — the connection cannot
  // carry another frame, so mark it broken and let the next idempotent
  // call redial.
  Status sent = SendFrame(fd_, frame);
  if (!sent.ok()) {
    MarkBroken();
    return sent;
  }
  Result<std::string> payload = RecvFramePayload(fd_);
  if (!payload.ok()) {
    MarkBroken();
    // A clean EOF here is the server hanging up between our send and its
    // reply (shutdown, connection reaped) — for the caller that is a
    // transport failure, not a missing resource.
    if (payload.status().code() == StatusCode::kNotFound) {
      return Status::IOError("Client: server closed the connection");
    }
    return payload.status();
  }
  Result<WireResponse> response = DecodeResponsePayload(*payload);
  if (!response.ok()) {
    MarkBroken();
    return response.status();
  }
  if (response->type != expected) {
    MarkBroken();
    return Status::Corruption("Client: unexpected response type");
  }
  return response;
}

Result<WireResponse> Client::RoundTripWithRetry(const std::string& frame,
                                               MsgType expected) {
  const RetryPolicy& policy = opts_.retry;
  Status last;
  for (int attempt = 1;; ++attempt) {
    if (fd_ < 0) {
      // Lazy reconnect: a previous call broke the connection, or the
      // previous iteration's redial failed.
      Result<int> fd = Dial(host_, port_, opts_);
      if (fd.ok()) {
        fd_ = *fd;
      } else {
        last = fd.status();
      }
    }
    if (fd_ >= 0) {
      Result<WireResponse> response = RoundTrip(frame, expected);
      if (response.ok()) return response;
      last = response.status();
      // Only IOError is retried: the request never observably executed
      // (send failed) or its effect is safe to repeat (Execute is a pure
      // read). Corruption means a protocol bug and DeadlineExceeded means
      // the caller's time budget is spent — retrying either would mask
      // real problems.
      if (last.code() != StatusCode::kIOError) return last;
    }
    if (attempt >= policy.max_attempts) return last;
    ++retries_;
    // Capped exponential backoff with jitter in [0.5, 1.0) — decorrelates
    // a thundering herd of clients while staying reproducible per seed.
    int64_t backoff_ms = policy.base_backoff_ms;
    for (int i = 1; i < attempt && backoff_ms < policy.max_backoff_ms; ++i) {
      backoff_ms *= 2;
    }
    backoff_ms = std::min<int64_t>(backoff_ms, policy.max_backoff_ms);
    backoff_ms = static_cast<int64_t>(
        static_cast<double>(backoff_ms) * (0.5 + 0.5 * jitter_.NextDouble()));
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

Result<QueryResponse> Client::Execute(const QuerySpec& spec) {
  MCN_RETURN_IF_ERROR(CheckEncodable(spec));
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = spec;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTripWithRetry(EncodeRequestFrame(request), MsgType::kResponse));
  return std::move(response.response);
}

Result<uint64_t> Client::OpenSession(const QuerySpec& spec) {
  MCN_RETURN_IF_ERROR(CheckEncodable(spec));
  WireRequest request;
  request.type = MsgType::kOpenSession;
  request.spec = spec;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kSessionOpened));
  MCN_RETURN_IF_ERROR(response.status);
  return response.session_id;
}

Result<QueryResponse> Client::Next(uint64_t session_id, int n) {
  if (n < 0) {
    return Status::InvalidArgument("Client: batch size must be >= 0");
  }
  WireRequest request;
  request.type = MsgType::kNext;
  request.session_id = session_id;
  request.batch_n = n;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kResponse));
  return std::move(response.response);
}

Result<obs::Snapshot> Client::GetMetrics() {
  WireRequest request;
  request.type = MsgType::kGetMetrics;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTripWithRetry(EncodeRequestFrame(request), MsgType::kMetrics));
  MCN_RETURN_IF_ERROR(response.status);
  return std::move(response.snapshot);
}

Result<std::string> Client::GetTrace() {
  WireRequest request;
  request.type = MsgType::kGetTrace;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTripWithRetry(EncodeRequestFrame(request), MsgType::kTrace));
  MCN_RETURN_IF_ERROR(response.status);
  return std::move(response.trace_json);
}

Status Client::CloseSession(uint64_t session_id) {
  WireRequest request;
  request.type = MsgType::kCloseSession;
  request.session_id = session_id;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kSessionClosed));
  return response.status;
}

}  // namespace mcn::api
