#include "mcn/api/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mcn/api/socket_io.h"

namespace mcn::api {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("Client: port out of range");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("Client: not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status err = ErrnoStatus("connect");
    ::close(fd);
    return err;
  }
  // Request/response round trips are latency-bound; don't batch them.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

/// Negative int32 fields would encode as 10-byte sign-extended varints,
/// which the server rejects as a *framing* error and drops the whole
/// connection (taking its sessions with it). Catch them client-side so a
/// bad argument stays a per-call error, like the in-process API.
Status CheckEncodable(const QuerySpec& spec) {
  if (spec.k < 0 || spec.parallelism < 0) {
    return Status::InvalidArgument(
        "Client: spec.k and spec.parallelism must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<WireResponse> Client::RoundTrip(const std::string& frame,
                                       MsgType expected) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Client: connection is closed");
  }
  MCN_RETURN_IF_ERROR(SendFrame(fd_, frame));
  MCN_ASSIGN_OR_RETURN(std::string payload, RecvFramePayload(fd_));
  MCN_ASSIGN_OR_RETURN(WireResponse response,
                       DecodeResponsePayload(payload));
  if (response.type != expected) {
    return Status::Corruption("Client: unexpected response type");
  }
  return response;
}

Result<QueryResponse> Client::Execute(const QuerySpec& spec) {
  MCN_RETURN_IF_ERROR(CheckEncodable(spec));
  WireRequest request;
  request.type = MsgType::kExecute;
  request.spec = spec;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kResponse));
  return std::move(response.response);
}

Result<uint64_t> Client::OpenSession(const QuerySpec& spec) {
  MCN_RETURN_IF_ERROR(CheckEncodable(spec));
  WireRequest request;
  request.type = MsgType::kOpenSession;
  request.spec = spec;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kSessionOpened));
  MCN_RETURN_IF_ERROR(response.status);
  return response.session_id;
}

Result<QueryResponse> Client::Next(uint64_t session_id, int n) {
  if (n < 0) {
    return Status::InvalidArgument("Client: batch size must be >= 0");
  }
  WireRequest request;
  request.type = MsgType::kNext;
  request.session_id = session_id;
  request.batch_n = n;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kResponse));
  return std::move(response.response);
}

Status Client::CloseSession(uint64_t session_id) {
  WireRequest request;
  request.type = MsgType::kCloseSession;
  request.session_id = session_id;
  MCN_ASSIGN_OR_RETURN(
      WireResponse response,
      RoundTrip(EncodeRequestFrame(request), MsgType::kSessionClosed));
  return response.status;
}

}  // namespace mcn::api
