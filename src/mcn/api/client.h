// api::Client: a small blocking TCP client for the preference-query wire
// protocol (DESIGN.md §9). One connection, one request in flight at a time
// (the protocol is synchronous per connection; open several clients for
// concurrency — that is exactly what bench_wire_throughput's closed-loop
// load does). Not thread-safe; confine an instance to one thread.
//
// Failure handling (DESIGN.md §10): any transport failure marks the
// connection broken (a desynchronized byte stream cannot be reused), and
// the next idempotent call dials a fresh connection lazily. Execute — a
// pure read, safe to repeat — additionally retries on IOError with capped
// exponential backoff and deterministic seeded jitter. Session calls
// (OpenSession/Next/CloseSession) are stateful on the server side and are
// never retried: they surface the error and the stream's results are gone
// with the connection.
#ifndef MCN_API_CLIENT_H_
#define MCN_API_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mcn/api/query_response.h"
#include "mcn/api/query_spec.h"
#include "mcn/api/wire.h"
#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"

namespace mcn::api {

class Client {
 public:
  /// Retry policy for idempotent calls (Execute only).
  struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    int max_attempts = 3;
    /// Backoff before retry r (1-based): min(base << (r-1), max) scaled by
    /// a jitter factor in [0.5, 1.0) drawn from the seeded stream.
    int base_backoff_ms = 5;
    int max_backoff_ms = 200;
    /// Seed of the jitter stream — retries are reproducible.
    uint64_t seed = 0x5ca1ab1e;
  };

  struct Options {
    /// SO_RCVTIMEO/SO_SNDTIMEO on the connection; 0 = block forever. With
    /// a timeout set, a stuck server surfaces as DeadlineExceeded (frame
    /// boundary) or IOError (mid-frame) instead of hanging the caller.
    int io_timeout_ms = 0;
    RetryPolicy retry;
  };

  /// Connects to a Server at host:port ("127.0.0.1" for loopback). The
  /// two-argument overload uses default Options (a nested class with
  /// member initializers cannot be a default argument of its enclosing
  /// class's members).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port,
                                                 const Options& options);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes one query remotely. A non-OK *return* is a transport/protocol
  /// failure; a query-level failure (e.g. a malformed spec) comes back as
  /// an OK return whose QueryResponse::status is non-OK — mirroring the
  /// in-process future API. Retries transparently on IOError (see the
  /// file comment).
  Result<QueryResponse> Execute(const QuerySpec& spec);

  /// Opens a streaming incremental session (spec.kind must be
  /// kIncrementalTopK). Returns the server-assigned session id. Not
  /// retried.
  Result<uint64_t> OpenSession(const QuerySpec& spec);

  /// Pulls the next batch of up to `n` ranked results from a session. A
  /// batch shorter than `n` (or QueryResponse::exhausted) means the
  /// stream is done. Not retried.
  Result<QueryResponse> Next(uint64_t session_id, int n);

  /// Closes a session on the server. Not retried.
  Status CloseSession(uint64_t session_id);

  /// Scrapes the server's metrics snapshot (counters, gauges, latency
  /// histograms — the same data QueryService::MetricsSnapshot returns
  /// in process). A pure read; retried like Execute.
  Result<obs::Snapshot> GetMetrics();

  /// Drains the server's trace buffers as a Chrome trace_event JSON
  /// document (empty trace when tracing is off). A pure read; retried.
  Result<std::string> GetTrace();

  /// Transport retries performed so far (reconnect + resend of an
  /// idempotent call).
  uint64_t retries() const { return retries_; }

  /// True while the underlying connection is believed healthy. After a
  /// transport failure this turns false; the next Execute redials.
  bool connected() const { return fd_ >= 0; }

 private:
  Client(int fd, std::string host, int port, const Options& options)
      : fd_(fd),
        host_(std::move(host)),
        port_(port),
        opts_(options),
        jitter_(options.retry.seed) {}

  /// Dials host:port and applies socket options; returns the fd.
  static Result<int> Dial(const std::string& host, int port,
                          const Options& options);

  /// One synchronous round trip; decodes and type-checks the response.
  /// Any failure marks the connection broken (closes the fd).
  Result<WireResponse> RoundTrip(const std::string& frame, MsgType expected);

  /// RoundTrip + reconnect-and-retry on IOError, for idempotent frames.
  Result<WireResponse> RoundTripWithRetry(const std::string& frame,
                                          MsgType expected);

  void MarkBroken();

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  Options opts_;
  Random jitter_;
  uint64_t retries_ = 0;
};

}  // namespace mcn::api

#endif  // MCN_API_CLIENT_H_
