// api::Client: a small blocking TCP client for the preference-query wire
// protocol (DESIGN.md §9). One connection, one request in flight at a time
// (the protocol is synchronous per connection; open several clients for
// concurrency — that is exactly what bench_wire_throughput's closed-loop
// load does). Not thread-safe; confine an instance to one thread.
#ifndef MCN_API_CLIENT_H_
#define MCN_API_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mcn/api/query_response.h"
#include "mcn/api/query_spec.h"
#include "mcn/api/wire.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"

namespace mcn::api {

class Client {
 public:
  /// Connects to a Server at host:port ("127.0.0.1" for loopback).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes one query remotely. A non-OK *return* is a transport/protocol
  /// failure; a query-level failure (e.g. a malformed spec) comes back as
  /// an OK return whose QueryResponse::status is non-OK — mirroring the
  /// in-process future API.
  Result<QueryResponse> Execute(const QuerySpec& spec);

  /// Opens a streaming incremental session (spec.kind must be
  /// kIncrementalTopK). Returns the server-assigned session id.
  Result<uint64_t> OpenSession(const QuerySpec& spec);

  /// Pulls the next batch of up to `n` ranked results from a session. A
  /// batch shorter than `n` (or QueryResponse::exhausted) means the
  /// stream is done.
  Result<QueryResponse> Next(uint64_t session_id, int n);

  /// Closes a session on the server.
  Status CloseSession(uint64_t session_id);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One synchronous round trip; decodes and type-checks the response.
  Result<WireResponse> RoundTrip(const std::string& frame, MsgType expected);

  int fd_ = -1;
};

}  // namespace mcn::api

#endif  // MCN_API_CLIENT_H_
