// QueryResponse: the one response value type of the unified preference-query
// API (DESIGN.md §9), paired with QuerySpec and serializable through
// api/wire.h. It carries exactly the fields the transport-determinism
// contract is stated over — typed result rows, the order-sensitive FNV
// result hash, and the logical I/O counts — plus informational timing.
//
// Exactly one of `skyline` / `topk` is filled (by `kind`) when `status` is
// OK; a failed query carries its Status and no rows. For an incremental
// session batch, `topk` holds the batch rows and `exhausted` tells the
// client whether the reachable component has more to stream.
#ifndef MCN_API_QUERY_RESPONSE_H_
#define MCN_API_QUERY_RESPONSE_H_

#include <cstdint>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/algo/result_hash.h"
#include "mcn/api/query_spec.h"
#include "mcn/common/status.h"

namespace mcn::api {

struct QueryResponse {
  Status status = Status::OK();
  QueryKind kind = QueryKind::kSkyline;
  std::vector<algo::SkylineEntry> skyline;
  std::vector<algo::TopKEntry> topk;  ///< also incremental batches
  /// algo::HashResult over the filled rows (kFnvOffsetBasis when failed).
  /// Post-constraint: what the client receives is what is hashed.
  uint64_t result_hash = algo::kFnvOffsetBasis;
  /// Logical I/O of the execution (buffer-pool accounting): part of the
  /// determinism contract — a wire-executed query must report the same
  /// counts as in-process execution.
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  /// Server-side engine construction + computation time. Informational:
  /// excluded from parity checks.
  double exec_seconds = 0;
  /// Incremental sessions only: true once the session's reachable
  /// component is fully reported (a batch shorter than the asked-for n
  /// also implies it).
  bool exhausted = false;

  size_t num_rows() const {
    return kind == QueryKind::kSkyline ? skyline.size() : topk.size();
  }

  /// Recomputes `result_hash` from the filled rows.
  void RehashRows() {
    result_hash = kind == QueryKind::kSkyline ? algo::HashResult(skyline)
                                              : algo::HashResult(topk);
  }
};

}  // namespace mcn::api

#endif  // MCN_API_QUERY_RESPONSE_H_
