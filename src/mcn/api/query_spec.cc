#include "mcn/api/query_spec.h"

#include <string>

#include "mcn/common/macros.h"

namespace mcn::api {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSkyline:
      return "skyline";
    case QueryKind::kTopK:
      return "top-k";
    case QueryKind::kIncrementalTopK:
      return "incremental";
  }
  return "?";
}

Status QuerySpec::Validate(int num_costs) const {
  if (kind != QueryKind::kSkyline && kind != QueryKind::kTopK &&
      kind != QueryKind::kIncrementalTopK) {
    return Status::InvalidArgument("QuerySpec: unknown query kind " +
                                   std::to_string(static_cast<int>(kind)));
  }
  if (location.is_node() && location.node() == graph::kInvalidNode) {
    return Status::InvalidArgument("QuerySpec: location is unset");
  }
  const bool skyline = kind == QueryKind::kSkyline;
  if (skyline) {
    if (!preference.weights.empty()) {
      return Status::InvalidArgument(
          "QuerySpec: skyline queries take no preference weights");
    }
  } else {
    MCN_RETURN_IF_ERROR(
        algo::ValidateWeights(preference.weights, num_costs));
    if (k <= 0) {
      return Status::InvalidArgument("QuerySpec: k must be > 0");
    }
  }
  MCN_RETURN_IF_ERROR(
      algo::ValidateConstraints(preference.constraints, num_costs, skyline));
  if (parallelism < 0) {
    return Status::InvalidArgument("QuerySpec: parallelism must be >= 0");
  }
  if (deadline_ms < 0) {
    return Status::InvalidArgument("QuerySpec: deadline_ms must be >= 0");
  }
  return Status::OK();
}

bool QuerySpec::operator==(const QuerySpec& o) const {
  if (kind != o.kind || k != o.k || engine != o.engine ||
      parallelism != o.parallelism || deadline_ms != o.deadline_ms ||
      !(preference == o.preference)) {
    return false;
  }
  if (location.is_node() != o.location.is_node()) return false;
  if (location.is_node()) return location.node() == o.location.node();
  return location.edge() == o.location.edge() &&
         location.frac() == o.location.frac();
}

QuerySpec SkylineSpec(const graph::Location& location) {
  QuerySpec spec;
  spec.kind = QueryKind::kSkyline;
  spec.location = location;
  return spec;
}

QuerySpec TopKSpec(const graph::Location& location, int k,
                   std::vector<double> weights) {
  QuerySpec spec;
  spec.kind = QueryKind::kTopK;
  spec.location = location;
  spec.k = k;
  spec.preference.weights = std::move(weights);
  return spec;
}

QuerySpec IncrementalSpec(const graph::Location& location, int first_batch,
                          std::vector<double> weights) {
  QuerySpec spec = TopKSpec(location, first_batch, std::move(weights));
  spec.kind = QueryKind::kIncrementalTopK;
  return spec;
}

}  // namespace mcn::api
