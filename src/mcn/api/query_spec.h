// QuerySpec: the one request value type of the unified preference-query API
// (DESIGN.md §9). Every entry point — in-process calls, exec::QueryService,
// and the api::Server socket endpoint — speaks this type; it subsumes the
// paper's three processors (skyline §IV, top-k §V, incremental §V) behind a
// composable PreferenceSpec and is fully serializable through api/wire.h,
// which makes it the RPC seam the multi-node sharding roadmap item builds
// on.
//
// A spec is self-contained by value and engine-agnostic: the `engine` and
// `parallelism` fields are execution *hints* that never change results
// (LSA/CEA/parallel schedules are result-identical by the determinism
// contract), so a spec executed remotely hashes byte-identically to the
// same spec executed in process.
#ifndef MCN_API_QUERY_SPEC_H_
#define MCN_API_QUERY_SPEC_H_

#include <cstdint>
#include <vector>

#include "mcn/algo/constraints.h"
#include "mcn/common/status.h"
#include "mcn/expand/engines.h"
#include "mcn/graph/location.h"

namespace mcn::api {

/// The three preference-query kinds of the paper. Values are fixed wire
/// encodings — append only.
enum class QueryKind : uint8_t {
  kSkyline = 0,          ///< full MCN skyline (paper §IV)
  kTopK = 1,             ///< known-k top-k (paper §V)
  kIncrementalTopK = 2,  ///< incremental ranking (paper §V); sessionable
};

/// Printable kind name ("skyline", "top-k", "incremental").
const char* QueryKindName(QueryKind kind);

/// What the client prefers: nothing (full skyline), a weighted sum (top-k
/// kinds), and optional constraints applied as a post-dominance filter
/// (algo/constraints.h). Composable: a constrained skyline, a capped top-k
/// and an unconstrained incremental session are all one type.
struct PreferenceSpec {
  /// Weighted-sum coefficients; required (size d) for the top-k kinds,
  /// must be empty for skyline.
  std::vector<double> weights;
  /// Epsilon thinning + per-dimension cost caps; default = unconstrained,
  /// which is a guaranteed filter no-op (byte-identical result hashes).
  algo::PreferenceConstraints constraints;

  bool operator==(const PreferenceSpec& o) const {
    return weights == o.weights && constraints == o.constraints;
  }
};

/// One preference query. See the file comment.
struct QuerySpec {
  QueryKind kind = QueryKind::kSkyline;
  graph::Location location = graph::Location::AtNode(graph::kInvalidNode);
  /// Top-k kinds: result count (one-shot top-k) or first-batch size
  /// (incremental). Ignored by skyline.
  int32_t k = 4;
  PreferenceSpec preference;
  /// Execution hint: engine flavor (result-invariant; I/O behavior only).
  expand::EngineKind engine = expand::EngineKind::kCea;
  /// Execution hint: intra-query d-expansion parallelism (DESIGN.md §7).
  /// 0 = classic serial probing; >= 1 = the deterministic turn schedule.
  int32_t parallelism = 0;
  /// Per-request deadline in milliseconds, measured from admission
  /// (DESIGN.md §10). 0 = no deadline. An expired query stops expanding at
  /// the next cancellation point and resolves with DeadlineExceeded; the
  /// deadline never changes the bytes of a *successful* result.
  int32_t deadline_ms = 0;

  /// Full semantic validation against a d-dimensional network. Malformed
  /// specs — wrong-size or negative weights, non-positive k, bad caps,
  /// epsilon on a non-skyline kind, an unset location — are rejected with
  /// InvalidArgument instead of tripping a CHECK in a worker, so they are
  /// rejectable over the wire.
  Status Validate(int num_costs) const;

  bool operator==(const QuerySpec& o) const;
};

/// Convenience constructors for the common shapes.
QuerySpec SkylineSpec(const graph::Location& location);
QuerySpec TopKSpec(const graph::Location& location, int k,
                   std::vector<double> weights);
QuerySpec IncrementalSpec(const graph::Location& location, int first_batch,
                          std::vector<double> weights);

}  // namespace mcn::api

#endif  // MCN_API_QUERY_SPEC_H_
