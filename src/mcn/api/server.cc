#include "mcn/api/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_set>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mcn/api/socket_io.h"
#include "mcn/api/wire.h"
#include "mcn/common/macros.h"
#include "mcn/obs/trace.h"

namespace mcn::api {

namespace {

/// Sends `response`, degrading a frame-cap overflow (a result row set a
/// remote client sized, e.g. a huge-k top-k) to a small error response
/// instead of aborting the process. Encode + send is traced as one
/// kWireEncode span under the request's context.
Status SendResponse(int fd, const WireResponse& response,
                    obs::TraceContext trace) {
  const auto start = std::chrono::steady_clock::now();
  auto frame = TryEncodeResponseFrame(response);
  Status sent;
  size_t bytes = 0;
  if (!frame.ok()) {
    WireResponse overflow;
    overflow.type = MsgType::kResponse;
    overflow.response.kind = response.response.kind;
    overflow.response.status = frame.status();
    std::string encoded = EncodeResponseFrame(overflow);
    bytes = encoded.size();
    sent = SendFrame(fd, encoded);
  } else {
    bytes = frame.value().size();
    sent = SendFrame(fd, frame.value());
  }
  obs::RecordSpanSince(trace, obs::EventType::kWireEncode, start, bytes);
  return sent;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(exec::QueryService* service,
                                              const Options& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("Server: null service");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("Server: port out of range");
  }
  if (options.io_timeout_ms < 0) {
    return Status::InvalidArgument("Server: io_timeout_ms must be >= 0");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status err = ErrnoStatus("bind");
    ::close(fd);
    return err;
  }
  if (::listen(fd, options.backlog) != 0) {
    const Status err = ErrnoStatus("listen");
    ::close(fd);
    return err;
  }
  // Read back the bound port (meaningful when options.port == 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status err = ErrnoStatus("getsockname");
    ::close(fd);
    return err;
  }
  return std::unique_ptr<Server>(
      new Server(service, fd, ntohs(bound.sin_port), options));
}

Server::Server(exec::QueryService* service, int listen_fd, int port,
               const Options& options)
    : service_(service), listen_fd_(listen_fd), port_(port), opts_(options) {
  acceptor_ = std::thread([this] { AcceptLoop(); });
  reaper_ = std::thread([this] { ReapLoop(); });
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  // Unblock accept(); closing also prevents new connections. Relying on
  // shutdown() of a *listening* socket to wake accept() is
  // Linux-specific (this codebase targets Linux throughout — cf.
  // sched_setaffinity in exec/affinity.cc); BSDs would need a
  // self-pipe/eventfd wakeup here.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  {
    // Taking mu_ guarantees the reaper is inside its wait (it holds mu_
    // everywhere else), so this notify cannot be lost.
    MutexLock lock(&mu_);
  }
  reap_cv_.NotifyAll();
  if (reaper_.joinable()) reaper_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(&mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    // Unblock the connection thread's read; it then cleans up and exits.
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  // Every connection thread has exited and each closed its sessions on the
  // way out. A nonzero count here means a session escaped its owning
  // connection's cleanup — a leak into the service's bounded session
  // table, worth a hard stop in any build.
  MCN_CHECK(sessions_open_.load(std::memory_order_acquire) == 0);
}

void Server::ReapFinishedConnections() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
      connections_reaped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

void Server::ReapLoop() {
  MutexLock lock(&mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Condition-signalled by exiting connection threads; the timeout is a
    // backstop (e.g. a notify that raced Stop) — not load-bearing.
    reap_cv_.WaitFor(&mu_, std::chrono::milliseconds(250));
    ReapFinishedConnections();
  }
  // Leave whatever remains to Stop(), which owns the final sweep.
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (Stop) or broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (opts_.io_timeout_ms > 0) {
      // Best-effort: a connection that cannot arm timeouts still works,
      // it just blocks like a pre-timeout build.
      (void)SetRecvTimeout(fd, opts_.io_timeout_ms);
      (void)SetSendTimeout(fd, opts_.io_timeout_ms);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&mu_);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void Server::ServeConnection(Connection* connection) {
  const int fd = connection->fd;
  // Sessions this connection opened; closed on disconnect so abandoned
  // streams do not squat in the service's bounded session table.
  std::unordered_set<exec::SessionId> sessions;
  for (;;) {
    auto payload = RecvFramePayload(fd);
    if (!payload.ok()) {
      // A recv timeout at the frame boundary is just an idle client — keep
      // the connection, using the wakeup as a stop check. Anything else
      // (clean EOF, Stop(), a broken or mid-frame-stalled stream) ends the
      // connection.
      if (payload.status().code() == StatusCode::kDeadlineExceeded &&
          !stopping_.load(std::memory_order_acquire)) {
        continue;
      }
      break;
    }
    // One trace context per request: the wire decode/encode spans and the
    // query the service runs for it share a query id (QueryService::Submit
    // adopts the caller's installed context instead of minting one).
    const obs::TraceContext trace = obs::StartQueryTrace();
    const obs::TraceContextScope trace_scope(trace);
    const auto decode_start = std::chrono::steady_clock::now();
    auto request = DecodeRequestPayload(payload.value());
    obs::RecordSpanSince(trace, obs::EventType::kWireDecode, decode_start,
                         payload.value().size());
    WireResponse response;
    if (!request.ok()) {
      // Malformed frame: report the decode error, then drop the
      // connection — after a framing error the stream cannot be trusted.
      response.type = MsgType::kResponse;
      response.response.status = request.status();
      (void)SendResponse(fd, response, trace);
      break;
    }
    bool drop = false;
    switch (request.value().type) {
      case MsgType::kExecute: {
        exec::QueryResult result =
            service_->Submit(std::move(request.value().spec)).get();
        response.type = MsgType::kResponse;
        response.response = std::move(result).ToResponse();
        break;
      }
      case MsgType::kOpenSession: {
        auto id = service_->OpenSession(std::move(request.value().spec));
        response.type = MsgType::kSessionOpened;
        if (id.ok()) {
          response.session_id = id.value();
          sessions.insert(id.value());
          sessions_open_.fetch_add(1, std::memory_order_acq_rel);
        } else {
          response.status = id.status();
        }
        break;
      }
      case MsgType::kNext: {
        // Ownership check: session ids are sequential (guessable), so a
        // connection may only pull from streams it opened — otherwise a
        // peer could destructively consume (or close) someone else's
        // session. Unowned ids answer NotFound, indistinguishable from
        // an evicted session.
        const exec::SessionId id = request.value().session_id;
        response.type = MsgType::kResponse;
        if (sessions.count(id) == 0) {
          response.response.kind = QueryKind::kIncrementalTopK;
          response.response.status = Status::NotFound(
              "session " + std::to_string(id) +
              " is not open on this connection");
        } else {
          exec::QueryResult result =
              service_->SessionNext(id, request.value().batch_n).get();
          response.response = std::move(result).ToResponse();
        }
        break;
      }
      case MsgType::kCloseSession: {
        const exec::SessionId id = request.value().session_id;
        response.type = MsgType::kSessionClosed;
        if (sessions.count(id) == 0) {
          response.status = Status::NotFound(
              "session " + std::to_string(id) +
              " is not open on this connection");
        } else {
          response.status = service_->CloseSession(id);
          sessions.erase(id);
          sessions_open_.fetch_sub(1, std::memory_order_acq_rel);
        }
        break;
      }
      case MsgType::kGetMetrics:
        response.type = MsgType::kMetrics;
        response.snapshot = service_->MetricsSnapshot();
        break;
      case MsgType::kGetTrace:
        response.type = MsgType::kTrace;
        response.trace_json = obs::Tracer::Global().ExportChromeJson();
        break;
      default:
        // DecodeRequestPayload only produces the cases above.
        drop = true;
        break;
    }
    if (drop) break;
    if (!SendResponse(fd, response, trace).ok()) break;
  }
  for (const exec::SessionId id : sessions) {
    (void)service_->CloseSession(id);
    sessions_open_.fetch_sub(1, std::memory_order_acq_rel);
  }
  // Shut down our side so the peer sees EOF promptly, then hand the fd
  // (and this thread) to the reaper thread (or Stop). The fd is closed
  // exactly once, always after the join.
  ::shutdown(fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
  reap_cv_.NotifyOne();
}

}  // namespace mcn::api
