// api::Server: a TCP endpoint speaking the preference-query wire protocol
// (DESIGN.md §9) on top of an exec::QueryService. This is the process
// boundary of the unified API — every request a connection carries is the
// same QuerySpec an in-process caller would Submit, and the responses are
// byte-faithful QueryResponse encodings, so server-executed queries are
// hash- and logical-I/O-identical to in-process execution (the
// bench_wire_throughput / e2e-test parity gate). It is also the designated
// RPC seam for multi-node sharding: remote shard fetches become api/wire
// frames against exactly this kind of endpoint.
//
// Concurrency model: one acceptor thread plus one thread per connection
// (connections are long-lived clients; per-request concurrency comes from
// the QueryService's worker groups, which the connection threads block
// on). A dedicated reaper thread joins finished connection threads as they
// exit (condition-signalled, with a periodic timer sweep as backstop), so
// a long-running server never accumulates dead threads or fds between
// accepts. Sessions opened by a connection are closed when it disconnects;
// Stop() asserts the server leaked none.
#ifndef MCN_API_SERVER_H_
#define MCN_API_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/result.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/common/status.h"
#include "mcn/exec/query_service.h"

namespace mcn::api {

class Server {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
    /// back with port()).
    int port = 0;
    /// Listen backlog.
    int backlog = 64;
    /// SO_RCVTIMEO/SO_SNDTIMEO on accepted connections; 0 = block forever.
    /// With a timeout set, a recv timeout at a frame boundary is treated
    /// as idleness (the connection stays open; the wakeup doubles as a
    /// stop check), while a timeout *mid-frame* or on send means a stalled
    /// or dead peer and drops the connection (DESIGN.md §10).
    int io_timeout_ms = 0;
  };

  /// Binds and starts accepting. `service` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(exec::QueryService* service,
                                               const Options& options);

  /// Stop().
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, unblocks and joins every connection thread (and the
  /// reaper), and closes their sessions. Aborts (MCN_CHECK) if any wire
  /// session survived its connection — that would be a session-table leak.
  /// Idempotent.
  void Stop();

  /// The bound port (useful with Options::port = 0).
  int port() const { return port_; }

  /// Connections accepted since start.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Finished connection threads joined by the reaper (not by Stop) —
  /// observable evidence the reaper runs without new accepts.
  uint64_t connections_reaped() const {
    return connections_reaped_.load(std::memory_order_relaxed);
  }

  /// Wire sessions currently open across live connections.
  int64_t sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }

 private:
  Server(exec::QueryService* service, int listen_fd, int port,
         const Options& options);

  struct Connection {
    int fd = -1;
    std::thread thread;
    /// Set by the connection thread on exit; a done connection's fd and
    /// thread are reaped by the reaper thread or by Stop.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapLoop();
  void ServeConnection(Connection* connection);
  /// Joins + closes finished connections.
  void ReapFinishedConnections() MCN_REQUIRES(mu_);

  exec::QueryService* service_;
  int listen_fd_;
  int port_;
  Options opts_;
  std::thread acceptor_;
  std::thread reaper_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  /// Open wire sessions (incremented on OpenSession, decremented on close
  /// — explicit or disconnect cleanup). Must be 0 after Stop joins.
  std::atomic<int64_t> sessions_open_{0};
  Mutex mu_;
  CondVar reap_cv_;  ///< signalled when a connection ends
  /// Live connections (fds + threads).
  std::vector<std::unique_ptr<Connection>> connections_ MCN_GUARDED_BY(mu_);
};

}  // namespace mcn::api

#endif  // MCN_API_SERVER_H_
