// api::Server: a TCP endpoint speaking the preference-query wire protocol
// (DESIGN.md §9) on top of an exec::QueryService. This is the process
// boundary of the unified API — every request a connection carries is the
// same QuerySpec an in-process caller would Submit, and the responses are
// byte-faithful QueryResponse encodings, so server-executed queries are
// hash- and logical-I/O-identical to in-process execution (the
// bench_wire_throughput / e2e-test parity gate). It is also the designated
// RPC seam for multi-node sharding: remote shard fetches become api/wire
// frames against exactly this kind of endpoint.
//
// Concurrency model: one acceptor thread plus one thread per connection
// (connections are long-lived clients; per-request concurrency comes from
// the QueryService's worker groups, which the connection threads block
// on). Sessions opened by a connection are closed when it disconnects.
#ifndef MCN_API_SERVER_H_
#define MCN_API_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/exec/query_service.h"

namespace mcn::api {

class Server {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
    /// back with port()).
    int port = 0;
    /// Listen backlog.
    int backlog = 64;
  };

  /// Binds and starts accepting. `service` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(exec::QueryService* service,
                                               const Options& options);

  /// Stop().
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, unblocks and joins every connection thread, and
  /// closes their sessions. Idempotent.
  void Stop();

  /// The bound port (useful with Options::port = 0).
  int port() const { return port_; }

  /// Connections accepted since start.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  Server(exec::QueryService* service, int listen_fd, int port);

  struct Connection {
    int fd = -1;
    std::thread thread;
    /// Set by the connection thread on exit; a done connection's fd and
    /// thread are reaped by the acceptor (on the next accept) or by Stop.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// mu_ held: joins + closes finished connections (long-running servers
  /// would otherwise leak one fd + one dead thread per disconnect).
  void ReapFinishedConnections();

  exec::QueryService* service_;
  int listen_fd_;
  int port_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::mutex mu_;  ///< guards connections_ (fds + threads)
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace mcn::api

#endif  // MCN_API_SERVER_H_
