#include "mcn/api/socket_io.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "mcn/api/wire.h"
#include "mcn/common/fault_injector.h"

namespace mcn::api {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

namespace {

Status SetTimeoutOpt(int fd, int optname, int timeout_ms) {
  if (timeout_ms < 0) {
    return Status::InvalidArgument("socket timeout must be >= 0");
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(timeout)");
  }
  return Status::OK();
}

/// Why a full read stopped short.
enum class ReadStop { kDone, kEof, kTimeout, kError };

struct ReadResult {
  size_t got = 0;
  ReadStop stop = ReadStop::kDone;
};

/// Reads exactly `n` bytes unless EOF, an armed SO_RCVTIMEO expires, or a
/// hard error interrupts; `got` always counts the bytes delivered.
ReadResult ReadFull(int fd, char* buf, size_t n) {
  ReadResult rr;
  while (rr.got < n) {
    const ssize_t r = ::read(fd, buf + rr.got, n - rr.got);
    if (r == 0) {
      rr.stop = ReadStop::kEof;
      return rr;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        rr.stop = ReadStop::kTimeout;
        return rr;
      }
      rr.stop = ReadStop::kError;
      return rr;
    }
    rr.got += static_cast<size_t>(r);
  }
  return rr;
}

}  // namespace

Status SetRecvTimeout(int fd, int timeout_ms) {
  return SetTimeoutOpt(fd, SO_RCVTIMEO, timeout_ms);
}

Status SetSendTimeout(int fd, int timeout_ms) {
  return SetTimeoutOpt(fd, SO_SNDTIMEO, timeout_ms);
}

Status SendFrame(int fd, const std::string& frame) {
  size_t limit = frame.size();
  bool torn = false;
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultInjector::SendFault f = fi->OnSend();
    if (f.kind == FaultInjector::SendFault::kEio) {
      return Status::IOError("injected send failure");
    }
    if (f.kind == FaultInjector::SendFault::kTorn) {
      // Deliver only a prefix, then break the connection so the peer
      // observes a mid-frame EOF (its Corruption path, never NotFound).
      torn = true;
      limit = static_cast<size_t>(static_cast<double>(frame.size()) *
                                  f.torn_fraction);
    }
  }
  size_t sent = 0;
  while (sent < limit) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return sent == 0
                   ? Status::DeadlineExceeded("send timed out")
                   : Status::IOError("send timed out mid-frame");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(w);
  }
  if (torn) {
    ::shutdown(fd, SHUT_RDWR);
    return Status::IOError("injected torn write");
  }
  return Status::OK();
}

Result<std::string> RecvFramePayload(int fd) {
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultInjector::RecvFault f = fi->OnRecv();
    if (f.kind == FaultInjector::RecvFault::kEio) {
      return Status::IOError("injected recv failure");
    }
    if (f.kind == FaultInjector::RecvFault::kDelay) {
      std::this_thread::sleep_for(std::chrono::microseconds(f.delay_us));
    }
  }

  char prefix[4];
  const ReadResult head = ReadFull(fd, prefix, sizeof(prefix));
  switch (head.stop) {
    case ReadStop::kDone:
      break;
    case ReadStop::kEof:
      if (head.got == 0) return Status::NotFound("connection closed");
      // Bytes of a length prefix arrived and then the peer died: this is a
      // torn frame, not a clean shutdown.
      return Status::Corruption("wire: peer closed mid-frame (got " +
                                std::to_string(head.got) +
                                " of 4 length bytes)");
    case ReadStop::kTimeout:
      if (head.got == 0) {
        return Status::DeadlineExceeded("recv timed out at frame boundary");
      }
      return Status::IOError("recv timed out mid-frame (length prefix)");
    case ReadStop::kError:
      return ErrnoStatus("recv length");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("wire: frame exceeds " +
                              std::to_string(kMaxFramePayload) + " bytes");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    const ReadResult body = ReadFull(fd, payload.data(), len);
    switch (body.stop) {
      case ReadStop::kDone:
        break;
      case ReadStop::kEof:
        return Status::Corruption(
            "wire: peer closed mid-frame (got " + std::to_string(body.got) +
            " of " + std::to_string(len) + " payload bytes)");
      case ReadStop::kTimeout:
        return Status::IOError("recv timed out mid-frame (payload)");
      case ReadStop::kError:
        return ErrnoStatus("recv payload");
    }
  }
  return payload;
}

}  // namespace mcn::api
