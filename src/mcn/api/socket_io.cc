#include "mcn/api/socket_io.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "mcn/api/wire.h"

namespace mcn::api {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

namespace {

/// Reads exactly `n` bytes; returns the count actually read (short only on
/// EOF), or -1 on a hard error.
ssize_t ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) break;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

Status SendFrame(int fd, const std::string& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> RecvFramePayload(int fd) {
  char prefix[4];
  const ssize_t got = ReadFull(fd, prefix, sizeof(prefix));
  if (got < 0) return ErrnoStatus("recv length");
  if (got == 0) return Status::NotFound("connection closed");
  if (got < static_cast<ssize_t>(sizeof(prefix))) {
    return Status::Corruption("wire: truncated frame length");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("wire: frame exceeds " +
                              std::to_string(kMaxFramePayload) + " bytes");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    const ssize_t body = ReadFull(fd, payload.data(), len);
    if (body < 0) return ErrnoStatus("recv payload");
    if (body < static_cast<ssize_t>(len)) {
      return Status::Corruption("wire: truncated frame payload");
    }
  }
  return payload;
}

}  // namespace mcn::api
