// Blocking POSIX socket framing for the wire protocol (DESIGN.md §9):
// full-write of encoded frames, length-prefix-driven full-read of incoming
// ones. Shared by api::Client and api::Server; nothing here interprets the
// payload.
#ifndef MCN_API_SOCKET_IO_H_
#define MCN_API_SOCKET_IO_H_

#include <string>

#include "mcn/common/result.h"
#include "mcn/common/status.h"

namespace mcn::api {

/// IOError carrying the current errno: "<what>: <strerror>". For the
/// api/ layer's socket syscall failures.
Status ErrnoStatus(const char* what);

/// Writes all of `frame` (an Encode*Frame result) to `fd`; IOError on any
/// short write or closed peer.
Status SendFrame(int fd, const std::string& frame);

/// Reads one length-prefixed frame and returns its *payload* (prefix
/// stripped), ready for Decode*Payload. NotFound signals clean EOF at a
/// frame boundary; anything else that goes wrong is IOError/Corruption.
Result<std::string> RecvFramePayload(int fd);

}  // namespace mcn::api

#endif  // MCN_API_SOCKET_IO_H_
