// Blocking POSIX socket framing for the wire protocol (DESIGN.md §9):
// full-write of encoded frames, length-prefix-driven full-read of incoming
// ones. Shared by api::Client and api::Server; nothing here interprets the
// payload.
//
// Failure model (DESIGN.md §10): every outcome is a typed Status.
//   - NotFound        clean EOF at a frame boundary (orderly shutdown); the
//                     ONLY recv outcome that is not an error.
//   - DeadlineExceeded an armed SO_RCVTIMEO/SO_SNDTIMEO expired before the
//                     first byte of a frame moved (idle timeout).
//   - IOError         syscall failure, or a timeout that hit mid-frame (the
//                     stream is desynchronized; the connection is dead).
//   - Corruption      the peer died mid-frame or the length prefix is
//                     implausible (> kMaxFramePayload).
// A mid-frame EOF is never reported as NotFound.
#ifndef MCN_API_SOCKET_IO_H_
#define MCN_API_SOCKET_IO_H_

#include <string>

#include "mcn/common/result.h"
#include "mcn/common/status.h"

namespace mcn::api {

/// IOError carrying the current errno: "<what>: <strerror>". For the
/// api/ layer's socket syscall failures.
Status ErrnoStatus(const char* what);

/// Arms (timeout_ms > 0) or clears (timeout_ms == 0) SO_RCVTIMEO on `fd`.
/// With a timeout armed, RecvFramePayload returns DeadlineExceeded when no
/// frame starts within the window, IOError when one stalls mid-frame.
Status SetRecvTimeout(int fd, int timeout_ms);

/// Same for SO_SNDTIMEO / SendFrame.
Status SetSendTimeout(int fd, int timeout_ms);

/// Writes all of `frame` (an Encode*Frame result) to `fd`. DeadlineExceeded
/// if an armed send timeout expires before any byte is written, IOError on
/// a mid-frame timeout, short write, or closed peer.
Status SendFrame(int fd, const std::string& frame);

/// Reads one length-prefixed frame and returns its *payload* (prefix
/// stripped), ready for Decode*Payload. See the failure model above for the
/// NotFound / DeadlineExceeded / IOError / Corruption contract.
Result<std::string> RecvFramePayload(int fd);

}  // namespace mcn::api

#endif  // MCN_API_SOCKET_IO_H_
