#include "mcn/api/wire.h"

#include <cstring>
#include <limits>

#include "mcn/common/macros.h"
#include "mcn/graph/cost_vector.h"

namespace mcn::api {

namespace {

// ------------------------------------------------------------- encoding

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutF64(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  PutFixed64(out, bits);
}

void PutStatus(std::string* out, const Status& status) {
  PutVarint(out, static_cast<uint64_t>(status.code()));
  PutVarint(out, status.message().size());
  out->append(status.message());
}

void PutLocation(std::string* out, const graph::Location& loc) {
  if (loc.is_node()) {
    PutU8(out, 0);
    PutVarint(out, loc.node());
  } else {
    PutU8(out, 1);
    PutVarint(out, loc.edge().u);
    PutVarint(out, loc.edge().v);
    PutF64(out, loc.frac());
  }
}

void PutDoubleVec(std::string* out, const std::vector<double>& v) {
  PutVarint(out, v.size());
  for (double d : v) PutF64(out, d);
}

void PutQuerySpec(std::string* out, const QuerySpec& spec) {
  PutU8(out, static_cast<uint8_t>(spec.kind));
  PutU8(out, static_cast<uint8_t>(spec.engine));
  PutVarint(out, static_cast<uint64_t>(spec.parallelism));
  PutVarint(out, static_cast<uint64_t>(spec.k));
  PutVarint(out, static_cast<uint64_t>(spec.deadline_ms));
  PutLocation(out, spec.location);
  PutDoubleVec(out, spec.preference.weights);
  PutF64(out, spec.preference.constraints.epsilon);
  PutDoubleVec(out, spec.preference.constraints.cost_caps);
}

void PutQueryResponse(std::string* out, const QueryResponse& response) {
  PutStatus(out, response.status);
  PutU8(out, static_cast<uint8_t>(response.kind));
  PutU8(out, response.exhausted ? 1 : 0);
  if (response.kind == QueryKind::kSkyline) {
    const int dim =
        response.skyline.empty() ? 0 : response.skyline.front().costs.dim();
    PutVarint(out, static_cast<uint64_t>(dim));
    PutVarint(out, response.skyline.size());
    for (const algo::SkylineEntry& e : response.skyline) {
      PutVarint(out, e.facility);
      PutVarint(out, e.known_mask);
      for (int j = 0; j < dim; ++j) PutF64(out, e.costs[j]);
    }
  } else {
    const int dim =
        response.topk.empty() ? 0 : response.topk.front().costs.dim();
    PutVarint(out, static_cast<uint64_t>(dim));
    PutVarint(out, response.topk.size());
    for (const algo::TopKEntry& e : response.topk) {
      PutVarint(out, e.facility);
      PutF64(out, e.score);
      for (int j = 0; j < dim; ++j) PutF64(out, e.costs[j]);
    }
  }
  PutFixed64(out, response.result_hash);
  PutVarint(out, response.buffer_misses);
  PutVarint(out, response.buffer_accesses);
  PutF64(out, response.exec_seconds);
}

void PutName(std::string* out, const std::string& name) {
  PutVarint(out, name.size());
  out->append(name);
}

void PutSnapshot(std::string* out, const obs::Snapshot& snap) {
  PutVarint(out, snap.counters.size());
  for (const obs::CounterRow& c : snap.counters) {
    PutName(out, c.name);
    PutVarint(out, c.value);
  }
  PutVarint(out, snap.gauges.size());
  for (const obs::GaugeRow& g : snap.gauges) {
    PutName(out, g.name);
    PutF64(out, g.value);
  }
  PutVarint(out, snap.histograms.size());
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    PutName(out, h.name);
    PutVarint(out, h.sum);
    PutVarint(out, h.buckets.size());
    for (const auto& [index, count] : h.buckets) {
      PutVarint(out, index);
      PutVarint(out, count);
    }
  }
}

std::string FinishFrame(std::string payload) {
  // Encode side: an oversized payload is a programmer error (callers with
  // unbounded row sets go through TryEncodeResponseFrame), never remote
  // input. mcn-lint: disable-next-line=check-in-decode
  MCN_CHECK(payload.size() <= kMaxFramePayload);
  std::string frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  frame.append(payload);
  return frame;
}

// ------------------------------------------------------------- decoding

/// Bounds-checked cursor over a payload. Every getter reports truncation
/// through the sticky `status_`; callers bail out via failed().
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  bool failed() const { return !status_.ok(); }
  Status status() const { return status_; }

  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8() {
    if (failed()) return 0;
    if (pos_ >= data_.size()) return Fail("truncated u8"), 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint64_t GetVarint() {
    if (failed()) return 0;
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return Fail("truncated varint"), 0;
      const auto byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift == 63 && (byte & 0xFE)) return Fail("varint overflow"), 0;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // Canonical form: no padded continuation bytes (encode(decode(b))
        // must reproduce b byte for byte).
        if (byte == 0 && shift != 0) return Fail("non-minimal varint"), 0;
        return v;
      }
    }
    return Fail("unterminated varint"), 0;
  }

  uint64_t GetFixed64() {
    if (failed()) return 0;
    if (remaining() < 8) return Fail("truncated fixed64"), 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double GetF64() {
    const uint64_t bits = GetFixed64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::string GetBytes(size_t n) {
    if (failed()) return {};
    if (remaining() < n) return Fail("truncated bytes"), std::string();
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// A count that must plausibly fit in the remaining payload (each element
  /// is at least `min_elem_bytes`) — rejects garbage counts before any
  /// allocation is sized by them.
  uint64_t GetCount(size_t min_elem_bytes) {
    const uint64_t n = GetVarint();
    if (failed()) return 0;
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      return Fail("count exceeds payload"), 0;
    }
    return n;
  }

  void Fail(const char* what) {
    if (status_.ok()) {
      status_ = Status::Corruption(std::string("wire: ") + what);
    }
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
  Status status_;
};

/// A varint that must fit a 32-bit id (NodeId, FacilityId). Values beyond
/// 32 bits are rejected rather than silently truncated — both for
/// correctness (a query must not silently run at the wrong node) and for
/// the canonical re-encode invariant.
uint32_t GetU32(WireReader* in, const char* what) {
  const uint64_t v = in->GetVarint();
  if (!in->failed() && v > 0xFFFFFFFFull) {
    in->Fail(what);
    return 0;
  }
  return static_cast<uint32_t>(v);
}

Status GetStatus(WireReader* in) {
  const uint64_t code = in->GetVarint();
  if (code > static_cast<uint64_t>(kMaxStatusCode)) {
    in->Fail("unknown status code");
    return Status::OK();
  }
  const uint64_t len = in->GetCount(1);
  std::string message = in->GetBytes(len);
  if (in->failed()) return Status::OK();
  if (code == 0 && !message.empty()) {
    in->Fail("OK status with message");
    return Status::OK();
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

graph::Location GetLocation(WireReader* in) {
  const uint8_t tag = in->GetU8();
  if (tag == 0) {
    return graph::Location::AtNode(in->failed()
                                       ? graph::kInvalidNode
                                       : GetU32(in, "node id out of range"));
  }
  if (tag != 1) {
    in->Fail("unknown location tag");
    return graph::Location::AtNode(graph::kInvalidNode);
  }
  const graph::NodeId u = GetU32(in, "edge endpoint out of range");
  const graph::NodeId v = GetU32(in, "edge endpoint out of range");
  const double frac = in->GetF64();
  if (in->failed() || !(frac >= 0.0 && frac <= 1.0)) {
    in->Fail("edge fraction out of [0,1]");
    return graph::Location::AtNode(graph::kInvalidNode);
  }
  if (graph::EdgeKey(u, v).u != u) {
    // Canonical endpoint order is part of the wire form.
    in->Fail("non-canonical edge key");
    return graph::Location::AtNode(graph::kInvalidNode);
  }
  return graph::Location::OnEdge(graph::EdgeKey(u, v), frac);
}

std::vector<double> GetDoubleVec(WireReader* in) {
  const uint64_t n = in->GetCount(8);
  std::vector<double> v;
  if (in->failed()) return v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(in->GetF64());
  return v;
}

QuerySpec GetQuerySpec(WireReader* in) {
  QuerySpec spec;
  const uint8_t kind = in->GetU8();
  if (kind > static_cast<uint8_t>(QueryKind::kIncrementalTopK)) {
    in->Fail("unknown query kind");
    return spec;
  }
  spec.kind = static_cast<QueryKind>(kind);
  const uint8_t engine = in->GetU8();
  if (engine > static_cast<uint8_t>(expand::EngineKind::kCea)) {
    in->Fail("unknown engine kind");
    return spec;
  }
  spec.engine = static_cast<expand::EngineKind>(engine);
  const uint64_t parallelism = in->GetVarint();
  const uint64_t k = in->GetVarint();
  const uint64_t deadline_ms = in->GetVarint();
  if (!in->failed() &&
      (parallelism > std::numeric_limits<int32_t>::max() ||
       k > std::numeric_limits<int32_t>::max() ||
       deadline_ms > std::numeric_limits<int32_t>::max())) {
    in->Fail("field out of int32 range");
    return spec;
  }
  spec.parallelism = static_cast<int32_t>(parallelism);
  spec.k = static_cast<int32_t>(k);
  spec.deadline_ms = static_cast<int32_t>(deadline_ms);
  spec.location = GetLocation(in);
  spec.preference.weights = GetDoubleVec(in);
  spec.preference.constraints.epsilon = in->GetF64();
  spec.preference.constraints.cost_caps = GetDoubleVec(in);
  return spec;
}

QueryResponse GetQueryResponse(WireReader* in) {
  QueryResponse response;
  response.status = GetStatus(in);
  const uint8_t kind = in->GetU8();
  if (kind > static_cast<uint8_t>(QueryKind::kIncrementalTopK)) {
    in->Fail("unknown query kind");
    return response;
  }
  response.kind = static_cast<QueryKind>(kind);
  const uint8_t exhausted = in->GetU8();
  if (exhausted > 1) {
    in->Fail("non-boolean exhausted flag");
    return response;
  }
  response.exhausted = exhausted == 1;
  const uint64_t dim = in->GetVarint();
  if (dim > static_cast<uint64_t>(graph::kMaxCostTypes)) {
    in->Fail("cost dimension out of range");
    return response;
  }
  const int d = static_cast<int>(dim);
  // Each row is at least 2 bytes (varint id + varint/f64 tail) + dim f64s.
  const uint64_t rows = in->GetCount(2 + 8 * dim);
  if (in->failed()) return response;
  if (rows == 0 && d != 0) {
    // Canonical form: the dimension is derived from the rows, so an empty
    // result always encodes dim 0.
    in->Fail("non-zero dimension without rows");
    return response;
  }
  if (response.kind == QueryKind::kSkyline) {
    response.skyline.reserve(rows);
    for (uint64_t r = 0; r < rows && !in->failed(); ++r) {
      algo::SkylineEntry e;
      e.facility = GetU32(in, "facility id out of range");
      const uint64_t mask = in->GetVarint();
      if (d < 32 && mask >= (1ull << d)) {
        in->Fail("known mask exceeds dimension");
        return response;
      }
      e.known_mask = static_cast<uint32_t>(mask);
      e.costs = graph::CostVector(d);
      for (int j = 0; j < d; ++j) e.costs[j] = in->GetF64();
      response.skyline.push_back(std::move(e));
    }
  } else {
    response.topk.reserve(rows);
    for (uint64_t r = 0; r < rows && !in->failed(); ++r) {
      algo::TopKEntry e;
      e.facility = GetU32(in, "facility id out of range");
      e.score = in->GetF64();
      e.costs = graph::CostVector(d);
      for (int j = 0; j < d; ++j) e.costs[j] = in->GetF64();
      response.topk.push_back(std::move(e));
    }
  }
  response.result_hash = in->GetFixed64();
  response.buffer_misses = in->GetVarint();
  response.buffer_accesses = in->GetVarint();
  response.exec_seconds = in->GetF64();
  return response;
}

std::string GetName(WireReader* in) {
  const uint64_t len = in->GetCount(1);
  return in->GetBytes(len);
}

obs::Snapshot GetSnapshot(WireReader* in) {
  obs::Snapshot snap;
  // Each counter row is at least name-count(1) + value(1) bytes; the same
  // floor holds for gauges (1 + 8) and histograms (1 + 1 + 1).
  const uint64_t counters = in->GetCount(2);
  if (in->failed()) return snap;
  snap.counters.reserve(counters);
  for (uint64_t i = 0; i < counters && !in->failed(); ++i) {
    obs::CounterRow row;
    row.name = GetName(in);
    row.value = in->GetVarint();
    snap.counters.push_back(std::move(row));
  }
  const uint64_t gauges = in->GetCount(9);
  if (in->failed()) return snap;
  snap.gauges.reserve(gauges);
  for (uint64_t i = 0; i < gauges && !in->failed(); ++i) {
    obs::GaugeRow row;
    row.name = GetName(in);
    row.value = in->GetF64();
    snap.gauges.push_back(std::move(row));
  }
  const uint64_t hists = in->GetCount(3);
  if (in->failed()) return snap;
  snap.histograms.reserve(hists);
  for (uint64_t i = 0; i < hists && !in->failed(); ++i) {
    obs::HistogramSnapshot h;
    h.name = GetName(in);
    h.sum = in->GetVarint();
    const uint64_t buckets = in->GetCount(2);
    if (in->failed()) return snap;
    h.buckets.reserve(buckets);
    uint64_t prev = 0;
    for (uint64_t b = 0; b < buckets && !in->failed(); ++b) {
      const uint64_t index = in->GetVarint();
      const uint64_t count = in->GetVarint();
      if (in->failed()) break;
      // Canonical sparse form: strictly ascending indices inside the
      // bucket space, no zero-count entries (see the header grammar).
      if (index >= static_cast<uint64_t>(obs::Histogram::kNumBuckets)) {
        in->Fail("histogram bucket index out of range");
        break;
      }
      if (b > 0 && index <= prev) {
        in->Fail("histogram buckets not ascending");
        break;
      }
      if (count == 0) {
        in->Fail("zero-count histogram bucket");
        break;
      }
      prev = index;
      h.buckets.emplace_back(static_cast<uint32_t>(index), count);
      h.count += count;
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

Result<WireReader> OpenPayload(const std::string& payload) {
  WireReader in(payload);
  const uint8_t version = in.GetU8();
  if (in.failed()) return in.status();
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        "wire: protocol version mismatch (got " + std::to_string(version) +
        ", speaking " + std::to_string(kWireVersion) + ")");
  }
  return in;
}

Status ClosePayload(WireReader* in) {
  if (in->failed()) return in->status();
  if (in->remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after message");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeRequestFrame(const WireRequest& request) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<uint8_t>(request.type));
  switch (request.type) {
    case MsgType::kExecute:
    case MsgType::kOpenSession:
      PutQuerySpec(&payload, request.spec);
      break;
    case MsgType::kNext:
      PutVarint(&payload, request.session_id);
      PutVarint(&payload, static_cast<uint64_t>(request.batch_n));
      break;
    case MsgType::kCloseSession:
      PutVarint(&payload, request.session_id);
      break;
    case MsgType::kGetMetrics:
    case MsgType::kGetTrace:
      break;  // empty bodies
    default:
      // Encode side: the caller passed a response MsgType in a request
      // envelope — programmer error, not remote input.
      // mcn-lint: disable-next-line=check-in-decode
      MCN_CHECK(false && "EncodeRequestFrame: not a request type");
  }
  return FinishFrame(std::move(payload));
}

namespace {

std::string BuildResponsePayload(const WireResponse& response) {
  std::string payload;
  PutU8(&payload, kWireVersion);
  PutU8(&payload, static_cast<uint8_t>(response.type));
  switch (response.type) {
    case MsgType::kResponse:
      PutQueryResponse(&payload, response.response);
      break;
    case MsgType::kSessionOpened:
      PutStatus(&payload, response.status);
      PutVarint(&payload, response.session_id);
      break;
    case MsgType::kSessionClosed:
      PutStatus(&payload, response.status);
      break;
    case MsgType::kMetrics:
      PutStatus(&payload, response.status);
      PutSnapshot(&payload, response.snapshot);
      break;
    case MsgType::kTrace:
      PutStatus(&payload, response.status);
      PutVarint(&payload, response.trace_json.size());
      payload.append(response.trace_json);
      break;
    default:
      // Encode side: the caller passed a request MsgType in a response
      // envelope — programmer error, not remote input.
      // mcn-lint: disable-next-line=check-in-decode
      MCN_CHECK(false && "EncodeResponseFrame: not a response type");
  }
  return payload;
}

}  // namespace

std::string EncodeResponseFrame(const WireResponse& response) {
  return FinishFrame(BuildResponsePayload(response));
}

Result<std::string> TryEncodeResponseFrame(const WireResponse& response) {
  std::string payload = BuildResponsePayload(response);
  if (payload.size() > kMaxFramePayload) {
    return Status::OutOfRange(
        "wire: response payload " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte frame cap");
  }
  return FinishFrame(std::move(payload));
}

Result<WireRequest> DecodeRequestPayload(const std::string& payload) {
  MCN_ASSIGN_OR_RETURN(WireReader in, OpenPayload(payload));
  WireRequest request;
  const uint8_t type = in.GetU8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kExecute:
    case MsgType::kOpenSession:
      request.type = static_cast<MsgType>(type);
      request.spec = GetQuerySpec(&in);
      break;
    case MsgType::kNext: {
      request.type = MsgType::kNext;
      request.session_id = in.GetVarint();
      const uint64_t n = in.GetVarint();
      if (!in.failed() && n > std::numeric_limits<int32_t>::max()) {
        in.Fail("batch size out of int32 range");
      }
      request.batch_n = static_cast<int32_t>(n);
      break;
    }
    case MsgType::kCloseSession:
      request.type = MsgType::kCloseSession;
      request.session_id = in.GetVarint();
      break;
    case MsgType::kGetMetrics:
    case MsgType::kGetTrace:
      request.type = static_cast<MsgType>(type);
      break;  // empty bodies
    default:
      return Status::Corruption("wire: unknown request type " +
                                std::to_string(type));
  }
  MCN_RETURN_IF_ERROR(ClosePayload(&in));
  return request;
}

Result<WireResponse> DecodeResponsePayload(const std::string& payload) {
  MCN_ASSIGN_OR_RETURN(WireReader in, OpenPayload(payload));
  WireResponse response;
  const uint8_t type = in.GetU8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kResponse:
      response.type = MsgType::kResponse;
      response.response = GetQueryResponse(&in);
      break;
    case MsgType::kSessionOpened:
      response.type = MsgType::kSessionOpened;
      response.status = GetStatus(&in);
      response.session_id = in.GetVarint();
      break;
    case MsgType::kSessionClosed:
      response.type = MsgType::kSessionClosed;
      response.status = GetStatus(&in);
      break;
    case MsgType::kMetrics:
      response.type = MsgType::kMetrics;
      response.status = GetStatus(&in);
      response.snapshot = GetSnapshot(&in);
      break;
    case MsgType::kTrace: {
      response.type = MsgType::kTrace;
      response.status = GetStatus(&in);
      const uint64_t len = in.GetCount(1);
      response.trace_json = in.GetBytes(len);
      break;
    }
    default:
      return Status::Corruption("wire: unknown response type " +
                                std::to_string(type));
  }
  MCN_RETURN_IF_ERROR(ClosePayload(&in));
  return response;
}

}  // namespace mcn::api
