// Canonical compact binary wire format of the preference-query API
// (DESIGN.md §9). Frame grammar:
//
//   frame    := length(u32 LE, payload bytes) payload
//   payload  := version(u8, = kWireVersion) type(u8) body
//
// Body scalars: unsigned LEB128 varints for ids/counts/flags ("varint"),
// raw little-endian IEEE-754 bit patterns for doubles ("f64" — bit-exact,
// so result hashes survive the round trip), fixed 8-byte LE for the result
// hash. Request bodies:
//
//   kExecute      := QuerySpec
//   kOpenSession  := QuerySpec              (kind must be incremental)
//   kNext         := session_id(varint) n(varint)
//   kCloseSession := session_id(varint)
//   kGetMetrics   := (empty)                (introspection scrape)
//   kGetTrace     := (empty)                (drain the trace buffers)
//
// Response bodies:
//
//   kResponse      := QueryResponse         (also carries query errors)
//   kSessionOpened := Status session_id(varint)
//   kSessionClosed := Status
//   kMetrics       := Status counters(vec<Counter>) gauges(vec<Gauge>)
//                     hists(vec<Hist>)
//   kTrace         := Status json(vec<u8>)  (Chrome trace_event document)
//
// with
//
//   QuerySpec     := kind(u8) engine(u8) parallelism(varint) k(varint)
//                    deadline_ms(varint) Location weights(vec<f64>)
//                    epsilon(f64) cost_caps(vec<f64>)
//   Location      := 0(u8) node(varint) | 1(u8) u(varint) v(varint)
//                    frac(f64)
//   QueryResponse := Status kind(u8) exhausted(u8) dim(varint)
//                    row_count(varint) row* hash(fixed u64 LE)
//                    misses(varint) accesses(varint) exec_seconds(f64)
//   row           := facility(varint) known_mask(varint) cost(f64){dim}
//                  | facility(varint) score(f64) cost(f64){dim}   (top-k)
//   Counter       := name(vec<u8>) value(varint)
//   Gauge         := name(vec<u8>) value(f64)
//   Hist          := name(vec<u8>) sum(varint) buckets(vec<Bucket>)
//   Bucket        := index(varint) count(varint)
//   Status        := code(varint) message(vec<u8>)
//   vec<T>        := count(varint) T{count}
//
// Hist buckets are the sparse form of obs::HistogramSnapshot: indices
// strictly ascending, every count nonzero, indices < the histogram's
// bucket space; the snapshot's total count is derived as the bucket-count
// sum (never carried redundantly).
//
// Encoding is canonical (one byte sequence per value: minimal-length
// varints, fixed field order), so decode(encode(x)) == x and
// encode(decode(b)) == b for every well-formed b — the round-trip
// invariants the wire-format property test enforces. Decoding is fully
// bounds-checked: truncated or trailing bytes, oversized counts, unknown
// enum values and version mismatches are Status errors, never crashes.
#ifndef MCN_API_WIRE_H_
#define MCN_API_WIRE_H_

#include <cstdint>
#include <string>

#include "mcn/api/query_response.h"
#include "mcn/api/query_spec.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/obs/metrics.h"

namespace mcn::api {

/// Protocol version byte, bumped on any incompatible grammar change. A
/// decoder rejects frames carrying any other value.
/// v2: QuerySpec gained deadline_ms; Status codes extended with the
/// failure-model codes (DeadlineExceeded/ResourceExhausted/Cancelled).
/// The introspection messages (kGetMetrics/kGetTrace and their replies)
/// are additive — new type bytes, no change to any v2 body — so they ride
/// on version 2; an older peer answers them with "unknown type".
inline constexpr uint8_t kWireVersion = 2;

/// Hard ceiling on one frame's payload: protects a peer from allocating
/// unbounded memory on a garbage length prefix.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Message type byte. Requests have the high bit clear, responses set.
enum class MsgType : uint8_t {
  kExecute = 0x01,
  kOpenSession = 0x02,
  kNext = 0x03,
  kCloseSession = 0x04,
  kGetMetrics = 0x05,
  kGetTrace = 0x06,
  kResponse = 0x81,
  kSessionOpened = 0x82,
  kSessionClosed = 0x83,
  kMetrics = 0x85,
  kTrace = 0x86,
};

/// Decoded request envelope. Which fields are meaningful depends on `type`
/// (see the grammar above).
struct WireRequest {
  MsgType type = MsgType::kExecute;
  QuerySpec spec;           ///< kExecute / kOpenSession
  uint64_t session_id = 0;  ///< kNext / kCloseSession
  int32_t batch_n = 0;      ///< kNext
};

/// Decoded response envelope.
struct WireResponse {
  MsgType type = MsgType::kResponse;
  QueryResponse response;     ///< kResponse
  Status status;              ///< kSessionOpened/kSessionClosed/kMetrics/kTrace
  uint64_t session_id = 0;    ///< kSessionOpened
  obs::Snapshot snapshot;     ///< kMetrics
  std::string trace_json;     ///< kTrace
};

/// Encodes a complete frame (length prefix + versioned payload). For
/// payloads of trusted size (requests, control responses, tests); a
/// payload over kMaxFramePayload is a programmer error (CHECK).
std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeResponseFrame(const WireResponse& response);

/// Like EncodeResponseFrame, but a result row set too large for one frame
/// comes back as OutOfRange instead of aborting — what a server must use
/// for responses whose size a remote client controls (e.g. a huge-k
/// top-k); it can then answer with a small error response.
Result<std::string> TryEncodeResponseFrame(const WireResponse& response);

/// Decodes a frame *payload* (the bytes after the length prefix). Rejects
/// version mismatches, unknown types, malformed bodies and trailing bytes.
Result<WireRequest> DecodeRequestPayload(const std::string& payload);
Result<WireResponse> DecodeResponsePayload(const std::string& payload);

}  // namespace mcn::api

#endif  // MCN_API_WIRE_H_
