// CancelToken: cooperative cancellation + deadline carrier for one query.
//
// A token is owned by whoever runs the query (an exec worker, a test, a
// bench loop) and is observed — never mutated — by the expansion layer. The
// expansion checks the token at its natural quiescent points (turn barriers
// in ParallelProbeScheduler, settle steps in SingleExpansion) and unwinds
// with a typed Status, so an expired or cancelled query stops fetching pages
// instead of running to completion (DESIGN.md §10).
//
// Checking is cheap: one relaxed atomic load, plus a steady_clock read only
// when a deadline is armed. Determinism note: cancellation only changes
// *whether* a query finishes, never the bytes of a successful result — an
// aborted query yields an error Status and no result hash.
#ifndef MCN_COMMON_CANCEL_H_
#define MCN_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "mcn/common/status.h"

namespace mcn {

/// Cooperative cancellation flag with an optional absolute deadline.
/// Thread-safe: Cancel() may race with any number of Check() callers.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Token that expires `deadline_ms` milliseconds from now. 0 means "no
  /// deadline" (the token can still be cancelled explicitly). Tokens are
  /// pinned in place (atomic member), so construct them where they live.
  explicit CancelToken(int64_t deadline_ms) {
    if (deadline_ms > 0) {
      deadline_ = Clock::now() + std::chrono::milliseconds(deadline_ms);
      has_deadline_ = true;
    }
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms an absolute deadline (e.g. anchored at request admission). Must
  /// be called before the token is shared with other threads.
  void ArmDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Requests cancellation (e.g. client went away). Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  bool expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// OK while the query may keep running; Cancelled/DeadlineExceeded once it
  /// must unwind. The typed code is what ends up on the wire.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (expired()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;       // immutable after construction
  Clock::time_point deadline_{};    // valid iff has_deadline_
};

}  // namespace mcn

#endif  // MCN_COMMON_CANCEL_H_
