#include "mcn/common/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/common/macros.h"

namespace mcn {

std::atomic<FaultInjector*> FaultInjector::installed_{nullptr};

namespace {

// Splits "a=1,b=2" into (key, value) pairs; empty segments are skipped.
Status SplitPairs(std::string_view spec,
                  std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec: expected key=value, got '" +
                                     std::string(part) + "'");
    }
    out->emplace_back(std::string(part.substr(0, eq)),
                      std::string(part.substr(eq + 1)));
  }
  return Status::OK();
}

Status ParseProb(const std::string& key, const std::string& val, double* out) {
  char* end = nullptr;
  double d = std::strtod(val.c_str(), &end);
  if (end == nullptr || *end != '\0' || d < 0.0 || d > 1.0) {
    return Status::InvalidArgument("fault spec: " + key +
                                   " must be a probability in [0,1], got '" +
                                   val + "'");
  }
  *out = d;
  return Status::OK();
}

Status ParseU64(const std::string& key, const std::string& val,
                uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(val.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || val.empty()) {
    return Status::InvalidArgument("fault spec: " + key +
                                   " must be an integer, got '" + val + "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

}  // namespace

Result<FaultInjector::Options> FaultInjector::ParseSpec(
    std::string_view spec) {
  Options o;
  std::vector<std::pair<std::string, std::string>> pairs;
  MCN_RETURN_IF_ERROR(SplitPairs(spec, &pairs));
  for (const auto& [key, val] : pairs) {
    if (key == "seed") {
      MCN_RETURN_IF_ERROR(ParseU64(key, val, &o.seed));
    } else if (key == "disk_eio") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.disk_eio));
    } else if (key == "disk_delay") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.disk_delay));
    } else if (key == "disk_delay_us") {
      uint64_t v = 0;
      MCN_RETURN_IF_ERROR(ParseU64(key, val, &v));
      o.disk_delay_us = static_cast<int>(v);
    } else if (key == "send_eio") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.send_eio));
    } else if (key == "torn_write") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.torn_write));
    } else if (key == "recv_eio") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.recv_eio));
    } else if (key == "recv_delay") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.recv_delay));
    } else if (key == "recv_delay_us") {
      uint64_t v = 0;
      MCN_RETURN_IF_ERROR(ParseU64(key, val, &v));
      o.recv_delay_us = static_cast<int>(v);
    } else if (key == "file_eio") {
      MCN_RETURN_IF_ERROR(ParseProb(key, val, &o.file_eio));
    } else {
      return Status::InvalidArgument("fault spec: unknown key '" + key + "'");
    }
  }
  return o;
}

FaultInjector::FaultInjector(const Options& opts)
    : opts_(opts), rng_(opts.seed) {}

void FaultInjector::Install(FaultInjector* fi) {
  installed_.store(fi, std::memory_order_release);
}

bool FaultInjector::Draw(double p) {
  if (p <= 0.0) return false;
  MutexLock lock(&mu_);
  return rng_.Bernoulli(p);
}

double FaultInjector::DrawUniform() {
  MutexLock lock(&mu_);
  return rng_.NextDouble();
}

Status FaultInjector::OnDiskRead() {
  if (!enabled()) return Status::OK();
  if (Draw(opts_.disk_delay)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(opts_.disk_delay_us));
  }
  if (Draw(opts_.disk_eio)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected disk EIO");
  }
  return Status::OK();
}

Status FaultInjector::OnFileRead() {
  if (!enabled()) return Status::OK();
  if (Draw(opts_.file_eio)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected file-backend EIO");
  }
  return Status::OK();
}

FaultInjector::SendFault FaultInjector::OnSend() {
  SendFault f;
  if (!enabled()) return f;
  if (Draw(opts_.torn_write)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    f.kind = SendFault::kTorn;
    f.torn_fraction = DrawUniform();
    return f;
  }
  if (Draw(opts_.send_eio)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    f.kind = SendFault::kEio;
  }
  return f;
}

FaultInjector::RecvFault FaultInjector::OnRecv() {
  RecvFault f;
  if (!enabled()) return f;
  if (Draw(opts_.recv_delay)) {
    f.kind = RecvFault::kDelay;
    f.delay_us = opts_.recv_delay_us;
    return f;
  }
  if (Draw(opts_.recv_eio)) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    f.kind = RecvFault::kEio;
  }
  return f;
}

}  // namespace mcn
