// FaultInjector: a deterministic, process-wide fault seam for chaos testing
// (DESIGN.md §10). When installed, the storage and socket layers consult it
// at their I/O boundaries and inject typed failures — disk EIO, delayed
// reads, torn (short) writes, outright send/recv errors and mid-frame
// disconnects — with per-site probabilities drawn from a seeded PRNG, so a
// failing chaos run is reproducible from its seed.
//
// The injector is installed globally (one per process) because the fault
// sites sit under layers that have no options plumbing of their own
// (DiskManager::ReadPageRef, socket_io free functions). The fast path when
// no injector is installed is a single relaxed atomic load. Probability
// draws take a mutex — acceptable because faults are only ever enabled in
// chaos tests and benches, never in production-path benchmarks.
//
// Lifecycle contract: Install/Uninstall are not hot-swappable under load —
// install before starting the workload, uninstall after quiescing it (the
// chaos tests bracket server start/stop). `set_enabled(false)` IS safe under
// load and is how a test "heals" faults mid-run.
#ifndef MCN_COMMON_FAULT_INJECTOR_H_
#define MCN_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "mcn/common/mutex.h"
#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/common/thread_annotations.h"

namespace mcn {

class FaultInjector {
 public:
  /// Per-site fault probabilities (0 disables a site). Parsed from a spec
  /// string like "disk_eio=0.01,torn_write=0.05,seed=42" (see ParseSpec).
  struct Options {
    uint64_t seed = 1;
    double disk_eio = 0.0;      ///< DiskManager read returns IOError
    double disk_delay = 0.0;    ///< DiskManager read sleeps first
    int disk_delay_us = 200;
    double send_eio = 0.0;      ///< SendFrame fails with IOError
    double torn_write = 0.0;    ///< SendFrame writes a prefix, then breaks
    double recv_eio = 0.0;      ///< RecvFramePayload fails with IOError
    double recv_delay = 0.0;    ///< RecvFramePayload sleeps first
    int recv_delay_us = 200;
    double file_eio = 0.0;      ///< file-backend batched read fails (EIO)
  };

  /// Parses "key=value,key=value" with the keys named in Options
  /// (probabilities in [0,1]; `seed`, `disk_delay_us`, `recv_delay_us` are
  /// integers). Unknown keys or malformed values are InvalidArgument.
  static Result<Options> ParseSpec(std::string_view spec);

  explicit FaultInjector(const Options& opts);

  /// Installs `fi` as the process-wide injector (nullptr uninstalls). The
  /// caller keeps ownership and must keep it alive until uninstalled and
  /// all I/O has quiesced.
  static void Install(FaultInjector* fi);

  /// The installed injector, or nullptr (the common fast path).
  static FaultInjector* Get() {
    return installed_.load(std::memory_order_acquire);
  }

  /// Master switch: a disabled injector injects nothing but stays
  /// installed. Safe to flip under load — this is how chaos tests heal the
  /// world before the parity replay.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  const Options& options() const { return opts_; }

  /// Total faults injected so far (all sites).
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  // --- Fault sites -------------------------------------------------------

  /// Consulted by DiskManager read paths. Returns non-OK to inject a fault
  /// (after any injected delay has been slept here).
  Status OnDiskRead();

  /// Consulted per page by the file-backed batched read path
  /// (DiskManager::ReadPagesBatch over a FileIoBackend), before any
  /// physical read or counter tick — the io_uring/preadv analog of
  /// OnDiskRead, keyed separately so chaos specs can storm one seam
  /// without the other.
  Status OnFileRead();

  struct SendFault {
    enum Kind { kNone, kEio, kTorn };
    Kind kind = kNone;
    /// For kTorn: fraction of the frame to actually write before breaking
    /// the connection, in [0,1).
    double torn_fraction = 0.0;
  };
  /// Consulted by SendFrame before writing.
  SendFault OnSend();

  struct RecvFault {
    enum Kind { kNone, kEio, kDelay };
    Kind kind = kNone;
    int delay_us = 0;
  };
  /// Consulted by RecvFramePayload before reading.
  RecvFault OnRecv();

 private:
  /// True with probability p; one PRNG draw under the mutex.
  bool Draw(double p);
  double DrawUniform();

  static std::atomic<FaultInjector*> installed_;

  Options opts_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> injected_{0};
  Mutex mu_;
  Random rng_ MCN_GUARDED_BY(mu_);
};

}  // namespace mcn

#endif  // MCN_COMMON_FAULT_INJECTOR_H_
