// FlatU64Map: a minimal open-addressed hash map from 64-bit keys to 32-bit
// values (linear probing, power-of-two capacity, splitmix-style mixing).
// Used on the query hot paths — packed EdgeKey -> cache row in CachedFetch
// and FacilityFilter, packed PageId -> frame index in BufferPool — where
// unordered_map's per-node allocation and pointer chasing dominated the
// profile (DESIGN.md §4).
//
// The all-ones key is reserved as the empty sentinel; neither a canonical
// EdgeKey (kInvalidNode endpoints) nor a valid PageId (kInvalidPageNo) can
// produce it.
#ifndef MCN_COMMON_FLAT_U64_MAP_H_
#define MCN_COMMON_FLAT_U64_MAP_H_

#include <cstdint>
#include <vector>

#include "mcn/common/hash.h"
#include "mcn/common/macros.h"

namespace mcn {

class FlatU64Map {
 public:
  static constexpr uint64_t kEmptyKey = 0xFFFFFFFFFFFFFFFFull;
  static constexpr uint32_t kNoValue = 0xFFFFFFFFu;

  explicit FlatU64Map(size_t initial_capacity = 64) { Rehash(initial_capacity); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Value stored under `key`, or kNoValue when absent. The reserved
  /// all-ones key reports absent (it would otherwise match an empty slot),
  /// so callers handing in a corrupt/uninitialized id fall through to
  /// their miss path and fail there, as the pre-flat containers did.
  uint32_t Find(uint64_t key) const {
    if (key == kEmptyKey) return kNoValue;
    size_t i = Ideal(key);
    for (;;) {
      const Entry& e = entries_[i];
      if (e.key == key) return e.value;
      if (e.key == kEmptyKey) return kNoValue;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts `key` -> `value`; the key must be absent and not the
  /// reserved all-ones sentinel (enforced also in release builds — a
  /// sentinel insert would corrupt the table).
  void Insert(uint64_t key, uint32_t value) {
    MCN_CHECK(key != kEmptyKey);
    MCN_DCHECK(value != kNoValue);
    if ((size_ + 1) * 8 > capacity() * 7) Rehash(capacity() * 2);
    size_t i = Ideal(key);
    while (entries_[i].key != kEmptyKey) {
      MCN_DCHECK(entries_[i].key != key);
      i = (i + 1) & mask_;
    }
    entries_[i] = Entry{key, value};
    ++size_;
  }

  /// Removes `key`. The key must be present; an absent key is a
  /// programmer error and aborts, also in release builds (the probe walk
  /// would otherwise cycle the table forever). Backward-shift deletion
  /// keeps probe chains intact without tombstones.
  void Erase(uint64_t key) {
    MCN_CHECK(key != kEmptyKey);  // would match any empty slot below
    size_t i = Ideal(key);
    while (entries_[i].key != key) {
      MCN_CHECK(entries_[i].key != kEmptyKey);  // absent key
      i = (i + 1) & mask_;
    }
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (entries_[j].key == kEmptyKey) break;
      size_t h = Ideal(entries_[j].key);
      // Leave entries whose ideal slot lies cyclically in (i, j]: their
      // probe path does not cross the hole at i.
      bool safe = (i < j) ? (h > i && h <= j) : (h > i || h <= j);
      if (!safe) {
        entries_[i] = entries_[j];
        i = j;
      }
    }
    entries_[i].key = kEmptyKey;
    --size_;
  }

  void Clear() {
    for (Entry& e : entries_) e.key = kEmptyKey;
    size_ = 0;
  }

 private:
  struct Entry {
    uint64_t key = kEmptyKey;
    uint32_t value = 0;
  };

  size_t capacity() const { return entries_.size(); }

  size_t Ideal(uint64_t key) const {
    return static_cast<size_t>(MixU64(key)) & mask_;
  }

  void Rehash(size_t new_capacity) {
    size_t cap = 16;
    while (cap < new_capacity) cap <<= 1;
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(cap, Entry{});
    mask_ = cap - 1;
    size_ = 0;
    for (const Entry& e : old) {
      if (e.key != kEmptyKey) Insert(e.key, e.value);
    }
  }

  std::vector<Entry> entries_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace mcn

#endif  // MCN_COMMON_FLAT_U64_MAP_H_
