// Shared 64-bit hashing helpers. Every hot-path hash in the library
// (EdgeKeyHash, PageIdHash, FlatU64Map) funnels through the same
// splitmix64-style finalizer so the mixing behavior cannot silently
// diverge between subsystems.
#ifndef MCN_COMMON_HASH_H_
#define MCN_COMMON_HASH_H_

#include <cstdint>

#include "mcn/common/macros.h"

namespace mcn {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mix.
MCN_NO_SANITIZE_INTEGER inline uint64_t MixU64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace mcn

#endif  // MCN_COMMON_HASH_H_
