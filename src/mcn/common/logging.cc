#include "mcn/common/logging.h"

#include <cstdio>

namespace mcn {
namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <= static_cast<int>(g_level)) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace mcn
