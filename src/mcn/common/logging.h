// Minimal leveled logging to stderr. The library itself logs nothing at
// default verbosity; tools and benches may raise the level.
#ifndef MCN_COMMON_LOGGING_H_
#define MCN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mcn {

enum class LogLevel { kError = 0, kWarning = 1, kInfo = 2, kDebug = 3 };

/// Sets the global verbosity; messages above the level are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mcn

#define MCN_LOG(level)                                                \
  ::mcn::internal::LogMessage(::mcn::LogLevel::k##level, __FILE__, __LINE__)

#endif  // MCN_COMMON_LOGGING_H_
