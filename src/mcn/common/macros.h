// Common helper macros used across the mcn library.
#ifndef MCN_COMMON_MACROS_H_
#define MCN_COMMON_MACROS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` is false. Used for programmer errors
// (violated invariants), never for data-dependent failures, which are
// reported through Status.
#define MCN_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MCN_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MCN_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MCN_DCHECK(cond) MCN_CHECK(cond)
#endif

// Propagates a non-OK Status from an expression.
#define MCN_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mcn::Status _mcn_status = (expr);          \
    if (!_mcn_status.ok()) return _mcn_status;   \
  } while (0)

#define MCN_CONCAT_INNER_(a, b) a##b
#define MCN_CONCAT_(a, b) MCN_CONCAT_INNER_(a, b)

// Marks a function whose unsigned wraparound is deliberate (hash mixers,
// PRNG state transitions) so clang's -fsanitize=integer does not flag it.
// The wraparound there is the algorithm, not a bug.
#if defined(__clang__)
#define MCN_NO_SANITIZE_INTEGER __attribute__((no_sanitize("integer")))
#else
#define MCN_NO_SANITIZE_INTEGER
#endif

// Evaluates `rexpr` (a Result<T>), propagates the error, otherwise moves the
// value into `lhs`. `lhs` may be a declaration, e.g.
//   MCN_ASSIGN_OR_RETURN(auto reader, NetworkReader::Open(...));
#define MCN_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  auto MCN_CONCAT_(_mcn_result_, __LINE__) = (rexpr);                 \
  if (!MCN_CONCAT_(_mcn_result_, __LINE__).ok())                      \
    return MCN_CONCAT_(_mcn_result_, __LINE__).status();              \
  lhs = std::move(MCN_CONCAT_(_mcn_result_, __LINE__)).value()

#endif  // MCN_COMMON_MACROS_H_
