// Annotated mutex / condition-variable shims over the std primitives.
//
// Every lock in the library goes through these wrappers so Clang Thread
// Safety Analysis (common/thread_annotations.h) can check the lock
// contracts at compile time. The wrappers are zero-overhead: each method
// is a single inlined call into the underlying std primitive, and the
// attributes vanish entirely on compilers without TSA support.
//
// Waiting on a CondVar is written as an explicit loop so the analysis
// can see the guarded reads:
//
//   MutexLock lock(&mu_);
//   while (pending_ != 0) cv_.Wait(&mu_);
//
// (predicate-lambda overloads are deliberately not provided: the lambda
// body would be analyzed as an unannotated function and every guarded
// read inside it would need a suppression).
#ifndef MCN_COMMON_MUTEX_H_
#define MCN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>  // mcn-lint: disable-file=bare-sync-primitive
#include <mutex>

#include "mcn/common/thread_annotations.h"

namespace mcn {

/// Annotated exclusive mutex. Non-copyable, non-movable.
class MCN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MCN_ACQUIRE() { mu_.lock(); }
  void Unlock() MCN_RELEASE() { mu_.unlock(); }
  bool TryLock() MCN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for interop with std APIs (CondVar uses it). The
  /// returned reference must not be locked/unlocked directly.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for a Mutex; the scoped-capability annotation lets the
/// analysis treat the guarded region as holding the lock.
class MCN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MCN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MCN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable only with mcn::Mutex. All waits require the
/// mutex to be held and are written as explicit predicate loops at the
/// call site (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified, and reacquires *mu
  /// before returning. Spurious wakeups are possible; always wait in a
  /// loop re-checking the guarded predicate.
  void Wait(Mutex* mu) MCN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Like Wait, but returns after `timeout` even if not notified.
  /// Returns false on timeout, true when notified (possibly spuriously).
  template <class Rep, class Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      MCN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // the caller still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mcn

#endif  // MCN_COMMON_MUTEX_H_
