#include "mcn/common/random.h"

#include <cmath>

#include "mcn/common/macros.h"

namespace mcn {
namespace {

MCN_NO_SANITIZE_INTEGER uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

MCN_NO_SANITIZE_INTEGER uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (xoshiro's single fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

MCN_NO_SANITIZE_INTEGER uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

MCN_NO_SANITIZE_INTEGER uint64_t Random::Uniform(uint64_t bound) {
  MCN_DCHECK(bound > 0);
  // Debiased modulo (Lemire-style rejection would be faster; this is simple
  // and unbiased enough for workload generation).
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  MCN_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  // 53 top bits -> uniform in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Random::Exponential() {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

Random Random::Fork() { return Random(Next() ^ 0xD2B74407B1CE6E93ull); }

}  // namespace mcn
