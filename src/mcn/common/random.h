// Deterministic pseudo-random number generation for generators, tests and
// benchmarks. xoshiro256** seeded via SplitMix64: fast, high quality, and
// identical across platforms (unlike std::mt19937 + distributions, whose
// outputs vary between standard library implementations).
#ifndef MCN_COMMON_RANDOM_H_
#define MCN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mcn {

/// xoshiro256** PRNG with convenience sampling helpers. Copyable; copies
/// evolve independently.
class Random {
 public:
  /// Seeds the state from `seed` via SplitMix64.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with rate 1.
  double Exponential();

  /// True with probability `p`.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator (useful to decorrelate sub-streams).
  Random Fork();

 private:
  uint64_t s_[4];
};

}  // namespace mcn

#endif  // MCN_COMMON_RANDOM_H_
