// Result<T>: a Status or a value, in the spirit of arrow::Result /
// absl::StatusOr. Used as the return type of fallible factory functions.
#ifndef MCN_COMMON_RESULT_H_
#define MCN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "mcn/common/macros.h"
#include "mcn/common/status.h"

namespace mcn {

/// Holds either an OK Status with a T, or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit conversion from a non-OK Status.
  Result(Status status) : status_(std::move(status)) {
    MCN_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Requires ok().
  const T& value() const& {
    MCN_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MCN_CHECK(ok());
    return *value_;
  }
  // Returns by value (one move), not T&&: a reference into the expiring
  // Result would dangle in common patterns like
  //   for (auto& x : Compute().value()) ...
  // whereas a prvalue is lifetime-extended by the range-for.
  T value() && {
    MCN_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not ok().
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mcn

#endif  // MCN_COMMON_RESULT_H_
