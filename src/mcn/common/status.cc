#include "mcn/common/status.h"

namespace mcn {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mcn
