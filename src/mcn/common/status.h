// Status: the error-reporting type used throughout mcn (no exceptions are
// thrown by the library). Modeled after the RocksDB/Arrow convention.
#ifndef MCN_COMMON_STATUS_H_
#define MCN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace mcn {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIOError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Failure-model codes (appended so wire-encoded values stay stable).
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// Largest valid StatusCode value; the wire decoder rejects anything above
/// this, so new codes must be appended, never inserted.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kCancelled;

/// Returns a human-readable name for `code` ("Ok", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation. The default
/// constructed Status is OK. Non-OK statuses carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace mcn

#endif  // MCN_COMMON_STATUS_H_
