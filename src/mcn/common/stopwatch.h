// Wall-clock stopwatch used by the benchmark harness.
#ifndef MCN_COMMON_STOPWATCH_H_
#define MCN_COMMON_STOPWATCH_H_

#include <chrono>

namespace mcn {

/// Measures elapsed wall-clock time with steady_clock.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mcn

#endif  // MCN_COMMON_STOPWATCH_H_
