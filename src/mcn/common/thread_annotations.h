// Clang Thread Safety Analysis attribute macros (abseil-style).
//
// These expand to clang `thread_safety` attributes when the compiler
// supports them and to nothing otherwise (GCC builds the same sources
// unannotated). The CI `static-analysis` job compiles the tree with
// clang and `-Wthread-safety -Werror=thread-safety`, which turns every
// violated contract below into a build failure.
//
// Conventions (see DESIGN.md §14):
//   - data members guarded by a lock get `MCN_GUARDED_BY(mu_)`;
//   - private helpers that expect the caller to hold a lock get
//     `MCN_REQUIRES(mu_)` instead of a "mu_ held" comment;
//   - public entry points that must NOT be called with the lock held
//     (they acquire it themselves) get `MCN_EXCLUDES(mu_)`;
//   - lock wrapper types use `MCN_CAPABILITY` / `MCN_SCOPED_CAPABILITY`
//     with `MCN_ACQUIRE` / `MCN_RELEASE` / `MCN_TRY_ACQUIRE` on their
//     lock/unlock methods (see common/mutex.h);
//   - `MCN_NO_THREAD_SAFETY_ANALYSIS` is a last resort and always
//     carries a comment explaining why the analysis cannot see the
//     invariant.
#ifndef MCN_COMMON_THREAD_ANNOTATIONS_H_
#define MCN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define MCN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MCN_THREAD_ANNOTATION_(x)  // no-op
#endif

#define MCN_CAPABILITY(x) MCN_THREAD_ANNOTATION_(capability(x))

#define MCN_SCOPED_CAPABILITY MCN_THREAD_ANNOTATION_(scoped_lockable)

#define MCN_GUARDED_BY(x) MCN_THREAD_ANNOTATION_(guarded_by(x))

#define MCN_PT_GUARDED_BY(x) MCN_THREAD_ANNOTATION_(pt_guarded_by(x))

#define MCN_ACQUIRED_BEFORE(...) \
  MCN_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define MCN_ACQUIRED_AFTER(...) \
  MCN_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define MCN_REQUIRES(...) \
  MCN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define MCN_REQUIRES_SHARED(...) \
  MCN_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define MCN_ACQUIRE(...) \
  MCN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define MCN_ACQUIRE_SHARED(...) \
  MCN_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define MCN_RELEASE(...) \
  MCN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define MCN_RELEASE_SHARED(...) \
  MCN_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define MCN_TRY_ACQUIRE(...) \
  MCN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define MCN_TRY_ACQUIRE_SHARED(...) \
  MCN_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define MCN_EXCLUDES(...) MCN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define MCN_ASSERT_CAPABILITY(x) MCN_THREAD_ANNOTATION_(assert_capability(x))

#define MCN_RETURN_CAPABILITY(x) MCN_THREAD_ANNOTATION_(lock_returned(x))

#define MCN_NO_THREAD_SAFETY_ANALYSIS \
  MCN_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MCN_COMMON_THREAD_ANNOTATIONS_H_
