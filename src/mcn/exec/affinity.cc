#include "mcn/exec/affinity.h"

#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace mcn::exec {

bool PinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % hw, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool AffinitySupported() {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

}  // namespace mcn::exec
