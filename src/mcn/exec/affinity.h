// Best-effort CPU pinning for shard-affine worker groups (DESIGN.md §8).
// On Linux this wraps sched_setaffinity for the calling thread; elsewhere
// (and whenever the syscall is refused, e.g. restricted CI containers) it
// is a no-op that reports failure without consequence — pinning is a
// performance hint, never a correctness requirement.
#ifndef MCN_EXEC_AFFINITY_H_
#define MCN_EXEC_AFFINITY_H_

namespace mcn::exec {

/// Pins the calling thread to `cpu` (modulo the hardware concurrency).
/// Returns true when the affinity mask was actually applied.
bool PinCurrentThreadToCpu(int cpu);

/// Whether PinCurrentThreadToCpu can ever succeed on this platform.
bool AffinitySupported();

}  // namespace mcn::exec

#endif  // MCN_EXEC_AFFINITY_H_
