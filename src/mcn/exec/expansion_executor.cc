#include "mcn/exec/expansion_executor.h"

#include <utility>

#include "mcn/common/macros.h"
#include "mcn/graph/cost_vector.h"

namespace mcn::exec {

Result<std::unique_ptr<ExpansionExecutor>> ExpansionExecutor::Create(
    storage::DiskManager* disk, const net::NetworkFiles& files,
    int parallelism, size_t pool_frames_per_slot) {
  if (disk == nullptr) {
    return Status::InvalidArgument("ExpansionExecutor: null disk");
  }
  if (parallelism < 1) {
    return Status::InvalidArgument(
        "ExpansionExecutor: parallelism must be >= 1");
  }
  auto executor = std::unique_ptr<ExpansionExecutor>(
      new ExpansionExecutor(disk, nullptr, parallelism));
  const int slots = parallelism + 1;  // slot 0 = the query-driving thread
  executor->pools_.reserve(slots);
  executor->readers_.reserve(slots);
  for (int s = 0; s < slots; ++s) {
    executor->pools_.push_back(
        std::make_unique<storage::BufferPool>(disk, pool_frames_per_slot));
    executor->readers_.push_back(std::make_unique<net::NetworkReader>(
        files, executor->pools_.back().get()));
  }
  return Finish(std::move(executor));
}

Result<std::unique_ptr<ExpansionExecutor>> ExpansionExecutor::Create(
    shard::ShardedStorage* storage, const shard::ShardedNetworkFiles& files,
    int parallelism, size_t pool_frames_per_slot,
    bool split_budget_across_shards) {
  if (storage == nullptr) {
    return Status::InvalidArgument("ExpansionExecutor: null sharded storage");
  }
  if (parallelism < 1) {
    return Status::InvalidArgument(
        "ExpansionExecutor: parallelism must be >= 1");
  }
  auto executor = std::unique_ptr<ExpansionExecutor>(
      new ExpansionExecutor(nullptr, storage, parallelism));
  const int slots = parallelism + 1;
  const std::vector<size_t> shard_frames =
      split_budget_across_shards
          ? shard::SplitFramesAcrossShards(pool_frames_per_slot,
                                           storage->num_shards())
          : std::vector<size_t>(
                static_cast<size_t>(storage->num_shards()),
                pool_frames_per_slot);
  executor->readers_.reserve(slots);
  for (int s = 0; s < slots; ++s) {
    executor->readers_.push_back(
        std::make_unique<shard::ShardedNetworkReader>(storage, files,
                                                      shard_frames));
  }
  return Finish(std::move(executor));
}

Result<std::unique_ptr<ExpansionExecutor>> ExpansionExecutor::Finish(
    std::unique_ptr<ExpansionExecutor> executor) {
  if (executor->parallelism_ > 1) {
    // A turn is at most one probe per cost type; the queue never holds
    // more than one turn (the caller blocks on the barrier).
    executor->probe_pool_ = std::make_unique<expand::ProbePool>(
        executor->parallelism_, /*queue_capacity=*/graph::kMaxCostTypes,
        &expand::ParallelProbeScheduler::Run,
        &expand::ParallelProbeScheduler::Discard);
  }
  return executor;
}

ExpansionExecutor::ExpansionExecutor(storage::DiskManager* disk,
                                     shard::ShardedStorage* storage,
                                     int parallelism)
    : disk_(disk), storage_(storage), parallelism_(parallelism) {
  if (disk_ != nullptr) disk_->BeginConcurrentReads();
  if (storage_ != nullptr) storage_->BeginConcurrentReads();
}

ExpansionExecutor::~ExpansionExecutor() {
  if (probe_pool_ != nullptr) probe_pool_->Shutdown(/*drain=*/true);
  if (disk_ != nullptr) disk_->EndConcurrentReads();
  if (storage_ != nullptr) storage_->EndConcurrentReads();
}

Result<ExpansionExecutor::QueryRig> ExpansionExecutor::NewQuery(
    const graph::Location& q, expand::ParallelProbeScheduler::Mode mode) {
  std::vector<const net::NetworkReader*> readers;
  readers.reserve(readers_.size());
  for (const auto& r : readers_) readers.push_back(r.get());
  MCN_ASSIGN_OR_RETURN(auto engine,
                       expand::StripedCeaEngine::Create(std::move(readers), q));
  QueryRig rig;
  rig.scheduler = std::make_unique<expand::ParallelProbeScheduler>(
      engine.get(), probe_pool_.get(), engine->striped_fetch(), mode);
  rig.engine = std::move(engine);
  return rig;
}

void ExpansionExecutor::ResetIoState() {
  for (const auto& reader : readers_) reader->ResetIoState();
}

storage::BufferPool::Stats ExpansionExecutor::PoolStats() const {
  storage::BufferPool::Stats total{};
  for (const auto& reader : readers_) {
    const storage::BufferPool::Stats s = reader->PoolStats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

void ExpansionExecutor::ResetShardIoStats() {
  if (storage_ == nullptr) return;
  for (const auto& reader : readers_) {
    static_cast<shard::ShardedNetworkReader*>(reader.get())
        ->ResetShardIoStats();
  }
}

void ExpansionExecutor::SetHomeShard(shard::ShardId home) {
  if (storage_ == nullptr) return;
  for (const auto& reader : readers_) {
    static_cast<shard::ShardedNetworkReader*>(reader.get())
        ->set_home_shard(home);
  }
}

shard::ShardedNetworkReader::ShardIoStats ExpansionExecutor::ShardIoStats()
    const {
  shard::ShardedNetworkReader::ShardIoStats total;
  if (storage_ == nullptr) return total;
  total.fetches_to_shard.assign(storage_->num_shards(), 0);
  for (const auto& reader : readers_) {
    const auto* sharded =
        static_cast<const shard::ShardedNetworkReader*>(reader.get());
    const auto s = sharded->shard_io_stats();
    total.local_fetches += s.local_fetches;
    total.remote_fetches += s.remote_fetches;
    for (size_t i = 0; i < s.fetches_to_shard.size(); ++i) {
      total.fetches_to_shard[i] += s.fetches_to_shard[i];
    }
  }
  return total;
}

}  // namespace mcn::exec
