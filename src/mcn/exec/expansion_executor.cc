#include "mcn/exec/expansion_executor.h"

#include <utility>

#include "mcn/common/macros.h"
#include "mcn/graph/cost_vector.h"

namespace mcn::exec {

Result<std::unique_ptr<ExpansionExecutor>> ExpansionExecutor::Create(
    storage::DiskManager* disk, const net::NetworkFiles& files,
    int parallelism, size_t pool_frames_per_slot) {
  if (disk == nullptr) {
    return Status::InvalidArgument("ExpansionExecutor: null disk");
  }
  if (parallelism < 1) {
    return Status::InvalidArgument(
        "ExpansionExecutor: parallelism must be >= 1");
  }
  auto executor = std::unique_ptr<ExpansionExecutor>(
      new ExpansionExecutor(disk, parallelism));
  const int slots = parallelism + 1;  // slot 0 = the query-driving thread
  executor->pools_.reserve(slots);
  executor->readers_.reserve(slots);
  for (int s = 0; s < slots; ++s) {
    executor->pools_.push_back(
        std::make_unique<storage::BufferPool>(disk, pool_frames_per_slot));
    executor->readers_.push_back(std::make_unique<net::NetworkReader>(
        files, executor->pools_.back().get()));
  }
  if (parallelism > 1) {
    // A turn is at most one probe per cost type; the queue never holds
    // more than one turn (the caller blocks on the barrier).
    executor->probe_pool_ = std::make_unique<expand::ProbePool>(
        parallelism, /*queue_capacity=*/graph::kMaxCostTypes,
        &expand::ParallelProbeScheduler::Run,
        &expand::ParallelProbeScheduler::Discard);
  }
  return executor;
}

ExpansionExecutor::ExpansionExecutor(storage::DiskManager* disk,
                                     int parallelism)
    : disk_(disk), parallelism_(parallelism) {
  disk_->BeginConcurrentReads();
}

ExpansionExecutor::~ExpansionExecutor() {
  if (probe_pool_ != nullptr) probe_pool_->Shutdown(/*drain=*/true);
  disk_->EndConcurrentReads();
}

Result<ExpansionExecutor::QueryRig> ExpansionExecutor::NewQuery(
    const graph::Location& q, expand::ParallelProbeScheduler::Mode mode) {
  std::vector<const net::NetworkReader*> readers;
  readers.reserve(readers_.size());
  for (const auto& r : readers_) readers.push_back(r.get());
  MCN_ASSIGN_OR_RETURN(auto engine,
                       expand::StripedCeaEngine::Create(std::move(readers), q));
  QueryRig rig;
  rig.scheduler = std::make_unique<expand::ParallelProbeScheduler>(
      engine.get(), probe_pool_.get(), engine->striped_fetch(), mode);
  rig.engine = std::move(engine);
  return rig;
}

void ExpansionExecutor::ResetIoState() {
  for (const auto& pool : pools_) {
    pool->Clear();
    pool->ResetStats();
  }
}

storage::BufferPool::Stats ExpansionExecutor::PoolStats() const {
  storage::BufferPool::Stats total{};
  for (const auto& pool : pools_) {
    const storage::BufferPool::Stats s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace mcn::exec
