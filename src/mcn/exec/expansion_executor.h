// ExpansionExecutor: the reusable rig behind intra-query parallel
// d-expansion (DESIGN.md §7). One executor owns
//
//   * a ProbePool of `parallelism` worker threads executing probe turns,
//   * `parallelism` + 1 reader slots — a BufferPool + NetworkReader per
//     slot over the shared read-only DiskManager (slot 0 serves the
//     query-driving thread, slots 1.. the probe workers), mirroring the
//     QueryService's one-pool-per-worker sharding,
//
// and stamps out per-query (engine, scheduler) pairs with NewQuery. An
// executor is intended to be reused across many queries, but by at most
// one query-driving thread at a time: every driver binds reader slot 0,
// so two queries driven concurrently through one executor would race on
// the slot-0 NetworkReader/BufferPool (which are single-threaded). The
// QueryService keeps one executor per service worker for exactly this
// reason; benches and tests create one per sweep point.
//
// parallelism == 1 builds no pool: NewQuery rigs execute the identical
// turn schedule inline on the caller thread — the serial anchor of the
// differential suite.
#ifndef MCN_EXEC_EXPANSION_EXECUTOR_H_
#define MCN_EXEC_EXPANSION_EXECUTOR_H_

#include <memory>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/expand/engines.h"
#include "mcn/expand/probe_scheduler.h"
#include "mcn/expand/striped_fetch.h"
#include "mcn/graph/location.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::exec {

class ExpansionExecutor {
 public:
  /// `disk`/`files` describe a built network; `disk` must outlive the
  /// executor and is frozen read-only (BeginConcurrentReads) for its
  /// lifetime. `pool_frames_per_slot` sizes every slot's LRU pool (the
  /// paper's buffer size, like ServiceOptions::pool_frames_per_worker).
  static Result<std::unique_ptr<ExpansionExecutor>> Create(
      storage::DiskManager* disk, const net::NetworkFiles& files,
      int parallelism, size_t pool_frames_per_slot);

  /// Sharded flavor (DESIGN.md §8): every slot gets a routing
  /// shard::ShardedNetworkReader — a per-shard pool set over the shared
  /// read-only ShardedStorage — instead of one flat pool. With
  /// `split_budget_across_shards` (the default), `pool_frames_per_slot`
  /// is the slot's *total* budget, split evenly across the shard pools
  /// (shard::FramesPerShard, iso-memory with the flat layout); without
  /// it, every shard pool gets the full budget (the per-socket memory
  /// model). The turn schedule, and hence results and record-level I/O
  /// accounting, are identical to the flat executor for every K.
  static Result<std::unique_ptr<ExpansionExecutor>> Create(
      shard::ShardedStorage* storage, const shard::ShardedNetworkFiles& files,
      int parallelism, size_t pool_frames_per_slot,
      bool split_budget_across_shards = true);

  ~ExpansionExecutor();

  ExpansionExecutor(const ExpansionExecutor&) = delete;
  ExpansionExecutor& operator=(const ExpansionExecutor&) = delete;

  int parallelism() const { return parallelism_; }

  /// Engine + scheduler for one query at `q`. The scheduler borrows the
  /// engine and the executor; both rig members must be destroyed before
  /// the executor (engine first is fine — the scheduler only holds
  /// pointers).
  struct QueryRig {
    std::unique_ptr<expand::StripedCeaEngine> engine;
    std::unique_ptr<expand::ParallelProbeScheduler> scheduler;
  };
  Result<QueryRig> NewQuery(const graph::Location& q,
                            expand::ParallelProbeScheduler::Mode mode =
                                expand::ParallelProbeScheduler::Mode::
                                    kTurnBarrier);

  /// Clears every slot's buffer contents and statistics (cold cache).
  void ResetIoState();
  /// Hit/miss counters aggregated over all reader slots.
  storage::BufferPool::Stats PoolStats() const;
  /// Routed-fetch counters summed over all slots (zero for flat
  /// executors).
  shard::ShardedNetworkReader::ShardIoStats ShardIoStats() const;
  /// Clears every slot reader's routed-fetch counters (sharded mode;
  /// no-op on flat executors). Call only between queries.
  void ResetShardIoStats();
  /// Binds every slot reader's affinity for the local/remote fetch split
  /// (sharded mode; no-op on flat executors). Call between queries.
  void SetHomeShard(shard::ShardId home);

  const std::vector<std::unique_ptr<net::NetworkReader>>& readers() const {
    return readers_;
  }
  expand::ProbePool* probe_pool() { return probe_pool_.get(); }

 private:
  ExpansionExecutor(storage::DiskManager* disk,
                    shard::ShardedStorage* storage, int parallelism);

  Result<std::unique_ptr<ExpansionExecutor>> static Finish(
      std::unique_ptr<ExpansionExecutor> executor);

  storage::DiskManager* disk_;            ///< flat mode (null when sharded)
  shard::ShardedStorage* storage_;        ///< sharded mode (else null)
  int parallelism_;
  std::vector<std::unique_ptr<storage::BufferPool>> pools_;  ///< flat only
  std::vector<std::unique_ptr<net::NetworkReader>> readers_;
  std::unique_ptr<expand::ProbePool> probe_pool_;  ///< null when p == 1
};

}  // namespace mcn::exec

#endif  // MCN_EXEC_EXPANSION_EXECUTOR_H_
