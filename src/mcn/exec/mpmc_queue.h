// Bounded multi-producer/multi-consumer FIFO ring (Vyukov's algorithm).
// Each cell carries a sequence counter; producers and consumers claim cells
// with one CAS on their position counter and publish with a release store on
// the cell sequence, so push and pop never take a lock and different cells
// never contend. This is the work queue under the exec::ThreadPool
// (DESIGN.md §6); blocking (waiting for an item or for space) is layered on
// top by the pool, the queue itself only offers TryPush/TryPop.
#ifndef MCN_EXEC_MPMC_QUEUE_H_
#define MCN_EXEC_MPMC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "mcn/common/macros.h"

namespace mcn::exec {

/// Fixed-capacity lock-free MPMC queue. T must be movable; elements still in
/// the queue at destruction are destroyed (in FIFO order).
template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpmcQueue(size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        cells_(new Cell[capacity_]) {
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcQueue() {
    // Single-threaded by now: destroy unconsumed elements front to back.
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      if (cell.seq.load(std::memory_order_acquire) != pos + 1) break;
      std::launder(reinterpret_cast<T*>(cell.storage))->~T();
      ++pos;
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// False when the queue is full.
  bool TryPush(T&& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      auto dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell one lap back is still occupied: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    ::new (static_cast<void*>(cell->storage)) T(std::move(value));
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  bool TryPop(T& out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      auto dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell was not published yet: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T* item = std::launder(reinterpret_cast<T*>(cell->storage));
    out = std::move(*item);
    item->~T();
    cell->seq.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Approximate (racy) size; exact only when producers/consumers are quiet.
  size_t SizeApprox() const {
    size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  // One cache line per cell so neighbor cells never false-share; the hot
  // position counters get their own lines too.
  struct alignas(64) Cell {
    std::atomic<size_t> seq;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace mcn::exec

#endif  // MCN_EXEC_MPMC_QUEUE_H_
