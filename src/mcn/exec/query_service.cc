#include "mcn/exec/query_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/macros.h"
#include "mcn/exec/affinity.h"

namespace mcn::exec {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Status ValidateOptions(const ServiceOptions& options) {
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("QueryService: num_workers must be > 0");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("QueryService: queue_capacity must be > 0");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<QueryService>> QueryService::Create(
    storage::DiskManager* disk, const net::NetworkFiles& files,
    const ServiceOptions& options) {
  if (disk == nullptr) {
    return Status::InvalidArgument("QueryService: null disk");
  }
  MCN_RETURN_IF_ERROR(ValidateOptions(options));
  return std::unique_ptr<QueryService>(
      new QueryService(disk, nullptr, files, {}, options));
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    shard::ShardedStorage* storage, const shard::ShardedNetworkFiles& files,
    const ServiceOptions& options) {
  if (storage == nullptr) {
    return Status::InvalidArgument("QueryService: null sharded storage");
  }
  if (files.num_shards() != storage->num_shards()) {
    return Status::InvalidArgument(
        "QueryService: storage/files shard count mismatch");
  }
  MCN_RETURN_IF_ERROR(ValidateOptions(options));
  return std::unique_ptr<QueryService>(
      new QueryService(nullptr, storage, {}, files, options));
}

QueryService::QueryService(storage::DiskManager* disk,
                           shard::ShardedStorage* storage,
                           const net::NetworkFiles& files,
                           const shard::ShardedNetworkFiles& sharded_files,
                           const ServiceOptions& options)
    : disk_(disk),
      storage_(storage),
      files_(files),
      sharded_files_(sharded_files),
      opts_(options) {
  workers_.reserve(opts_.num_workers);
  for (int w = 0; w < opts_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    if (sharded()) {
      const size_t frames_per_shard =
          opts_.split_pool_across_shards
              ? shard::FramesPerShard(opts_.pool_frames_per_worker,
                                      storage_->num_shards())
              : opts_.pool_frames_per_worker;
      worker->reader = std::make_unique<shard::ShardedNetworkReader>(
          storage_, sharded_files_, frames_per_shard);
    } else {
      worker->pool = std::make_unique<storage::BufferPool>(
          disk_, opts_.pool_frames_per_worker);
      worker->reader =
          std::make_unique<net::NetworkReader>(files_, worker->pool.get());
    }
    workers_.push_back(std::move(worker));
  }
  // Freeze the shared storage read-only for the service's lifetime; the
  // storage layer DCHECKs any mutation from here on (DESIGN.md §6).
  if (sharded()) {
    storage_->BeginConcurrentReads();
  } else {
    disk_->BeginConcurrentReads();
  }
  StartGroups();
}

void QueryService::StartGroups() {
  // Shard-affine worker groups: one group per shard when the worker
  // budget allows, otherwise min(K, workers) groups serving the shards
  // round-robin (RouteGroup). Flat services get the single PR-2 group.
  const int num_groups =
      sharded() ? std::min(storage_->num_shards(), opts_.num_workers) : 1;
  groups_.resize(num_groups);
  int next_worker = 0;
  for (int g = 0; g < num_groups; ++g) {
    Group& group = groups_[g];
    group.shard = static_cast<shard::ShardId>(g);
    group.base = next_worker;
    group.count = opts_.num_workers / num_groups +
                  (g < opts_.num_workers % num_groups ? 1 : 0);
    next_worker += group.count;
    for (int w = group.base; w < group.base + group.count; ++w) {
      Worker& worker = *workers_[w];
      worker.home_shard = sharded() ? group.shard : shard::kInvalidShard;
      if (sharded()) {
        static_cast<shard::ShardedNetworkReader*>(worker.reader.get())
            ->set_home_shard(worker.home_shard);
      }
    }
    group.pool = std::make_unique<ThreadPool<Task>>(
        group.count, opts_.queue_capacity,
        [this, g](Task&& task, int local_worker) {
          Execute(std::move(task), groups_[g], local_worker);
        },
        [](Task&& task) {
          QueryResult discarded;
          discarded.status = Status::FailedPrecondition(
              "query discarded by non-draining shutdown");
          task.promise.set_value(std::move(discarded));
        });
  }
  MCN_CHECK(next_worker == opts_.num_workers);
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

QueryService::Group& QueryService::RouteGroup(
    const graph::Location& location) {
  if (groups_.size() == 1) return groups_[0];
  const shard::Partition& part = storage_->partition();
  shard::ShardId s = 0;
  if (location.is_node()) {
    if (location.node() < part.num_nodes()) s = part.of_node(location.node());
  } else if (location.edge().u < part.num_nodes()) {
    s = part.of_edge(location.edge());
  }
  return groups_[s % groups_.size()];
}

std::future<QueryResult> QueryService::Submit(QueryRequest request) {
  Task task;
  Group& group = RouteGroup(request.location);
  task.request = std::move(request);
  task.enqueue_time = std::chrono::steady_clock::now();
  std::future<QueryResult> future = task.promise.get_future();
  if (!group.pool->Submit(std::move(task))) {
    // Shutdown already began: resolve immediately instead of blocking.
    QueryResult rejected;
    rejected.status =
        Status::FailedPrecondition("QueryService is shut down");
    std::promise<QueryResult> promise;
    future = promise.get_future();
    promise.set_value(std::move(rejected));
  }
  return future;
}

void QueryService::Drain() {
  for (Group& group : groups_) group.pool->Drain();
}

void QueryService::Shutdown(bool drain) {
  if (shut_down_) return;
  for (Group& group : groups_) group.pool->Shutdown(drain);
  if (sharded()) {
    storage_->EndConcurrentReads();
  } else {
    disk_->EndConcurrentReads();
  }
  shut_down_ = true;
}

void QueryService::Execute(Task&& task, Group& group, int local_worker) {
  const int worker_index = group.base + local_worker;
  Worker& shard = *workers_[worker_index];
  if (opts_.pin_workers && !shard.pinned) {
    // Contiguous CPU range per group (the NUMA-node placeholder); a
    // worker executes on a fixed pool thread, so pinning on the first
    // task pins that thread for good. Best-effort by design.
    PinCurrentThreadToCpu(worker_index);
    shard.pinned = true;
  }
  QueryResult result = RunQuery(task.request, shard);
  result.stats.worker = worker_index;
  result.stats.shard =
      sharded() ? static_cast<int>(group.shard) : -1;
  result.stats.queue_seconds =
      SecondsSince(task.enqueue_time) - result.stats.exec_seconds;
  result.stats.stall_seconds =
      static_cast<double>(result.stats.buffer_misses) * opts_.io_latency_ms /
      1000.0;
  if (opts_.simulate_io_stalls && result.stats.stall_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(result.stats.stall_seconds));
  }
  result.stats.latency_seconds = SecondsSince(task.enqueue_time);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (result.status.ok()) {
      ++shard.completed;
    } else {
      ++shard.failed;
    }
    shard.latency_ms.push_back(result.stats.latency_seconds * 1e3);
    shard.buffer_misses += result.stats.buffer_misses;
    shard.buffer_accesses += result.stats.buffer_accesses;
    shard.cpu_seconds += result.stats.exec_seconds;
    shard.stall_seconds += result.stats.stall_seconds;
  }
  task.promise.set_value(std::move(result));
}

QueryResult QueryService::RunQuery(const QueryRequest& request,
                                   Worker& worker) {
  QueryResult result;
  result.kind = request.kind;
  result.result_hash = algo::kFnvOffsetBasis;

  const int num_costs =
      sharded() ? sharded_files_.num_costs : files_.num_costs;
  const bool needs_weights = request.kind != QueryKind::kSkyline;
  if (needs_weights &&
      static_cast<int>(request.weights.size()) != num_costs) {
    result.status = Status::InvalidArgument(
        "QueryRequest: weights size must equal the network's d");
    return result;
  }
  if (needs_weights && request.k <= 0) {
    result.status = Status::InvalidArgument("QueryRequest: k must be > 0");
    return result;
  }

  // Intra-query parallelism: 0 = classic serial path; 1 = inline turn
  // schedule over the worker's own reader; > 1 = pooled turns on the
  // worker's ExpansionExecutor (clamped to the service's configuration).
  int par = std::min(request.parallelism, opts_.per_query_parallelism);
  if (par > 1 && worker.expansion == nullptr) {
    // Built lazily on the first parallel request, so a service whose
    // clients never opt in pays no probe threads or extra pools. Safe
    // here: a worker runs one query at a time on its own thread.
    auto executor =
        sharded()
            ? ExpansionExecutor::Create(storage_, sharded_files_,
                                        opts_.per_query_parallelism,
                                        opts_.pool_frames_per_worker,
                                        opts_.split_pool_across_shards)
            : ExpansionExecutor::Create(disk_, files_,
                                        opts_.per_query_parallelism,
                                        opts_.pool_frames_per_worker);
    MCN_CHECK(executor.ok());
    auto built = std::move(executor).value();
    if (sharded()) built->SetHomeShard(worker.home_shard);
    // Published under the stats mutex: Snapshot samples the executor's
    // routed-fetch counters from other threads.
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.expansion = std::move(built);
  }
  const bool turn_mode = par >= 1;
  const bool pooled = par > 1;

  if (opts_.cold_cache_per_query) {
    worker.reader->ResetIoState();
    if (worker.expansion != nullptr) worker.expansion->ResetIoState();
  }
  auto io_now = [&]() -> storage::BufferPool::Stats {
    return pooled ? worker.expansion->PoolStats()
                  : worker.reader->PoolStats();
  };
  const storage::BufferPool::Stats before = io_now();

  Stopwatch watch;
  std::unique_ptr<expand::NnEngine> engine_holder;
  std::unique_ptr<expand::ParallelProbeScheduler> scheduler;
  if (pooled) {
    auto rig_or = worker.expansion->NewQuery(request.location);
    if (!rig_or.ok()) {
      result.status = rig_or.status();
      return result;
    }
    ExpansionExecutor::QueryRig rig = std::move(rig_or).value();
    engine_holder = std::move(rig.engine);
    scheduler = std::move(rig.scheduler);
  } else if (turn_mode) {
    // Inline turns need no thread-safe provider: the plain CEA engine
    // over the worker's reader runs the identical schedule (record
    // contents and pop order match the striped cache) without paying for
    // 64 stripes + single-flight machinery per query.
    auto engine_or = expand::CeaEngine::Create(worker.reader.get(),
                                               request.location);
    if (!engine_or.ok()) {
      result.status = engine_or.status();
      return result;
    }
    scheduler = std::make_unique<expand::ParallelProbeScheduler>(
        engine_or.value().get(), /*pool=*/nullptr, /*striped=*/nullptr);
    engine_holder = std::move(engine_or).value();
  } else {
    auto engine_or = expand::MakeEngine(request.engine, worker.reader.get(),
                                        request.location);
    if (!engine_or.ok()) {
      result.status = engine_or.status();
      return result;
    }
    engine_holder = std::move(engine_or).value();
  }
  expand::NnEngine* engine = engine_holder.get();
  algo::QueryOptions exec;
  exec.parallelism = par;
  exec.scheduler = scheduler.get();

  switch (request.kind) {
    case QueryKind::kSkyline: {
      algo::SkylineOptions sky_opts;
      sky_opts.exec = exec;
      algo::SkylineQuery query(engine, sky_opts);
      auto rows = query.ComputeAll();
      if (!rows.ok()) {
        result.status = rows.status();
        return result;
      }
      result.skyline = std::move(rows).value();
      break;
    }
    case QueryKind::kTopK: {
      algo::TopKOptions topk_opts;
      topk_opts.k = request.k;
      topk_opts.exec = exec;
      algo::TopKQuery query(engine, algo::WeightedSum(request.weights),
                            topk_opts);
      auto rows = query.Run();
      if (!rows.ok()) {
        result.status = rows.status();
        return result;
      }
      result.topk = std::move(rows).value();
      break;
    }
    case QueryKind::kIncrementalTopK: {
      algo::IncrementalTopK query(engine,
                                  algo::WeightedSum(request.weights),
                                  algo::ProbePolicy::kRoundRobin, exec);
      for (int i = 0; i < request.k; ++i) {
        auto next = query.NextBest();
        if (!next.ok()) {
          result.status = next.status();
          return result;
        }
        if (!next.value().has_value()) break;  // component exhausted
        result.topk.push_back(*std::move(next).value());
      }
      break;
    }
  }
  result.stats.exec_seconds = watch.ElapsedSeconds();

  const storage::BufferPool::Stats after = io_now();
  result.stats.buffer_misses = after.misses - before.misses;
  result.stats.buffer_accesses = after.accesses() - before.accesses();

  // Hashed outside the measured window, like the bench harness.
  result.result_hash = request.kind == QueryKind::kSkyline
                           ? algo::HashResult(result.skyline)
                           : algo::HashResult(result.topk);
  return result;
}

ServiceStats QueryService::Snapshot() const {
  ServiceStats stats;
  std::vector<double> samples;
  if (sharded()) {
    stats.per_shard.resize(storage_->num_shards());
    for (int s = 0; s < storage_->num_shards(); ++s) {
      stats.per_shard[s].shard = s;
    }
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    const auto& worker = workers_[w];
    uint64_t completed, misses;
    const ExpansionExecutor* expansion;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      completed = worker->completed;
      misses = worker->buffer_misses;
      expansion = worker->expansion.get();  // published under mu
      stats.completed += worker->completed;
      stats.failed += worker->failed;
      stats.buffer_misses += worker->buffer_misses;
      stats.buffer_accesses += worker->buffer_accesses;
      stats.cpu_seconds += worker->cpu_seconds;
      stats.stall_seconds += worker->stall_seconds;
      samples.insert(samples.end(), worker->latency_ms.begin(),
                     worker->latency_ms.end());
    }
    if (sharded() && worker->home_shard != shard::kInvalidShard) {
      ShardServiceStats& row = stats.per_shard[worker->home_shard];
      ++row.workers;
      row.completed += completed;
      row.buffer_misses += misses;
      // Routed-fetch counters are relaxed atomics on the reader, safe to
      // sample while the worker keeps executing.
      auto io = static_cast<const shard::ShardedNetworkReader*>(
                    worker->reader.get())
                    ->shard_io_stats();
      if (expansion != nullptr) {
        const auto pooled_io = expansion->ShardIoStats();
        io.local_fetches += pooled_io.local_fetches;
        io.remote_fetches += pooled_io.remote_fetches;
      }
      row.local_fetches += io.local_fetches;
      row.remote_fetches += io.remote_fetches;
    }
  }
  stats.wall_seconds = uptime_.ElapsedSeconds();
  if (stats.wall_seconds > 0) {
    stats.qps = static_cast<double>(stats.completed + stats.failed) /
                stats.wall_seconds;
  }
  stats.ComputePercentiles(samples);
  return stats;
}

void QueryService::ResetStats() {
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->completed = 0;
    worker->failed = 0;
    worker->buffer_misses = 0;
    worker->buffer_accesses = 0;
    worker->cpu_seconds = 0;
    worker->stall_seconds = 0;
    worker->latency_ms.clear();
    if (sharded()) {
      static_cast<shard::ShardedNetworkReader*>(worker->reader.get())
          ->ResetShardIoStats();
      if (worker->expansion != nullptr) {
        worker->expansion->ResetShardIoStats();
      }
    }
  }
  uptime_.Restart();
}

}  // namespace mcn::exec
