#include "mcn/exec/query_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "mcn/algo/constraints.h"
#include "mcn/algo/result_hash.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/api/wire.h"
#include "mcn/common/macros.h"
#include "mcn/exec/affinity.h"
#include "mcn/exec/result_cache.h"

namespace mcn::exec {

const char* StallModelName(StallModel model) {
  switch (model) {
    case StallModel::kSerial:
      return "serial";
    case StallModel::kOverlapped:
      return "overlapped";
  }
  return "unknown";
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Status ValidateOptions(const ServiceOptions& options) {
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("QueryService: num_workers must be > 0");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("QueryService: queue_capacity must be > 0");
  }
  if (options.max_sessions == 0) {
    return Status::InvalidArgument("QueryService: max_sessions must be > 0");
  }
  return Status::OK();
}

/// A future that is already resolved with a failed result.
std::future<QueryResult> ReadyFailure(Status status) {
  QueryResult failed;
  failed.status = std::move(status);
  failed.result_hash = algo::kFnvOffsetBasis;
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  promise.set_value(std::move(failed));
  return future;
}

}  // namespace

api::QuerySpec QueryRequest::ToSpec() const {
  api::QuerySpec spec;
  spec.kind = kind;
  spec.location = location;
  spec.engine = engine;
  spec.parallelism = parallelism;
  spec.k = k;
  // The legacy path ignored weights on skyline requests; keep that (a
  // spec carrying weights on a skyline is a validation error).
  if (kind != QueryKind::kSkyline) spec.preference.weights = weights;
  return spec;
}

namespace {

/// Everything but the row vectors.
api::QueryResponse ResponseScalars(const QueryResult& result) {
  api::QueryResponse response;
  response.status = result.status;
  response.kind = result.kind;
  response.result_hash = result.result_hash;
  response.buffer_misses = result.stats.buffer_misses;
  response.buffer_accesses = result.stats.buffer_accesses;
  response.exec_seconds = result.stats.exec_seconds;
  response.exhausted = result.exhausted;
  return response;
}

}  // namespace

api::QueryResponse QueryResult::ToResponse() const& {
  api::QueryResponse response = ResponseScalars(*this);
  response.skyline = skyline;
  response.topk = topk;
  return response;
}

api::QueryResponse QueryResult::ToResponse() && {
  api::QueryResponse response = ResponseScalars(*this);
  response.skyline = std::move(skyline);
  response.topk = std::move(topk);
  return response;
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    storage::DiskManager* disk, const net::NetworkFiles& files,
    const ServiceOptions& options) {
  if (disk == nullptr) {
    return Status::InvalidArgument("QueryService: null disk");
  }
  MCN_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.enable_prune_index && files.landmark.present()) {
    // Surface a corrupt/mismatched index as a Create error, not a crash
    // in the constructor (which builds one reader per worker).
    net::LandmarkIndexReader probe(disk, files.landmark);
    MCN_RETURN_IF_ERROR(probe.Validate());
  }
  return std::unique_ptr<QueryService>(
      new QueryService(disk, nullptr, files, {}, options));
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    shard::ShardedStorage* storage, const shard::ShardedNetworkFiles& files,
    const ServiceOptions& options) {
  if (storage == nullptr) {
    return Status::InvalidArgument("QueryService: null sharded storage");
  }
  if (files.num_shards() != storage->num_shards()) {
    return Status::InvalidArgument(
        "QueryService: storage/files shard count mismatch");
  }
  MCN_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.enable_prune_index && files.landmark.present()) {
    // The global index row file lives on shard 0's disk (DESIGN.md §12).
    net::LandmarkIndexReader probe(storage->disk(0), files.landmark);
    MCN_RETURN_IF_ERROR(probe.Validate());
  }
  return std::unique_ptr<QueryService>(
      new QueryService(nullptr, storage, {}, files, options));
}

QueryService::QueryService(storage::DiskManager* disk,
                           shard::ShardedStorage* storage,
                           const net::NetworkFiles& files,
                           const shard::ShardedNetworkFiles& sharded_files,
                           const ServiceOptions& options)
    : disk_(disk),
      storage_(storage),
      files_(files),
      sharded_files_(sharded_files),
      opts_(options),
      registry_(options.num_workers) {
  // Resolve every instrument once; workers then record lock-free with
  // slot = worker index (exact per-worker slots — the registry rounds the
  // count up to a power of two, never down below num_workers <= 64).
  namespace mn = metric_names;
  metrics_.completed = registry_.GetCounter(mn::kCompleted);
  metrics_.failed = registry_.GetCounter(mn::kFailed);
  metrics_.rejected = registry_.GetCounter(mn::kRejected);
  metrics_.timed_out = registry_.GetCounter(mn::kTimedOut);
  metrics_.cancelled = registry_.GetCounter(mn::kCancelled);
  metrics_.session_batches = registry_.GetCounter(mn::kSessionBatches);
  metrics_.buffer_misses = registry_.GetCounter(mn::kBufferMisses);
  metrics_.buffer_accesses = registry_.GetCounter(mn::kBufferAccesses);
  metrics_.prune_checked = registry_.GetCounter(mn::kPruneChecked);
  metrics_.prune_cut = registry_.GetCounter(mn::kPruneCut);
  metrics_.cache_hit = registry_.GetCounter(mn::kCacheHit);
  metrics_.cache_miss = registry_.GetCounter(mn::kCacheMiss);
  metrics_.cache_coalesced = registry_.GetCounter(mn::kCacheCoalesced);
  metrics_.overlapped_misses = registry_.GetCounter(mn::kOverlappedMisses);
  metrics_.cpu_micros = registry_.GetCounter(mn::kCpuMicros);
  metrics_.stall_micros = registry_.GetCounter(mn::kStallMicros);
  metrics_.queue_micros = registry_.GetCounter(mn::kQueueMicros);
  metrics_.latency_us = registry_.GetHistogram(mn::kLatencyUs);
  const int num_shards = storage != nullptr ? storage->num_shards() : 0;
  for (int s = 0; s < num_shards; ++s) {
    metrics_.shard_completed.push_back(
        registry_.GetCounter(mn::Shard(s, "completed")));
    metrics_.shard_misses.push_back(
        registry_.GetCounter(mn::Shard(s, "buffer_misses")));
  }
  const net::LandmarkIndexFiles& landmark_files =
      storage != nullptr ? sharded_files_.landmark : files_.landmark;
  workers_.reserve(opts_.num_workers);
  for (int w = 0; w < opts_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->reader = MakeReader(&worker->pool);
    if (opts_.enable_prune_index && landmark_files.present()) {
      // Create() validated the index file already; a per-worker reader
      // over the same pages cannot fail differently.
      worker->landmark = std::make_unique<net::LandmarkIndexReader>(
          storage != nullptr ? storage_->disk(0) : disk_, landmark_files);
      MCN_CHECK(worker->landmark->Validate().ok());
    }
    workers_.push_back(std::move(worker));
  }
  if (opts_.result_cache_entries > 0) {
    result_cache_ = std::make_unique<ResultCache>(opts_.result_cache_entries);
  }
  // Freeze the shared storage read-only for the service's lifetime; the
  // storage layer DCHECKs any mutation from here on (DESIGN.md §6).
  if (sharded()) {
    storage_->BeginConcurrentReads();
  } else {
    disk_->BeginConcurrentReads();
  }
  StartGroups();
}

void QueryService::StartGroups() {
  // Shard-affine worker groups: one group per shard when the worker
  // budget allows, otherwise min(K, workers) groups serving the shards
  // round-robin (RouteGroupIndex). Flat services get the single PR-2
  // group.
  const int num_groups =
      sharded() ? std::min(storage_->num_shards(), opts_.num_workers) : 1;
  groups_.resize(num_groups);
  int next_worker = 0;
  for (int g = 0; g < num_groups; ++g) {
    Group& group = groups_[g];
    group.shard = static_cast<shard::ShardId>(g);
    group.base = next_worker;
    group.count = opts_.num_workers / num_groups +
                  (g < opts_.num_workers % num_groups ? 1 : 0);
    next_worker += group.count;
    for (int w = group.base; w < group.base + group.count; ++w) {
      Worker& worker = *workers_[w];
      worker.home_shard = sharded() ? group.shard : shard::kInvalidShard;
      if (sharded()) {
        static_cast<shard::ShardedNetworkReader*>(worker.reader.get())
            ->set_home_shard(worker.home_shard);
      }
    }
    group.inflight = std::make_unique<std::atomic<int64_t>>(0);
    group.pool = std::make_unique<ThreadPool<Task>>(
        group.count, opts_.queue_capacity,
        [this, g](Task&& task, int local_worker) {
          Execute(std::move(task), groups_[g], local_worker);
        },
        [this, g](Task&& task) {
          if (task.session != nullptr) {
            task.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
          }
          if (opts_.max_inflight > 0) {
            groups_[g].inflight->fetch_sub(1, std::memory_order_acq_rel);
          }
          QueryResult discarded;
          discarded.status = Status::FailedPrecondition(
              "query discarded by non-draining shutdown");
          // A flighted task that never runs must still settle its
          // coalesced waiters (shared fate, never a hang).
          AbandonCacheFlight(task, discarded.status);
          task.promise.set_value(std::move(discarded));
        });
  }
  MCN_CHECK(next_worker == opts_.num_workers);
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

std::unique_ptr<net::NetworkReader> QueryService::MakeReader(
    std::unique_ptr<storage::BufferPool>* flat_pool) const {
  // One construction path for worker readers AND session readers: the
  // session-I/O-parity contract (a stream's logical I/O matches a local
  // run over an equal-capacity pool) holds exactly because both get the
  // same pool budget and split policy.
  if (sharded()) {
    const std::vector<size_t> shard_frames =
        opts_.split_pool_across_shards
            ? shard::SplitFramesAcrossShards(opts_.pool_frames_per_worker,
                                             storage_->num_shards())
            : std::vector<size_t>(
                  static_cast<size_t>(storage_->num_shards()),
                  opts_.pool_frames_per_worker);
    return std::make_unique<shard::ShardedNetworkReader>(
        storage_, sharded_files_, shard_frames);
  }
  *flat_pool = std::make_unique<storage::BufferPool>(
      disk_, opts_.pool_frames_per_worker);
  return std::make_unique<net::NetworkReader>(files_, flat_pool->get());
}

int QueryService::RouteGroupIndex(const graph::Location& location) const {
  if (groups_.size() == 1) return 0;
  const shard::Partition& part = storage_->partition();
  shard::ShardId s = 0;
  if (location.is_node()) {
    if (location.node() < part.num_nodes()) s = part.of_node(location.node());
  } else if (location.edge().u < part.num_nodes()) {
    s = part.of_edge(location.edge());
  }
  return static_cast<int>(s % groups_.size());
}

void QueryService::AbandonCacheFlight(Task& task, const Status& status) {
  if (task.cache_flight == nullptr) return;
  MCN_DCHECK(result_cache_ != nullptr);
  QueryResult failed;
  failed.status = status;
  failed.result_hash = algo::kFnvOffsetBasis;
  result_cache_->Complete(task.cache_flight, task.cache_key,
                          task.cache_epoch, failed);
  task.cache_flight = nullptr;
}

std::future<QueryResult> QueryService::Enqueue(Task&& task, Group& group) {
  std::future<QueryResult> future = task.promise.get_future();
  if (opts_.max_inflight > 0) {
    // Admission control (DESIGN.md §10): never park the caller. The
    // in-flight ticket is taken optimistically and returned on any
    // rejection; Execute / the discard handler return it at completion.
    auto& inflight = *group.inflight;
    if (inflight.fetch_add(1, std::memory_order_acq_rel) >=
        static_cast<int64_t>(opts_.max_inflight)) {
      inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (task.session != nullptr) {
        task.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
      }
      metrics_.rejected->Add(1);
      Status shed = Status::ResourceExhausted(
          "QueryService: group over max_inflight (" +
          std::to_string(opts_.max_inflight) + "), load shed");
      AbandonCacheFlight(task, shed);
      return ReadyFailure(std::move(shed));
    }
    const auto outcome = group.pool->TrySubmit(std::move(task));
    if (outcome == ThreadPool<Task>::TryResult::kAccepted) return future;
    inflight.fetch_sub(1, std::memory_order_acq_rel);
    // TrySubmit left the task unconsumed: a session batch still owns its
    // ticket — return it before resolving.
    if (task.session != nullptr) {
      task.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (outcome == ThreadPool<Task>::TryResult::kFull) {
      metrics_.rejected->Add(1);
      Status shed = Status::ResourceExhausted(
          "QueryService: group queue full, load shed");
      AbandonCacheFlight(task, shed);
      return ReadyFailure(std::move(shed));
    }
    Status down = Status::FailedPrecondition("QueryService is shut down");
    AbandonCacheFlight(task, down);
    return ReadyFailure(std::move(down));
  }
  if (!group.pool->Submit(std::move(task))) {
    // Shutdown already began: Submit did not consume the task, so a
    // session batch still owns its inflight ticket — return it, and
    // resolve immediately instead of blocking.
    if (task.session != nullptr) {
      task.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    Status down = Status::FailedPrecondition("QueryService is shut down");
    AbandonCacheFlight(task, down);
    return ReadyFailure(std::move(down));
  }
  return future;
}

std::string QueryService::CanonicalCacheKey(const api::QuerySpec& spec,
                                            uint64_t epoch) {
  // The canonical kExecute wire frame of the spec with execution-strategy
  // fields normalized away: the determinism contract (DESIGN.md §7) makes
  // results byte-identical across engine flavor and parallelism, and a
  // deadline changes when a query fails, never what it returns.
  api::WireRequest request;
  request.type = api::MsgType::kExecute;
  request.spec = spec;
  request.spec.engine = expand::EngineKind::kCea;
  request.spec.parallelism = 0;
  request.spec.deadline_ms = 0;
  std::string key = api::EncodeRequestFrame(request);
  for (int shift = 0; shift < 64; shift += 8) {
    key.push_back(static_cast<char>((epoch >> shift) & 0xff));
  }
  return key;
}

std::future<QueryResult> QueryService::Submit(api::QuerySpec spec) {
  Task task;
  Group& group = groups_[RouteGroupIndex(spec.location)];
  // Adopt the caller's installed trace context (the wire server traces
  // decode/encode under the same query id) or mint a fresh one.
  task.trace = obs::CurrentTraceContext();
  if (!task.trace.active()) task.trace = obs::StartQueryTrace();
  obs::RecordInstant(task.trace, obs::EventType::kAdmission,
                     static_cast<uint64_t>(&group - groups_.data()));
  task.enqueue_time = std::chrono::steady_clock::now();
  if (spec.deadline_ms > 0) {
    // The deadline covers the full request lifetime from admission: queue
    // wait counts against it, so an overloaded service times the query out
    // instead of running it long after the client gave up.
    task.has_deadline = true;
    task.deadline =
        task.enqueue_time + std::chrono::milliseconds(spec.deadline_ms);
  }
  task.spec = std::move(spec);
  if (result_cache_ != nullptr) {
    // Cross-query sharing (DESIGN.md §13). Hits and coalesced waiters
    // resolve without entering a queue (and without counting in
    // completed/failed — like rejected, they were never admitted); a miss
    // rides the task as the single-flight owner.
    const uint64_t epoch = network_epoch();
    std::string key = CanonicalCacheKey(task.spec, epoch);
    ResultCache::Lookup lookup = result_cache_->Acquire(key, epoch);
    switch (lookup.outcome) {
      case ResultCache::Lookup::Outcome::kHit: {
        metrics_.cache_hit->Add(1);
        std::promise<QueryResult> ready;
        std::future<QueryResult> future = ready.get_future();
        ready.set_value(std::move(lookup.cached));
        return future;
      }
      case ResultCache::Lookup::Outcome::kCoalesced: {
        metrics_.cache_coalesced->Add(1);
        if (!task.has_deadline) return std::move(lookup.future);
        // A coalesced waiter never enters the queue where deadlines are
        // enforced, and deadline_ms is normalized out of the cache key —
        // so enforce this waiter's own deadline when its future is
        // consumed instead of inheriting the owning flight's unbounded
        // wait. Deferred: runs on the consumer's get()/wait() call.
        return std::async(
            std::launch::deferred,
            [fut = std::move(lookup.future),
             deadline = task.deadline]() mutable -> QueryResult {
              if (fut.wait_until(deadline) == std::future_status::timeout) {
                QueryResult timed_out;
                timed_out.status = Status::DeadlineExceeded(
                    "deadline exceeded while coalesced on an identical "
                    "in-flight query");
                return timed_out;
              }
              return fut.get();
            });
      }
      case ResultCache::Lookup::Outcome::kMiss:
        metrics_.cache_miss->Add(1);
        task.cache_flight = std::move(lookup.flight);
        task.cache_key = std::move(key);
        task.cache_epoch = epoch;
        break;
    }
  }
  return Enqueue(std::move(task), group);
}

std::future<QueryResult> QueryService::Submit(QueryRequest request) {
  return Submit(request.ToSpec());
}

Result<SessionId> QueryService::OpenSession(api::QuerySpec spec) {
  if (spec.kind != QueryKind::kIncrementalTopK) {
    return Status::InvalidArgument(
        "OpenSession: spec kind must be incremental top-k");
  }
  MCN_RETURN_IF_ERROR(spec.Validate(num_costs()));
  auto session = std::make_shared<Session>();
  session->group = RouteGroupIndex(spec.location);
  session->spec = std::move(spec);
  session->last_used = std::chrono::steady_clock::now();
  MutexLock lock(&sessions_mu_);
  if (shut_down_) {
    return Status::FailedPrecondition("QueryService is shut down");
  }
  // Lazy idle-timeout eviction runs on *every* open (not only when the
  // table is full), so abandoned sessions release their pools/engines
  // even on a service that never approaches max_sessions.
  EvictExpiredSessions();
  if (sessions_.size() >= opts_.max_sessions && !MakeSessionRoom()) {
    return Status::FailedPrecondition(
        "OpenSession: session table full (" +
        std::to_string(opts_.max_sessions) + " busy sessions)");
  }
  session->id = next_session_id_++;
  sessions_.emplace(session->id, session);
  return session->id;
}

void QueryService::EvictExpiredSessions() {
  if (opts_.session_idle_seconds <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const Session& s = *it->second;
    const bool idle = s.inflight.load(std::memory_order_acquire) == 0;
    if (idle && std::chrono::duration<double>(now - s.last_used).count() >
                    opts_.session_idle_seconds) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool QueryService::MakeSessionRoom() {
  // Evict the least-recently-used idle session.
  auto victim = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->second->inflight.load(std::memory_order_acquire) != 0) continue;
    if (victim == sessions_.end() ||
        it->second->last_used < victim->second->last_used) {
      victim = it;
    }
  }
  if (victim == sessions_.end()) return false;
  sessions_.erase(victim);
  return true;
}

std::future<QueryResult> QueryService::SessionNext(SessionId id, int n) {
  std::shared_ptr<Session> session;
  {
    MutexLock lock(&sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return ReadyFailure(Status::NotFound(
          "SessionNext: unknown or evicted session " + std::to_string(id)));
    }
    session = it->second;
    session->inflight.fetch_add(1, std::memory_order_acq_rel);
    session->last_used = std::chrono::steady_clock::now();
  }
  Task task;
  Group& group = groups_[session->group];
  task.batch_n = n;
  task.trace = obs::CurrentTraceContext();
  if (!task.trace.active()) task.trace = obs::StartQueryTrace();
  obs::RecordInstant(task.trace, obs::EventType::kAdmission,
                     static_cast<uint64_t>(session->group));
  task.enqueue_time = std::chrono::steady_clock::now();
  if (session->spec.deadline_ms > 0) {
    // A session's deadline applies per batch, re-anchored at each pull.
    task.has_deadline = true;
    task.deadline = task.enqueue_time +
                    std::chrono::milliseconds(session->spec.deadline_ms);
  }
  task.session = std::move(session);
  return Enqueue(std::move(task), group);
}

Status QueryService::CloseSession(SessionId id) {
  MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("CloseSession: unknown session " +
                            std::to_string(id));
  }
  // An in-flight batch holds its own shared_ptr and finishes normally.
  sessions_.erase(it);
  return Status::OK();
}

size_t QueryService::num_open_sessions() const {
  MutexLock lock(&sessions_mu_);
  return sessions_.size();
}

void QueryService::Drain() {
  for (Group& group : groups_) group.pool->Drain();
}

void QueryService::Shutdown(bool drain) {
  {
    MutexLock lock(&sessions_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  for (Group& group : groups_) group.pool->Shutdown(drain);
  {
    // Drop the streams (their pools read the shared storage) before the
    // read-only freeze is lifted.
    MutexLock lock(&sessions_mu_);
    sessions_.clear();
  }
  if (sharded()) {
    storage_->EndConcurrentReads();
  } else {
    disk_->EndConcurrentReads();
  }
}

void QueryService::Execute(Task&& task, Group& group, int local_worker) {
  const int worker_index = group.base + local_worker;
  Worker& shard = *workers_[worker_index];
  if (opts_.pin_workers && !shard.pinned) {
    // Contiguous CPU range per group (the NUMA-node placeholder); a
    // worker executes on a fixed pool thread, so pinning on the first
    // task pins that thread for good. Best-effort by design.
    PinCurrentThreadToCpu(worker_index);
    shard.pinned = true;
  }
  const bool is_session = task.session != nullptr;
  // Install the query's trace identity for everything this worker (and
  // the probe pool it may fan out to) does on its behalf.
  const obs::TraceContextScope trace_scope(task.trace);
  obs::RecordSpanSince(task.trace, obs::EventType::kQueueWait,
                       task.enqueue_time,
                       static_cast<uint64_t>(worker_index));
  QueryResult result;
  if (task.has_deadline &&
      std::chrono::steady_clock::now() >= task.deadline) {
    // Expired while queued: resolve without executing — the whole point of
    // a deadline under overload (DESIGN.md §10).
    result.status = Status::DeadlineExceeded(
        "query deadline expired before execution");
    result.kind =
        is_session ? QueryKind::kIncrementalTopK : task.spec.kind;
    result.result_hash = algo::kFnvOffsetBasis;
  } else {
    CancelToken token;
    if (task.has_deadline) token.ArmDeadline(task.deadline);
    const CancelToken* cancel = task.has_deadline ? &token : nullptr;
    obs::TraceSpan exec_span(
        obs::EventType::kExec,
        static_cast<uint64_t>(is_session ? QueryKind::kIncrementalTopK
                                         : task.spec.kind));
    result = is_session
                 ? RunSessionBatch(*task.session, task.batch_n, cancel)
                 : RunQuery(task.spec, shard, cancel);
  }
  if (is_session) {
    obs::RecordInstant(task.trace, obs::EventType::kSessionBatch,
                       static_cast<uint64_t>(task.batch_n));
  }
  result.stats.worker = worker_index;
  result.stats.shard =
      sharded() ? static_cast<int>(group.shard) : -1;
  // exec_seconds excludes any stall already slept at turn barriers, so
  // subtract both shares or the queue wait would absorb the slept time.
  result.stats.queue_seconds = SecondsSince(task.enqueue_time) -
                               result.stats.exec_seconds -
                               result.stats.stall_slept_seconds;
  // Modeled I/O charge per the query's effective stall model (DESIGN.md
  // §13): the serial per-miss sum, or the overlapped per-turn-max charge
  // RunQuery computed for turn-mode queries.
  const bool overlapped =
      result.stats.stall_model == StallModel::kOverlapped;
  result.stats.stall_seconds =
      static_cast<double>(overlapped ? result.stats.overlapped_misses
                                     : result.stats.buffer_misses) *
      opts_.io_latency_ms / 1000.0;
  if (opts_.simulate_io_stalls) {
    // The overlapped model already slept per turn at the barriers; only
    // the residual (serial-charged seeding misses, rounding) is left.
    const double residual =
        result.stats.stall_seconds - result.stats.stall_slept_seconds;
    if (residual > 0) {
      const auto stall_start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::duration<double>(residual));
      obs::RecordSpanSince(task.trace, obs::EventType::kStall, stall_start,
                           overlapped ? result.stats.overlapped_misses
                                      : result.stats.buffer_misses);
    }
  }
  result.stats.latency_seconds = SecondsSince(task.enqueue_time);
  // The whole-request span, admission -> completion (encloses the queue
  // wait and exec spans at equal start timestamp).
  obs::RecordSpanSince(task.trace, obs::EventType::kQuery, task.enqueue_time,
                       static_cast<uint64_t>(result.kind));
  // Service aggregation: shared lock-free instruments, slot = worker
  // index — no mutex, no cross-worker cache-line traffic (DESIGN.md §11).
  const int slot = worker_index;
  if (result.status.ok()) {
    metrics_.completed->Add(1, slot);
    if (is_session) metrics_.session_batches->Add(1, slot);
    if (sharded()) metrics_.shard_completed[group.shard]->Add(1, slot);
  } else {
    metrics_.failed->Add(1, slot);
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      metrics_.timed_out->Add(1, slot);
    } else if (result.status.code() == StatusCode::kCancelled) {
      metrics_.cancelled->Add(1, slot);
    }
  }
  metrics_.latency_us->Record(
      static_cast<uint64_t>(result.stats.latency_seconds * 1e6), slot);
  metrics_.buffer_misses->Add(result.stats.buffer_misses, slot);
  metrics_.buffer_accesses->Add(result.stats.buffer_accesses, slot);
  if (overlapped) {
    metrics_.overlapped_misses->Add(result.stats.overlapped_misses, slot);
  }
  if (result.stats.prune_checked > 0) {
    metrics_.prune_checked->Add(result.stats.prune_checked, slot);
    metrics_.prune_cut->Add(result.stats.prune_cut, slot);
    obs::RecordInstant(task.trace, obs::EventType::kProbePrune,
                       result.stats.prune_cut, result.stats.prune_checked);
  }
  metrics_.cpu_micros->Add(
      static_cast<uint64_t>(result.stats.exec_seconds * 1e6), slot);
  metrics_.stall_micros->Add(
      static_cast<uint64_t>(result.stats.stall_seconds * 1e6), slot);
  metrics_.queue_micros->Add(
      static_cast<uint64_t>(std::max(result.stats.queue_seconds, 0.0) * 1e6),
      slot);
  if (sharded()) {
    metrics_.shard_misses[group.shard]->Add(result.stats.buffer_misses, slot);
  }
  if (opts_.flight_recorder != nullptr) {
    obs::QueryDigest digest;
    digest.trace_query_id = task.trace.query_id;
    digest.kind = is_session ? "session"
                             : api::QueryKindName(task.spec.kind);
    digest.worker = worker_index;
    digest.shard = result.stats.shard;
    digest.status = std::string(StatusCodeToString(result.status.code()));
    digest.session_batch = is_session;
    digest.queue_ms = result.stats.queue_seconds * 1e3;
    digest.exec_ms = result.stats.exec_seconds * 1e3;
    digest.stall_ms = result.stats.stall_seconds * 1e3;
    digest.latency_ms = result.stats.latency_seconds * 1e3;
    digest.buffer_misses = result.stats.buffer_misses;
    digest.buffer_accesses = result.stats.buffer_accesses;
    digest.result_hash = result.result_hash;
    // The spec as a replayable kExecute wire frame. A session batch is
    // approximated as a one-shot incremental pull of this batch's size —
    // the closest stateless reproduction of the stream position.
    api::WireRequest replay;
    replay.type = api::MsgType::kExecute;
    replay.spec = is_session ? task.session->spec : task.spec;
    if (is_session) replay.spec.k = task.batch_n;
    digest.spec_frame_hex = obs::ToHex(api::EncodeRequestFrame(replay));
    opts_.flight_recorder->Record(std::move(digest));
  }
  if (is_session) {
    // A batch is "in flight" for eviction purposes until its completion is
    // client-visible — which includes the modeled I/O stall slept above.
    // Returning the ticket any earlier (the old code did, before the
    // stall) leaves the session evictable with an aging timestamp while
    // the client is still blocked on this very batch: a stall longer than
    // session_idle_seconds let the lazy timeout sweep reclaim an actively
    // streamed session. So: refresh last_used first, then return the
    // ticket — the eviction window reopens only with a fresh timestamp.
    {
      MutexLock lock(&sessions_mu_);
      task.session->last_used = std::chrono::steady_clock::now();
    }
    task.session->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (task.cache_flight != nullptr) {
    // Publish before resolving the owner's promise: waiters and the store
    // are settled by the time any client sees the result. Failures (and
    // stale epochs) are not stored; waiters share the flight's fate.
    result_cache_->Complete(task.cache_flight, task.cache_key,
                            task.cache_epoch, result);
  }
  task.promise.set_value(std::move(result));
  if (opts_.max_inflight > 0) {
    // Return the admission ticket last: the query is no longer in flight.
    group.inflight->fetch_sub(1, std::memory_order_acq_rel);
  }
}

QueryResult QueryService::RunSessionBatch(Session& session, int n,
                                          const CancelToken* cancel) {
  QueryResult result;
  result.kind = QueryKind::kIncrementalTopK;
  result.result_hash = algo::kFnvOffsetBasis;
  if (n < 0) {
    result.status =
        Status::InvalidArgument("SessionNext: batch size must be >= 0");
    return result;
  }
  // One batch at a time per session; concurrent SessionNext calls on the
  // same id serialize here (each on some worker of the home group).
  MutexLock lock(&session.mu);
  Stopwatch watch;
  if (session.reader == nullptr) {
    // First batch: build the session's private reader set (no I/O yet —
    // pools start empty) and pin it for the stream's lifetime.
    session.reader = MakeReader(&session.pool);
    if (sharded()) {
      static_cast<shard::ShardedNetworkReader*>(session.reader.get())
          ->set_home_shard(groups_[session.group].shard);
    }
  }
  const storage::BufferPool::Stats before = session.reader->PoolStats();
  if (session.engine == nullptr) {
    // Engine construction does I/O (expansion seeding), charged to this
    // first batch — the same accounting as a local run that builds its
    // iterator and pulls, which keeps session logical I/O comparable to
    // a fresh IncrementalTopK over an equal-capacity pool. The engine
    // stays warm across batches — what distinguishes a session from
    // re-running "first k" queries.
    auto engine = expand::MakeEngine(session.spec.engine,
                                     session.reader.get(),
                                     session.spec.location);
    if (!engine.ok()) {
      result.status = engine.status();
      return result;
    }
    session.engine = std::move(engine).value();
    session.query = std::make_unique<algo::IncrementalTopK>(
        session.engine.get(),
        algo::WeightedSum(session.spec.preference.weights));
  }
  // Pull until n rows pass the caps (streaming constraint semantics: a
  // constrained batch still fills up, DESIGN.md §9) or the component is
  // exhausted.
  const auto& constraints = session.spec.preference.constraints;
  // The token lives on this worker's stack; install it for the batch only
  // — the engine outlives it across batches.
  session.engine->SetCancelToken(cancel);
  auto batch = session.query->NextBatch(
      n, [&constraints](const algo::TopKEntry& row) {
        return algo::PassesCaps(constraints, row);
      });
  session.engine->SetCancelToken(nullptr);
  if (!batch.ok()) {
    result.status = batch.status();
    return result;
  }
  result.topk = std::move(batch).value();
  result.exhausted = session.query->exhausted();
  result.stats.exec_seconds = watch.ElapsedSeconds();
  const storage::BufferPool::Stats after = session.reader->PoolStats();
  result.stats.buffer_misses = after.misses - before.misses;
  result.stats.buffer_accesses = after.accesses() - before.accesses();
  result.result_hash = algo::HashResult(result.topk);
  return result;
}

QueryResult QueryService::RunQuery(const api::QuerySpec& spec,
                                   Worker& worker,
                                   const CancelToken* cancel) {
  QueryResult result;
  result.kind = spec.kind;
  result.result_hash = algo::kFnvOffsetBasis;

  // Full semantic validation on the executing worker: malformed specs —
  // wrong-size/negative weights, bad k, bad constraints — surface as an
  // error result (rejectable over the wire), never a CHECK crash.
  Status valid = spec.Validate(num_costs());
  if (!valid.ok()) {
    result.status = std::move(valid);
    return result;
  }

  // Intra-query parallelism: 0 = classic serial path; 1 = inline turn
  // schedule over the worker's own reader; > 1 = pooled turns on the
  // worker's ExpansionExecutor (clamped to the service's configuration).
  int par = std::min<int>(spec.parallelism, opts_.per_query_parallelism);
  if (par > 1 && worker.expansion == nullptr) {
    // Built lazily on the first parallel request, so a service whose
    // clients never opt in pays no probe threads or extra pools. Safe
    // here: a worker runs one query at a time on its own thread.
    auto executor =
        sharded()
            ? ExpansionExecutor::Create(storage_, sharded_files_,
                                        opts_.per_query_parallelism,
                                        opts_.pool_frames_per_worker,
                                        opts_.split_pool_across_shards)
            : ExpansionExecutor::Create(disk_, files_,
                                        opts_.per_query_parallelism,
                                        opts_.pool_frames_per_worker);
    MCN_CHECK(executor.ok());
    auto built = std::move(executor).value();
    if (sharded()) built->SetHomeShard(worker.home_shard);
    worker.expansion = std::move(built);
    // Release-published: MetricsSnapshot samples the executor's
    // routed-fetch counters from other threads through this pointer.
    worker.expansion_pub.store(worker.expansion.get(),
                               std::memory_order_release);
  }
  const bool turn_mode = par >= 1;
  const bool pooled = par > 1;

  if (opts_.cold_cache_per_query) {
    worker.reader->ResetIoState();
    if (worker.expansion != nullptr) worker.expansion->ResetIoState();
    // The index pool follows the same independent-query model, so a
    // query's prune I/O is deterministic regardless of what ran before.
    if (worker.landmark != nullptr) worker.landmark->ResetIoState();
  }
  auto io_now = [&]() -> storage::BufferPool::Stats {
    storage::BufferPool::Stats s = pooled ? worker.expansion->PoolStats()
                                          : worker.reader->PoolStats();
    if (worker.landmark != nullptr) {
      // Honest I/O accounting: what the oracle spends on index pages is
      // part of the query's miss total, not hidden in a side pool.
      const storage::BufferPool::Stats li = worker.landmark->pool().stats();
      s.hits += li.hits;
      s.misses += li.misses;
      s.evictions += li.evictions;
    }
    return s;
  };
  const storage::BufferPool::Stats before = io_now();

  Stopwatch watch;
  std::unique_ptr<expand::NnEngine> engine_holder;
  std::unique_ptr<expand::ParallelProbeScheduler> scheduler;
  if (pooled) {
    auto rig_or = worker.expansion->NewQuery(spec.location);
    if (!rig_or.ok()) {
      result.status = rig_or.status();
      return result;
    }
    ExpansionExecutor::QueryRig rig = std::move(rig_or).value();
    engine_holder = std::move(rig.engine);
    scheduler = std::move(rig.scheduler);
  } else if (turn_mode) {
    // Inline turns need no thread-safe provider: the plain CEA engine
    // over the worker's reader runs the identical schedule (record
    // contents and pop order match the striped cache) without paying for
    // 64 stripes + single-flight machinery per query.
    auto engine_or = expand::CeaEngine::Create(worker.reader.get(),
                                               spec.location);
    if (!engine_or.ok()) {
      result.status = engine_or.status();
      return result;
    }
    scheduler = std::make_unique<expand::ParallelProbeScheduler>(
        engine_or.value().get(), /*pool=*/nullptr, /*striped=*/nullptr);
    engine_holder = std::move(engine_or).value();
  } else {
    auto engine_or = expand::MakeEngine(spec.engine, worker.reader.get(),
                                        spec.location);
    if (!engine_or.ok()) {
      result.status = engine_or.status();
      return result;
    }
    engine_holder = std::move(engine_or).value();
  }
  // Turn-level overlapped I/O (DESIGN.md §13): arm the scheduler to
  // sample per-probe miss deltas — and optionally sleep the turn's max at
  // the barrier and/or replay the turn's misses as one batched read.
  //
  // Miss recording is scoped to this query: the pools are persistent, and
  // a later serial-path query (scheduler == nullptr) has no barrier to
  // drain them, so leaving recording armed would grow the miss log
  // without bound on serial-heavy workloads.
  struct MissRecordingGuard {
    std::vector<storage::BufferPool*> pools;
    ~MissRecordingGuard() {
      for (storage::BufferPool* pool : pools) {
        pool->set_record_misses(false);
        (void)pool->DrainMissedPages();
      }
    }
  } miss_recording;
  if (scheduler != nullptr &&
      (opts_.stall_model == StallModel::kOverlapped ||
       opts_.replay_batch_io)) {
    expand::ParallelProbeScheduler::TurnIoOptions io;
    if (pooled) {
      ExpansionExecutor* rig = worker.expansion.get();
      io.slot_misses = [rig](int reader_slot) {
        return rig->readers()[static_cast<size_t>(reader_slot)]
            ->PoolStats()
            .misses;
      };
    } else {
      net::NetworkReader* reader = worker.reader.get();
      io.slot_misses = [reader](int) { return reader->PoolStats().misses; };
    }
    if (opts_.stall_model == StallModel::kOverlapped &&
        opts_.simulate_io_stalls) {
      io.sleep_latency_ms = opts_.io_latency_ms;
    }
    if (opts_.replay_batch_io && !sharded() &&
        disk_->io_backend() != storage::IoBackendKind::kMemory) {
      // Physical replay is flat + file-backed only: sharded disks have no
      // image, and a memory backend would make the replay a pure memcpy
      // exercise. Pools log their missed PageIds; the barrier drains the
      // logs into one ReadPagesBatch. Stale entries from a previous query
      // are drained away before arming.
      if (pooled) {
        for (const auto& slot_reader : worker.expansion->readers()) {
          miss_recording.pools.push_back(slot_reader->pool());
        }
      } else {
        miss_recording.pools.push_back(worker.pool.get());
      }
      for (storage::BufferPool* pool : miss_recording.pools) {
        pool->set_record_misses(true);
        (void)pool->DrainMissedPages();
      }
      io.drain_missed = [pools = miss_recording.pools](
                            std::vector<storage::PageId>* out) {
        for (storage::BufferPool* pool : pools) {
          std::vector<storage::PageId> drained = pool->DrainMissedPages();
          out->insert(out->end(), drained.begin(), drained.end());
        }
      };
      io.batch_disk = disk_;
    }
    scheduler->SetTurnIo(std::move(io));
  }
  expand::NnEngine* engine = engine_holder.get();
  // Cooperative cancellation: the expansions check the token per settle,
  // the turn scheduler at every barrier. Engine and token die with this
  // call, so no clearing is needed.
  engine->SetCancelToken(cancel);
  algo::QueryOptions exec;
  exec.parallelism = par;
  exec.scheduler = scheduler.get();

  const auto& constraints = spec.preference.constraints;
  switch (spec.kind) {
    case QueryKind::kSkyline: {
      algo::SkylineOptions sky_opts;
      sky_opts.exec = exec;
      // The query gates internally (serial round-robin only); passing the
      // reader on turn-mode requests is a documented no-op.
      sky_opts.exec.landmark_index = worker.landmark.get();
      algo::SkylineQuery query(engine, sky_opts);
      auto rows = query.ComputeAll();
      if (!rows.ok()) {
        result.status = rows.status();
        return result;
      }
      result.skyline = std::move(rows).value();
      result.stats.prune_checked = query.stats().prune_checked;
      result.stats.prune_cut = query.stats().prune_cut;
      break;
    }
    case QueryKind::kTopK: {
      algo::TopKOptions topk_opts;
      topk_opts.k = spec.k;
      topk_opts.exec = exec;
      algo::TopKQuery query(engine,
                            algo::WeightedSum(spec.preference.weights),
                            topk_opts);
      auto rows = query.Run();
      if (!rows.ok()) {
        result.status = rows.status();
        return result;
      }
      result.topk = std::move(rows).value();
      break;
    }
    case QueryKind::kIncrementalTopK: {
      algo::IncrementalTopK query(engine,
                                  algo::WeightedSum(spec.preference.weights),
                                  algo::ProbePolicy::kRoundRobin, exec);
      // First-k pull with streaming caps (same row-for-row semantics as a
      // session over this spec; unconstrained it is the classic k-pull).
      auto batch = query.NextBatch(
          spec.k, [&constraints](const algo::TopKEntry& row) {
            return algo::PassesCaps(constraints, row);
          });
      if (!batch.ok()) {
        result.status = batch.status();
        return result;
      }
      result.topk = std::move(batch).value();
      result.exhausted = query.exhausted();
      break;
    }
  }
  // Post-dominance constraint filter (algo/constraints.h): an exact no-op
  // for unconstrained specs — result hashes stay byte-identical. The
  // incremental path filtered while pulling (above), so caps are already
  // satisfied and re-applying is idempotent.
  if (!constraints.Unconstrained()) {
    if (spec.kind == QueryKind::kSkyline) {
      algo::ApplyConstraints(constraints, &result.skyline);
    } else {
      algo::ApplyConstraints(constraints, &result.topk);
    }
  }
  result.stats.exec_seconds = watch.ElapsedSeconds();

  const storage::BufferPool::Stats after = io_now();
  result.stats.buffer_misses = after.misses - before.misses;
  result.stats.buffer_accesses = after.accesses() - before.accesses();

  if (scheduler != nullptr && opts_.stall_model == StallModel::kOverlapped) {
    // Overlapped charge = the scheduler's per-turn max sum, plus the
    // serial residue: misses outside any probe (engine seeding), which
    // nothing overlapped.
    const expand::ParallelProbeScheduler::Stats& turns = scheduler->stats();
    const uint64_t residue =
        result.stats.buffer_misses > turns.probe_misses
            ? result.stats.buffer_misses - turns.probe_misses
            : 0;
    result.stats.stall_model = StallModel::kOverlapped;
    result.stats.overlapped_misses = turns.overlapped_misses + residue;
    result.stats.stall_slept_seconds = turns.slept_seconds;
    // The watch ran through the barrier sleeps; keep exec_seconds pure
    // compute like the serial model's (whose stall is slept outside it).
    result.stats.exec_seconds =
        std::max(0.0, result.stats.exec_seconds - turns.slept_seconds);
  }

  // Hashed outside the measured window, like the bench harness; the hash
  // covers exactly the rows the client receives (post-constraint).
  result.result_hash = spec.kind == QueryKind::kSkyline
                           ? algo::HashResult(result.skyline)
                           : algo::HashResult(result.topk);
  return result;
}

obs::Snapshot QueryService::MetricsSnapshot() const {
  namespace mn = metric_names;
  obs::Snapshot snap = registry_.TakeSnapshot();
  if (sharded()) {
    // Routed-fetch counters are relaxed atomics on each worker's reader
    // (and probe rig), safe to sample while the workers keep executing;
    // they are appended as derived rows rather than mirrored into the
    // registry on the hot path.
    for (const auto& worker : workers_) {
      if (worker->home_shard == shard::kInvalidShard) continue;
      auto io = static_cast<const shard::ShardedNetworkReader*>(
                    worker->reader.get())
                    ->shard_io_stats();
      const ExpansionExecutor* expansion =
          worker->expansion_pub.load(std::memory_order_acquire);
      if (expansion != nullptr) {
        const auto pooled_io = expansion->ShardIoStats();
        io.local_fetches += pooled_io.local_fetches;
        io.remote_fetches += pooled_io.remote_fetches;
      }
      const int s = static_cast<int>(worker->home_shard);
      snap.AddCounter(mn::Shard(s, "local_fetches"), io.local_fetches);
      snap.AddCounter(mn::Shard(s, "remote_fetches"), io.remote_fetches);
    }
    for (const Group& group : groups_) {
      snap.AddCounter(mn::Shard(static_cast<int>(group.shard), "workers"),
                      static_cast<uint64_t>(group.count));
    }
    // Make sure every shard has rows even before any traffic touches it.
    for (int s = 0; s < storage_->num_shards(); ++s) {
      snap.AddCounter(mn::Shard(s, "local_fetches"), 0);
      snap.AddCounter(mn::Shard(s, "remote_fetches"), 0);
      snap.AddCounter(mn::Shard(s, "workers"), 0);
    }
  }
  // Disk I/O totals, merged across shard disks by the same name-keyed path
  // the per-file stats use.
  const storage::DiskManager::Stats disk_io =
      sharded() ? storage_->MergedStats() : disk_->stats();
  snap.AddCounter(mn::kDiskPageReads, disk_io.page_reads);
  snap.AddCounter(mn::kDiskPageWrites, disk_io.page_writes);
  // Batched-read slice (DESIGN.md §13): zero rows until a turn replay or
  // an explicit ReadPagesBatch touches the disk, so the introspection
  // surface is stable either way.
  snap.AddCounter(mn::kIoBatchReads, disk_io.batch_reads);
  snap.AddCounter(mn::kIoBatchPages, disk_io.batch_pages);
  snap.AddCounter(mn::kIoBatchMaxPages, disk_io.batch_max_pages);
  for (const auto& file : disk_io.per_file_reads) {
    snap.AddCounter("mcn.disk.file." + file.name + ".reads", file.reads);
  }
  if (result_cache_ != nullptr) {
    const ResultCache::Stats cache = result_cache_->stats();
    snap.AddCounter(mn::kCacheEvictions, cache.evictions);
    snap.SetGauge(mn::kCacheEntries, static_cast<double>(cache.entries));
  }
  snap.SetGauge(mn::kNetworkEpoch, static_cast<double>(network_epoch()));
  snap.SetGauge(mn::kOpenSessions,
                static_cast<double>(num_open_sessions()));
  snap.SetGauge(mn::kWallSeconds, uptime_.ElapsedSeconds());
  snap.SetGauge(mn::kNumShards,
                sharded() ? static_cast<double>(storage_->num_shards()) : 0);
  return snap;
}

void QueryService::BumpNetworkEpoch() {
  const uint64_t next =
      network_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (result_cache_ != nullptr) result_cache_->InvalidateAll(next);
}

ServiceStats QueryService::Snapshot() const {
  // One merge path (DESIGN.md §11): ServiceStats is a view over the
  // registry snapshot — nothing is aggregated here that MetricsSnapshot
  // (and hence the wire introspection) does not also expose.
  return ServiceStatsFromSnapshot(MetricsSnapshot());
}

void QueryService::ResetStats() {
  registry_.ResetAll();
  for (const auto& worker : workers_) {
    if (sharded()) {
      static_cast<shard::ShardedNetworkReader*>(worker->reader.get())
          ->ResetShardIoStats();
      ExpansionExecutor* expansion =
          worker->expansion_pub.load(std::memory_order_acquire);
      if (expansion != nullptr) expansion->ResetShardIoStats();
    }
  }
  uptime_.Restart();
}

}  // namespace mcn::exec
