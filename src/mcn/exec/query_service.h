// QueryService: the concurrent serving layer above the paper's query
// processors (DESIGN.md §6, §8, §9). One service owns
//
//   * a shared, read-only storage root — either one flat DiskManager or a
//     shard::ShardedStorage of K per-tile disks, frozen for the service's
//     lifetime via BeginConcurrentReads,
//   * one reader per worker — a BufferPool + NetworkReader in flat mode,
//     a per-shard pool set (shard::ShardedNetworkReader) in sharded mode —
//     never shared across threads, and
//   * shard-affine worker *groups*: each group is its own fixed-size
//     ThreadPool over a lock-free MPMC queue, bound to one shard. Submit
//     routes every request to the group owning the query's location (the
//     routing table), so a query usually expands inside the pools of its
//     home shard; fetches that escape the tile are counted as remote.
//     Flat services have exactly one group, which degenerates to the PR-2
//     behavior. With ServiceOptions::pin_workers, each group's threads are
//     pinned (best-effort, sched_setaffinity) to a contiguous CPU range —
//     the placeholder for per-socket NUMA placement.
//
// Every entry point speaks api::QuerySpec (the unified preference-query
// API, DESIGN.md §9): Submit validates the spec on the executing worker —
// malformed specs resolve their future with an InvalidArgument result
// instead of crashing — runs it with a freshly constructed engine
// (LSA/CEA d-expansions + CandidateStore are per-query state, so nothing
// of a query is visible to another), applies the spec's preference
// constraints as a post-dominance filter (an exact no-op when
// unconstrained), and resolves a std::future<QueryResult> carrying the
// typed result rows, an FNV result hash (byte-identical to a
// single-threaded run — and to every other shard count K: the parity
// anchor of the service bench and tests), and per-query stats. The legacy
// QueryRequest overload converts and forwards; prefer constructing
// QuerySpec directly.
//
// Streaming incremental sessions (DESIGN.md §9): OpenSession pins an
// incremental spec to a session — its own LRU pool set, engine and
// algo::IncrementalTopK iterator, created lazily on the session's
// home-shard worker group and kept warm across batches — and SessionNext
// pulls further NextBest batches from that same engine. The session table
// is bounded (ServiceOptions::max_sessions) with lazy idle eviction.
//
// Workers also feed the service-level aggregation: latency percentiles
// (p50/p95/p99), QPS, session counters, and per-shard local/remote fetch
// totals.
#ifndef MCN_EXEC_QUERY_SERVICE_H_
#define MCN_EXEC_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcn/algo/common.h"
#include "mcn/algo/incremental_topk.h"
#include "mcn/api/query_response.h"
#include "mcn/api/query_spec.h"
#include "mcn/common/cancel.h"
#include "mcn/common/mutex.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/common/stopwatch.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/exec/expansion_executor.h"
#include "mcn/exec/service_stats.h"
#include "mcn/exec/thread_pool.h"
#include "mcn/expand/engines.h"
#include "mcn/graph/location.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/obs/flight_recorder.h"
#include "mcn/obs/metrics.h"
#include "mcn/obs/trace.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::exec {

class ResultCache;    // exec/result_cache.h
struct ResultFlight;  // exec/result_cache.h

/// The canonical kind enum lives in the api layer; exec re-exports it so
/// existing exec::QueryKind::kSkyline spellings keep working.
using QueryKind = api::QueryKind;

/// How a query's modeled I/O stall is charged (DESIGN.md §13).
///
/// kSerial is the classic model: every buffer miss costs one io_latency,
/// so stall = misses x latency — the schedule where each fetch waits for
/// the previous one. kOverlapped models a turn's misses as issued
/// together (one batched read per barrier): each turn costs only its
/// *maximum* per-probe miss delta, so stall = sum over turns of
/// max(probe miss deltas) x latency, plus the serial residue of misses
/// outside any probe (engine seeding). The overlapped model applies to
/// turn-mode requests (QuerySpec::parallelism >= 1); classic serial-path
/// queries fall back to kSerial charging regardless of the option.
enum class StallModel {
  kSerial = 0,
  kOverlapped,
};
const char* StallModelName(StallModel model);  ///< "serial"/"overlapped"

/// Streaming-session handle (see OpenSession). Ids are service-scoped and
/// never reused.
using SessionId = uint64_t;

/// Legacy request shape, kept as a thin shim over api::QuerySpec (the
/// fields map one to one; ToSpec() is the conversion Submit applies).
/// Deprecated: construct api::QuerySpec directly — it adds preference
/// constraints and is what the wire protocol transports.
struct QueryRequest {
  QueryKind kind = QueryKind::kSkyline;
  graph::Location location = graph::Location::AtNode(graph::kInvalidNode);
  /// Which engine flavor the worker builds for this query. Ignored when
  /// `parallelism` >= 1: the turn schedule always runs CEA-style caching
  /// — the worker's plain CachedFetch for inline turns (parallelism 1),
  /// the striped cache over the probe pool's reader slots beyond that.
  expand::EngineKind engine = expand::EngineKind::kCea;
  /// Intra-query d-expansion parallelism (DESIGN.md §7). 0 = classic
  /// serial probing; 1 = the turn-barrier schedule executed inline;
  /// > 1 = the same schedule on the worker's probe pool, whose width is
  /// ServiceOptions::per_query_parallelism (the exact value beyond 1
  /// does not pick a thread count). Results and logical I/O are
  /// byte-identical for every value >= 1 by the determinism contract.
  int parallelism = 0;
  /// Top-k / incremental only: result count and weighted-sum coefficients
  /// (size must equal the network's d).
  int k = 4;
  std::vector<double> weights;

  api::QuerySpec ToSpec() const;
};

/// Per-query measurements taken on the executing worker.
struct QueryStats {
  int worker = -1;
  int shard = -1;            ///< executing group's home shard (-1 = flat)
  double queue_seconds = 0;  ///< submit -> start of execution
  double exec_seconds = 0;   ///< engine construction + query computation
  /// Modeled I/O time, charged under `stall_model`: misses x
  /// io_latency_ms for StallModel::kSerial, overlapped_misses x
  /// io_latency_ms for StallModel::kOverlapped (per-turn max instead of
  /// per-miss sum — see the enum).
  double stall_seconds = 0;
  /// The model that produced stall_seconds for *this* query: the
  /// service's configured model, downgraded to kSerial on classic
  /// serial-path requests (parallelism 0), where no turn structure exists
  /// to overlap.
  StallModel stall_model = StallModel::kSerial;
  /// Overlapped charge units (kOverlapped only): sum over turns of the
  /// max per-probe miss delta, plus misses outside any probe (engine
  /// seeding), which stay serial.
  uint64_t overlapped_misses = 0;
  /// Portion of stall_seconds already slept at turn barriers
  /// (simulate_io_stalls + kOverlapped); the executor sleeps only the
  /// residual after the query returns.
  double stall_slept_seconds = 0;
  /// Full request latency: queue wait + execution + stall (the stall is
  /// slept for real when ServiceOptions::simulate_io_stalls is set,
  /// otherwise only accounted).
  double latency_seconds = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  /// Prune-oracle work for this query (skyline + enable_prune_index only):
  /// frontier pops tested against the landmark bound, and the subset cut
  /// before their adjacency probe. buffer_misses includes the index pool's
  /// misses when the worker holds an index reader, so the reported I/O is
  /// the honest total.
  uint64_t prune_checked = 0;
  uint64_t prune_cut = 0;
};

/// Outcome of one request (or one session batch). Exactly one of
/// `skyline` / `topk` is filled (by kind) when `status` is OK.
struct QueryResult {
  Status status = Status::OK();
  QueryKind kind = QueryKind::kSkyline;
  std::vector<algo::SkylineEntry> skyline;
  std::vector<algo::TopKEntry> topk;  ///< also the incremental results
  /// algo::HashResult over the filled rows (kFnvOffsetBasis when failed).
  uint64_t result_hash = 0;
  /// Incremental only: the reachable component is fully reported (a
  /// session batch shorter than its asked-for n also implies this).
  bool exhausted = false;
  QueryStats stats;

  /// The transportable subset of this result (api/wire.h encodes it).
  /// The rvalue overload moves the row vectors — what a server should
  /// call on a result it is done with.
  api::QueryResponse ToResponse() const&;
  api::QueryResponse ToResponse() &&;
};

struct ServiceOptions {
  int num_workers = 4;
  /// Ring capacity of each group's work queue; Submit applies
  /// back-pressure (blocks) when this many queries are already waiting in
  /// the target group.
  size_t queue_capacity = 1024;
  /// LRU frames per worker (the paper's buffer size; see
  /// gen::BufferFrames). Every worker gets the same capacity so per-query
  /// miss counts match a single-threaded run exactly. In sharded mode the
  /// budget is split exactly across the worker's K shard pools
  /// (shard::SplitFramesAcrossShards — remainder frames are distributed,
  /// not dropped). Sessions get the same budget, so a session stream's
  /// logical I/O matches a local IncrementalTopK run.
  size_t pool_frames_per_worker = 0;
  /// Modeled I/O latency charged per buffer miss (as in the bench harness).
  double io_latency_ms = 5.0;
  /// Sleep each query's modeled stall for real, so wall-clock throughput
  /// reflects overlapped I/O. Keep off for pure-CPU tests.
  bool simulate_io_stalls = false;
  /// Which stall model charges modeled I/O time (DESIGN.md §13). With
  /// kOverlapped, turn-mode queries charge each turn's max per-probe miss
  /// delta instead of the per-miss sum, and simulate_io_stalls sleeps
  /// per turn at the barrier (the residual — seeding misses charged
  /// serially — is slept after the query). kSerial keeps every query
  /// byte-stable with the pre-§13 behavior.
  StallModel stall_model = StallModel::kSerial;
  /// Physically replay each turn's drained buffer misses as one
  /// DiskManager::ReadPagesBatch (kIoBatch trace span; mcn.io.batch_*
  /// counters). Effective only on flat services whose disk has a file
  /// backend attached (DiskManager::AttachFileBackend) — otherwise a
  /// silent no-op. Replayed pages double-count in mcn.disk.page_reads
  /// next to the pool's logical fetches; the batch_* counters isolate
  /// the batched share.
  bool replay_batch_io = false;
  /// Cross-query result sharing (DESIGN.md §13): > 0 bounds an LRU cache
  /// of finished one-shot results keyed by canonical spec + network
  /// epoch, with single-flight coalescing of concurrent identical
  /// requests. 0 disables caching entirely (byte-stable default).
  /// Sessions always bypass the cache.
  size_t result_cache_entries = 0;
  /// Clear + reset the worker's pools before each query (the paper's
  /// independent-query model; also what makes per-query miss counts
  /// deterministic across worker counts). When false, a worker's pools
  /// stay warm across the queries it happens to execute. Sessions are
  /// never reset between batches — warm continuation is their point.
  bool cold_cache_per_query = true;
  /// Probe threads available to one query (DESIGN.md §7). > 1 lets a
  /// service worker build its own ExpansionExecutor — lazily, on the
  /// worker's first request with parallelism > 1, so services whose
  /// clients never opt in pay nothing; the worker's later parallel
  /// queries then share that executor's probe pool and reader slots.
  /// Requests opt in per query via QuerySpec::parallelism.
  /// 1 = turn-schedule requests run inline.
  int per_query_parallelism = 1;
  /// Sharded mode: how pool_frames_per_worker maps onto a worker's K
  /// shard pools. true divides the budget evenly (iso-memory comparison
  /// against the flat layout — total frames constant in K, at the price
  /// of LRU capacity fragmentation); false gives every shard pool the
  /// full budget — the per-socket memory model of the ROADMAP, where
  /// each socket contributes its own DIMMs and aggregate buffer grows
  /// with K.
  bool split_pool_across_shards = true;
  /// Best-effort CPU pinning of each shard group's worker threads to a
  /// contiguous CPU range (DESIGN.md §8). A feature flag: refused
  /// affinity syscalls (CI containers, non-Linux) are silently ignored,
  /// so correctness and CI never depend on it.
  bool pin_workers = false;
  /// Bound on concurrently open streaming sessions (DESIGN.md §9). An
  /// OpenSession beyond the bound evicts the least-recently-used idle
  /// session; when every session is busy it fails instead.
  size_t max_sessions = 64;
  /// Sessions untouched for this long are evicted lazily (checked on the
  /// next OpenSession). <= 0 disables idle eviction.
  double session_idle_seconds = 300.0;
  /// Admission control (DESIGN.md §10): bound on queries in flight
  /// (queued + executing) per worker group. 0 = unbounded, with the legacy
  /// blocking back-pressure on a full ring. > 0 = load-shedding: a Submit
  /// that would exceed the cap — or land on a full ring — resolves
  /// immediately with ResourceExhausted instead of blocking the caller,
  /// and is counted in ServiceStats::rejected.
  size_t max_inflight = 0;
  /// Observability (DESIGN.md §11): when set, every finished query/batch
  /// is digested into this recorder (last-N ring + slow-query log). Not
  /// owned; must outlive the service.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Landmark lower-bound pruning (DESIGN.md §12). Opt-in: when true and
  /// the served network carries a built index (NetworkFiles::landmark /
  /// ShardedNetworkFiles::landmark), every worker gets a validated
  /// LandmarkIndexReader (its own small pool, charged separately from the
  /// network pools) and serial skyline queries run with the prune oracle.
  /// Results are byte-identical either way — the index only elides
  /// adjacency probes whose subtrees cannot matter. The default keeps
  /// existing services byte-stable in stats as well as results.
  bool enable_prune_index = false;
};

/// See the file comment. Thread-safe: Submit/session calls/Drain/Snapshot
/// may be called from any thread; Shutdown from one thread at a time.
class QueryService {
 public:
  /// Flat storage: `disk`/`files` describe a fully built network (see
  /// net::BuildNetwork); `disk` must outlive the service and is frozen
  /// read-only until the service shuts down. One worker group.
  static Result<std::unique_ptr<QueryService>> Create(
      storage::DiskManager* disk, const net::NetworkFiles& files,
      const ServiceOptions& options);

  /// Sharded storage (DESIGN.md §8): `storage`/`files` describe a built
  /// sharded network (shard::BuildShardedNetwork); `storage` must outlive
  /// the service and every shard disk is frozen read-only until shutdown.
  /// Workers are split into min(K, num_workers) shard-affine groups and
  /// requests are routed to the group owning their location.
  static Result<std::unique_ptr<QueryService>> Create(
      shard::ShardedStorage* storage,
      const shard::ShardedNetworkFiles& files, const ServiceOptions& options);

  /// Shutdown(/*drain=*/true).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `spec` on its affinity group; blocks when that group's
  /// queue is full. Malformed specs resolve the future with an
  /// InvalidArgument result (never a crash). After shutdown the returned
  /// future is immediately ready with a FailedPrecondition result.
  std::future<QueryResult> Submit(api::QuerySpec spec);

  /// Legacy entry point; converts to api::QuerySpec and forwards.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Opens a streaming incremental session for `spec` (kind must be
  /// kIncrementalTopK; the spec's k is advisory only — batch sizes are
  /// chosen per SessionNext call). The session is bound to the location's
  /// home-shard group and its engine is built lazily, on the group worker
  /// executing the first SessionNext. Fails when the spec is invalid or
  /// the session table is full of busy sessions.
  Result<SessionId> OpenSession(api::QuerySpec spec);

  /// Pulls the next `n` ranked results from the session's pinned engine
  /// (on its home-shard group). Batches on one session serialize — a
  /// pipelined batch waits *on its executing worker* for the previous
  /// one, so keep per-session pipelining shallow or it parks workers
  /// (the wire server never pipelines: one request per connection is in
  /// flight, and connections only reach their own sessions). An
  /// unknown/evicted id resolves with NotFound. A batch shorter than `n`
  /// means the reachable component is exhausted (also flagged on the
  /// result); later batches are empty, never errors.
  std::future<QueryResult> SessionNext(SessionId id, int n);

  /// Closes (evicts) a session. NotFound for unknown/already-closed ids.
  /// An in-flight batch finishes normally.
  Status CloseSession(SessionId id);

  /// Waits until every submitted query has completed.
  void Drain();

  /// Stops the workers and drops every open session. drain=true completes
  /// the backlog first; drain=false discards it — a discarded query's
  /// future resolves with a FailedPrecondition result (futures never
  /// throw). Idempotent.
  void Shutdown(bool drain = true);

  /// Aggregated service statistics since construction (or ResetStats);
  /// sharded services also fill ServiceStats::per_shard. A thin view:
  /// ServiceStatsFromSnapshot(MetricsSnapshot()).
  ServiceStats Snapshot() const;

  /// The full observability snapshot (DESIGN.md §11): every registry
  /// instrument plus sampled per-shard reader counters, disk I/O totals
  /// and liveness gauges. This is what api::Server serves for kGetMetrics.
  obs::Snapshot MetricsSnapshot() const;

  /// Clears the aggregation and restarts the QPS window. Call only while
  /// no query is in flight.
  void ResetStats();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  bool sharded() const { return storage_ != nullptr; }
  /// The served network's cost dimensionality d (what specs validate
  /// against).
  int num_costs() const {
    return sharded() ? sharded_files_.num_costs : files_.num_costs;
  }
  size_t num_open_sessions() const;
  const ServiceOptions& options() const { return opts_; }

  /// Cross-query sharing epoch (DESIGN.md §13). Bumping invalidates every
  /// cached result — the seam to call when the served network changes
  /// under a future online-update path. In-flight queries resolve
  /// normally; their results are just not stored. No-op counter-wise when
  /// result_cache_entries is 0 (the epoch still advances).
  void BumpNetworkEpoch();
  uint64_t network_epoch() const {
    return network_epoch_.load(std::memory_order_acquire);
  }

  /// The result cache's key for `spec` under `epoch`: the canonical
  /// kExecute wire frame of the spec with execution-strategy fields
  /// (engine, parallelism, deadline) normalized away — the determinism
  /// contract makes results identical across those — plus the epoch.
  /// Exposed for tests.
  static std::string CanonicalCacheKey(const api::QuerySpec& spec,
                                       uint64_t epoch);

 private:
  /// One pinned incremental stream (DESIGN.md §9): its own reader/pool
  /// set and iterator, warm across batches, confined to one batch at a
  /// time by `mu`.
  struct Session {
    SessionId id = 0;
    api::QuerySpec spec;
    int group = 0;  ///< home-shard group index (routing affinity)
    /// Flat mode only: the pool behind `reader` (sharded readers own
    /// their per-shard pools).
    std::unique_ptr<storage::BufferPool> pool MCN_GUARDED_BY(mu);
    std::unique_ptr<net::NetworkReader> reader MCN_GUARDED_BY(mu);
    std::unique_ptr<expand::NnEngine> engine MCN_GUARDED_BY(mu);
    std::unique_ptr<algo::IncrementalTopK> query MCN_GUARDED_BY(mu);
    Mutex mu;  ///< serializes batches on this session
    /// Batches submitted but not yet finished; only idle (== 0) sessions
    /// are evictable.
    std::atomic<int> inflight{0};
    /// Last submit/completion, for LRU + idle eviction. Guarded by the
    /// *service's* sessions_mu_ (a cross-object contract TSA cannot
    /// express as GUARDED_BY; the REQUIRES(sessions_mu_) helpers below
    /// are the checked part of it).
    std::chrono::steady_clock::time_point last_used{};
  };

  /// What rides the MPMC queue: a one-shot spec or a session batch pull,
  /// plus the promise.
  struct Task {
    api::QuerySpec spec;
    std::shared_ptr<Session> session;  ///< non-null: session batch
    int batch_n = 0;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point enqueue_time{};
    /// Absolute deadline (anchored at admission, DESIGN.md §10). A task
    /// found expired at dequeue resolves DeadlineExceeded without running;
    /// a running one is cancelled cooperatively via CancelToken.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// Trace identity stamped at admission (inactive when tracing is off);
    /// the executing worker installs it thread-locally for the query.
    obs::TraceContext trace;
    /// Result-cache single-flight token (DESIGN.md §13): non-null on the
    /// one task computing a cache key. Whoever finishes the task — the
    /// executor, the discard handler, or an admission-failure path — must
    /// Complete the flight or coalesced waiters hang.
    std::shared_ptr<ResultFlight> cache_flight;
    std::string cache_key;
    uint64_t cache_epoch = 0;
  };

  /// Per-worker shard: reader (owning its pool set) confined to one worker
  /// thread. The service aggregation that used to live here (latency
  /// samples + a mutex-guarded counter block per worker) moved into the
  /// service's obs::Registry — workers record through shared lock-free
  /// instruments, slot = worker index (DESIGN.md §11).
  struct Worker {
    /// Flat mode only: the single pool behind `reader` (the reader owns
    /// its per-shard pools in sharded mode).
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<net::NetworkReader> reader;
    shard::ShardId home_shard = shard::kInvalidShard;
    bool pinned = false;  ///< pin attempted (worker-thread confined)
    /// Intra-query probe rig; only built when per_query_parallelism > 1.
    /// Owned here, published through `expansion_pub` (release store after
    /// construction) so MetricsSnapshot can sample its routed-fetch
    /// counters from other threads without a lock.
    std::unique_ptr<ExpansionExecutor> expansion;
    std::atomic<ExpansionExecutor*> expansion_pub{nullptr};
    /// Validated landmark-index reader (enable_prune_index and a present
    /// index only); worker-thread confined like `reader`. Owns its own
    /// small pool — see net::kLandmarkPoolFrames.
    std::unique_ptr<net::LandmarkIndexReader> landmark;
  };

  /// Cached instrument handles (resolved once at construction; recording
  /// through them never touches the registry mutex).
  struct Metrics {
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* timed_out = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* session_batches = nullptr;
    obs::Counter* buffer_misses = nullptr;
    obs::Counter* buffer_accesses = nullptr;
    obs::Counter* prune_checked = nullptr;
    obs::Counter* prune_cut = nullptr;
    obs::Counter* cache_hit = nullptr;
    obs::Counter* cache_miss = nullptr;
    obs::Counter* cache_coalesced = nullptr;
    obs::Counter* overlapped_misses = nullptr;
    obs::Counter* cpu_micros = nullptr;
    obs::Counter* stall_micros = nullptr;
    obs::Counter* queue_micros = nullptr;
    obs::Histogram* latency_us = nullptr;
    /// Sharded services: per-shard completion/miss attribution.
    std::vector<obs::Counter*> shard_completed;
    std::vector<obs::Counter*> shard_misses;
  };

  /// One shard-affine worker group: a slice [base, base + count) of
  /// workers_ executing its own ThreadPool.
  struct Group {
    shard::ShardId shard = 0;  ///< home shard (group index; flat: 0)
    int base = 0;
    int count = 0;
    std::unique_ptr<ThreadPool<Task>> pool;
    /// Queries admitted and not yet finished (max_inflight > 0 only).
    /// Boxed so Group stays movable for groups_.resize().
    std::unique_ptr<std::atomic<int64_t>> inflight;
  };

  QueryService(storage::DiskManager* disk, shard::ShardedStorage* storage,
               const net::NetworkFiles& files,
               const shard::ShardedNetworkFiles& sharded_files,
               const ServiceOptions& options);

  void StartGroups();
  /// Builds one reader over the service's storage with the per-worker
  /// pool budget — the single construction path for worker and session
  /// readers. Flat mode materializes the backing pool into `flat_pool`;
  /// sharded readers own their per-shard pools.
  std::unique_ptr<net::NetworkReader> MakeReader(
      std::unique_ptr<storage::BufferPool>* flat_pool) const;
  /// The group index owning `location` under the routing table (flat: 0).
  int RouteGroupIndex(const graph::Location& location) const;

  /// Enqueues `task` on `group`, resolving the future immediately when
  /// the service is shut down.
  std::future<QueryResult> Enqueue(Task&& task, Group& group);

  /// Settles a task's cache flight with a failure (waiters share the
  /// fate); no-op when the task carries none. Every path that resolves a
  /// flighted task without executing it must call this.
  void AbandonCacheFlight(Task& task, const Status& status);

  void Execute(Task&& task, Group& group, int local_worker);
  /// Runs the query on `worker`'s shard; fills everything but the latency
  /// fields of the result stats. `cancel` (nullable) is checked
  /// cooperatively by the expansion layer.
  QueryResult RunQuery(const api::QuerySpec& spec, Worker& worker,
                       const CancelToken* cancel);
  /// Runs one session batch (creating the session's engine on first use).
  QueryResult RunSessionBatch(Session& session, int n,
                              const CancelToken* cancel);

  /// Drops idle sessions past the idle timeout (runs on every
  /// OpenSession).
  void EvictExpiredSessions() MCN_REQUIRES(sessions_mu_);
  /// Drops the LRU idle session to make room in a full table. False =
  /// every session is busy.
  bool MakeSessionRoom() MCN_REQUIRES(sessions_mu_);

  storage::DiskManager* disk_ = nullptr;        ///< flat mode
  shard::ShardedStorage* storage_ = nullptr;    ///< sharded mode
  net::NetworkFiles files_;                     ///< flat mode
  shard::ShardedNetworkFiles sharded_files_;    ///< sharded mode
  ServiceOptions opts_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Group> groups_;
  mutable Mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_
      MCN_GUARDED_BY(sessions_mu_);
  SessionId next_session_id_ MCN_GUARDED_BY(sessions_mu_) = 1;
  Stopwatch uptime_;
  /// Cross-query result cache (null unless result_cache_entries > 0) and
  /// the epoch its keys carry (DESIGN.md §13).
  std::unique_ptr<ResultCache> result_cache_;
  std::atomic<uint64_t> network_epoch_{0};
  bool shut_down_ MCN_GUARDED_BY(sessions_mu_) = false;
  /// Service-scoped instrument registry (per-instance so tests and
  /// side-by-side services never double-count), sized one slot per worker.
  obs::Registry registry_;
  Metrics metrics_;
};

}  // namespace mcn::exec

#endif  // MCN_EXEC_QUERY_SERVICE_H_
