#include "mcn/exec/result_cache.h"

#include <utility>

namespace mcn::exec {

QueryResult ResultCache::SanitizedCopy(const QueryResult& result) {
  QueryResult copy;
  copy.status = result.status;
  copy.kind = result.kind;
  copy.skyline = result.skyline;
  copy.topk = result.topk;
  copy.result_hash = result.result_hash;
  copy.exhausted = result.exhausted;
  // copy.stats stays default-constructed: a served-from-cache answer did
  // no I/O and ran on no worker.
  return copy;
}

ResultCache::Lookup ResultCache::Acquire(const std::string& key,
                                         uint64_t epoch) {
  Lookup lookup;
  MutexLock lock(&mu_);
  if (epoch > current_epoch_) current_epoch_ = epoch;
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    lookup.outcome = Lookup::Outcome::kHit;
    lookup.cached = SanitizedCopy(it->second->result);
    return lookup;
  }
  auto flight_it = inflight_.find(key);
  if (flight_it != inflight_.end()) {
    ++stats_.coalesced;
    flight_it->second->waiters.emplace_back();
    lookup.outcome = Lookup::Outcome::kCoalesced;
    lookup.future = flight_it->second->waiters.back().get_future();
    return lookup;
  }
  ++stats_.misses;
  lookup.outcome = Lookup::Outcome::kMiss;
  lookup.flight = std::make_shared<ResultFlight>();
  inflight_.emplace(key, lookup.flight);
  return lookup;
}

size_t ResultCache::Complete(const std::shared_ptr<ResultFlight>& flight,
                             const std::string& key, uint64_t epoch,
                             const QueryResult& result) {
  std::vector<std::promise<QueryResult>> waiters;
  {
    MutexLock lock(&mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
    // No new waiter can attach once the flight is unmapped, so the swap
    // detaches the complete set.
    waiters.swap(flight->waiters);
    if (result.status.ok() && epoch == current_epoch_ && max_entries_ > 0 &&
        map_.find(key) == map_.end()) {
      lru_.push_front(Entry{key, SanitizedCopy(result)});
      map_.emplace(key, lru_.begin());
      ++stats_.insertions;
      while (map_.size() > max_entries_) {
        ++stats_.evictions;
        map_.erase(lru_.back().key);
        lru_.pop_back();
      }
    }
  }
  // Fulfill outside the lock: set_value may run waiter continuations.
  for (auto& waiter : waiters) waiter.set_value(SanitizedCopy(result));
  return waiters.size();
}

void ResultCache::InvalidateAll(uint64_t new_epoch) {
  MutexLock lock(&mu_);
  if (new_epoch > current_epoch_) current_epoch_ = new_epoch;
  ++stats_.invalidations;
  map_.clear();
  lru_.clear();
  // inflight_ deliberately survives: waiters resolve via Complete.
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(&mu_);
  Stats snapshot = stats_;
  snapshot.entries = map_.size();
  snapshot.inflight = inflight_.size();
  return snapshot;
}

}  // namespace mcn::exec
