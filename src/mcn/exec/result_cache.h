// ResultCache: bounded cross-query result sharing with single-flight
// coalescing (DESIGN.md §13). Keys are canonical encodings of a query
// spec plus the service's network epoch; values are the finished
// QueryResult rows + hash. The cache serves three outcomes:
//
//   * kHit        — a stored result for the key; returned immediately.
//   * kCoalesced  — another request for the same key is executing right
//                   now; the caller gets a future resolved by that
//                   flight's Complete (the single-flight guard: N
//                   identical concurrent requests run the query once).
//   * kMiss       — the caller owns the flight token and must run the
//                   query, then call Complete exactly once — on success,
//                   failure, or discard — or coalesced waiters hang.
//
// Epochs: the current epoch is raised by InvalidateAll (the service's
// BumpNetworkEpoch), which drops every stored entry but never touches
// in-flight waiters — they resolve with their flight's result, which is
// simply not stored when its epoch is stale. Failed results are never
// stored either; waiters share the failure.
//
// Served copies (hits and waiter fulfillments) carry the rows, hash and
// status of the original execution but a fresh QueryStats — a cached
// answer did no I/O and ran on no worker, and bench rows stay honest.
//
// Thread-safe; one mutex. Storage is LRU-bounded at max_entries.
#ifndef MCN_EXEC_RESULT_CACHE_H_
#define MCN_EXEC_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/exec/query_service.h"

namespace mcn::exec {

/// One in-flight computation of a cache key — the single-flight token a
/// kMiss hands its owner. `waiters` is guarded by the owning cache's
/// mutex until Complete detaches it.
struct ResultFlight {
  std::vector<std::promise<QueryResult>> waiters;
};

class ResultCache {
 public:
  explicit ResultCache(size_t max_entries) : max_entries_(max_entries) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  struct Lookup {
    enum class Outcome { kHit, kCoalesced, kMiss };
    Outcome outcome = Outcome::kMiss;
    QueryResult cached;                    ///< kHit only
    std::future<QueryResult> future;       ///< kCoalesced only
    std::shared_ptr<ResultFlight> flight;  ///< kMiss only: the owner token
  };
  /// Looks `key` up (the key must already encode `epoch`; the epoch
  /// parameter additionally raises the cache's current epoch so stale
  /// completions racing a bump are not stored). See the file comment for
  /// the three outcomes and the kMiss owner's Complete obligation.
  Lookup Acquire(const std::string& key, uint64_t epoch) MCN_EXCLUDES(mu_);

  /// Publishes `flight`'s result: detaches the flight from the in-flight
  /// table (if it is still the one mapped at `key`), stores the result
  /// when it is OK and `epoch` is still current, and fulfills every
  /// coalesced waiter (outside the lock) with a sanitized copy — also on
  /// failure, so waiters share the flight's fate instead of hanging.
  /// Returns the number of waiters fulfilled. Idempotent per flight only:
  /// call exactly once.
  size_t Complete(const std::shared_ptr<ResultFlight>& flight,
                  const std::string& key, uint64_t epoch,
                  const QueryResult& result) MCN_EXCLUDES(mu_);

  /// Epoch bump: drops every stored entry and raises the current epoch to
  /// `new_epoch` (monotonic). In-flight entries are deliberately kept —
  /// their waiters must still resolve via Complete; the stale results are
  /// just not stored.
  void InvalidateAll(uint64_t new_epoch) MCN_EXCLUDES(mu_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU bound evictions (not invalidations)
    uint64_t invalidations = 0;  ///< InvalidateAll calls
    size_t entries = 0;          ///< stored entries at snapshot time
    size_t inflight = 0;         ///< single-flight computations at snapshot
  };
  Stats stats() const MCN_EXCLUDES(mu_);

  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string key;
    QueryResult result;
  };

  /// Rows + hash + status with a fresh QueryStats (see the file comment).
  static QueryResult SanitizedCopy(const QueryResult& result);

  const size_t max_entries_;
  mutable Mutex mu_;
  /// front = most recently used
  std::list<Entry> lru_ MCN_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      MCN_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<ResultFlight>> inflight_
      MCN_GUARDED_BY(mu_);
  uint64_t current_epoch_ MCN_GUARDED_BY(mu_) = 0;
  Stats stats_ MCN_GUARDED_BY(mu_);
};

}  // namespace mcn::exec

#endif  // MCN_EXEC_RESULT_CACHE_H_
