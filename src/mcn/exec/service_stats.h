// Service-level statistics for the concurrent query executor: per-query
// latency samples aggregated into nearest-rank percentiles plus throughput
// over the measurement window (DESIGN.md §6).
#ifndef MCN_EXEC_SERVICE_STATS_H_
#define MCN_EXEC_SERVICE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcn/obs/metrics.h"
#include "mcn/shard/partition.h"

namespace mcn::exec {

/// Nearest-rank percentile of `sorted` (ascending); p in [0,100]:
/// the smallest element with at least p% of the samples <= it,
/// i.e. sorted[ceil(p/100 * N) - 1]. Returns 0 for an empty sample set.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  auto rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// One shard's slice of a sharded service's aggregation (DESIGN.md §8):
/// what the shard's worker group completed and how often its fetches
/// stayed on the home shard vs crossed a boundary.
struct ShardServiceStats {
  int shard = -1;
  int workers = 0;           ///< workers bound to this shard's group
  uint64_t completed = 0;    ///< queries the group finished OK
  uint64_t buffer_misses = 0;
  uint64_t local_fetches = 0;   ///< record fetches served by the home shard
  uint64_t remote_fetches = 0;  ///< record fetches routed across shards

  double RemoteRatio() const {
    return shard::RemoteRatio(local_fetches, remote_fetches);
  }
};

/// Aggregated snapshot over all workers since service start (or the last
/// ResetStats). Latency covers the full request lifetime: queue wait +
/// execution + modeled I/O stall.
struct ServiceStats {
  uint64_t completed = 0;   ///< queries finished with an OK status
  uint64_t failed = 0;      ///< queries finished with a non-OK status
  /// Failure-model slice (DESIGN.md §10). rejected counts load-shed
  /// submissions (ResourceExhausted at admission; NOT counted in failed —
  /// they never entered a queue). timed_out / cancelled count queries that
  /// resolved DeadlineExceeded / Cancelled (also counted in failed).
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  /// Streaming-session slice (DESIGN.md §9): batches are also counted in
  /// completed/failed; open_sessions is the table size at snapshot time.
  uint64_t session_batches = 0;
  uint64_t open_sessions = 0;
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  /// Landmark prune-index slice (DESIGN.md §12): frontier pops tested
  /// against the lower-bound oracle and the subset it cut before the
  /// adjacency probe. Zero unless ServiceOptions::enable_prune_index.
  uint64_t prune_checked = 0;
  uint64_t prune_cut = 0;
  /// Result-cache slice (DESIGN.md §13). Hits and coalesced waiters never
  /// enter a queue, so — like rejected — they are NOT counted in
  /// completed/failed; these counters are the authoritative
  /// served-from-cache totals. Zero unless result_cache_entries > 0.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  /// Overlapped-I/O slice (DESIGN.md §13): summed per-turn-max charge
  /// units (zero under StallModel::kSerial) and batched replay totals
  /// from the disk layer (zero without replay_batch_io + a file backend).
  uint64_t overlapped_misses = 0;
  uint64_t io_batches = 0;
  uint64_t io_batch_pages = 0;
  double cpu_seconds = 0;    ///< summed per-query execution time
  double stall_seconds = 0;  ///< summed modeled I/O stall time
  double wall_seconds = 0;   ///< measurement window (service uptime)
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double qps = 0;  ///< (completed + failed) / wall_seconds
  /// Sharded services only (one row per shard); empty on flat services.
  std::vector<ShardServiceStats> per_shard;

  /// Fills the percentile fields from raw latency samples (milliseconds).
  void ComputePercentiles(std::vector<double>& latency_ms_samples) {
    std::sort(latency_ms_samples.begin(), latency_ms_samples.end());
    latency_p50_ms = PercentileSorted(latency_ms_samples, 50);
    latency_p95_ms = PercentileSorted(latency_ms_samples, 95);
    latency_p99_ms = PercentileSorted(latency_ms_samples, 99);
  }
};

/// Canonical instrument names of the service registry (DESIGN.md §11).
/// Everything QueryService records lives under "mcn.service." /
/// "mcn.shard<k>." / "mcn.disk." — the names the wire introspection
/// (kGetMetrics) exposes and tools/mcn_stat.py prints.
namespace metric_names {
inline constexpr char kCompleted[] = "mcn.service.completed";
inline constexpr char kFailed[] = "mcn.service.failed";
inline constexpr char kRejected[] = "mcn.service.rejected";
inline constexpr char kTimedOut[] = "mcn.service.timed_out";
inline constexpr char kCancelled[] = "mcn.service.cancelled";
inline constexpr char kSessionBatches[] = "mcn.service.session_batches";
inline constexpr char kBufferMisses[] = "mcn.service.buffer_misses";
inline constexpr char kBufferAccesses[] = "mcn.service.buffer_accesses";
inline constexpr char kPruneChecked[] = "mcn.service.prune_checked";
inline constexpr char kPruneCut[] = "mcn.service.prune_cut";
inline constexpr char kCacheHit[] = "mcn.service.cache_hit";
inline constexpr char kCacheMiss[] = "mcn.service.cache_miss";
inline constexpr char kCacheCoalesced[] = "mcn.service.cache_coalesced";
inline constexpr char kCacheEvictions[] = "mcn.service.cache_evictions";
inline constexpr char kCacheEntries[] = "mcn.service.cache_entries";
inline constexpr char kNetworkEpoch[] = "mcn.service.network_epoch";
inline constexpr char kOverlappedMisses[] = "mcn.service.overlapped_misses";
inline constexpr char kCpuMicros[] = "mcn.service.cpu_micros";
inline constexpr char kStallMicros[] = "mcn.service.stall_micros";
inline constexpr char kQueueMicros[] = "mcn.service.queue_micros";
inline constexpr char kLatencyUs[] = "mcn.service.latency_us";
inline constexpr char kOpenSessions[] = "mcn.service.open_sessions";
inline constexpr char kWallSeconds[] = "mcn.service.wall_seconds";
inline constexpr char kNumShards[] = "mcn.service.num_shards";
inline constexpr char kDiskPageReads[] = "mcn.disk.page_reads";
inline constexpr char kDiskPageWrites[] = "mcn.disk.page_writes";
inline constexpr char kIoBatchReads[] = "mcn.io.batch_reads";
inline constexpr char kIoBatchPages[] = "mcn.io.batch_pages";
inline constexpr char kIoBatchMaxPages[] = "mcn.io.batch_max_pages";

inline std::string Shard(int shard, const char* suffix) {
  return "mcn.shard" + std::to_string(shard) + "." + suffix;
}
}  // namespace metric_names

/// The one merge path (DESIGN.md §11): ServiceStats is a *view* over an
/// obs::Snapshot — QueryService::Snapshot() is exactly
/// ServiceStatsFromSnapshot(MetricsSnapshot()). Latency percentiles come
/// from the log-bucketed histogram (bucket-midpoint estimates, ≤ 12.5%
/// relative error), not raw samples.
inline ServiceStats ServiceStatsFromSnapshot(const obs::Snapshot& snap) {
  namespace mn = metric_names;
  ServiceStats stats;
  stats.completed = snap.CounterValue(mn::kCompleted);
  stats.failed = snap.CounterValue(mn::kFailed);
  stats.rejected = snap.CounterValue(mn::kRejected);
  stats.timed_out = snap.CounterValue(mn::kTimedOut);
  stats.cancelled = snap.CounterValue(mn::kCancelled);
  stats.session_batches = snap.CounterValue(mn::kSessionBatches);
  stats.buffer_misses = snap.CounterValue(mn::kBufferMisses);
  stats.buffer_accesses = snap.CounterValue(mn::kBufferAccesses);
  stats.prune_checked = snap.CounterValue(mn::kPruneChecked);
  stats.prune_cut = snap.CounterValue(mn::kPruneCut);
  stats.cache_hits = snap.CounterValue(mn::kCacheHit);
  stats.cache_misses = snap.CounterValue(mn::kCacheMiss);
  stats.cache_coalesced = snap.CounterValue(mn::kCacheCoalesced);
  stats.overlapped_misses = snap.CounterValue(mn::kOverlappedMisses);
  stats.io_batches = snap.CounterValue(mn::kIoBatchReads);
  stats.io_batch_pages = snap.CounterValue(mn::kIoBatchPages);
  stats.cpu_seconds =
      static_cast<double>(snap.CounterValue(mn::kCpuMicros)) / 1e6;
  stats.stall_seconds =
      static_cast<double>(snap.CounterValue(mn::kStallMicros)) / 1e6;
  stats.open_sessions =
      static_cast<uint64_t>(snap.GaugeValue(mn::kOpenSessions));
  stats.wall_seconds = snap.GaugeValue(mn::kWallSeconds);
  if (stats.wall_seconds > 0) {
    stats.qps = static_cast<double>(stats.completed + stats.failed) /
                stats.wall_seconds;
  }
  if (const obs::HistogramSnapshot* h = snap.FindHistogram(mn::kLatencyUs)) {
    stats.latency_p50_ms = h->ValueAtQuantile(0.50) / 1e3;
    stats.latency_p95_ms = h->ValueAtQuantile(0.95) / 1e3;
    stats.latency_p99_ms = h->ValueAtQuantile(0.99) / 1e3;
  }
  const int num_shards = static_cast<int>(snap.GaugeValue(mn::kNumShards));
  stats.per_shard.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    ShardServiceStats row;
    row.shard = s;
    row.workers =
        static_cast<int>(snap.CounterValue(mn::Shard(s, "workers")));
    row.completed = snap.CounterValue(mn::Shard(s, "completed"));
    row.buffer_misses = snap.CounterValue(mn::Shard(s, "buffer_misses"));
    row.local_fetches = snap.CounterValue(mn::Shard(s, "local_fetches"));
    row.remote_fetches = snap.CounterValue(mn::Shard(s, "remote_fetches"));
    stats.per_shard.push_back(row);
  }
  return stats;
}

}  // namespace mcn::exec

#endif  // MCN_EXEC_SERVICE_STATS_H_
