// Fixed-size thread-pool executor over the lock-free MpmcQueue.
//
// The pool is templated on the task type so move-only payloads (e.g. a
// QueryRequest bundled with its std::promise) ride the queue without
// type-erasure allocations; one Runner functor, supplied at construction,
// executes every task and receives the worker index so callers can keep
// per-worker state (the QueryService's per-worker BufferPool/NetworkReader).
//
// Blocking is layered over the lock-free ring with two counting semaphores
// (items/spaces) — the queue operations themselves stay lock-free, the
// semaphores only park threads when the ring is empty/full.
//
// Lifecycle:
//   Submit()            enqueue; blocks while the ring is full; false once
//                       shutdown has begun.
//   Drain()             wait until every submitted task has finished.
//   Shutdown(drain)     stop accepting; drain=true runs the backlog first,
//                       drain=false hands the backlog to the discard
//                       handler (or simply destroys it) without running it.
//   ~ThreadPool()       Shutdown(/*drain=*/true).
#ifndef MCN_EXEC_THREAD_POOL_H_
#define MCN_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "mcn/common/macros.h"
#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/exec/mpmc_queue.h"

namespace mcn::exec {

/// Minimal counting semaphore (mutex + condvar). The futex-free
/// implementation keeps ThreadSanitizer fully aware of the happens-before
/// edges; the cost is irrelevant next to a query execution.
class Semaphore {
 public:
  explicit Semaphore(ptrdiff_t initial) : count_(initial) {}

  void Acquire() MCN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (count_ <= 0) cv_.Wait(&mu_);
    --count_;
  }

  /// Non-blocking Acquire: takes a ticket iff one is available right now.
  bool TryAcquire() MCN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  void Release(ptrdiff_t n = 1) MCN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      count_ += n;
    }
    if (n == 1) {
      cv_.NotifyOne();
    } else {
      cv_.NotifyAll();
    }
  }

 private:
  Mutex mu_;
  CondVar cv_;
  ptrdiff_t count_ MCN_GUARDED_BY(mu_);
};

/// Fixed pool of `num_workers` threads executing tasks of type `Task`.
/// Task must be movable and default-constructible.
template <typename Task>
class ThreadPool {
 public:
  /// Runner executes one task on worker `worker` (0 <= worker < N). It is
  /// shared by all workers and must be safe to call concurrently.
  using Runner = std::function<void(Task&&, int worker)>;
  /// Called (from the thread driving Shutdown) for every task discarded by
  /// a non-draining shutdown, e.g. to settle a bundled promise with an
  /// error value. May be null: discarded tasks are then just destroyed.
  using DiscardHandler = std::function<void(Task&&)>;

  ThreadPool(int num_workers, size_t queue_capacity, Runner runner,
             DiscardHandler on_discard = nullptr)
      : queue_(queue_capacity),
        items_(0),
        spaces_(static_cast<ptrdiff_t>(queue_.capacity())),
        runner_(std::move(runner)),
        on_discard_(std::move(on_discard)) {
    MCN_CHECK(num_workers > 0);
    MCN_CHECK(runner_ != nullptr);
    threads_.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      threads_.emplace_back([this, w] { WorkerMain(w); });
    }
  }

  ~ThreadPool() { Shutdown(/*drain=*/true); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }
  size_t queue_capacity() const { return queue_.capacity(); }

  /// Total tasks executed by the workers (excludes discarded ones).
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task; blocks while the queue is full (back-pressure).
  /// Returns false — and does not consume the task slot — once shutdown
  /// has begun.
  bool Submit(Task&& task) {
    // The in-flight count lets Shutdown wait out submissions that raced
    // past the accepting_ check, so no task can land in the ring after
    // the workers are gone and the discard sweep has run.
    inflight_submits_.fetch_add(1, std::memory_order_acq_rel);
    if (!accepting_.load(std::memory_order_acquire)) {
      inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    spaces_.Acquire();
    if (!accepting_.load(std::memory_order_acquire)) {
      spaces_.Release();
      inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    {
      MutexLock lock(&pending_mu_);
      ++pending_;
    }
    // A ticket from `spaces_` guarantees room; TryPush only fails
    // transiently while a consumer is still clearing the cell.
    while (!queue_.TryPush(std::move(task))) std::this_thread::yield();
    items_.Release();
    inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  /// Non-blocking Submit for admission control (DESIGN.md §10): never
  /// parks on a full ring. Outcomes: kAccepted (task enqueued), kFull (ring
  /// is full right now — the caller load-sheds), kShutdown (pool no longer
  /// accepts). The task is consumed only on kAccepted.
  enum class TryResult { kAccepted, kFull, kShutdown };
  TryResult TrySubmit(Task&& task) {
    inflight_submits_.fetch_add(1, std::memory_order_acq_rel);
    if (!accepting_.load(std::memory_order_acquire)) {
      inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
      return TryResult::kShutdown;
    }
    if (!spaces_.TryAcquire()) {
      inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
      return TryResult::kFull;
    }
    if (!accepting_.load(std::memory_order_acquire)) {
      spaces_.Release();
      inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
      return TryResult::kShutdown;
    }
    {
      MutexLock lock(&pending_mu_);
      ++pending_;
    }
    while (!queue_.TryPush(std::move(task))) std::this_thread::yield();
    items_.Release();
    inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
    return TryResult::kAccepted;
  }

  /// Blocks until every task submitted so far has finished executing.
  /// (Only meaningful while no concurrent submitter is racing the wait.)
  void Drain() MCN_EXCLUDES(pending_mu_) {
    MutexLock lock(&pending_mu_);
    while (pending_ != 0) pending_cv_.Wait(&pending_mu_);
  }

  /// Stops the pool. Idempotent; see the file comment for drain semantics.
  void Shutdown(bool drain = true) {
    bool was_accepting = accepting_.exchange(false);
    if (!was_accepting && threads_.empty()) return;  // already shut down
    // Wait for racing Submit calls to either land their task (it is then
    // counted in pending_ and drained/discarded below) or observe
    // accepting_ == false and bail. The workers are still running here,
    // so a submitter parked on a full ring always gets unblocked.
    while (inflight_submits_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    if (drain) Drain();
    stop_.store(true, std::memory_order_release);
    items_.Release(static_cast<ptrdiff_t>(threads_.size()));
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    // Discard whatever was not drained.
    Task task;
    size_t discarded = 0;
    while (queue_.TryPop(task)) {
      if (on_discard_) on_discard_(std::move(task));
      task = Task();
      ++discarded;
    }
    if (discarded > 0) {
      MutexLock lock(&pending_mu_);
      MCN_DCHECK(pending_ >= discarded);
      pending_ -= discarded;
      pending_cv_.NotifyAll();
    }
    // Unblock any submitter still parked on a full ring; accepting_ is
    // false, so it will observe the shutdown and return the ticket.
    spaces_.Release(static_cast<ptrdiff_t>(queue_.capacity()));
  }

 private:
  void WorkerMain(int worker) {
    for (;;) {
      items_.Acquire();
      if (stop_.load(std::memory_order_acquire)) return;
      Task task;
      while (!queue_.TryPop(task)) {
        if (stop_.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      runner_(std::move(task), worker);
      spaces_.Release();
      executed_.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock lock(&pending_mu_);
        MCN_DCHECK(pending_ > 0);
        --pending_;
        if (pending_ == 0) pending_cv_.NotifyAll();
      }
    }
  }

  MpmcQueue<Task> queue_;
  Semaphore items_;   ///< tickets for published tasks
  Semaphore spaces_;  ///< tickets for free ring cells
  Runner runner_;
  DiscardHandler on_discard_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stop_{false};
  std::atomic<int> inflight_submits_{0};
  std::atomic<uint64_t> executed_{0};
  Mutex pending_mu_;
  CondVar pending_cv_;
  /// Submitted but not yet finished (or discarded).
  size_t pending_ MCN_GUARDED_BY(pending_mu_) = 0;
  std::vector<std::thread> threads_;
};

}  // namespace mcn::exec

#endif  // MCN_EXEC_THREAD_POOL_H_
