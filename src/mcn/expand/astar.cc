#include "mcn/expand/astar.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>
#include <vector>

#include "mcn/common/macros.h"

namespace mcn::expand {

double AdmissibleCostPerDistance(const graph::MultiCostGraph& g,
                                 int cost_index) {
  MCN_CHECK(cost_index >= 0 && cost_index < g.num_costs());
  double factor = std::numeric_limits<double>::infinity();
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::EdgeRecord& er = g.edge(e);
    double len = g.EuclideanDistance(er.u, er.v);
    if (len <= 0.0) return 0.0;
    factor = std::min(factor, er.w[cost_index] / len);
  }
  if (!std::isfinite(factor)) return 0.0;  // no edges
  return factor;
}

Result<PathResult> AStarShortestPath(const graph::MultiCostGraph& g,
                                     int cost_index, graph::NodeId source,
                                     graph::NodeId target, double factor,
                                     AStarStats* stats) {
  if (source >= g.num_nodes() || target >= g.num_nodes()) {
    return Status::InvalidArgument("AStar: node out of range");
  }
  if (factor < 0.0) {
    return Status::InvalidArgument("AStar: negative heuristic factor");
  }
  AStarStats local;
  auto h = [&](graph::NodeId v) {
    return factor * g.EuclideanDistance(v, target);
  };

  using HeapItem = std::pair<double, graph::NodeId>;  // (g + h, node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::vector<double> dist(g.num_nodes(), kInfCost);
  std::vector<graph::NodeId> parent(g.num_nodes(), graph::kInvalidNode);
  std::vector<bool> settled(g.num_nodes(), false);

  dist[source] = 0.0;
  heap.push({h(source), source});
  ++local.heap_pushes;
  while (!heap.empty()) {
    auto [key, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    ++local.nodes_settled;
    if (v == target) break;
    for (const graph::AdjacentEdge& adj : g.Neighbors(v)) {
      double nd = dist[v] + g.edge(adj.edge).w[cost_index];
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        parent[adj.neighbor] = v;
        heap.push({nd + h(adj.neighbor), adj.neighbor});
        ++local.heap_pushes;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  if (dist[target] == kInfCost) {
    return Status::NotFound("node " + std::to_string(target) +
                            " unreachable from " + std::to_string(source));
  }
  PathResult result;
  result.cost = dist[target];
  for (graph::NodeId v = target; v != graph::kInvalidNode; v = parent[v]) {
    result.nodes.push_back(v);
    if (v == source) break;
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace mcn::expand
