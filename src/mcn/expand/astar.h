// A* point-to-point search (paper §II-C): Dijkstra with an admissible
// lower-bound heuristic. The paper's algorithms deliberately avoid A*
// because generic cost types have no lower bounds; for cost types that DO
// correlate with geometry (length, travel time), this module derives an
// admissible heuristic from the network itself: Euclidean distance times
// the network-wide minimum cost-per-unit-length of the cost type.
#ifndef MCN_EXPAND_ASTAR_H_
#define MCN_EXPAND_ASTAR_H_

#include "mcn/common/result.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::expand {

/// The largest factor c such that c * euclidean(u, v) lower-bounds the
/// cost-`cost_index` network distance for every node pair: the minimum over
/// edges of w_i(e) / euclidean-length(e). Returns 0 for graphs with
/// zero-length or zero-cost edges (degenerating A* to Dijkstra).
double AdmissibleCostPerDistance(const graph::MultiCostGraph& g,
                                 int cost_index);

struct AStarStats {
  uint64_t nodes_settled = 0;
  uint64_t heap_pushes = 0;
};

/// Point-to-point shortest path w.r.t. one cost type using the heuristic
/// `factor * euclidean(v, target)`. `factor` must be admissible (use
/// AdmissibleCostPerDistance); 0 reduces to plain Dijkstra. Results are
/// identical to ShortestPath; only the explored region shrinks.
Result<PathResult> AStarShortestPath(const graph::MultiCostGraph& g,
                                     int cost_index, graph::NodeId source,
                                     graph::NodeId target, double factor,
                                     AStarStats* stats = nullptr);

}  // namespace mcn::expand

#endif  // MCN_EXPAND_ASTAR_H_
