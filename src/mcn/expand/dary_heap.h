// DaryHeap: a cache-friendly 4-ary min-heap replacing std::priority_queue
// on the expansion hot path. A node's four children share one cache line
// of 16-byte HeapItems, so sift-down touches ~half the lines of a binary
// heap at the same comparison count; the backing vector is reserved up
// front so pushes never allocate mid-query (DESIGN.md §4).
//
// The element order is a strict weak ordering supplied via `Before`
// (before(a, b) == a must pop earlier). Pop order for a fixed input set is
// identical to std::priority_queue's because the ordering used by the
// expansions is total (heap keys tie-break on unique ids).
#ifndef MCN_EXPAND_DARY_HEAP_H_
#define MCN_EXPAND_DARY_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "mcn/common/macros.h"

namespace mcn::expand {

template <typename T, typename Before>
class DaryHeap {
 public:
  static constexpr size_t kArity = 4;

  explicit DaryHeap(Before before = Before()) : before_(before) {}

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  void reserve(size_t n) { items_.reserve(n); }

  const T& top() const {
    MCN_DCHECK(!items_.empty());
    return items_[0];
  }

  void push(T item) {
    items_.push_back(std::move(item));
    SiftUp(items_.size() - 1);
  }

  void pop() {
    MCN_DCHECK(!items_.empty());
    if (items_.size() == 1) {
      items_.pop_back();
      return;
    }
    items_[0] = std::move(items_.back());
    items_.pop_back();
    SiftDown(0);
  }

  void clear() { items_.clear(); }

 private:
  void SiftUp(size_t i) {
    T item = std::move(items_[i]);
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!before_(item, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(item);
  }

  void SiftDown(size_t i) {
    T item = std::move(items_[i]);
    const size_t n = items_.size();
    for (;;) {
      size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      size_t last_child = first_child + kArity;
      if (last_child > n) last_child = n;
      size_t best = first_child;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (before_(items_[c], items_[best])) best = c;
      }
      if (!before_(items_[best], item)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(item);
  }

  std::vector<T> items_;
  Before before_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_DARY_HEAP_H_
