#include "mcn/expand/dijkstra.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>
#include <utility>

#include "mcn/common/macros.h"

namespace mcn::expand {
namespace {

using HeapItem = std::pair<double, graph::NodeId>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

void RunDijkstra(const graph::MultiCostGraph& g, int cost_index,
                 std::vector<double>& dist, MinHeap& heap,
                 std::vector<graph::NodeId>* parent) {
  std::vector<bool> settled(g.num_nodes(), false);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (const graph::AdjacentEdge& adj : g.Neighbors(v)) {
      double nd = d + g.edge(adj.edge).w[cost_index];
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        if (parent != nullptr) (*parent)[adj.neighbor] = v;
        heap.push({nd, adj.neighbor});
      }
    }
  }
}

}  // namespace

std::vector<double> ShortestPathCosts(const graph::MultiCostGraph& g,
                                      int cost_index,
                                      const graph::Location& q) {
  MCN_CHECK(cost_index >= 0 && cost_index < g.num_costs());
  std::vector<double> dist(g.num_nodes(), kInfCost);
  MinHeap heap;
  if (q.is_node()) {
    dist[q.node()] = 0.0;
    heap.push({0.0, q.node()});
  } else {
    graph::EdgeKey key = q.edge();
    auto edge = g.FindEdge(key.u, key.v);
    MCN_CHECK(edge.ok());
    double w = g.edge(edge.value()).w[cost_index];
    double du = q.frac() * w;
    double dv = (1.0 - q.frac()) * w;
    dist[key.u] = du;
    dist[key.v] = dv;
    heap.push({du, key.u});
    heap.push({dv, key.v});
  }
  RunDijkstra(g, cost_index, dist, heap, nullptr);
  return dist;
}

double FacilityCost(const graph::MultiCostGraph& g,
                    const std::vector<double>& node_dist, int cost_index,
                    const graph::Location& q, const graph::Facility& p) {
  const graph::EdgeRecord& e = g.edge(p.edge);
  double w = e.w[cost_index];
  double best = kInfCost;
  if (node_dist[e.u] < kInfCost) {
    best = std::min(best, node_dist[e.u] + p.frac * w);
  }
  if (node_dist[e.v] < kInfCost) {
    best = std::min(best, node_dist[e.v] + (1.0 - p.frac) * w);
  }
  if (!q.is_node() && q.edge() == graph::EdgeKey(e.u, e.v)) {
    best = std::min(best, std::fabs(q.frac() - p.frac) * w);
  }
  return best;
}

std::vector<graph::CostVector> AllFacilityCosts(
    const graph::MultiCostGraph& g, const graph::FacilitySet& facilities,
    const graph::Location& q) {
  std::vector<graph::CostVector> costs(
      facilities.size(), graph::CostVector(g.num_costs(), kInfCost));
  for (int i = 0; i < g.num_costs(); ++i) {
    std::vector<double> dist = ShortestPathCosts(g, i, q);
    for (graph::FacilityId f = 0; f < facilities.size(); ++f) {
      costs[f][i] = FacilityCost(g, dist, i, q, facilities[f]);
    }
  }
  return costs;
}

Result<PathResult> ShortestPath(const graph::MultiCostGraph& g,
                                int cost_index, graph::NodeId source,
                                graph::NodeId target) {
  if (source >= g.num_nodes() || target >= g.num_nodes()) {
    return Status::InvalidArgument("ShortestPath: node out of range");
  }
  std::vector<double> dist(g.num_nodes(), kInfCost);
  std::vector<graph::NodeId> parent(g.num_nodes(), graph::kInvalidNode);
  MinHeap heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  RunDijkstra(g, cost_index, dist, heap, &parent);
  if (dist[target] == kInfCost) {
    return Status::NotFound("node " + std::to_string(target) +
                            " unreachable from " + std::to_string(source));
  }
  PathResult result;
  result.cost = dist[target];
  for (graph::NodeId v = target; v != graph::kInvalidNode; v = parent[v]) {
    result.nodes.push_back(v);
    if (v == source) break;
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace mcn::expand
