// In-memory single-cost shortest paths over a MultiCostGraph. Used as the
// correctness oracle for the disk-based algorithms, by the naive baseline,
// and directly by applications that do not need the disk simulation.
#ifndef MCN_EXPAND_DIJKSTRA_H_
#define MCN_EXPAND_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::expand {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// Network distance from `q` to every node w.r.t. cost type `cost_index`
/// (kInfCost where unreachable). When `q` lies on an edge, the search is
/// seeded with the partial weights to both endpoints.
std::vector<double> ShortestPathCosts(const graph::MultiCostGraph& g,
                                      int cost_index,
                                      const graph::Location& q);

/// The smallest cost from `q` to facility `p` given the node-distance array
/// for `cost_index`: min over both endpoint routes, plus the direct
/// along-edge route when `q` lies on p's own edge.
double FacilityCost(const graph::MultiCostGraph& g,
                    const std::vector<double>& node_dist, int cost_index,
                    const graph::Location& q, const graph::Facility& p);

/// The full cost vectors c(p) for every facility: d Dijkstra runs. This is
/// the oracle for the MCN skyline / top-k definitions (paper §III).
std::vector<graph::CostVector> AllFacilityCosts(
    const graph::MultiCostGraph& g, const graph::FacilitySet& facilities,
    const graph::Location& q);

/// A node-to-node shortest path w.r.t. one cost type.
struct PathResult {
  std::vector<graph::NodeId> nodes;  // source first, target last
  double cost = kInfCost;
};

/// Point-to-point Dijkstra with path reconstruction; NotFound when `target`
/// is unreachable from `source`.
Result<PathResult> ShortestPath(const graph::MultiCostGraph& g,
                                int cost_index, graph::NodeId source,
                                graph::NodeId target);

}  // namespace mcn::expand

#endif  // MCN_EXPAND_DIJKSTRA_H_
