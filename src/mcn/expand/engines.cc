#include "mcn/expand/engines.h"

#include <cmath>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::expand {

Result<std::optional<FacilityAtCost>> NnEngine::NextNN(int i) {
  MCN_DCHECK(i >= 0 && i < num_costs());
  for (;;) {
    MCN_ASSIGN_OR_RETURN(ExpansionEvent ev, expansions_[i].Step());
    switch (ev.type) {
      case ExpansionEvent::Type::kFacility:
        return std::optional<FacilityAtCost>(FacilityAtCost{ev.id, ev.cost});
      case ExpansionEvent::Type::kNode:
        continue;
      case ExpansionEvent::Type::kExhausted:
        return std::optional<FacilityAtCost>(std::nullopt);
    }
  }
}

void NnEngine::SetFilter(const FacilityFilter* filter) {
  for (SingleExpansion& e : expansions_) e.set_filter(filter);
}

void NnEngine::SetPruner(NodePruner* pruner) {
  for (SingleExpansion& e : expansions_) e.set_pruner(pruner);
}

void NnEngine::SetCancelToken(const CancelToken* cancel) {
  cancel_ = cancel;
  for (SingleExpansion& e : expansions_) e.set_cancel(cancel);
}

Status NnEngine::Init(std::unique_ptr<FetchProvider> fetch,
                      const graph::Location& q) {
  fetch_ = std::move(fetch);
  query_ = q;
  int d = fetch_->num_costs();
  MCN_ASSIGN_OR_RETURN(FetchProvider::SeedInfo seed, fetch_->GetSeedInfo(q));
  if (!q.is_node()) seed_edge_costs_ = seed.edge_costs;
  expansions_.reserve(d);
  for (int i = 0; i < d; ++i) {
    expansions_.emplace_back(i, fetch_.get());
    SingleExpansion& exp = expansions_.back();
    if (q.is_node()) {
      if (q.node() >= fetch_->num_nodes()) {
        return Status::InvalidArgument("query node out of range");
      }
      exp.SeedNode(q.node(), 0.0);
    } else {
      double w = seed.edge_costs[i];
      exp.SeedNode(q.edge().u, q.frac() * w);
      exp.SeedNode(q.edge().v, (1.0 - q.frac()) * w);
      // Facilities on the query's own edge are reachable directly along the
      // edge (paper §III footnote 3).
      for (const net::FacilityOnEdge& fe : seed.facilities) {
        exp.SeedFacility(fe.facility, std::fabs(q.frac() - fe.frac) * w);
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<LsaEngine>> LsaEngine::Create(
    const net::NetworkReader* reader, const graph::Location& q) {
  MCN_CHECK(reader != nullptr);
  auto engine = std::unique_ptr<LsaEngine>(new LsaEngine());
  engine->reader_ = reader;
  MCN_RETURN_IF_ERROR(
      engine->Init(std::make_unique<DirectFetch>(reader), q));
  return engine;
}

Result<std::unique_ptr<CeaEngine>> CeaEngine::Create(
    const net::NetworkReader* reader, const graph::Location& q) {
  MCN_CHECK(reader != nullptr);
  auto engine = std::unique_ptr<CeaEngine>(new CeaEngine());
  engine->reader_ = reader;
  MCN_RETURN_IF_ERROR(
      engine->Init(std::make_unique<CachedFetch>(reader), q));
  return engine;
}

Result<std::unique_ptr<StripedCeaEngine>> StripedCeaEngine::Create(
    std::vector<const net::NetworkReader*> readers,
    const graph::Location& q) {
  if (readers.empty()) {
    return Status::InvalidArgument(
        "StripedCeaEngine: at least one reader (slot 0) is required");
  }
  for (const net::NetworkReader* r : readers) MCN_CHECK(r != nullptr);
  // The creating thread is the query driver: its fetches (seeding, filter
  // construction) go through slot 0.
  StripedCachedFetch::BindWorkerSlot(0);
  auto engine = std::unique_ptr<StripedCeaEngine>(new StripedCeaEngine());
  engine->readers_ = std::move(readers);
  MCN_RETURN_IF_ERROR(engine->Init(
      std::make_unique<StripedCachedFetch>(engine->readers_), q));
  return engine;
}

Result<std::unique_ptr<MemEngine>> MemEngine::Create(
    const graph::MultiCostGraph* graph, const graph::FacilitySet* facilities,
    const graph::Location& q) {
  auto engine = std::unique_ptr<MemEngine>(new MemEngine());
  engine->graph_ = graph;
  engine->facilities_ = facilities;
  MCN_RETURN_IF_ERROR(
      engine->Init(std::make_unique<MemFetch>(graph, facilities), q));
  return engine;
}

Result<graph::EdgeKey> MemEngine::LocateFacilityEdge(graph::FacilityId f) {
  if (f >= facilities_->size()) {
    return Status::NotFound("facility " + std::to_string(f) +
                            " out of range");
  }
  const graph::EdgeRecord& e = graph_->edge((*facilities_)[f].edge);
  return graph::EdgeKey(e.u, e.v);
}

Result<std::unique_ptr<NnEngine>> MakeEngine(EngineKind kind,
                                             const net::NetworkReader* reader,
                                             const graph::Location& q) {
  if (kind == EngineKind::kLsa) {
    MCN_ASSIGN_OR_RETURN(auto engine, LsaEngine::Create(reader, q));
    return std::unique_ptr<NnEngine>(std::move(engine));
  }
  MCN_ASSIGN_OR_RETURN(auto engine, CeaEngine::Create(reader, q));
  return std::unique_ptr<NnEngine>(std::move(engine));
}

}  // namespace mcn::expand
