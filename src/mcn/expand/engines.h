// NnEngine: d concurrent incremental NN expansions from a query location,
// one per cost type — the machinery both MCN query algorithms drive
// (paper §IV). The engine flavor decides the I/O behavior:
//
//  * LsaEngine — expansions fetch records independently (DirectFetch): a
//    record may be read up to d times (the Local Search Algorithm).
//  * CeaEngine — expansions share a query-lifetime fetch cache
//    (CachedFetch): every record is read at most once (the Combined
//    Expansion Algorithm). Pop order is identical to LSA.
//  * MemEngine — in-memory, zero I/O; used for verification and by callers
//    who do not need the disk simulation.
#ifndef MCN_EXPAND_ENGINES_H_
#define MCN_EXPAND_ENGINES_H_

#include <memory>
#include <optional>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/expand/fetch_provider.h"
#include "mcn/expand/single_expansion.h"
#include "mcn/expand/striped_fetch.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/net/network_reader.h"

namespace mcn::expand {

/// A facility reported by one expansion, with its cost w.r.t. that
/// expansion's cost type.
struct FacilityAtCost {
  graph::FacilityId facility;
  double cost;
};

/// d expansions + shared fetch provider; see file comment.
class NnEngine {
 public:
  virtual ~NnEngine() = default;

  int num_costs() const { return static_cast<int>(expansions_.size()); }
  uint32_t num_facilities() const { return fetch_->num_facilities(); }

  /// Advances expansion `i` until its next NN facility; nullopt = exhausted.
  Result<std::optional<FacilityAtCost>> NextNN(int i);

  /// One settled element for expansion `i` (used by the top-k shrinking
  /// stage, which pops a single node per turn — paper §V).
  Result<ExpansionEvent> Step(int i) { return expansions_[i].Step(); }

  /// Lower bound on the cost of any future event of expansion `i`
  /// (the t_i of the paper's top-k lower-bound pruning).
  double Frontier(int i) const { return expansions_[i].FrontierKey(); }

  bool Exhausted(int i) const { return expansions_[i].exhausted(); }

  /// Installs/clears the shrinking-stage candidate filter on all expansions.
  void SetFilter(const FacilityFilter* filter);

  /// Installs/clears a frontier prune hook on all expansions (DESIGN.md
  /// §12). The pruner must outlive the query; nullptr clears.
  void SetPruner(NodePruner* pruner);

  /// Installs/clears a cooperative cancellation token on all expansions
  /// (DESIGN.md §10). The turn scheduler also checks it at turn barriers.
  /// The token must outlive the query; nullptr clears.
  void SetCancelToken(const CancelToken* cancel);
  const CancelToken* cancel_token() const { return cancel_; }

  /// The edge containing facility `f` (facility-tree probe on disk engines;
  /// charged to the buffer pool).
  virtual Result<graph::EdgeKey> LocateFacilityEdge(graph::FacilityId f) = 0;

  const FetchProvider& fetch() const { return *fetch_; }
  const SingleExpansion& expansion(int i) const { return expansions_[i]; }

  /// The query location the engine was seeded at, and — for on-edge
  /// locations — the query edge's cost vector (dim 0 for node locations).
  /// Retained so the prune oracle can bound dist(q, ·) without re-fetching
  /// seed records.
  const graph::Location& query() const { return query_; }
  const graph::CostVector& seed_edge_costs() const {
    return seed_edge_costs_;
  }

 protected:
  /// Builds d seeded expansions over `fetch` (takes ownership).
  Status Init(std::unique_ptr<FetchProvider> fetch, const graph::Location& q);

  std::unique_ptr<FetchProvider> fetch_;
  std::vector<SingleExpansion> expansions_;
  const CancelToken* cancel_ = nullptr;
  graph::Location query_ = graph::Location::AtNode(graph::kInvalidNode);
  graph::CostVector seed_edge_costs_;
};

/// LSA flavor (independent fetches).
class LsaEngine : public NnEngine {
 public:
  static Result<std::unique_ptr<LsaEngine>> Create(
      const net::NetworkReader* reader, const graph::Location& q);

  Result<graph::EdgeKey> LocateFacilityEdge(graph::FacilityId f) override {
    return reader_->LocateFacilityEdge(f);
  }

 private:
  const net::NetworkReader* reader_ = nullptr;
};

/// CEA flavor (shared fetch cache).
class CeaEngine : public NnEngine {
 public:
  static Result<std::unique_ptr<CeaEngine>> Create(
      const net::NetworkReader* reader, const graph::Location& q);

  Result<graph::EdgeKey> LocateFacilityEdge(graph::FacilityId f) override {
    return reader_->LocateFacilityEdge(f);
  }

  const CachedFetch& cache() const {
    return static_cast<const CachedFetch&>(*fetch_);
  }

 private:
  const net::NetworkReader* reader_ = nullptr;
};

/// CEA flavor over the thread-safe StripedCachedFetch, for intra-query
/// parallel probing (DESIGN.md §7). `readers[s]` serves worker slot `s`
/// (slot 0 = the query-driving thread, 1.. = probe-pool workers); a
/// single-reader engine is the inline/serial configuration of the same
/// schedule. Record contents, and hence expansion behavior, are identical
/// to CeaEngine — only the fetch path is concurrent.
class StripedCeaEngine : public NnEngine {
 public:
  static Result<std::unique_ptr<StripedCeaEngine>> Create(
      std::vector<const net::NetworkReader*> readers,
      const graph::Location& q);

  Result<graph::EdgeKey> LocateFacilityEdge(graph::FacilityId f) override {
    return readers_[0]->LocateFacilityEdge(f);
  }

  StripedCachedFetch* striped_fetch() {
    return static_cast<StripedCachedFetch*>(fetch_.get());
  }
  const StripedCachedFetch& striped_fetch() const {
    return static_cast<const StripedCachedFetch&>(*fetch_);
  }

 private:
  std::vector<const net::NetworkReader*> readers_;
};

/// In-memory flavor (no disk).
class MemEngine : public NnEngine {
 public:
  static Result<std::unique_ptr<MemEngine>> Create(
      const graph::MultiCostGraph* graph,
      const graph::FacilitySet* facilities, const graph::Location& q);

  Result<graph::EdgeKey> LocateFacilityEdge(graph::FacilityId f) override;

 private:
  const graph::MultiCostGraph* graph_ = nullptr;
  const graph::FacilitySet* facilities_ = nullptr;
};

/// Which engine flavor to use for a disk-resident query.
enum class EngineKind { kLsa, kCea };

/// Factory for the disk engines.
Result<std::unique_ptr<NnEngine>> MakeEngine(EngineKind kind,
                                             const net::NetworkReader* reader,
                                             const graph::Location& q);

}  // namespace mcn::expand

#endif  // MCN_EXPAND_ENGINES_H_
