#include "mcn/expand/fetch_provider.h"

#include <string>

#include "mcn/common/macros.h"

namespace mcn::expand {
namespace internal {

Result<FetchProvider::SeedInfo> SeedFromEntries(
    FetchProvider* self, const std::vector<net::AdjEntry>& entries,
    graph::EdgeKey key) {
  // `entries` is the adjacency record of key.u; look for the key.v entry.
  for (const net::AdjEntry& e : entries) {
    if (e.neighbor != key.v) continue;
    FetchProvider::SeedInfo info;
    info.edge_costs = e.w;
    if (!e.fac.empty()) {
      MCN_ASSIGN_OR_RETURN(const auto* facs, self->GetFacilities(key, e.fac));
      info.facilities = *facs;
    }
    return info;
  }
  return Status::NotFound("seed edge (" + std::to_string(key.u) + "," +
                          std::to_string(key.v) + ") not found");
}

}  // namespace internal

using internal::SeedFromEntries;

DirectFetch::DirectFetch(const net::NetworkReader* reader) : reader_(reader) {
  MCN_CHECK(reader != nullptr);
}

Result<const std::vector<net::AdjEntry>*> DirectFetch::GetAdjacency(
    graph::NodeId node) {
  ++stats_.adjacency_requests;
  ++stats_.adjacency_fetches;
  MCN_RETURN_IF_ERROR(reader_->GetAdjacency(node, &adj_scratch_));
  return &adj_scratch_;
}

Result<const std::vector<net::FacilityOnEdge>*> DirectFetch::GetFacilities(
    graph::EdgeKey edge, const net::FacRef& ref) {
  ++stats_.facility_requests;
  ++stats_.facility_fetches;
  MCN_RETURN_IF_ERROR(reader_->GetFacilities(edge, ref, &fac_scratch_));
  return &fac_scratch_;
}

Result<FetchProvider::SeedInfo> DirectFetch::GetSeedInfo(
    const graph::Location& q) {
  if (q.is_node()) return SeedInfo{};
  MCN_ASSIGN_OR_RETURN(const auto* entries, GetAdjacency(q.edge().u));
  return SeedFromEntries(this, *entries, q.edge());
}

CachedFetch::CachedFetch(const net::NetworkReader* reader)
    : reader_(reader),
      adj_row_of_(reader != nullptr ? reader->num_nodes() : 0,
                  FlatU64Map::kNoValue) {
  MCN_CHECK(reader != nullptr);
}

Result<const std::vector<net::AdjEntry>*> CachedFetch::GetAdjacency(
    graph::NodeId node) {
  ++stats_.adjacency_requests;
  if (node >= adj_row_of_.size()) {
    return Status::InvalidArgument("CachedFetch: node out of range");
  }
  uint32_t row = adj_row_of_[node];
  if (row != FlatU64Map::kNoValue) return &adj_rows_[row];
  ++stats_.adjacency_fetches;
  std::vector<net::AdjEntry> entries;
  MCN_RETURN_IF_ERROR(reader_->GetAdjacency(node, &entries));
  row = static_cast<uint32_t>(adj_rows_.size());
  adj_rows_.push_back(std::move(entries));
  adj_row_of_[node] = row;
  return &adj_rows_[row];
}

Result<const std::vector<net::FacilityOnEdge>*> CachedFetch::GetFacilities(
    graph::EdgeKey edge, const net::FacRef& ref) {
  ++stats_.facility_requests;
  uint32_t row = fac_row_of_.Find(edge.Pack());
  if (row != FlatU64Map::kNoValue) return &fac_rows_[row];
  ++stats_.facility_fetches;
  std::vector<net::FacilityOnEdge> facs;
  MCN_RETURN_IF_ERROR(reader_->GetFacilities(edge, ref, &facs));
  row = static_cast<uint32_t>(fac_rows_.size());
  fac_rows_.push_back(std::move(facs));
  fac_row_of_.Insert(edge.Pack(), row);
  return &fac_rows_[row];
}

Result<FetchProvider::SeedInfo> CachedFetch::GetSeedInfo(
    const graph::Location& q) {
  if (q.is_node()) return SeedInfo{};
  MCN_ASSIGN_OR_RETURN(const auto* entries, GetAdjacency(q.edge().u));
  return SeedFromEntries(this, *entries, q.edge());
}

MemFetch::MemFetch(const graph::MultiCostGraph* graph,
                   const graph::FacilitySet* facilities)
    : graph_(graph), facilities_(facilities) {
  MCN_CHECK(graph != nullptr && facilities != nullptr);
  MCN_CHECK(graph->finalized() && facilities->finalized());
}

Result<const std::vector<net::AdjEntry>*> MemFetch::GetAdjacency(
    graph::NodeId node) {
  ++stats_.adjacency_requests;
  if (node >= graph_->num_nodes()) {
    return Status::InvalidArgument("MemFetch: node out of range");
  }
  adj_scratch_.clear();
  for (const graph::AdjacentEdge& adj : graph_->Neighbors(node)) {
    net::AdjEntry e;
    e.neighbor = adj.neighbor;
    e.w = graph_->edge(adj.edge).w;
    // MemFetch has no facility file; encode only the count so the expansion
    // knows whether to ask for the list.
    e.fac.count =
        static_cast<uint16_t>(facilities_->OnEdge(adj.edge).size());
    adj_scratch_.push_back(e);
  }
  return &adj_scratch_;
}

Result<const std::vector<net::FacilityOnEdge>*> MemFetch::GetFacilities(
    graph::EdgeKey edge, const net::FacRef& ref) {
  (void)ref;
  ++stats_.facility_requests;
  MCN_ASSIGN_OR_RETURN(graph::EdgeId eid, graph_->FindEdge(edge.u, edge.v));
  fac_scratch_.clear();
  for (graph::FacilityId f : facilities_->OnEdge(eid)) {
    fac_scratch_.push_back(net::FacilityOnEdge{f, (*facilities_)[f].frac});
  }
  return &fac_scratch_;
}

Result<FetchProvider::SeedInfo> MemFetch::GetSeedInfo(
    const graph::Location& q) {
  if (q.is_node()) return SeedInfo{};
  graph::EdgeKey key = q.edge();
  MCN_ASSIGN_OR_RETURN(graph::EdgeId eid, graph_->FindEdge(key.u, key.v));
  SeedInfo info;
  info.edge_costs = graph_->edge(eid).w;
  for (graph::FacilityId f : facilities_->OnEdge(eid)) {
    info.facilities.push_back(net::FacilityOnEdge{f, (*facilities_)[f].frac});
  }
  return info;
}

}  // namespace mcn::expand
