// FetchProvider: the data-access seam between the incremental expansions and
// the network. Three implementations:
//
//  * DirectFetch  — every request goes to the NetworkReader (through the
//                   buffer pool). d expansions sharing one DirectFetch is
//                   exactly LSA: the same record may be read up to d times.
//  * CachedFetch  — a query-lifetime shared cache in front of the reader:
//                   each adjacency record and each facility record is
//                   fetched at most once per query. This realizes CEA's
//                   information sharing (paper §IV-B; DESIGN.md §3).
//  * MemFetch     — serves everything from the in-memory graph; zero I/O.
#ifndef MCN_EXPAND_FETCH_PROVIDER_H_
#define MCN_EXPAND_FETCH_PROVIDER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mcn/common/flat_u64_map.h"
#include "mcn/common/result.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/format.h"
#include "mcn/net/network_reader.h"

namespace mcn::expand {

/// Abstract access to adjacency and facility records during a query.
class FetchProvider {
 public:
  struct Stats {
    /// Logical requests.
    uint64_t adjacency_requests = 0;
    uint64_t facility_requests = 0;
    /// Requests served by the underlying store (== requests for
    /// DirectFetch; <= requests for CachedFetch; 0 for MemFetch).
    uint64_t adjacency_fetches = 0;
    uint64_t facility_fetches = 0;
  };

  virtual ~FetchProvider() = default;

  virtual int num_costs() const = 0;
  virtual uint32_t num_nodes() const = 0;
  virtual uint32_t num_facilities() const = 0;

  /// Adjacency entries of `node`. The returned pointer stays valid until the
  /// next GetAdjacency call on this provider.
  virtual Result<const std::vector<net::AdjEntry>*> GetAdjacency(
      graph::NodeId node) = 0;

  /// Facility list of `edge` (whose adjacency entry carried `ref`). The
  /// returned pointer stays valid until the next GetFacilities call.
  virtual Result<const std::vector<net::FacilityOnEdge>*> GetFacilities(
      graph::EdgeKey edge, const net::FacRef& ref) = 0;

  /// Data needed to seed expansions at `q`: the edge's cost vector and its
  /// facility list (empty for node locations).
  struct SeedInfo {
    graph::CostVector edge_costs;
    std::vector<net::FacilityOnEdge> facilities;
  };
  virtual Result<SeedInfo> GetSeedInfo(const graph::Location& q) = 0;

  /// Virtual so concurrent providers (StripedCachedFetch) can materialize
  /// atomic counters on demand. Call only from the query-driving thread
  /// while no probe is in flight.
  virtual const Stats& stats() const { return stats_; }
  virtual void ResetStats() { stats_ = Stats(); }

 protected:
  Stats stats_;
};

namespace internal {
/// Shared GetSeedInfo logic: find `key`'s entry among the adjacency record
/// of key.u, then load its facilities through `self`.
Result<FetchProvider::SeedInfo> SeedFromEntries(
    FetchProvider* self, const std::vector<net::AdjEntry>& entries,
    graph::EdgeKey key);
}  // namespace internal

/// LSA-style pass-through provider.
class DirectFetch : public FetchProvider {
 public:
  explicit DirectFetch(const net::NetworkReader* reader);

  int num_costs() const override { return reader_->num_costs(); }
  uint32_t num_nodes() const override { return reader_->num_nodes(); }
  uint32_t num_facilities() const override {
    return reader_->num_facilities();
  }

  Result<const std::vector<net::AdjEntry>*> GetAdjacency(
      graph::NodeId node) override;
  Result<const std::vector<net::FacilityOnEdge>*> GetFacilities(
      graph::EdgeKey edge, const net::FacRef& ref) override;
  Result<SeedInfo> GetSeedInfo(const graph::Location& q) override;

 private:
  const net::NetworkReader* reader_;
  std::vector<net::AdjEntry> adj_scratch_;
  std::vector<net::FacilityOnEdge> fac_scratch_;
};

/// CEA-style caching provider: each record is fetched from the reader at
/// most once per provider lifetime (i.e. per query). The adjacency cache is
/// a NodeId-indexed flat directory (one u32 per node) and the facility
/// cache an open-addressed packed-edge table, so the per-request lookup is
/// an array index / one probe chain instead of an unordered_map find
/// (DESIGN.md §4).
class CachedFetch : public FetchProvider {
 public:
  explicit CachedFetch(const net::NetworkReader* reader);

  int num_costs() const override { return reader_->num_costs(); }
  uint32_t num_nodes() const override { return reader_->num_nodes(); }
  uint32_t num_facilities() const override {
    return reader_->num_facilities();
  }

  Result<const std::vector<net::AdjEntry>*> GetAdjacency(
      graph::NodeId node) override;
  Result<const std::vector<net::FacilityOnEdge>*> GetFacilities(
      graph::EdgeKey edge, const net::FacRef& ref) override;
  Result<SeedInfo> GetSeedInfo(const graph::Location& q) override;

  size_t cached_nodes() const { return adj_rows_.size(); }
  size_t cached_edges() const { return fac_rows_.size(); }

 private:
  const net::NetworkReader* reader_;
  // Row storage is a deque so cached rows keep stable addresses as the
  // cache grows — stronger than the base contract's "valid until the next
  // Get* call", and what a future parallel executor will want.
  std::vector<uint32_t> adj_row_of_;  ///< NodeId-indexed; kNoValue = absent
  std::deque<std::vector<net::AdjEntry>> adj_rows_;
  FlatU64Map fac_row_of_;  ///< packed EdgeKey -> row in fac_rows_
  std::deque<std::vector<net::FacilityOnEdge>> fac_rows_;
};

/// In-memory provider over MultiCostGraph + FacilitySet (no disk at all).
class MemFetch : public FetchProvider {
 public:
  MemFetch(const graph::MultiCostGraph* graph,
           const graph::FacilitySet* facilities);

  int num_costs() const override { return graph_->num_costs(); }
  uint32_t num_nodes() const override { return graph_->num_nodes(); }
  uint32_t num_facilities() const override {
    return static_cast<uint32_t>(facilities_->size());
  }

  Result<const std::vector<net::AdjEntry>*> GetAdjacency(
      graph::NodeId node) override;
  Result<const std::vector<net::FacilityOnEdge>*> GetFacilities(
      graph::EdgeKey edge, const net::FacRef& ref) override;
  Result<SeedInfo> GetSeedInfo(const graph::Location& q) override;

 private:
  const graph::MultiCostGraph* graph_;
  const graph::FacilitySet* facilities_;
  std::vector<net::AdjEntry> adj_scratch_;
  std::vector<net::FacilityOnEdge> fac_scratch_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_FETCH_PROVIDER_H_
