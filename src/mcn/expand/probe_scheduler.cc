#include "mcn/expand/probe_scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "mcn/common/macros.h"
#include "mcn/expand/striped_fetch.h"
#include "mcn/storage/page.h"

namespace mcn::expand {

ParallelProbeScheduler::ParallelProbeScheduler(NnEngine* engine,
                                               ProbePool* pool,
                                               StripedCachedFetch* striped,
                                               Mode mode)
    : engine_(engine), pool_(pool), striped_(striped), mode_(mode) {
  MCN_CHECK(engine_ != nullptr);
  if (pool_ != nullptr) {
    // Pooled probes run on worker threads; the provider must be the
    // thread-safe one, with a reader slot per worker plus the caller's.
    MCN_CHECK(striped_ != nullptr);
    MCN_CHECK(striped_->num_reader_slots() >= pool_->num_workers() + 1);
  }
}

void ParallelProbeScheduler::Run(ProbeTask&& task, int worker) {
  task.scheduler->ExecuteFromPool(task.slot, worker);
}

void ParallelProbeScheduler::Discard(ProbeTask&& task) {
  task.scheduler->AbortFromPool(task.slot);
}

void ParallelProbeScheduler::Execute(uint32_t slot, int reader_slot) {
  Probe& probe = probes_[slot];
  if (striped_ != nullptr) StripedCachedFetch::BindWorkerSlot(reader_slot);
  if (io_.slot_misses == nullptr) {
    ExecuteOp(probe);
    return;
  }
  // Turn I/O armed: bracket the probe with its reader slot's miss counter.
  // Probes sharing a worker run sequentially on that thread, so the delta
  // is exactly this probe's misses.
  const uint64_t before = io_.slot_misses(reader_slot);
  ExecuteOp(probe);
  probe.miss_delta = io_.slot_misses(reader_slot) - before;
}

void ParallelProbeScheduler::ExecuteOp(Probe& probe) {
  if (op_ == Op::kNextNN) {
    auto nn = engine_->NextNN(probe.expansion);
    if (nn.ok()) {
      probe.nn = std::move(nn).value();
    } else {
      probe.status = nn.status();
    }
    return;
  }
  for (int s = 0; s < stride_; ++s) {
    auto ev = engine_->Step(probe.expansion);
    if (!ev.ok()) {
      probe.status = ev.status();
      return;
    }
    probe.events.push_back(ev.value());
    if (ev.value().type == ExpansionEvent::Type::kExhausted) return;
  }
}

void ParallelProbeScheduler::ExecuteFromPool(uint32_t slot, int worker) {
  // Re-install the owning query's trace context on this pool thread so
  // fetch events recorded under this probe attribute to the right query.
  const obs::TraceContextScope trace_scope(trace_ctx_);
  Execute(slot, worker + 1);
  {
    MutexLock lock(&mu_);
    MCN_DCHECK(outstanding_ > 0);
    --outstanding_;
    if (outstanding_ == 0) cv_.NotifyAll();
  }
}

void ParallelProbeScheduler::AbortFromPool(uint32_t slot) {
  // Only reachable when the pool shuts down non-draining mid-turn
  // (defensive; rigs drain queries before tearing the pool down). Unblock
  // the barrier with an error instead of hanging it.
  probes_[slot].status = Status::FailedPrecondition(
      "probe discarded by pool shutdown");
  MutexLock lock(&mu_);
  MCN_DCHECK(outstanding_ > 0);
  --outstanding_;
  if (outstanding_ == 0) cv_.NotifyAll();
}

Status ParallelProbeScheduler::RunTurn(Op op, const std::vector<int>& targets,
                                       int stride) {
  MCN_CHECK(!targets.empty());
  MCN_CHECK(stride >= 1);
  // Turn-barrier cancellation point (DESIGN.md §10): an expired query fails
  // the turn before any probe is dispatched, so no pool worker starts work
  // on its behalf.
  if (const CancelToken* cancel = engine_->cancel_token(); cancel != nullptr) {
    MCN_RETURN_IF_ERROR(cancel->Check());
  }
  const size_t n = targets.size();
  for (size_t k = 0; k < n; ++k) {
    MCN_DCHECK(targets[k] >= 0 && targets[k] < engine_->num_costs());
    MCN_DCHECK(k == 0 || targets[k] > targets[k - 1]);  // determinism
  }
  // Capture the caller's trace context for the pool threads and span the
  // whole turn (dispatch + barrier): arg0 = width, arg1 = pooled.
  trace_ctx_ = obs::CurrentTraceContext();
  const bool pooled = pool_ != nullptr && n > 1;
  obs::TraceSpan turn_span(obs::EventType::kExpansionTurn,
                           static_cast<uint64_t>(n));
  turn_span.set_arg1(pooled ? 1 : 0);
  ++stats_.turns;
  stats_.probes += n;
  stats_.max_width = std::max(stats_.max_width, static_cast<uint64_t>(n));

  op_ = op;
  stride_ = stride;
  // Reset the probe slots in place. NextNN turns run allocation-free in
  // steady state; Step turns hand each probe's event buffer to the caller
  // (one vector allocation per probe per turn, amortized over the
  // stride's settles — same count a copy-out would pay).
  probes_.resize(n);
  for (size_t k = 0; k < n; ++k) {
    Probe& probe = probes_[k];
    probe.expansion = targets[k];
    probe.status = Status::OK();
    probe.nn.reset();
    probe.events.clear();
    probe.miss_delta = 0;
  }

  if (pool_ == nullptr || n == 1) {
    // Inline: same schedule, caller thread, reader slot 0.
    for (uint32_t slot = 0; slot < n; ++slot) Execute(slot, 0);
  } else {
    stats_.pooled_probes += n;
    {
      MutexLock lock(&mu_);
      outstanding_ = n;
    }
    for (uint32_t slot = 0; slot < n; ++slot) {
      if (!pool_->Submit(ProbeTask{this, slot})) {
        // Pool shut down under us: settle this probe's barrier ticket with
        // an error; the turn fails after the in-flight probes finish.
        probes_[slot].status =
            Status::FailedPrecondition("probe pool is shut down");
        MutexLock lock(&mu_);
        --outstanding_;
        if (outstanding_ == 0) cv_.NotifyAll();
      }
    }
    MutexLock lock(&mu_);
    while (outstanding_ != 0) cv_.Wait(&mu_);
  }

  for (const Probe& probe : probes_) {
    if (!probe.status.ok()) return probe.status;
  }
  if (io_.enabled()) {
    MCN_RETURN_IF_ERROR(FinishTurnIo());
  }
  return Status::OK();
}

Status ParallelProbeScheduler::FinishTurnIo() {
  uint64_t turn_max = 0;
  for (const Probe& probe : probes_) {
    stats_.probe_misses += probe.miss_delta;
    turn_max = std::max(turn_max, probe.miss_delta);
  }
  stats_.overlapped_misses += turn_max;
  if (io_.batch_disk != nullptr && io_.drain_missed != nullptr) {
    batch_ids_.clear();
    io_.drain_missed(&batch_ids_);
    if (!batch_ids_.empty()) {
      obs::TraceSpan batch_span(obs::EventType::kIoBatch,
                                static_cast<uint64_t>(batch_ids_.size()));
      batch_span.set_arg1(turn_max);
      batch_buf_.resize(batch_ids_.size() * storage::kPageSize);
      batch_ptrs_.resize(batch_ids_.size());
      for (size_t i = 0; i < batch_ids_.size(); ++i) {
        batch_ptrs_[i] = batch_buf_.data() + i * storage::kPageSize;
      }
      MCN_RETURN_IF_ERROR(
          io_.batch_disk->ReadPagesBatch(batch_ids_, batch_ptrs_));
      ++stats_.io_batches;
      stats_.io_batch_pages += batch_ids_.size();
    }
  }
  if (turn_max > 0 && io_.sleep_latency_ms > 0) {
    obs::TraceSpan stall_span(obs::EventType::kStall, turn_max);
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        static_cast<double>(turn_max) * io_.sleep_latency_ms));
    stats_.slept_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return Status::OK();
}

std::vector<uint32_t> ParallelProbeScheduler::DeliveryOrder() const {
  std::vector<uint32_t> order(probes_.size());
  for (uint32_t k = 0; k < order.size(); ++k) order[k] = k;
  if (mode_ == Mode::kFrontierOrdered) {
    auto key = [&](uint32_t slot) {
      const Probe& p = probes_[slot];
      if (op_ == Op::kNextNN) {
        return p.nn.has_value() ? p.nn->cost
                                : std::numeric_limits<double>::infinity();
      }
      // A probe's events are non-decreasing in cost: order by the first.
      return p.events.empty() ||
                     p.events[0].type == ExpansionEvent::Type::kExhausted
                 ? std::numeric_limits<double>::infinity()
                 : p.events[0].cost;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       double ka = key(a), kb = key(b);
                       if (ka != kb) return ka < kb;
                       return probes_[a].expansion < probes_[b].expansion;
                     });
  }
  return order;
}

Result<std::vector<ParallelProbeScheduler::NextNNOutcome>>
ParallelProbeScheduler::NextNNTurn(const std::vector<int>& targets) {
  MCN_RETURN_IF_ERROR(RunTurn(Op::kNextNN, targets, /*stride=*/1));
  std::vector<NextNNOutcome> out;
  out.reserve(probes_.size());
  for (uint32_t slot : DeliveryOrder()) {
    out.push_back(NextNNOutcome{probes_[slot].expansion, probes_[slot].nn});
  }
  return out;
}

Result<std::vector<ParallelProbeScheduler::StepOutcome>>
ParallelProbeScheduler::StepTurn(const std::vector<int>& targets,
                                 int stride) {
  MCN_RETURN_IF_ERROR(RunTurn(Op::kStep, targets, stride));
  std::vector<StepOutcome> out;
  out.reserve(probes_.size());
  for (uint32_t slot : DeliveryOrder()) {
    out.push_back(StepOutcome{probes_[slot].expansion,
                              std::move(probes_[slot].events)});
  }
  return out;
}

}  // namespace mcn::expand
