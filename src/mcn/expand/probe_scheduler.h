// ParallelProbeScheduler: intra-query parallel d-expansion (DESIGN.md §7).
//
// The serial query processors advance one expansion per probing turn; a
// single query's latency is therefore the *sum* of its probes' I/O stalls.
// The scheduler replaces that schedule with a deterministic turn-barrier
// schedule: each turn advances a whole set of expansions — one probe each,
// executed concurrently on a ThreadPool<ProbeTask> — and only hands the
// buffered outcomes to the caller once every probe of the turn has
// finished (the barrier). The caller then processes the outcomes in a
// deterministic order and decides the next turn's target set.
//
// Determinism contract (what makes parallelism 1, 2 and 4 byte-identical):
//  * the target set of a turn is a pure function of algorithm state, which
//    is mutated only between turns (on the caller thread, under the
//    barrier's happens-before edges);
//  * a probe touches only its own SingleExpansion plus the shared
//    thread-safe fetch provider, whose returned record contents are
//    independent of thread interleaving (StripedCachedFetch);
//  * shared read-only inputs of a probe — the FacilityFilter above all —
//    must not be mutated while a turn is in flight (callers mutate them
//    only between turns);
//  * outcomes are delivered in a deterministic order: ascending expansion
//    index (kTurnBarrier), or ascending (event cost, index) for the
//    relaxed frontier-ordered ablation mode.
// Thread count therefore changes only *physical* overlap: results, logical
// fetch-request counts and (thanks to the single-flight guard) physical
// fetch counts are identical for every parallelism level.
//
// With a null pool the scheduler executes the same schedule inline on the
// caller thread — the serial anchor the differential suite compares
// against.
#ifndef MCN_EXPAND_PROBE_SCHEDULER_H_
#define MCN_EXPAND_PROBE_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/result.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/exec/thread_pool.h"
#include "mcn/expand/engines.h"
#include "mcn/obs/trace.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::expand {

class ParallelProbeScheduler;
class StripedCachedFetch;

/// What rides the probe pool's MPMC queue: one probe of one turn.
struct ProbeTask {
  ParallelProbeScheduler* scheduler = nullptr;
  uint32_t slot = 0;  ///< index into the turn's probe array
};

/// Pool type shared by every scheduler bound to it. Construct with
/// &ParallelProbeScheduler::Run and &ParallelProbeScheduler::Discard.
using ProbePool = exec::ThreadPool<ProbeTask>;

class ParallelProbeScheduler {
 public:
  /// Outcome ordering within a turn. kTurnBarrier = ascending expansion
  /// index (the parallel analogue of round-robin); kFrontierOrdered =
  /// ascending (event cost, index) — the relaxed mode of the ablation
  /// bench. Both are deterministic.
  enum class Mode { kTurnBarrier, kFrontierOrdered };

  struct Stats {
    uint64_t turns = 0;
    uint64_t probes = 0;
    uint64_t pooled_probes = 0;  ///< probes executed on the pool
    uint64_t max_width = 0;      ///< widest turn
    // Turn-level I/O accounting (DESIGN.md §13; all zero unless SetTurnIo
    // armed the scheduler).
    uint64_t probe_misses = 0;      ///< sum of per-probe miss deltas
    uint64_t overlapped_misses = 0; ///< sum over turns of max probe delta
    uint64_t io_batches = 0;        ///< batched turn replays issued
    uint64_t io_batch_pages = 0;    ///< pages replayed through batches
    double slept_seconds = 0;       ///< measured per-turn modeled sleeps
  };

  /// Per-turn overlapped-I/O options (DESIGN.md §13). With slot_misses
  /// set, each probe samples its reader slot's cumulative buffer misses
  /// on the executing thread (before/after — per-worker probes run
  /// sequentially, so the delta is well defined), and each turn
  /// accumulates the max delta into Stats::overlapped_misses: the
  /// overlapped stall model's unit of charge, replacing the serial
  /// model's per-miss sum. Optionally the barrier sleeps the turn's max
  /// (sleep_latency_ms) and/or physically replays the turn's misses as
  /// one DiskManager::ReadPagesBatch (drain_missed + batch_disk).
  struct TurnIoOptions {
    /// Cumulative buffer misses visible to a reader slot (0 = caller
    /// thread, worker + 1 = pool workers). Called from the executing
    /// thread; must only touch that slot's thread-confined pool.
    std::function<uint64_t(int reader_slot)> slot_misses;
    /// Appends every reader slot's logged missed PageIds (clearing the
    /// logs). Called at the barrier on the caller thread — the barrier's
    /// happens-before edges make the cross-slot drain safe.
    std::function<void(std::vector<storage::PageId>*)> drain_missed;
    /// Disk to replay drained misses on (null = no physical replay).
    storage::DiskManager* batch_disk = nullptr;
    /// Modeled per-miss stall slept at each barrier for the turn's max
    /// delta (<= 0 disables the sleep; the service then charges stall
    /// without simulating it).
    double sleep_latency_ms = 0.0;

    bool enabled() const { return slot_misses != nullptr; }
  };
  /// Arms (or disarms, with a default-constructed value) turn-level I/O.
  /// Call between turns only.
  void SetTurnIo(TurnIoOptions io) { io_ = std::move(io); }

  /// `engine` must be backed by a thread-safe provider when `pool` is not
  /// null (pass its StripedCachedFetch as `striped` so pooled probes bind
  /// their reader slot; readers must cover pool->num_workers() + 1 slots).
  /// A null `pool` executes every turn inline on the caller thread.
  ParallelProbeScheduler(NnEngine* engine, ProbePool* pool,
                         StripedCachedFetch* striped,
                         Mode mode = Mode::kTurnBarrier);

  /// ThreadPool runner / discard handler for ProbeTask.
  static void Run(ProbeTask&& task, int worker);
  static void Discard(ProbeTask&& task);

  /// One NextNN per target expansion (targets strictly ascending).
  struct NextNNOutcome {
    int expansion = -1;
    std::optional<FacilityAtCost> nn;  ///< nullopt = exhausted
  };
  Result<std::vector<NextNNOutcome>> NextNNTurn(
      const std::vector<int>& targets);

  /// Up to `stride` Steps (settled elements) per target expansion; a
  /// probe stops early at exhaustion. Stride 1 is the balanced default
  /// building block; larger strides amortize the barrier over several
  /// settles per probe (QueryOptions::turn_stride) at the cost of coarser
  /// event batching. Outcomes are expansion-major; each expansion's
  /// events are in execution order.
  struct StepOutcome {
    int expansion = -1;
    std::vector<ExpansionEvent> events;
  };
  Result<std::vector<StepOutcome>> StepTurn(const std::vector<int>& targets,
                                            int stride = 1);

  NnEngine* engine() const { return engine_; }
  Mode mode() const { return mode_; }
  /// Probes that can run physically concurrently (1 for the inline mode).
  int parallelism() const { return pool_ != nullptr ? pool_->num_workers() : 1; }
  const Stats& stats() const { return stats_; }

 private:
  enum class Op { kNextNN, kStep };

  struct Probe {
    int expansion = -1;
    Status status = Status::OK();
    std::optional<FacilityAtCost> nn;
    std::vector<ExpansionEvent> events;
    uint64_t miss_delta = 0;  ///< this probe's buffer-miss delta (turn I/O)
  };

  /// Executes probe `slot` of the current turn; `reader_slot` selects the
  /// StripedCachedFetch reader (0 = caller thread, worker + 1 otherwise).
  void Execute(uint32_t slot, int reader_slot);
  /// The engine call of one probe (Execute minus slot binding/sampling).
  void ExecuteOp(Probe& probe);
  void ExecuteFromPool(uint32_t slot, int worker);
  void AbortFromPool(uint32_t slot);
  Status RunTurn(Op op, const std::vector<int>& targets, int stride);
  /// Barrier-time turn I/O: max-delta accounting, optional batched replay
  /// (kIoBatch span) and optional modeled sleep. Caller thread only.
  Status FinishTurnIo();
  /// Outcome delivery order per `mode_`: identity for kTurnBarrier (slots
  /// are already ascending by expansion), cost-sorted for kFrontierOrdered.
  std::vector<uint32_t> DeliveryOrder() const;

  NnEngine* engine_;
  ProbePool* pool_;
  StripedCachedFetch* striped_;
  Mode mode_;

  Op op_ = Op::kNextNN;
  int stride_ = 1;
  /// The owning query's trace context, captured from the caller thread at
  /// each turn and re-installed on probe-pool threads so per-probe fetch
  /// events attribute to the right query (obs/trace.h). Written before the
  /// turn's probes are dispatched (happens-before via the pool's queue).
  obs::TraceContext trace_ctx_;
  std::vector<Probe> probes_;
  Mutex mu_;
  CondVar cv_;
  /// Barrier counter: probes of the current turn not yet finished.
  size_t outstanding_ MCN_GUARDED_BY(mu_) = 0;
  Stats stats_;
  TurnIoOptions io_;
  // Scratch for batched turn replay (reused across turns).
  std::vector<storage::PageId> batch_ids_;
  std::vector<std::byte> batch_buf_;
  std::vector<std::byte*> batch_ptrs_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_PROBE_SCHEDULER_H_
