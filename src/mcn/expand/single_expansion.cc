#include "mcn/expand/single_expansion.h"

#include <limits>

#include "mcn/common/macros.h"

namespace mcn::expand {

void FacilityFilter::Add(graph::EdgeKey edge, graph::FacilityId fac) {
  if (fac >= fac_entries_.size()) fac_entries_.resize(fac + 1);
  FacEntry& entry = fac_entries_[fac];
  if (entry.edge_packed != FlatU64Map::kEmptyKey) {
    // A facility lies on exactly one edge: a re-add under a different edge
    // means the caller's bookkeeping is corrupt.
    MCN_DCHECK(entry.edge_packed == edge.Pack());
    return;
  }
  uint32_t row = edges_.Find(edge.Pack());
  if (row == FlatU64Map::kNoValue) {
    row = static_cast<uint32_t>(edge_rows_.size());
    edge_rows_.emplace_back();
    edges_.Insert(edge.Pack(), row);
  }
  entry.edge_packed = edge.Pack();
  entry.pos = static_cast<uint32_t>(edge_rows_[row].size());
  edge_rows_[row].push_back(fac);
  ++num_facilities_;
}

bool FacilityFilter::Remove(graph::FacilityId fac) {
  if (fac >= fac_entries_.size()) return false;
  FacEntry& entry = fac_entries_[fac];
  if (entry.edge_packed == FlatU64Map::kEmptyKey) return false;
  uint32_t row = edges_.Find(entry.edge_packed);
  MCN_DCHECK(row != FlatU64Map::kNoValue);
  std::vector<graph::FacilityId>& vec = edge_rows_[row];
  MCN_DCHECK(entry.pos < vec.size() && vec[entry.pos] == fac);
  graph::FacilityId moved = vec.back();
  vec[entry.pos] = moved;
  fac_entries_[moved].pos = entry.pos;
  vec.pop_back();
  // The (possibly now empty) edge row is retained: ContainsEdge checks
  // emptiness, and a later Add may refill it without re-probing the map.
  entry.edge_packed = FlatU64Map::kEmptyKey;
  --num_facilities_;
  return true;
}

SingleExpansion::SingleExpansion(int cost_index, FetchProvider* fetch)
    : cost_index_(cost_index), fetch_(fetch) {
  MCN_CHECK(fetch != nullptr);
  MCN_CHECK(cost_index >= 0 && cost_index < fetch->num_costs());
  node_dist_.assign(fetch->num_nodes(),
                    std::numeric_limits<double>::infinity());
  fac_dist_.assign(fetch->num_facilities(),
                   std::numeric_limits<double>::infinity());
  // Queries are local: a few thousand frontier entries cover typical runs,
  // and the rare deeper expansion grows geometrically (no per-push
  // allocation in steady state).
  heap_.reserve(4096);
}

void SingleExpansion::PushNode(graph::NodeId v, double key) {
  // dist == kSettled (settled) also fails this test: key is non-negative.
  if (key >= node_dist_[v]) return;
  node_dist_[v] = key;
  heap_.push(HeapItem{key, v});
  ++stats_.heap_pushes;
}

void SingleExpansion::PushFacility(graph::FacilityId f, double key) {
  if (key >= fac_dist_[f]) return;
  fac_dist_[f] = key;
  heap_.push(HeapItem{key, kFacilityTag | f});
  ++stats_.heap_pushes;
}

void SingleExpansion::SeedNode(graph::NodeId v, double cost) {
  PushNode(v, cost);
}

void SingleExpansion::SeedFacility(graph::FacilityId f, double cost) {
  PushFacility(f, cost);
}

Status SingleExpansion::ExpandNode(graph::NodeId v, double key) {
  MCN_ASSIGN_OR_RETURN(const auto* entries, fetch_->GetAdjacency(v));
  for (const net::AdjEntry& e : *entries) {
    double w = e.w[cost_index_];
    PushNode(e.neighbor, key + w);
    if (e.fac.count == 0) continue;

    graph::EdgeKey edge(v, e.neighbor);
    if (filter_ != nullptr && !filter_->ContainsEdge(edge)) continue;

    MCN_ASSIGN_OR_RETURN(const auto* facs, fetch_->GetFacilities(edge, e.fac));
    for (const net::FacilityOnEdge& fe : *facs) {
      if (filter_ != nullptr && !filter_->Allows(edge, fe.facility)) continue;
      // fe.frac is measured from the canonical endpoint edge.u.
      double frac_from_v = (v == edge.u) ? fe.frac : 1.0 - fe.frac;
      PushFacility(fe.facility, key + frac_from_v * w);
    }
  }
  return Status::OK();
}

Result<ExpansionEvent> SingleExpansion::Step() {
  // Cancellation point: checked once per settled element, so an expired
  // query stops before its next fetch. Exhaustion still reports cleanly —
  // an empty heap costs nothing to finish.
  if (cancel_ != nullptr && !heap_.empty()) {
    MCN_RETURN_IF_ERROR(cancel_->Check());
  }
  while (!heap_.empty()) {
    HeapItem item = heap_.top();
    heap_.pop();
    ++stats_.heap_pops;
    if (item.tagged_id & kFacilityTag) {
      graph::FacilityId f =
          static_cast<graph::FacilityId>(item.tagged_id & 0xFFFFFFFFu);
      if (item.key > fac_dist_[f]) continue;  // stale or already settled
      fac_dist_[f] = kSettled;
      ++stats_.facilities_settled;
      return ExpansionEvent{ExpansionEvent::Type::kFacility, f, item.key};
    }
    graph::NodeId v = static_cast<graph::NodeId>(item.tagged_id);
    if (item.key > node_dist_[v]) continue;  // stale or already settled
    // The pruner must be asked while v still reads as unsettled: a
    // protected facility endpoint recognizes itself through its live
    // tentative key (key + 0 > UB fails), which the settle below destroys.
    if (pruner_ != nullptr && pruner_->ShouldPrune(cost_index_, v, item.key)) {
      node_dist_[v] = kSettled;
      ++stats_.nodes_pruned;
      // Settled-but-not-expanded: neighbors are never relaxed and no page
      // is fetched; the event keeps Step()'s one-element contract.
      return ExpansionEvent{ExpansionEvent::Type::kNode, v, item.key};
    }
    node_dist_[v] = kSettled;
    ++stats_.nodes_settled;
    MCN_RETURN_IF_ERROR(ExpandNode(v, item.key));
    return ExpansionEvent{ExpansionEvent::Type::kNode, v, item.key};
  }
  return ExpansionEvent{ExpansionEvent::Type::kExhausted, 0, 0.0};
}

double SingleExpansion::FrontierKey() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().key;
}

}  // namespace mcn::expand
