#include "mcn/expand/single_expansion.h"

#include <algorithm>
#include <limits>

#include "mcn/common/macros.h"

namespace mcn::expand {

void FacilityFilter::Add(graph::EdgeKey edge, graph::FacilityId fac) {
  auto [it, inserted] = fac_edges_.emplace(fac, edge);
  if (!inserted) return;  // already present
  edges_[edge].push_back(fac);
}

bool FacilityFilter::Remove(graph::FacilityId fac) {
  auto it = fac_edges_.find(fac);
  if (it == fac_edges_.end()) return false;
  graph::EdgeKey edge = it->second;
  fac_edges_.erase(it);
  auto eit = edges_.find(edge);
  MCN_DCHECK(eit != edges_.end());
  auto& vec = eit->second;
  vec.erase(std::find(vec.begin(), vec.end(), fac));
  if (vec.empty()) edges_.erase(eit);
  return true;
}

bool FacilityFilter::Allows(const graph::EdgeKey& edge,
                            graph::FacilityId fac) const {
  auto it = fac_edges_.find(fac);
  return it != fac_edges_.end() && it->second == edge;
}

SingleExpansion::SingleExpansion(int cost_index, FetchProvider* fetch)
    : cost_index_(cost_index), fetch_(fetch) {
  MCN_CHECK(fetch != nullptr);
  MCN_CHECK(cost_index >= 0 && cost_index < fetch->num_costs());
  node_dist_.assign(fetch->num_nodes(),
                    std::numeric_limits<double>::infinity());
  node_settled_.assign(fetch->num_nodes(), false);
  fac_dist_.assign(fetch->num_facilities(),
                   std::numeric_limits<double>::infinity());
  fac_settled_.assign(fetch->num_facilities(), false);
}

void SingleExpansion::PushNode(graph::NodeId v, double key) {
  if (node_settled_[v] || key >= node_dist_[v]) return;
  node_dist_[v] = key;
  heap_.push(HeapItem{key, v});
  ++stats_.heap_pushes;
}

void SingleExpansion::PushFacility(graph::FacilityId f, double key) {
  if (fac_settled_[f] || key >= fac_dist_[f]) return;
  fac_dist_[f] = key;
  heap_.push(HeapItem{key, kFacilityTag | f});
  ++stats_.heap_pushes;
}

void SingleExpansion::SeedNode(graph::NodeId v, double cost) {
  PushNode(v, cost);
}

void SingleExpansion::SeedFacility(graph::FacilityId f, double cost) {
  PushFacility(f, cost);
}

Status SingleExpansion::ExpandNode(graph::NodeId v, double key) {
  MCN_ASSIGN_OR_RETURN(const auto* entries, fetch_->GetAdjacency(v));
  for (const net::AdjEntry& e : *entries) {
    double w = e.w[cost_index_];
    PushNode(e.neighbor, key + w);
    if (e.fac.count == 0) continue;

    graph::EdgeKey edge(v, e.neighbor);
    if (filter_ != nullptr && !filter_->ContainsEdge(edge)) continue;

    MCN_ASSIGN_OR_RETURN(const auto* facs, fetch_->GetFacilities(edge, e.fac));
    for (const net::FacilityOnEdge& fe : *facs) {
      if (filter_ != nullptr && !filter_->Allows(edge, fe.facility)) continue;
      // fe.frac is measured from the canonical endpoint edge.u.
      double frac_from_v = (v == edge.u) ? fe.frac : 1.0 - fe.frac;
      PushFacility(fe.facility, key + frac_from_v * w);
    }
  }
  return Status::OK();
}

Result<ExpansionEvent> SingleExpansion::Step() {
  while (!heap_.empty()) {
    HeapItem item = heap_.top();
    heap_.pop();
    ++stats_.heap_pops;
    if (item.tagged_id & kFacilityTag) {
      graph::FacilityId f =
          static_cast<graph::FacilityId>(item.tagged_id & 0xFFFFFFFFu);
      if (fac_settled_[f] || item.key > fac_dist_[f]) continue;  // stale
      fac_settled_[f] = true;
      ++stats_.facilities_settled;
      return ExpansionEvent{ExpansionEvent::Type::kFacility, f, item.key};
    }
    graph::NodeId v = static_cast<graph::NodeId>(item.tagged_id);
    if (node_settled_[v] || item.key > node_dist_[v]) continue;  // stale
    node_settled_[v] = true;
    ++stats_.nodes_settled;
    MCN_RETURN_IF_ERROR(ExpandNode(v, item.key));
    return ExpansionEvent{ExpansionEvent::Type::kNode, v, item.key};
  }
  return ExpansionEvent{ExpansionEvent::Type::kExhausted, 0, 0.0};
}

double SingleExpansion::FrontierKey() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().key;
}

}  // namespace mcn::expand
