// SingleExpansion: one incremental nearest-neighbor network expansion for a
// single cost type (the NE technique of Papadias et al. [1], paper §II-C):
// a lazy-deletion Dijkstra that treats facilities on traversed edges as
// search targets and reports them in non-decreasing cost order.
//
// During the shrinking stage the expansion is given a FacilityFilter: the
// facility records of non-candidate edges are not read at all, and only
// candidate facilities are en-heaped (paper §IV-A "enhancements").
#ifndef MCN_EXPAND_SINGLE_EXPANSION_H_
#define MCN_EXPAND_SINGLE_EXPANSION_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/expand/fetch_provider.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::expand {

/// What a Step() produced.
struct ExpansionEvent {
  enum class Type { kNode, kFacility, kExhausted };
  Type type = Type::kExhausted;
  uint32_t id = 0;    // node id or facility id
  double cost = 0.0;  // distance w.r.t. this expansion's cost type
};

/// The shrinking-stage candidate set, addressed by edge so expansions can
/// decide — while scanning an adjacency entry — whether the edge's facility
/// record is worth reading.
class FacilityFilter {
 public:
  void Add(graph::EdgeKey edge, graph::FacilityId fac);
  /// Removes an eliminated candidate; returns false if it was not present.
  bool Remove(graph::FacilityId fac);

  bool ContainsEdge(const graph::EdgeKey& edge) const {
    return edges_.find(edge) != edges_.end();
  }
  bool Allows(const graph::EdgeKey& edge, graph::FacilityId fac) const;
  size_t num_facilities() const { return fac_edges_.size(); }
  bool empty() const { return fac_edges_.empty(); }

 private:
  std::unordered_map<graph::EdgeKey, std::vector<graph::FacilityId>,
                     graph::EdgeKeyHash>
      edges_;
  std::unordered_map<graph::FacilityId, graph::EdgeKey> fac_edges_;
};

/// Incremental NN expansion for one cost type over a FetchProvider.
class SingleExpansion {
 public:
  struct Stats {
    uint64_t nodes_settled = 0;
    uint64_t facilities_settled = 0;
    uint64_t heap_pushes = 0;
    uint64_t heap_pops = 0;
  };

  /// `fetch` must outlive the expansion and is typically shared among the d
  /// expansions of a query.
  SingleExpansion(int cost_index, FetchProvider* fetch);

  /// Seeding (before the first Step): the query location and, when it lies
  /// on an edge, the direct along-edge facility distances.
  void SeedNode(graph::NodeId v, double cost);
  void SeedFacility(graph::FacilityId f, double cost);

  /// Advances by one settled element: returns the next settled node or
  /// facility (in non-decreasing cost order), or kExhausted.
  Result<ExpansionEvent> Step();

  /// Smallest key in the heap (a lower bound on every future event's cost);
  /// +infinity when exhausted.
  double FrontierKey() const;

  bool exhausted() const { return heap_.empty(); }

  /// nullptr = no filter (growing stage: every facility is en-heaped).
  void set_filter(const FacilityFilter* filter) { filter_ = filter; }

  int cost_index() const { return cost_index_; }
  const Stats& stats() const { return stats_; }

  bool NodeSettled(graph::NodeId v) const { return node_settled_[v]; }
  bool FacilitySettled(graph::FacilityId f) const { return fac_settled_[f]; }

 private:
  struct HeapItem {
    double key;
    uint64_t tagged_id;  // bit kFacilityTag marks facilities

    bool operator>(const HeapItem& o) const {
      if (key != o.key) return key > o.key;
      return tagged_id > o.tagged_id;  // deterministic tie-break
    }
  };
  static constexpr uint64_t kFacilityTag = 1ull << 32;

  void PushNode(graph::NodeId v, double key);
  void PushFacility(graph::FacilityId f, double key);
  /// Settles node `v`: fetches its adjacency, relaxes neighbors, en-heaps
  /// facilities on incident edges (subject to the filter).
  Status ExpandNode(graph::NodeId v, double key);

  int cost_index_;
  FetchProvider* fetch_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<double> node_dist_;
  std::vector<bool> node_settled_;
  std::vector<double> fac_dist_;
  std::vector<bool> fac_settled_;
  const FacilityFilter* filter_ = nullptr;
  Stats stats_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_SINGLE_EXPANSION_H_
