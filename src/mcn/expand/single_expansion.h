// SingleExpansion: one incremental nearest-neighbor network expansion for a
// single cost type (the NE technique of Papadias et al. [1], paper §II-C):
// a lazy-deletion Dijkstra that treats facilities on traversed edges as
// search targets and reports them in non-decreasing cost order.
//
// During the shrinking stage the expansion is given a FacilityFilter: the
// facility records of non-candidate edges are not read at all, and only
// candidate facilities are en-heaped (paper §IV-A "enhancements").
#ifndef MCN_EXPAND_SINGLE_EXPANSION_H_
#define MCN_EXPAND_SINGLE_EXPANSION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "mcn/common/cancel.h"
#include "mcn/common/flat_u64_map.h"
#include "mcn/common/result.h"
#include "mcn/expand/dary_heap.h"
#include "mcn/expand/fetch_provider.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::expand {

/// What a Step() produced.
struct ExpansionEvent {
  enum class Type { kNode, kFacility, kExhausted };
  Type type = Type::kExhausted;
  uint32_t id = 0;    // node id or facility id
  double cost = 0.0;  // distance w.r.t. this expansion's cost type
};

/// The shrinking-stage candidate set, addressed by edge so expansions can
/// decide — while scanning an adjacency entry — whether the edge's facility
/// record is worth reading. Facility membership is a FacilityId-indexed
/// flat directory, so Allows/Remove are O(1); the per-edge lists use
/// swap-erase (an eliminated candidate's slot is backfilled by the list
/// tail).
class FacilityFilter {
 public:
  /// Registers `fac` on `edge`. Re-adding an already-present facility is a
  /// no-op, but re-adding it under a *different* edge is a programmer error
  /// (a facility lies on exactly one edge) and trips a DCHECK.
  void Add(graph::EdgeKey edge, graph::FacilityId fac);
  /// Removes an eliminated candidate in O(1); returns false if it was not
  /// present.
  bool Remove(graph::FacilityId fac);

  bool ContainsEdge(const graph::EdgeKey& edge) const {
    uint32_t row = edges_.Find(edge.Pack());
    return row != FlatU64Map::kNoValue && !edge_rows_[row].empty();
  }
  bool Allows(const graph::EdgeKey& edge, graph::FacilityId fac) const {
    return fac < fac_entries_.size() &&
           fac_entries_[fac].edge_packed == edge.Pack();
  }
  /// Whether `fac` is currently registered (on any edge).
  bool Contains(graph::FacilityId fac) const {
    return fac < fac_entries_.size() &&
           fac_entries_[fac].edge_packed != FlatU64Map::kEmptyKey;
  }
  size_t num_facilities() const { return num_facilities_; }
  bool empty() const { return num_facilities_ == 0; }

 private:
  struct FacEntry {
    uint64_t edge_packed = FlatU64Map::kEmptyKey;  // sentinel = absent
    uint32_t pos = 0;  // position in the edge row, for swap-erase
  };

  FlatU64Map edges_;  // packed edge -> row in edge_rows_
  std::vector<std::vector<graph::FacilityId>> edge_rows_;
  std::vector<FacEntry> fac_entries_;  // FacilityId-indexed
  size_t num_facilities_ = 0;
};

/// Frontier prune hook (DESIGN.md §12): consulted once per node pop,
/// *before* the node's adjacency probe. Returning true elides the
/// expansion — the node is marked settled but its neighbors are never
/// relaxed and no page is fetched. Implementations must be sound w.r.t.
/// the caller's protected set (see algo/prune_oracle.h for the exactness
/// argument); the expansion itself applies the decision blindly.
class NodePruner {
 public:
  virtual ~NodePruner() = default;
  /// `cost_index` identifies the asking expansion; `v` is about to settle
  /// at exact distance `key`.
  virtual bool ShouldPrune(int cost_index, graph::NodeId v, double key) = 0;
};

/// Incremental NN expansion for one cost type over a FetchProvider.
class SingleExpansion {
 public:
  struct Stats {
    uint64_t nodes_settled = 0;
    uint64_t facilities_settled = 0;
    uint64_t heap_pushes = 0;
    uint64_t heap_pops = 0;
    uint64_t nodes_pruned = 0;  ///< settled without an adjacency probe
  };

  /// `fetch` must outlive the expansion and is typically shared among the d
  /// expansions of a query.
  SingleExpansion(int cost_index, FetchProvider* fetch);

  /// Seeding (before the first Step): the query location and, when it lies
  /// on an edge, the direct along-edge facility distances.
  void SeedNode(graph::NodeId v, double cost);
  void SeedFacility(graph::FacilityId f, double cost);

  /// Advances by one settled element: returns the next settled node or
  /// facility (in non-decreasing cost order), or kExhausted.
  Result<ExpansionEvent> Step();

  /// Smallest key in the heap (a lower bound on every future event's cost);
  /// +infinity when exhausted.
  double FrontierKey() const;

  bool exhausted() const { return heap_.empty(); }

  /// nullptr = no filter (growing stage: every facility is en-heaped).
  void set_filter(const FacilityFilter* filter) { filter_ = filter; }

  /// nullptr = no pruning (the default). Installed by the skyline prune
  /// oracle alongside the shrinking-stage filter; must outlive the
  /// expansion's remaining steps.
  void set_pruner(NodePruner* pruner) { pruner_ = pruner; }

  /// Cooperative cancellation (DESIGN.md §10): with a token installed,
  /// Step() checks it before settling and unwinds with the token's typed
  /// Status (DeadlineExceeded/Cancelled). nullptr = never cancelled.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  int cost_index() const { return cost_index_; }
  const Stats& stats() const { return stats_; }

  bool NodeSettled(graph::NodeId v) const { return node_dist_[v] == kSettled; }
  bool FacilitySettled(graph::FacilityId f) const {
    return fac_dist_[f] == kSettled;
  }
  /// Tentative distance of an unsettled node: its best live heap key, or
  /// +infinity when never relaxed. Meaningless (the kSettled sentinel) once
  /// the node settles — callers check NodeSettled first. Always an upper
  /// bound on the node's true distance.
  double NodeTentativeKey(graph::NodeId v) const { return node_dist_[v]; }

 private:
  struct HeapItem {
    double key;
    uint64_t tagged_id;  // bit kFacilityTag marks facilities
  };
  struct HeapItemBefore {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.key != b.key) return a.key < b.key;
      return a.tagged_id < b.tagged_id;  // deterministic tie-break
    }
  };
  static constexpr uint64_t kFacilityTag = 1ull << 32;
  /// Sentinel stored in a dist slot once the element settles: every real
  /// key is finite and non-negative, so `key >= dist` rejects re-pushes and
  /// `key > dist` rejects stale pops with a single load and no separate
  /// settled-flag array.
  static constexpr double kSettled = -std::numeric_limits<double>::infinity();

  void PushNode(graph::NodeId v, double key);
  void PushFacility(graph::FacilityId f, double key);
  /// Settles node `v`: fetches its adjacency, relaxes neighbors, en-heaps
  /// facilities on incident edges (subject to the filter).
  Status ExpandNode(graph::NodeId v, double key);

  int cost_index_;
  FetchProvider* fetch_;
  DaryHeap<HeapItem, HeapItemBefore> heap_;
  // Tentative distance per node/facility; kSettled once settled (no
  // separate flag array — see kSettled).
  std::vector<double> node_dist_;
  std::vector<double> fac_dist_;
  const FacilityFilter* filter_ = nullptr;
  NodePruner* pruner_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  Stats stats_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_SINGLE_EXPANSION_H_
