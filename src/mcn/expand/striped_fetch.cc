#include "mcn/expand/striped_fetch.h"

#include <chrono>
#include <thread>
#include <utility>

#include "mcn/common/hash.h"
#include "mcn/common/macros.h"

namespace mcn::expand {

namespace {

// Power of two; sized so that even d = kMaxCostTypes expansions probing at
// once rarely collide on a stripe.
constexpr size_t kNumStripes = 64;

thread_local int t_bound_slot = 0;

}  // namespace

StripedCachedFetch::StripedCachedFetch(
    std::vector<const net::NetworkReader*> readers)
    : readers_(std::move(readers)), adj_(kNumStripes), fac_(kNumStripes) {
  MCN_CHECK(!readers_.empty());
  for (const net::NetworkReader* r : readers_) {
    MCN_CHECK(r != nullptr);
    MCN_CHECK(r->num_costs() == readers_[0]->num_costs());
    MCN_CHECK(r->num_nodes() == readers_[0]->num_nodes());
    MCN_CHECK(r->num_facilities() == readers_[0]->num_facilities());
  }
}

void StripedCachedFetch::BindWorkerSlot(int slot) { t_bound_slot = slot; }

int StripedCachedFetch::BoundSlot() { return t_bound_slot; }

const net::NetworkReader* StripedCachedFetch::BoundReader() const {
  int slot = t_bound_slot;
  MCN_CHECK(slot >= 0 && slot < static_cast<int>(readers_.size()));
  return readers_[slot];
}

void StripedCachedFetch::MaybeStall() const {
  if (stall_us_ <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(stall_us_));
}

template <typename Row>
size_t StripedCachedFetch::StripeTable<Row>::TotalRows() const {
  size_t total = 0;
  for (const Stripe& s : stripes) {
    MutexLock lock(&s.mu);
    total += s.rows.size();
  }
  return total;
}

template <typename Row, typename FetchFn>
Result<const std::vector<Row>*> StripedCachedFetch::GetOrFetch(
    StripeTable<Row>& table, uint64_t key,
    std::atomic<uint64_t>& physical_counter, const FetchFn& fetch) {
  using Table = StripeTable<Row>;
  typename Table::Stripe& stripe =
      table.stripes[static_cast<size_t>(MixU64(key)) & (kNumStripes - 1)];

  stripe.mu.Lock();
  bool waited = false;
  for (;;) {
    uint32_t v = stripe.map.Find(key);
    if (v == FlatU64Map::kNoValue) break;  // we fetch
    if (v != Table::kInFlight) {
      // Published rows have stable addresses (deque), so the pointer
      // stays valid after the stripe lock is dropped.
      const std::vector<Row>* published = &stripe.rows[v];
      stripe.mu.Unlock();
      return published;
    }
    // Another probe is fetching this record: wait for it instead of
    // re-fetching (the single-flight guard). Counted once per waiting
    // probe, not per wakeup.
    if (!waited) {
      waited = true;
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    }
    stripe.cv.Wait(&stripe.mu);
  }
  stripe.map.Insert(key, Table::kInFlight);
  stripe.mu.Unlock();

  physical_counter.fetch_add(1, std::memory_order_relaxed);
  std::vector<Row> row;
  Status status = fetch(&row);
  MaybeStall();

  stripe.mu.Lock();
  stripe.map.Erase(key);
  if (!status.ok()) {
    // Leave the key absent so a retry can re-fetch; wake the waiters (they
    // will loop, find it absent, and become fetchers themselves).
    stripe.cv.NotifyAll();
    stripe.mu.Unlock();
    return status;
  }
  uint32_t idx = static_cast<uint32_t>(stripe.rows.size());
  stripe.rows.push_back(std::move(row));
  stripe.map.Insert(key, idx);
  stripe.cv.NotifyAll();
  const std::vector<Row>* published = &stripe.rows[idx];
  stripe.mu.Unlock();
  return published;
}

Result<const std::vector<net::AdjEntry>*> StripedCachedFetch::GetAdjacency(
    graph::NodeId node) {
  adj_requests_.fetch_add(1, std::memory_order_relaxed);
  if (node >= num_nodes()) {
    return Status::InvalidArgument("StripedCachedFetch: node out of range");
  }
  const net::NetworkReader* reader = BoundReader();
  return GetOrFetch(adj_, static_cast<uint64_t>(node), adj_fetches_,
                    [&](std::vector<net::AdjEntry>* out) {
                      return reader->GetAdjacency(node, out);
                    });
}

Result<const std::vector<net::FacilityOnEdge>*>
StripedCachedFetch::GetFacilities(graph::EdgeKey edge,
                                  const net::FacRef& ref) {
  fac_requests_.fetch_add(1, std::memory_order_relaxed);
  const net::NetworkReader* reader = BoundReader();
  return GetOrFetch(fac_, edge.Pack(), fac_fetches_,
                    [&](std::vector<net::FacilityOnEdge>* out) {
                      return reader->GetFacilities(edge, ref, out);
                    });
}

Result<FetchProvider::SeedInfo> StripedCachedFetch::GetSeedInfo(
    const graph::Location& q) {
  if (q.is_node()) return SeedInfo{};
  MCN_ASSIGN_OR_RETURN(const auto* entries, GetAdjacency(q.edge().u));
  return internal::SeedFromEntries(this, *entries, q.edge());
}

const FetchProvider::Stats& StripedCachedFetch::stats() const {
  stats_snapshot_.adjacency_requests =
      adj_requests_.load(std::memory_order_relaxed);
  stats_snapshot_.adjacency_fetches =
      adj_fetches_.load(std::memory_order_relaxed);
  stats_snapshot_.facility_requests =
      fac_requests_.load(std::memory_order_relaxed);
  stats_snapshot_.facility_fetches =
      fac_fetches_.load(std::memory_order_relaxed);
  return stats_snapshot_;
}

void StripedCachedFetch::ResetStats() {
  adj_requests_.store(0, std::memory_order_relaxed);
  adj_fetches_.store(0, std::memory_order_relaxed);
  fac_requests_.store(0, std::memory_order_relaxed);
  fac_fetches_.store(0, std::memory_order_relaxed);
  single_flight_waits_.store(0, std::memory_order_relaxed);
}

StripedCachedFetch::ConcurrencyStats StripedCachedFetch::concurrency_stats()
    const {
  ConcurrencyStats cs;
  cs.single_flight_waits = single_flight_waits_.load(std::memory_order_relaxed);
  return cs;
}

size_t StripedCachedFetch::cached_nodes() const { return adj_.TotalRows(); }

size_t StripedCachedFetch::cached_edges() const { return fac_.TotalRows(); }

}  // namespace mcn::expand
