// StripedCachedFetch: the concurrent sibling of CachedFetch (DESIGN.md §7).
// One instance is shared by the d expansions of a query while a
// ParallelProbeScheduler runs their probes on different threads:
//
//  * the adjacency and facility tables are sharded into stripes, each a
//    FlatU64Map + row deque behind its own mutex, so probes touching
//    different records never contend on one lock;
//  * a single-flight guard per record: the first prober to miss marks the
//    entry in-flight, releases the stripe lock, fetches, publishes, and
//    wakes the stripe; concurrent probers for the same record *wait* for
//    that fetch instead of issuing their own. This preserves the paper's
//    §IV-B CEA accounting — every record is physically fetched at most
//    once per query — under any thread interleaving;
//  * physical fetches go through a per-worker-slot NetworkReader (slot 0 =
//    the query-driving thread, slots 1.. = probe-pool workers), because
//    NetworkReader/BufferPool are single-threaded. The executing slot is
//    bound thread-locally by the scheduler before each probe.
//
// Row storage is a per-stripe deque, so published rows keep stable
// addresses for the query's lifetime (the same guarantee CachedFetch
// gives, which the expansions' returned-pointer contract relies on).
#ifndef MCN_EXPAND_STRIPED_FETCH_H_
#define MCN_EXPAND_STRIPED_FETCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "mcn/common/flat_u64_map.h"
#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"
#include "mcn/common/result.h"
#include "mcn/expand/fetch_provider.h"
#include "mcn/net/network_reader.h"

namespace mcn::expand {

/// Thread-safe CEA-style caching provider. See the file comment.
class StripedCachedFetch : public FetchProvider {
 public:
  /// Counters beyond the base FetchProvider::Stats.
  struct ConcurrencyStats {
    /// Probes that found their record in flight and waited for the
    /// fetching thread instead of re-fetching (single-flight hits).
    uint64_t single_flight_waits = 0;
  };

  /// `readers[s]` serves worker slot `s`; each must wrap its own
  /// BufferPool (readers are not thread-safe) and all must describe the
  /// same network. At least one reader (slot 0, the query-driving thread)
  /// is required.
  explicit StripedCachedFetch(std::vector<const net::NetworkReader*> readers);

  /// Binds the calling thread to reader slot `slot` for subsequent
  /// fetches. The scheduler binds slot `worker + 1` before each pooled
  /// probe; unbound threads (the query driver) use slot 0.
  static void BindWorkerSlot(int slot);
  static int BoundSlot();

  /// Simulated I/O stall slept (on the fetching thread, outside all
  /// stripe locks) per *physical* record fetch. Models the disk latency
  /// the parallel turns exist to overlap; 0 disables (default).
  void set_simulated_stall_us(double us) { stall_us_ = us; }

  int num_costs() const override { return readers_[0]->num_costs(); }
  uint32_t num_nodes() const override { return readers_[0]->num_nodes(); }
  uint32_t num_facilities() const override {
    return readers_[0]->num_facilities();
  }

  Result<const std::vector<net::AdjEntry>*> GetAdjacency(
      graph::NodeId node) override;
  Result<const std::vector<net::FacilityOnEdge>*> GetFacilities(
      graph::EdgeKey edge, const net::FacRef& ref) override;
  Result<SeedInfo> GetSeedInfo(const graph::Location& q) override;

  /// Materialized from the atomic counters; quiescent calls only (no
  /// probe in flight), as the base contract states.
  const Stats& stats() const override;
  void ResetStats() override;
  ConcurrencyStats concurrency_stats() const;

  /// Distinct records resident in the cache (each equals the matching
  /// physical-fetch counter iff every record was fetched at most once —
  /// the invariant the stress suite asserts).
  size_t cached_nodes() const;
  size_t cached_edges() const;

  int num_reader_slots() const { return static_cast<int>(readers_.size()); }

 private:
  template <typename Row>
  struct StripeTable {
    /// FlatU64Map value marking a key whose fetch is in flight.
    static constexpr uint32_t kInFlight = 0xFFFFFFFEu;

    struct Stripe {
      mutable Mutex mu;
      CondVar cv;
      /// key -> row index, or kInFlight
      FlatU64Map map MCN_GUARDED_BY(mu);
      /// stable addresses: published row pointers outlive the lock
      std::deque<std::vector<Row>> rows MCN_GUARDED_BY(mu);
    };

    explicit StripeTable(size_t num_stripes) : stripes(num_stripes) {}

    size_t TotalRows() const;

    std::deque<Stripe> stripes;  ///< deque: Stripe is not movable
  };

  /// Single-flight lookup-or-fetch of `key` in `table`; `fetch` fills the
  /// row via the bound reader and is executed by exactly one thread.
  template <typename Row, typename FetchFn>
  Result<const std::vector<Row>*> GetOrFetch(
      StripeTable<Row>& table, uint64_t key,
      std::atomic<uint64_t>& physical_counter, const FetchFn& fetch);

  const net::NetworkReader* BoundReader() const;
  void MaybeStall() const;

  std::vector<const net::NetworkReader*> readers_;
  StripeTable<net::AdjEntry> adj_;
  StripeTable<net::FacilityOnEdge> fac_;
  double stall_us_ = 0;

  std::atomic<uint64_t> adj_requests_{0};
  std::atomic<uint64_t> adj_fetches_{0};
  std::atomic<uint64_t> fac_requests_{0};
  std::atomic<uint64_t> fac_fetches_{0};
  std::atomic<uint64_t> single_flight_waits_{0};
  mutable Stats stats_snapshot_;
};

}  // namespace mcn::expand

#endif  // MCN_EXPAND_STRIPED_FETCH_H_
