#include "mcn/gen/cost_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::gen {

std::string_view ToString(CostDistribution dist) {
  switch (dist) {
    case CostDistribution::kIndependent:
      return "independent";
    case CostDistribution::kCorrelated:
      return "correlated";
    case CostDistribution::kAntiCorrelated:
      return "anti-correlated";
  }
  return "?";
}

Result<CostDistribution> ParseCostDistribution(std::string_view name) {
  if (name == "independent" || name == "ind") {
    return CostDistribution::kIndependent;
  }
  if (name == "correlated" || name == "corr") {
    return CostDistribution::kCorrelated;
  }
  if (name == "anti-correlated" || name == "anti" ||
      name == "anticorrelated") {
    return CostDistribution::kAntiCorrelated;
  }
  return Status::InvalidArgument("unknown cost distribution: " +
                                 std::string(name));
}

graph::CostVector GenerateEdgeCosts(Random& rng, CostDistribution dist,
                                    int num_costs, double base) {
  MCN_DCHECK(num_costs >= 1 && num_costs <= graph::kMaxCostTypes);
  graph::CostVector w(num_costs);
  switch (dist) {
    case CostDistribution::kIndependent: {
      for (int i = 0; i < num_costs; ++i) {
        w[i] = base * rng.UniformDouble(0.5, 1.5);
      }
      break;
    }
    case CostDistribution::kCorrelated: {
      double shared = rng.UniformDouble(0.5, 1.5);
      for (int i = 0; i < num_costs; ++i) {
        double factor = shared + rng.UniformDouble(-0.1, 0.1);
        w[i] = base * std::max(0.05, factor);
      }
      break;
    }
    case CostDistribution::kAntiCorrelated: {
      // Normalized exponentials on the simplex (sum of factors == d): one
      // low factor forces the others high.
      double sum = 0.0;
      for (int i = 0; i < num_costs; ++i) {
        w[i] = rng.Exponential();
        sum += w[i];
      }
      for (int i = 0; i < num_costs; ++i) {
        double factor = 0.05 + 0.95 * num_costs * (w[i] / sum);
        w[i] = base * factor;
      }
      break;
    }
  }
  return w;
}

CostFieldModel::CostFieldModel(CostDistribution dist, int num_costs,
                               uint64_t seed)
    : dist_(dist), num_costs_(num_costs) {
  MCN_CHECK(num_costs >= 1 && num_costs <= graph::kMaxCostTypes);
  Random rng(seed);
  // One smooth field per cost type, plus a shared field (index num_costs_)
  // for the correlated model.
  constexpr int kWaves = 6;
  waves_.resize(num_costs_ + 1);
  for (auto& field : waves_) {
    field.reserve(kWaves);
    for (int w = 0; w < kWaves; ++w) {
      Wave wave;
      double freq = rng.UniformDouble(1.0, 5.0);
      double angle = rng.UniformDouble(0.0, 6.283185307179586);
      wave.kx = freq * std::cos(angle);
      wave.ky = freq * std::sin(angle);
      wave.phase = rng.UniformDouble(0.0, 6.283185307179586);
      wave.amplitude = rng.UniformDouble(0.3, 0.8) / std::sqrt(kWaves);
      field.push_back(wave);
    }
  }
}

double CostFieldModel::Field(int cost, double x, double y) const {
  double v = 0.0;
  for (const Wave& w : waves_[cost]) {
    v += w.amplitude *
         std::cos(6.283185307179586 * (w.kx * x + w.ky * y) + w.phase);
  }
  return v;  // roughly in [-1.2, 1.2]
}

graph::CostVector CostFieldModel::FactorsAt(double x, double y,
                                            Random& rng) const {
  graph::CostVector f(num_costs_);
  switch (dist_) {
    case CostDistribution::kIndependent: {
      for (int i = 0; i < num_costs_; ++i) {
        // Smooth field + local jitter, mapped to a positive factor ~1.
        double g = Field(i, x, y) + rng.UniformDouble(-0.3, 0.3);
        f[i] = std::max(0.05, 1.0 + 0.6 * g);
      }
      break;
    }
    case CostDistribution::kCorrelated: {
      double g = Field(num_costs_, x, y) + rng.UniformDouble(-0.15, 0.15);
      double shared = std::max(0.05, 1.0 + 0.6 * g);
      for (int i = 0; i < num_costs_; ++i) {
        f[i] = std::max(0.05, shared + rng.UniformDouble(-0.08, 0.08));
      }
      break;
    }
    case CostDistribution::kAntiCorrelated: {
      // Softmax over the per-type fields at this location: where one cost
      // type is cheap, the others are expensive; the per-location factor
      // sum is exactly d, so the anti-correlation survives path sums.
      constexpr double kSharpness = 2.2;
      double sum = 0.0;
      for (int i = 0; i < num_costs_; ++i) {
        double g = Field(i, x, y) + rng.UniformDouble(-0.2, 0.2);
        f[i] = std::exp(-kSharpness * g);  // cheap where the field is high
        sum += f[i];
      }
      for (int i = 0; i < num_costs_; ++i) {
        f[i] = std::max(0.02, num_costs_ * f[i] / sum);
      }
      break;
    }
  }
  return f;
}

Result<graph::MultiCostGraph> BuildMultiCostGraph(
    const Topology& topology, const CostGenOptions& options) {
  if (options.num_costs < 1 || options.num_costs > graph::kMaxCostTypes) {
    return Status::InvalidArgument("num_costs out of range");
  }
  Random rng(options.seed);
  CostFieldModel model(options.distribution, options.num_costs,
                       rng.Next());
  graph::MultiCostGraph g(options.num_costs);
  for (auto [x, y] : topology.coords) g.AddNode(x, y);
  for (size_t e = 0; e < topology.edges.size(); ++e) {
    auto [u, v] = topology.edges[e];
    // Guard against zero-length edges (coincident jittered coordinates).
    double base = std::max(topology.EdgeLength(e), 1e-9);
    double mx = 0.5 * (topology.coords[u].first + topology.coords[v].first);
    double my =
        0.5 * (topology.coords[u].second + topology.coords[v].second);
    graph::CostVector factors = model.FactorsAt(mx, my, rng);
    auto added = g.AddEdge(u, v, factors.Scaled(base));
    MCN_RETURN_IF_ERROR(added.status());
  }
  g.Finalize();
  return g;
}

}  // namespace mcn::gen
