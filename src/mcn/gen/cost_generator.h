// Edge-cost generation for the three distributions of the paper's
// evaluation (§VI, following the skyline literature): independent,
// correlated and anti-correlated cost types. Costs scale with the edge's
// Euclidean length (all cost types of a road segment grow with its extent)
// multiplied by per-type factors whose joint distribution sets the
// correlation structure.
#ifndef MCN_GEN_COST_GENERATOR_H_
#define MCN_GEN_COST_GENERATOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/gen/road_network_generator.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::gen {

enum class CostDistribution { kIndependent, kCorrelated, kAntiCorrelated };

std::string_view ToString(CostDistribution dist);
Result<CostDistribution> ParseCostDistribution(std::string_view name);

/// One edge's cost vector with purely local (per-edge) randomness: `base`
/// (e.g. Euclidean length) times d factors with the requested correlation
/// structure; strictly positive for base > 0. Also used as the tuple
/// generator for the conventional skyline/top-k operators.
graph::CostVector GenerateEdgeCosts(Random& rng, CostDistribution dist,
                                    int num_costs, double base);

/// Spatially coherent cost factors: each cost type draws from a smooth
/// random field over [0,1]^2 (cheap-toll regions, fast-road regions, ...),
/// so the correlation structure survives path aggregation — per-edge
/// randomness alone averages out over multi-edge shortest paths and would
/// flatten the anti-correlated/correlated contrast of the paper's Fig. 9/11.
/// In the anti-correlated model the factors are softmax-normalized per
/// location: where one cost type is cheap the others are expensive.
class CostFieldModel {
 public:
  CostFieldModel(CostDistribution dist, int num_costs, uint64_t seed);

  /// Factor vector (mean ~1 per component) at a location, with per-edge
  /// jitter drawn from `rng`.
  graph::CostVector FactorsAt(double x, double y, Random& rng) const;

  int num_costs() const { return num_costs_; }
  CostDistribution distribution() const { return dist_; }

 private:
  struct Wave {
    double kx, ky, phase, amplitude;
  };
  double Field(int cost, double x, double y) const;

  CostDistribution dist_;
  int num_costs_;
  std::vector<std::vector<Wave>> waves_;  // per cost type (+1 shared)
};

struct CostGenOptions {
  int num_costs = 4;
  CostDistribution distribution = CostDistribution::kAntiCorrelated;
  uint64_t seed = 17;
};

/// Builds the finalized MultiCostGraph for a topology: edge cost =
/// Euclidean length x CostFieldModel factors at the edge midpoint.
Result<graph::MultiCostGraph> BuildMultiCostGraph(
    const Topology& topology, const CostGenOptions& options);

}  // namespace mcn::gen

#endif  // MCN_GEN_COST_GENERATOR_H_
