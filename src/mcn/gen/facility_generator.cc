#include "mcn/gen/facility_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mcn/common/macros.h"

namespace mcn::gen {
namespace {

/// Uniform bucket grid over edge midpoints for nearest-edge snapping.
class EdgeGrid {
 public:
  EdgeGrid(const graph::MultiCostGraph& g, uint32_t side) : side_(side) {
    buckets_.resize(static_cast<size_t>(side) * side);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::EdgeRecord& er = g.edge(e);
      double mx = 0.5 * (g.x(er.u) + g.x(er.v));
      double my = 0.5 * (g.y(er.u) + g.y(er.v));
      buckets_[Index(mx, my)].push_back(e);
    }
  }

  /// A random edge near (x, y): the bucket of the point, or the nearest
  /// non-empty bucket ring.
  graph::EdgeId Sample(double x, double y, Random& rng) const {
    int cx = Clamp(x);
    int cy = Clamp(y);
    for (int radius = 0; radius < static_cast<int>(side_); ++radius) {
      // Collect candidates on the square ring at this radius.
      const std::vector<graph::EdgeId>* best = nullptr;
      size_t total = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          int bx = cx + dx, by = cy + dy;
          if (bx < 0 || by < 0 || bx >= static_cast<int>(side_) ||
              by >= static_cast<int>(side_)) {
            continue;
          }
          const auto& bucket = buckets_[by * side_ + bx];
          if (bucket.empty()) continue;
          total += bucket.size();
          if (best == nullptr || rng.Uniform(total) < bucket.size()) {
            best = &bucket;
          }
        }
      }
      if (best != nullptr) {
        return (*best)[rng.Uniform(best->size())];
      }
    }
    MCN_CHECK(false);  // at least one bucket is non-empty
    return 0;
  }

 private:
  int Clamp(double v) const {
    int c = static_cast<int>(v * side_);
    return std::clamp(c, 0, static_cast<int>(side_) - 1);
  }
  size_t Index(double x, double y) const {
    return static_cast<size_t>(Clamp(y)) * side_ + Clamp(x);
  }

  uint32_t side_;
  std::vector<std::vector<graph::EdgeId>> buckets_;
};

}  // namespace

Result<graph::FacilitySet> GenerateFacilities(
    const graph::MultiCostGraph& g, const FacilityGenOptions& options) {
  if (!g.finalized()) {
    return Status::FailedPrecondition("GenerateFacilities: graph not final");
  }
  if (g.num_edges() == 0) {
    return Status::InvalidArgument("GenerateFacilities: graph has no edges");
  }
  if (options.num_clusters < 1) {
    return Status::InvalidArgument("GenerateFacilities: need >= 1 cluster");
  }
  Random rng(options.seed);

  uint32_t side = static_cast<uint32_t>(
      std::clamp(std::sqrt(g.num_edges() / 8.0), 1.0, 256.0));
  EdgeGrid grid(g, side);

  std::vector<std::pair<double, double>> centers;
  centers.reserve(options.num_clusters);
  for (int c = 0; c < options.num_clusters; ++c) {
    graph::NodeId v = static_cast<graph::NodeId>(rng.Uniform(g.num_nodes()));
    centers.emplace_back(g.x(v), g.y(v));
  }

  graph::FacilitySet facilities;
  for (uint32_t i = 0; i < options.count; ++i) {
    const auto& [cx, cy] = centers[rng.Uniform(centers.size())];
    double x = cx + rng.Gaussian(0.0, options.cluster_sigma);
    double y = cy + rng.Gaussian(0.0, options.cluster_sigma);
    graph::EdgeId e = grid.Sample(x, y, rng);
    facilities.Add(e, rng.NextDouble());
  }
  facilities.Finalize();
  return facilities;
}

graph::Location RandomLocation(const graph::MultiCostGraph& g, Random& rng) {
  MCN_CHECK(g.num_edges() > 0);
  graph::EdgeId e = static_cast<graph::EdgeId>(rng.Uniform(g.num_edges()));
  const graph::EdgeRecord& er = g.edge(e);
  return graph::Location::OnEdge(graph::EdgeKey(er.u, er.v),
                                 rng.NextDouble());
}

}  // namespace mcn::gen
