// Facility and query-location generation per the paper's setup (§VI): the
// facility set P forms Gaussian clusters around random network nodes
// ("most facilities are located around specific locations in a city");
// query locations are uniform over the network edges.
#ifndef MCN_GEN_FACILITY_GENERATOR_H_
#define MCN_GEN_FACILITY_GENERATOR_H_

#include <cstdint>

#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::gen {

struct FacilityGenOptions {
  uint32_t count = 100000;
  int num_clusters = 10;
  /// Standard deviation of the spatial Gaussian, in coordinate units
  /// (the network spans [0,1]^2).
  double cluster_sigma = 0.05;
  uint64_t seed = 4242;
};

/// Generates `count` facilities in `num_clusters` Gaussian clusters
/// centered at random nodes, snapped to nearby edges. Returns a finalized
/// FacilitySet.
Result<graph::FacilitySet> GenerateFacilities(
    const graph::MultiCostGraph& g, const FacilityGenOptions& options);

/// A uniform random location on a random edge (query sampling).
graph::Location RandomLocation(const graph::MultiCostGraph& g, Random& rng);

}  // namespace mcn::gen

#endif  // MCN_GEN_FACILITY_GENERATOR_H_
