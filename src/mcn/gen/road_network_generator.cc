#include "mcn/gen/road_network_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mcn/common/macros.h"
#include "mcn/common/random.h"

namespace mcn::gen {

double Topology::EdgeLength(size_t e) const {
  auto [u, v] = edges[e];
  double dx = coords[u].first - coords[v].first;
  double dy = coords[u].second - coords[v].second;
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

/// Grid helper: intersection ids are row * m + col.
struct GridEdge {
  uint32_t a;
  uint32_t b;
};

/// Randomized DFS spanning tree over the m x m grid; returns tree edges and
/// marks them in `in_tree` (indexed like `all_edges`).
std::vector<uint32_t> SpanningTree(uint32_t m,
                                   const std::vector<GridEdge>& all_edges,
                                   Random& rng) {
  uint32_t n = m * m;
  // Adjacency over candidate edges.
  std::vector<std::vector<uint32_t>> adj(n);
  for (uint32_t e = 0; e < all_edges.size(); ++e) {
    adj[all_edges[e].a].push_back(e);
    adj[all_edges[e].b].push_back(e);
  }
  std::vector<bool> visited(n, false);
  std::vector<uint32_t> tree;
  tree.reserve(n - 1);
  std::vector<uint32_t> stack;
  uint32_t start = static_cast<uint32_t>(rng.Uniform(n));
  stack.push_back(start);
  visited[start] = true;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    // Random unvisited neighbor; backtrack when none.
    rng.Shuffle(adj[v]);
    bool advanced = false;
    for (uint32_t e : adj[v]) {
      uint32_t w = all_edges[e].a == v ? all_edges[e].b : all_edges[e].a;
      if (!visited[w]) {
        visited[w] = true;
        tree.push_back(e);
        stack.push_back(w);
        advanced = true;
        break;
      }
    }
    if (!advanced) stack.pop_back();
  }
  MCN_CHECK(tree.size() == n - 1);
  return tree;
}

}  // namespace

Result<Topology> GenerateRoadNetwork(const RoadNetworkOptions& options) {
  const uint32_t n = options.target_nodes;
  const uint32_t e = options.target_edges;
  if (n < 4) {
    return Status::InvalidArgument("road network needs >= 4 nodes");
  }
  if (e < n - 1) {
    return Status::InvalidArgument(
        "road network needs >= nodes-1 edges (connectivity)");
  }

  // Pick the intersection-grid side m (DESIGN.md §3): aim for roughly half
  // the nodes being intersections (the rest become polyline chain nodes),
  // growing m if the requested cycle count needs more grid edges.
  //   kept  = m^2 + e - n   (inter-intersection edges)
  //   need: m^2 - 1 <= kept <= 2m(m-1)  and  m^2 <= n
  uint32_t m = static_cast<uint32_t>(std::sqrt(n / 2.0));
  m = std::max<uint32_t>(m, 2);
  while (static_cast<uint64_t>(m) * m <= n) {
    uint64_t kept = static_cast<uint64_t>(m) * m + e - n;
    if (kept <= 2ull * m * (m - 1)) break;
    ++m;
  }
  if (static_cast<uint64_t>(m) * m > n) {
    return Status::InvalidArgument(
        "edge/node ratio too dense for a road-like topology");
  }
  const uint32_t kept =
      static_cast<uint32_t>(static_cast<uint64_t>(m) * m + e - n);

  Random rng(options.seed);

  // Candidate grid edges (right + down neighbors).
  std::vector<GridEdge> all_edges;
  all_edges.reserve(2ull * m * (m - 1));
  for (uint32_t r = 0; r < m; ++r) {
    for (uint32_t c = 0; c < m; ++c) {
      uint32_t v = r * m + c;
      if (c + 1 < m) all_edges.push_back({v, v + 1});
      if (r + 1 < m) all_edges.push_back({v, v + m});
    }
  }

  // Connectivity first, then random extra edges up to `kept`.
  std::vector<uint32_t> tree = SpanningTree(m, all_edges, rng);
  std::vector<bool> used(all_edges.size(), false);
  for (uint32_t t : tree) used[t] = true;
  std::vector<uint32_t> pool;
  for (uint32_t i = 0; i < all_edges.size(); ++i) {
    if (!used[i]) pool.push_back(i);
  }
  uint32_t extras = kept - (m * m - 1);
  MCN_CHECK(extras <= pool.size());
  rng.Shuffle(pool);
  std::vector<uint32_t> kept_edges = tree;
  kept_edges.insert(kept_edges.end(), pool.begin(), pool.begin() + extras);

  // Subdivide: distribute (e - kept) extra segments over the kept edges.
  std::vector<uint32_t> segments(kept, 1);
  for (uint32_t t = 0; t < e - kept; ++t) {
    ++segments[rng.Uniform(kept)];
  }

  Topology topo;
  topo.coords.reserve(n);
  topo.edges.reserve(e);
  const double cell = 1.0 / m;
  for (uint32_t r = 0; r < m; ++r) {
    for (uint32_t c = 0; c < m; ++c) {
      double x = (c + 0.5 + options.jitter * rng.UniformDouble(-0.5, 0.5)) *
                 cell;
      double y = (r + 0.5 + options.jitter * rng.UniformDouble(-0.5, 0.5)) *
                 cell;
      topo.coords.emplace_back(x, y);
    }
  }
  for (uint32_t i = 0; i < kept; ++i) {
    const GridEdge& ge = all_edges[kept_edges[i]];
    uint32_t s = segments[i];
    uint32_t prev = ge.a;
    auto [ax, ay] = topo.coords[ge.a];
    auto [bx, by] = topo.coords[ge.b];
    for (uint32_t j = 1; j < s; ++j) {
      // Chain node along the segment, with slight perpendicular jitter to
      // mimic road curvature.
      double t = static_cast<double>(j) / s;
      double px = ax + t * (bx - ax);
      double py = ay + t * (by - ay);
      double ox = -(by - ay), oy = bx - ax;
      double wiggle = rng.UniformDouble(-0.1, 0.1);
      topo.coords.emplace_back(px + wiggle * ox, py + wiggle * oy);
      uint32_t mid = static_cast<uint32_t>(topo.coords.size() - 1);
      topo.edges.emplace_back(prev, mid);
      prev = mid;
    }
    topo.edges.emplace_back(prev, ge.b);
  }
  MCN_CHECK(topo.num_nodes() == n);
  MCN_CHECK(topo.num_edges() == e);

  // Renumber nodes in spatial (row-band, then x) order so that adjacent
  // records land on nearby pages — the disk locality a real loader gives.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    int band_a = static_cast<int>(topo.coords[a].second * m);
    int band_b = static_cast<int>(topo.coords[b].second * m);
    if (band_a != band_b) return band_a < band_b;
    return topo.coords[a].first < topo.coords[b].first;
  });
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;
  std::vector<std::pair<double, double>> new_coords(n);
  for (uint32_t i = 0; i < n; ++i) new_coords[rank[i]] = topo.coords[i];
  topo.coords = std::move(new_coords);
  for (auto& [u, v] : topo.edges) {
    u = rank[u];
    v = rank[v];
  }
  return topo;
}

}  // namespace mcn::gen
