// Synthetic road-network topology generator. Substitutes for the San
// Francisco network of the paper's evaluation (174,956 nodes / 223,001
// edges from Brinkhoff's generator data, not available offline): a jittered
// grid of intersections, connected by a random spanning tree plus extra
// cycle edges, with edges subdivided into polyline chains so that the node
// and edge counts (and hence the degree distribution's heavy share of
// degree-2 nodes) match the requested totals exactly. See DESIGN.md §3.
#ifndef MCN_GEN_ROAD_NETWORK_GENERATOR_H_
#define MCN_GEN_ROAD_NETWORK_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::gen {

/// Pure topology (+ planar coordinates in [0,1]^2); costs are assigned
/// separately by the cost generator.
struct Topology {
  std::vector<std::pair<double, double>> coords;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(coords.size());
  }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges.size()); }

  double EdgeLength(size_t e) const;
};

struct RoadNetworkOptions {
  /// Defaults reproduce the paper's San Francisco network scale.
  uint32_t target_nodes = 174956;
  uint32_t target_edges = 223001;
  /// Coordinate jitter as a fraction of the grid cell size.
  double jitter = 0.35;
  uint64_t seed = 42;
};

/// Generates a connected topology with exactly the requested node and edge
/// counts. Requires target_nodes >= 4 and
/// target_nodes - 1 <= target_edges <= ~1.9 * target_nodes.
Result<Topology> GenerateRoadNetwork(const RoadNetworkOptions& options);

}  // namespace mcn::gen

#endif  // MCN_GEN_ROAD_NETWORK_GENERATOR_H_
