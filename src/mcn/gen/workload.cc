#include "mcn/gen/workload.h"

#include <algorithm>
#include <cmath>

#include "mcn/common/macros.h"

namespace mcn::gen {

ExperimentConfig ExperimentConfig::Scaled(double factor) const {
  MCN_CHECK(factor > 0.0);
  ExperimentConfig c = *this;
  c.nodes = std::max<uint32_t>(64, static_cast<uint32_t>(nodes * factor));
  c.edges = std::max<uint32_t>(
      c.nodes + 16, static_cast<uint32_t>(edges * factor));
  c.facilities =
      std::max<uint32_t>(16, static_cast<uint32_t>(facilities * factor));
  return c;
}

std::string ExperimentConfig::ToString() const {
  std::string s;
  s += "nodes=" + std::to_string(nodes);
  s += " edges=" + std::to_string(edges);
  s += " |P|=" + std::to_string(facilities);
  s += " d=" + std::to_string(num_costs);
  s += " dist=" + std::string(gen::ToString(distribution));
  s += " buffer=" + std::to_string(buffer_pct) + "%";
  s += " seed=" + std::to_string(seed);
  // Only configs that ask for an index mention it: pre-existing workload
  // descriptions (and the bench figures keyed on them) stay byte-stable.
  if (landmarks > 0) s += " L=" + std::to_string(landmarks);
  return s;
}

void Instance::ResetIoState() {
  pool->Clear();
  pool->ResetStats();
  if (landmark_reader != nullptr) landmark_reader->ResetIoState();
  disk.ResetStats();
}

size_t BufferFrames(double buffer_pct, uint64_t total_pages) {
  MCN_CHECK(buffer_pct >= 0.0);
  return static_cast<size_t>(
      std::llround(buffer_pct / 100.0 * static_cast<double>(total_pages)));
}

namespace {

struct Generated {
  graph::MultiCostGraph graph;
  graph::FacilitySet facilities;
};

// Shared by the flat and sharded builders: the generated network is a
// function of the config alone, so the two layouts of one config hold the
// same data and their query results are comparable byte for byte.
Result<Generated> GenerateGraphAndFacilities(const ExperimentConfig& config) {
  Random rng(config.seed);

  RoadNetworkOptions road;
  road.target_nodes = config.nodes;
  road.target_edges = config.edges;
  road.seed = rng.Next();
  MCN_ASSIGN_OR_RETURN(Topology topo, GenerateRoadNetwork(road));

  CostGenOptions costs;
  costs.num_costs = config.num_costs;
  costs.distribution = config.distribution;
  costs.seed = rng.Next();
  MCN_ASSIGN_OR_RETURN(graph::MultiCostGraph g,
                       BuildMultiCostGraph(topo, costs));

  FacilityGenOptions fac;
  fac.count = config.facilities;
  fac.num_clusters = config.clusters;
  fac.seed = rng.Next();
  MCN_ASSIGN_OR_RETURN(graph::FacilitySet facilities,
                       GenerateFacilities(g, fac));
  return Generated{std::move(g), std::move(facilities)};
}

}  // namespace

Result<std::unique_ptr<Instance>> BuildInstance(
    const ExperimentConfig& config) {
  MCN_ASSIGN_OR_RETURN(Generated gen, GenerateGraphAndFacilities(config));
  auto instance = std::make_unique<Instance>(std::move(gen.graph),
                                             std::move(gen.facilities));
  MCN_ASSIGN_OR_RETURN(
      instance->files,
      net::BuildNetwork(&instance->disk, instance->graph,
                        instance->facilities));
  size_t frames = BufferFrames(config.buffer_pct, instance->files.total_pages);
  instance->pool =
      std::make_unique<storage::BufferPool>(&instance->disk, frames);
  instance->reader = std::make_unique<net::NetworkReader>(
      instance->files, instance->pool.get());
  if (config.landmarks > 0) {
    const std::vector<graph::NodeId> landmarks = net::SelectLandmarks(
        instance->graph, config.landmarks, /*num_shards=*/1, {});
    MCN_ASSIGN_OR_RETURN(
        instance->files.landmark,
        net::BuildLandmarkIndex(&instance->disk, instance->graph, landmarks,
                                "landmark_index"));
    instance->landmark_reader = std::make_unique<net::LandmarkIndexReader>(
        &instance->disk, instance->files.landmark);
    MCN_RETURN_IF_ERROR(instance->landmark_reader->Validate());
  }
  instance->disk.ResetStats();  // build-time writes are not query I/O
  return instance;
}

Result<std::unique_ptr<ShardedInstance>> BuildShardedInstance(
    const ExperimentConfig& config, int num_shards,
    const shard::Partitioner* partitioner) {
  MCN_ASSIGN_OR_RETURN(Generated gen, GenerateGraphAndFacilities(config));

  shard::GridTilePartitioner default_partitioner;
  const shard::Partitioner* chosen =
      partitioner != nullptr ? partitioner : &default_partitioner;
  MCN_ASSIGN_OR_RETURN(shard::Partition partition,
                       chosen->Build(gen.graph, num_shards));

  auto instance = std::make_unique<ShardedInstance>(
      std::move(gen.graph), std::move(gen.facilities), std::move(partition));
  MCN_ASSIGN_OR_RETURN(
      instance->files,
      shard::BuildShardedNetwork(&instance->storage, instance->graph,
                                 instance->facilities));
  instance->pool_frames =
      BufferFrames(config.buffer_pct, instance->files.total_pages);
  instance->reader = std::make_unique<shard::ShardedNetworkReader>(
      &instance->storage, instance->files,
      shard::SplitFramesAcrossShards(instance->pool_frames,
                                     instance->storage.num_shards()));
  if (config.landmarks > 0) {
    // One global index with a boundary-biased, per-shard landmark quota;
    // the row file lives on shard 0's disk.
    const shard::Partition& part = instance->storage.partition();
    const std::vector<graph::NodeId> landmarks = net::SelectLandmarks(
        instance->graph, config.landmarks, part.num_shards, part.node_shard);
    MCN_ASSIGN_OR_RETURN(
        instance->files.landmark,
        net::BuildLandmarkIndex(instance->storage.disk(0), instance->graph,
                                landmarks, "landmark_index"));
    instance->landmark_reader = std::make_unique<net::LandmarkIndexReader>(
        instance->storage.disk(0), instance->files.landmark);
    MCN_RETURN_IF_ERROR(instance->landmark_reader->Validate());
  }
  instance->storage.ResetStats();  // build-time writes are not query I/O
  return instance;
}

}  // namespace mcn::gen
