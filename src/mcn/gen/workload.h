// Workload assembly: the paper's experiment configuration (§VI) turned into
// a built, disk-resident instance — generated road network + clustered
// facilities, written through the Fig. 2 storage scheme, fronted by an LRU
// buffer sized as a percentage of the network's pages. Shared by the
// benchmark harness, the integration tests and the examples.
#ifndef MCN_GEN_WORKLOAD_H_
#define MCN_GEN_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/gen/cost_generator.h"
#include "mcn/gen/facility_generator.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/landmark_index.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::gen {

/// One experiment configuration. Defaults are the paper's defaults.
struct ExperimentConfig {
  uint32_t nodes = 174956;       ///< San Francisco scale
  uint32_t edges = 223001;
  uint32_t facilities = 100000;  ///< |P|
  int clusters = 10;
  int num_costs = 4;             ///< d
  CostDistribution distribution = CostDistribution::kAntiCorrelated;
  double buffer_pct = 1.0;       ///< LRU buffer, % of the MCN pages
  uint64_t seed = 7;
  /// Landmarks for the lower-bound prune index (DESIGN.md §12); 0 (the
  /// default) builds no index, keeping every existing workload byte-stable.
  uint32_t landmarks = 0;

  /// Proportionally scaled-down copy (for fast benchmark runs); keeps at
  /// least a small viable network.
  ExperimentConfig Scaled(double factor) const;

  std::string ToString() const;
};

/// A fully built instance (heap-allocated: the pool and reader hold
/// pointers into it).
struct Instance {
  Instance(graph::MultiCostGraph g, graph::FacilitySet f)
      : graph(std::move(g)), facilities(std::move(f)) {}

  graph::MultiCostGraph graph;
  graph::FacilitySet facilities;
  storage::DiskManager disk;
  net::NetworkFiles files;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<net::NetworkReader> reader;
  /// Validated index reader when the config asked for landmarks; null
  /// otherwise. Owns its own pool — main-pool stats are unaffected.
  std::unique_ptr<net::LandmarkIndexReader> landmark_reader;

  /// Uniform random query location (paper: uniform over the network).
  graph::Location RandomQueryLocation(Random& rng) const {
    return RandomLocation(graph, rng);
  }

  /// Resets buffer contents and all I/O statistics (between runs).
  void ResetIoState();
};

/// Buffer capacity in frames for a percentage of `total_pages`.
size_t BufferFrames(double buffer_pct, uint64_t total_pages);

/// Generates, builds and wires up an instance.
Result<std::unique_ptr<Instance>> BuildInstance(
    const ExperimentConfig& config);

/// A sharded-build instance (DESIGN.md §8): the same generated graph and
/// facility set as BuildInstance for the same config (generation precedes
/// partitioning, so results are comparable across K), laid out as K
/// per-shard file sets with a driver-thread routing reader on top.
struct ShardedInstance {
  ShardedInstance(graph::MultiCostGraph g, graph::FacilitySet f,
                  shard::Partition partition)
      : graph(std::move(g)),
        facilities(std::move(f)),
        storage(std::move(partition)) {}

  graph::MultiCostGraph graph;
  graph::FacilitySet facilities;
  shard::ShardedStorage storage;
  shard::ShardedNetworkFiles files;
  /// Per-shard pool set sized like Instance::pool split across shards.
  std::unique_ptr<shard::ShardedNetworkReader> reader;
  /// Validated reader over the global landmark index (file on shard 0's
  /// disk) when the config asked for landmarks; null otherwise.
  std::unique_ptr<net::LandmarkIndexReader> landmark_reader;
  /// Flat-equivalent frame budget (BufferFrames of the config), before
  /// the per-shard split — what service/executor callers should pass on.
  size_t pool_frames = 0;

  graph::Location RandomQueryLocation(Random& rng) const {
    return RandomLocation(graph, rng);
  }

  void ResetIoState() {
    reader->ResetIoState();
    reader->ResetShardIoStats();
    if (landmark_reader != nullptr) landmark_reader->ResetIoState();
    storage.ResetStats();
  }
};

/// Generates (identically to BuildInstance), partitions with `partitioner`
/// (default: shard::GridTilePartitioner) and builds the sharded layout.
Result<std::unique_ptr<ShardedInstance>> BuildShardedInstance(
    const ExperimentConfig& config, int num_shards,
    const shard::Partitioner* partitioner = nullptr);

}  // namespace mcn::gen

#endif  // MCN_GEN_WORKLOAD_H_
