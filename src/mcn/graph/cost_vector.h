// CostVector: the d-dimensional edge/path cost vector of a multi-cost
// network (paper §III). Fixed inline capacity (kMaxCostTypes), runtime
// dimensionality d in [1, kMaxCostTypes].
#ifndef MCN_GRAPH_COST_VECTOR_H_
#define MCN_GRAPH_COST_VECTOR_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <initializer_list>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::graph {

/// Maximum number of cost types supported (the paper evaluates d in [2,5]).
inline constexpr int kMaxCostTypes = 8;

/// Small value type holding d non-negative costs.
class CostVector {
 public:
  CostVector() : dim_(0) { values_.fill(0.0); }

  /// d costs, all set to `fill`.
  explicit CostVector(int dim, double fill = 0.0) : dim_(dim) {
    MCN_DCHECK(dim >= 0 && dim <= kMaxCostTypes);
    values_.fill(0.0);
    for (int i = 0; i < dim; ++i) values_[i] = fill;
  }

  CostVector(std::initializer_list<double> values)
      : dim_(static_cast<int>(values.size())) {
    MCN_DCHECK(values.size() <= kMaxCostTypes);
    values_.fill(0.0);
    int i = 0;
    for (double v : values) values_[i++] = v;
  }

  int dim() const { return dim_; }

  double operator[](int i) const {
    MCN_DCHECK(i >= 0 && i < dim_);
    return values_[i];
  }
  double& operator[](int i) {
    MCN_DCHECK(i >= 0 && i < dim_);
    return values_[i];
  }

  /// Strict Pareto dominance: every component <= and at least one <.
  bool Dominates(const CostVector& o) const {
    MCN_DCHECK(dim_ == o.dim_);
    bool strict = false;
    for (int i = 0; i < dim_; ++i) {
      if (values_[i] > o.values_[i]) return false;
      if (values_[i] < o.values_[i]) strict = true;
    }
    return strict;
  }

  /// Weak dominance: every component <=.
  bool DominatesOrEquals(const CostVector& o) const {
    MCN_DCHECK(dim_ == o.dim_);
    for (int i = 0; i < dim_; ++i) {
      if (values_[i] > o.values_[i]) return false;
    }
    return true;
  }

  bool operator==(const CostVector& o) const {
    if (dim_ != o.dim_) return false;
    for (int i = 0; i < dim_; ++i) {
      if (values_[i] != o.values_[i]) return false;
    }
    return true;
  }

  bool ApproxEquals(const CostVector& o, double eps = 1e-9) const {
    if (dim_ != o.dim_) return false;
    for (int i = 0; i < dim_; ++i) {
      double scale = std::max({1.0, std::fabs(values_[i]),
                               std::fabs(o.values_[i])});
      if (std::fabs(values_[i] - o.values_[i]) > eps * scale) return false;
    }
    return true;
  }

  CostVector operator+(const CostVector& o) const {
    MCN_DCHECK(dim_ == o.dim_);
    CostVector r(dim_);
    for (int i = 0; i < dim_; ++i) r.values_[i] = values_[i] + o.values_[i];
    return r;
  }

  /// Component-wise scaling (e.g. partial edge weights: frac * w(e)).
  CostVector Scaled(double s) const {
    CostVector r(dim_);
    for (int i = 0; i < dim_; ++i) r.values_[i] = values_[i] * s;
    return r;
  }

  double Sum() const {
    double s = 0;
    for (int i = 0; i < dim_; ++i) s += values_[i];
    return s;
  }

  double MaxComponent() const {
    double m = 0;
    for (int i = 0; i < dim_; ++i) m = std::max(m, values_[i]);
    return m;
  }

  std::string ToString() const {
    std::string s = "(";
    for (int i = 0; i < dim_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(values_[i]);
    }
    s += ")";
    return s;
  }

  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }

 private:
  int dim_;
  std::array<double, kMaxCostTypes> values_;
};

}  // namespace mcn::graph

#endif  // MCN_GRAPH_COST_VECTOR_H_
