#include "mcn/graph/facility.h"

#include <algorithm>

#include "mcn/common/macros.h"

namespace mcn::graph {

FacilityId FacilitySet::Add(EdgeId edge, double frac) {
  MCN_DCHECK(!finalized_);
  frac = std::clamp(frac, 0.0, 1.0);
  FacilityId id = static_cast<FacilityId>(facilities_.size());
  facilities_.push_back(Facility{id, edge, frac});
  return id;
}

void FacilitySet::Finalize() {
  MCN_CHECK(!finalized_);
  by_edge_.resize(facilities_.size());
  std::vector<FacilityId> order(facilities_.size());
  for (FacilityId i = 0; i < facilities_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](FacilityId a, FacilityId b) {
    return facilities_[a].edge != facilities_[b].edge
               ? facilities_[a].edge < facilities_[b].edge
               : a < b;
  });
  uint32_t at = 0;
  while (at < order.size()) {
    EdgeId edge = facilities_[order[at]].edge;
    uint32_t begin = at;
    while (at < order.size() && facilities_[order[at]].edge == edge) {
      by_edge_[at] = order[at];
      ++at;
    }
    edge_ranges_[edge] = {begin, at};
    edges_with_facilities_.push_back(edge);
  }
  finalized_ = true;
}

std::span<const FacilityId> FacilitySet::OnEdge(EdgeId edge) const {
  MCN_DCHECK(finalized_);
  auto it = edge_ranges_.find(edge);
  if (it == edge_ranges_.end()) return {};
  return {by_edge_.data() + it->second.first,
          it->second.second - it->second.first};
}

}  // namespace mcn::graph
