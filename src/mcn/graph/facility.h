// Facilities (points of interest) lying on network edges (paper §III:
// "All facilities p in P fall on the edges of the MCN"; partial edge weights
// are proportional to the Euclidean split of the edge).
#ifndef MCN_GRAPH_FACILITY_H_
#define MCN_GRAPH_FACILITY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::graph {

/// A facility on edge `edge` at fraction `frac` in [0,1] measured from the
/// edge's canonical endpoint u (so the partial weight from u is
/// frac * w(e) and from v is (1-frac) * w(e)).
struct Facility {
  FacilityId id;
  EdgeId edge;
  double frac;
};

/// The facility set P. Facility ids are dense [0, size).
class FacilitySet {
 public:
  FacilitySet() = default;

  /// Adds a facility on `edge` at `frac`; returns its id. `frac` is clamped
  /// to [0,1].
  FacilityId Add(EdgeId edge, double frac);

  size_t size() const { return facilities_.size(); }
  bool empty() const { return facilities_.empty(); }
  const Facility& operator[](FacilityId id) const { return facilities_[id]; }
  const std::vector<Facility>& all() const { return facilities_; }

  /// Builds the per-edge index; must be called after the last Add and
  /// before OnEdge().
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Ids of the facilities on `edge` (empty if none).
  std::span<const FacilityId> OnEdge(EdgeId edge) const;

  /// Edges that carry at least one facility.
  const std::vector<EdgeId>& EdgesWithFacilities() const {
    return edges_with_facilities_;
  }

 private:
  std::vector<Facility> facilities_;
  bool finalized_ = false;
  std::unordered_map<EdgeId, std::pair<uint32_t, uint32_t>> edge_ranges_;
  std::vector<FacilityId> by_edge_;
  std::vector<EdgeId> edges_with_facilities_;
};

}  // namespace mcn::graph

#endif  // MCN_GRAPH_FACILITY_H_
