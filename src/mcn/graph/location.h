// Query locations: a point on the network, either exactly at a node or on an
// edge at a fraction from the edge's canonical endpoint u (paper §III,
// footnote 3). Edges are addressed by their canonical endpoint pair so that
// a Location is meaningful both against the in-memory graph and against the
// disk-resident storage scheme.
#ifndef MCN_GRAPH_LOCATION_H_
#define MCN_GRAPH_LOCATION_H_

#include <string>

#include "mcn/common/macros.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::graph {

/// A point on the network. Value type.
class Location {
 public:
  static Location AtNode(NodeId v) {
    Location loc;
    loc.is_node_ = true;
    loc.node_ = v;
    return loc;
  }

  /// `frac` in [0,1], measured from the canonical endpoint `edge.u`.
  static Location OnEdge(EdgeKey edge, double frac) {
    MCN_DCHECK(frac >= 0.0 && frac <= 1.0);
    Location loc;
    loc.is_node_ = false;
    loc.edge_ = edge;
    loc.frac_ = frac;
    return loc;
  }

  bool is_node() const { return is_node_; }

  NodeId node() const {
    MCN_DCHECK(is_node_);
    return node_;
  }
  EdgeKey edge() const {
    MCN_DCHECK(!is_node_);
    return edge_;
  }
  double frac() const {
    MCN_DCHECK(!is_node_);
    return frac_;
  }

  std::string ToString() const {
    if (is_node_) return "node " + std::to_string(node_);
    return "edge (" + std::to_string(edge_.u) + "," +
           std::to_string(edge_.v) + ") @ " + std::to_string(frac_);
  }

 private:
  Location() = default;
  bool is_node_ = true;
  NodeId node_ = kInvalidNode;
  EdgeKey edge_;
  double frac_ = 0.0;
};

}  // namespace mcn::graph

#endif  // MCN_GRAPH_LOCATION_H_
