#include "mcn/graph/multi_cost_graph.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::graph {

MultiCostGraph::MultiCostGraph(int num_costs) : num_costs_(num_costs) {
  MCN_CHECK(num_costs >= 1 && num_costs <= kMaxCostTypes);
}

NodeId MultiCostGraph::AddNode(double x, double y) {
  MCN_DCHECK(!finalized_);
  coords_x_.push_back(x);
  coords_y_.push_back(y);
  return static_cast<NodeId>(coords_x_.size() - 1);
}

Result<EdgeId> MultiCostGraph::AddEdge(NodeId a, NodeId b,
                                       const CostVector& w) {
  MCN_DCHECK(!finalized_);
  if (a == b) return Status::InvalidArgument("AddEdge: self loop");
  if (a >= num_nodes() || b >= num_nodes()) {
    return Status::InvalidArgument("AddEdge: node out of range");
  }
  if (w.dim() != num_costs_) {
    return Status::InvalidArgument("AddEdge: cost vector has dim " +
                                   std::to_string(w.dim()) + ", expected " +
                                   std::to_string(num_costs_));
  }
  for (int i = 0; i < w.dim(); ++i) {
    if (w[i] < 0 || !std::isfinite(w[i])) {
      return Status::InvalidArgument("AddEdge: costs must be non-negative");
    }
  }
  EdgeKey key(a, b);
  if (!edge_keys_.insert(key.Pack()).second) {
    return Status::InvalidArgument(
        "AddEdge: duplicate edge (" + std::to_string(key.u) + "," +
        std::to_string(key.v) + "); parallel edges are not representable");
  }
  edges_.push_back(EdgeRecord{key.u, key.v, w});
  return static_cast<EdgeId>(edges_.size() - 1);
}

void MultiCostGraph::Finalize() {
  MCN_CHECK(!finalized_);
  adj_offsets_.assign(num_nodes() + 1, 0);
  for (const EdgeRecord& e : edges_) {
    ++adj_offsets_[e.u + 1];
    ++adj_offsets_[e.v + 1];
  }
  for (size_t i = 1; i < adj_offsets_.size(); ++i) {
    adj_offsets_[i] += adj_offsets_[i - 1];
  }
  adj_entries_.resize(adj_offsets_.back());
  std::vector<uint32_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const EdgeRecord& rec = edges_[e];
    adj_entries_[cursor[rec.u]++] = AdjacentEdge{rec.v, e};
    adj_entries_[cursor[rec.v]++] = AdjacentEdge{rec.u, e};
  }
  finalized_ = true;
}

std::span<const AdjacentEdge> MultiCostGraph::Neighbors(NodeId v) const {
  MCN_DCHECK(finalized_);
  MCN_DCHECK(v < num_nodes());
  return {adj_entries_.data() + adj_offsets_[v],
          adj_offsets_[v + 1] - adj_offsets_[v]};
}

Result<EdgeId> MultiCostGraph::FindEdge(NodeId a, NodeId b) const {
  MCN_DCHECK(finalized_);
  if (a >= num_nodes() || b >= num_nodes()) {
    return Status::InvalidArgument("FindEdge: node out of range");
  }
  for (const AdjacentEdge& adj : Neighbors(a)) {
    if (adj.neighbor == b) return adj.edge;
  }
  return Status::NotFound("no edge between " + std::to_string(a) + " and " +
                          std::to_string(b));
}

double MultiCostGraph::EuclideanDistance(NodeId a, NodeId b) const {
  double dx = coords_x_[a] - coords_x_[b];
  double dy = coords_y_[a] - coords_y_[b];
  return std::sqrt(dx * dx + dy * dy);
}

uint32_t MultiCostGraph::MaxDegree() const {
  MCN_DCHECK(finalized_);
  uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    best = std::max(best,
                    adj_offsets_[v + 1] - adj_offsets_[v]);
  }
  return best;
}

}  // namespace mcn::graph
