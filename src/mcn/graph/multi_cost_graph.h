// MultiCostGraph: the in-memory model of a multi-cost network G = {V, E, W}
// (paper §III): undirected edges, each with a d-dimensional non-negative
// cost vector; optional planar node coordinates. Facilities and query
// locations lie *on* edges, addressed by (edge, fraction-from-canonical-u).
#ifndef MCN_GRAPH_MULTI_COST_GRAPH_H_
#define MCN_GRAPH_MULTI_COST_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "mcn/common/hash.h"
#include "mcn/common/result.h"
#include "mcn/graph/cost_vector.h"

namespace mcn::graph {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using FacilityId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr EdgeId kInvalidEdge = 0xFFFFFFFFu;

/// Canonical undirected edge key (u < v), packable into 64 bits. Used to
/// address edges across the disk-resident structures and candidate filters.
struct EdgeKey {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  EdgeKey() = default;
  /// Canonicalizes the endpoint order.
  EdgeKey(NodeId a, NodeId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  uint64_t Pack() const { return (static_cast<uint64_t>(u) << 32) | v; }
  static EdgeKey Unpack(uint64_t packed) {
    EdgeKey k;
    k.u = static_cast<NodeId>(packed >> 32);
    k.v = static_cast<NodeId>(packed & 0xFFFFFFFFu);
    return k;
  }

  bool operator==(const EdgeKey& o) const { return u == o.u && v == o.v; }
};

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& k) const {
    return static_cast<size_t>(MixU64(k.Pack()));
  }
};

/// One stored undirected edge; endpoints are canonical (u < v).
struct EdgeRecord {
  NodeId u;
  NodeId v;
  CostVector w;

  /// The endpoint other than `from` (which must be u or v).
  NodeId Other(NodeId from) const { return from == u ? v : u; }
};

/// CSR adjacency entry.
struct AdjacentEdge {
  NodeId neighbor;
  EdgeId edge;
};

/// A growable multi-cost graph. Add nodes/edges, then Finalize() to build
/// the CSR adjacency before using Neighbors()/FindEdge().
class MultiCostGraph {
 public:
  /// `num_costs` = d, the number of cost types (1..kMaxCostTypes).
  explicit MultiCostGraph(int num_costs);

  int num_costs() const { return num_costs_; }
  NodeId num_nodes() const { return static_cast<NodeId>(coords_x_.size()); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Adds a node with planar coordinates; returns its id.
  NodeId AddNode(double x, double y);

  /// Adds an undirected edge; endpoints are canonicalized. Rejects self
  /// loops, out-of-range nodes, wrong-dimension or negative cost vectors,
  /// and duplicate edges (the storage format addresses edges by endpoint
  /// pair, so parallel edges are not representable).
  Result<EdgeId> AddEdge(NodeId a, NodeId b, const CostVector& w);

  /// Builds the CSR adjacency; must be called after the last AddEdge and
  /// before Neighbors()/FindEdge().
  void Finalize();
  bool finalized() const { return finalized_; }

  std::span<const AdjacentEdge> Neighbors(NodeId v) const;
  const EdgeRecord& edge(EdgeId e) const { return edges_[e]; }

  /// Edge id by endpoints, or NotFound.
  Result<EdgeId> FindEdge(NodeId a, NodeId b) const;

  double x(NodeId v) const { return coords_x_[v]; }
  double y(NodeId v) const { return coords_y_[v]; }

  /// Euclidean distance between two nodes' coordinates.
  double EuclideanDistance(NodeId a, NodeId b) const;

  /// Maximum node degree (used to validate storage-format limits).
  uint32_t MaxDegree() const;

 private:
  int num_costs_;
  std::vector<double> coords_x_;
  std::unordered_set<uint64_t> edge_keys_;
  std::vector<double> coords_y_;
  std::vector<EdgeRecord> edges_;
  // CSR.
  bool finalized_ = false;
  std::vector<uint32_t> adj_offsets_;
  std::vector<AdjacentEdge> adj_entries_;
};

}  // namespace mcn::graph

#endif  // MCN_GRAPH_MULTI_COST_GRAPH_H_
