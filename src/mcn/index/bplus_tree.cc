#include "mcn/index/bplus_tree.h"

#include <cstring>
#include <vector>

#include "mcn/common/macros.h"
#include "mcn/storage/page.h"

namespace mcn::index {
namespace {

using storage::kPageSize;
using storage::PageNo;

// Page layouts (fixed-width, little-endian host order; the simulated disk
// never crosses hosts).
//
// Leaf:     [u16 kind=1][u16 count][u32 next_leaf] [count x {u64 key, u64 val}]
// Internal: [u16 kind=0][u16 count][u32 pad]
//           [count x u64 key] [(count+1) x u32 child]
// An internal node routes key k to child i where i is the number of keys < k
// ... more precisely: child[i] covers keys in [key[i-1], key[i]) with key[-1]
// = -inf; keys[] holds the smallest key under child[i+1].

constexpr size_t kNodeHeader = 8;
constexpr uint16_t kLeafKind = 1;
constexpr uint16_t kInternalKind = 0;

constexpr size_t kLeafCapacity = (kPageSize - kNodeHeader) / 16;  // 255
constexpr size_t kInternalCapacity =
    (kPageSize - kNodeHeader - 4) / 12;  // 340 keys, 341 children

template <typename T>
T Load(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(std::byte* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

uint16_t NodeKind(const std::byte* page) { return Load<uint16_t>(page); }
uint16_t NodeCount(const std::byte* page) { return Load<uint16_t>(page + 2); }

uint64_t LeafKey(const std::byte* page, size_t i) {
  return Load<uint64_t>(page + kNodeHeader + i * 16);
}
uint64_t LeafValue(const std::byte* page, size_t i) {
  return Load<uint64_t>(page + kNodeHeader + i * 16 + 8);
}
uint32_t LeafNext(const std::byte* page) { return Load<uint32_t>(page + 4); }

uint64_t InternalKey(const std::byte* page, size_t i) {
  return Load<uint64_t>(page + kNodeHeader + i * 8);
}
uint32_t InternalChild(const std::byte* page, size_t count, size_t i) {
  return Load<uint32_t>(page + kNodeHeader + count * 8 + i * 4);
}

// Binary search: first index in [0, n) whose key is > `key`; used to pick the
// child in an internal node.
size_t UpperBoundInternal(const std::byte* page, size_t n, uint64_t key) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First index in [0, n) whose key is >= `key` in a leaf.
size_t LowerBoundLeaf(const std::byte* page, size_t n, uint64_t key) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<BPlusTree> BPlusTree::BulkLoad(storage::DiskManager* disk,
                                      storage::FileId file,
                                      std::span<const Entry> sorted_entries) {
  MCN_CHECK(disk != nullptr);
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    if (sorted_entries[i - 1].first >= sorted_entries[i].first) {
      return Status::InvalidArgument(
          "BulkLoad: keys must be strictly increasing");
    }
  }

  std::vector<std::byte> buf(kPageSize);

  // Build the leaf level; record (first_key, page) per node for the parents.
  struct LevelEntry {
    uint64_t first_key;
    PageNo page;
  };
  std::vector<LevelEntry> level;

  size_t n = sorted_entries.size();
  size_t pos = 0;
  do {
    size_t take = std::min(kLeafCapacity, n - pos);
    std::memset(buf.data(), 0, kPageSize);
    Store<uint16_t>(buf.data(), kLeafKind);
    Store<uint16_t>(buf.data() + 2, static_cast<uint16_t>(take));
    Store<uint32_t>(buf.data() + 4, storage::kInvalidPageNo);
    for (size_t i = 0; i < take; ++i) {
      Store<uint64_t>(buf.data() + kNodeHeader + i * 16,
                      sorted_entries[pos + i].first);
      Store<uint64_t>(buf.data() + kNodeHeader + i * 16 + 8,
                      sorted_entries[pos + i].second);
    }
    MCN_ASSIGN_OR_RETURN(PageNo page, disk->AllocatePage(file));
    MCN_RETURN_IF_ERROR(disk->WritePage({file, page}, buf.data()));
    uint64_t first_key = take > 0 ? sorted_entries[pos].first : 0;
    level.push_back({first_key, page});
    pos += take;
  } while (pos < n);

  // Chain the leaves (re-read, set next pointer, re-write).
  for (size_t i = 0; i + 1 < level.size(); ++i) {
    MCN_RETURN_IF_ERROR(disk->ReadPage({file, level[i].page}, buf.data()));
    Store<uint32_t>(buf.data() + 4, level[i + 1].page);
    MCN_RETURN_IF_ERROR(disk->WritePage({file, level[i].page}, buf.data()));
  }

  uint32_t height = 1;
  while (level.size() > 1) {
    std::vector<LevelEntry> parents;
    size_t m = level.size();
    size_t at = 0;
    while (at < m) {
      // Children per internal node: up to kInternalCapacity + 1.
      size_t take = std::min(kInternalCapacity + 1, m - at);
      std::memset(buf.data(), 0, kPageSize);
      Store<uint16_t>(buf.data(), kInternalKind);
      uint16_t nkeys = static_cast<uint16_t>(take - 1);
      Store<uint16_t>(buf.data() + 2, nkeys);
      for (size_t i = 0; i < take - 1; ++i) {
        // Separator i = first key under child i+1.
        Store<uint64_t>(buf.data() + kNodeHeader + i * 8,
                        level[at + i + 1].first_key);
      }
      for (size_t i = 0; i < take; ++i) {
        Store<uint32_t>(buf.data() + kNodeHeader + nkeys * 8 + i * 4,
                        level[at + i].page);
      }
      MCN_ASSIGN_OR_RETURN(PageNo page, disk->AllocatePage(file));
      MCN_RETURN_IF_ERROR(disk->WritePage({file, page}, buf.data()));
      parents.push_back({level[at].first_key, page});
      at += take;
    }
    level = std::move(parents);
    ++height;
  }

  return BPlusTree(file, level[0].page, height, sorted_entries.size());
}

Result<storage::PageNo> BPlusTree::FindLeaf(storage::BufferPool& pool,
                                            uint64_t key) const {
  PageNo page = root_;
  for (uint32_t depth = 1; depth < height_; ++depth) {
    MCN_ASSIGN_OR_RETURN(auto guard, pool.Fetch({file_, page}));
    const std::byte* data = guard.data();
    if (NodeKind(data) != kInternalKind) {
      return Status::Corruption("BPlusTree: expected internal node");
    }
    size_t count = NodeCount(data);
    size_t child = UpperBoundInternal(data, count, key);
    page = InternalChild(data, count, child);
  }
  return page;
}

Result<std::optional<uint64_t>> BPlusTree::Lookup(storage::BufferPool& pool,
                                                  uint64_t key) const {
  MCN_ASSIGN_OR_RETURN(PageNo leaf, FindLeaf(pool, key));
  MCN_ASSIGN_OR_RETURN(auto guard, pool.Fetch({file_, leaf}));
  const std::byte* data = guard.data();
  if (NodeKind(data) != kLeafKind) {
    return Status::Corruption("BPlusTree: expected leaf node");
  }
  size_t count = NodeCount(data);
  size_t i = LowerBoundLeaf(data, count, key);
  if (i < count && LeafKey(data, i) == key) {
    return std::optional<uint64_t>(LeafValue(data, i));
  }
  return std::optional<uint64_t>(std::nullopt);
}

Status BPlusTree::ScanRange(
    storage::BufferPool& pool, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  auto leaf_result = FindLeaf(pool, lo);
  MCN_RETURN_IF_ERROR(leaf_result.status());
  PageNo leaf = leaf_result.value();
  while (leaf != storage::kInvalidPageNo) {
    auto guard_result = pool.Fetch({file_, leaf});
    MCN_RETURN_IF_ERROR(guard_result.status());
    const std::byte* data = guard_result.value().data();
    if (NodeKind(data) != kLeafKind) {
      return Status::Corruption("BPlusTree: expected leaf node");
    }
    size_t count = NodeCount(data);
    for (size_t i = LowerBoundLeaf(data, count, lo); i < count; ++i) {
      uint64_t key = LeafKey(data, i);
      if (key > hi) return Status::OK();
      if (!fn(key, LeafValue(data, i))) return Status::OK();
    }
    leaf = LeafNext(data);
  }
  return Status::OK();
}

}  // namespace mcn::index
