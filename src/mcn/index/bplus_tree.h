// A paged, bulk-loaded B+-tree mapping uint64 keys to uint64 values.
// Implements the paper's "adjacency tree" (node id -> adjacency record
// position) and "facility tree" (facility id -> containing edge) from the
// storage scheme of Fig. 2. The network is static, so the tree is built once
// (bottom-up bulk load) and then read through the BufferPool, which charges
// each traversed page to the query's I/O budget.
#ifndef MCN_INDEX_BPLUS_TREE_H_
#define MCN_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>

#include "mcn/common/result.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::index {

/// Read-only B+-tree handle. Cheap to copy: holds only (file, root, height).
class BPlusTree {
 public:
  using Entry = std::pair<uint64_t, uint64_t>;

  /// Writes a tree for `sorted_entries` (strictly increasing keys) into
  /// `file` (which should be empty) and returns the handle. Builder I/O goes
  /// directly to the DiskManager — load-time I/O is not part of query cost.
  static Result<BPlusTree> BulkLoad(storage::DiskManager* disk,
                                    storage::FileId file,
                                    std::span<const Entry> sorted_entries);

  /// Re-opens a previously built tree.
  BPlusTree(storage::FileId file, storage::PageNo root, uint32_t height,
            uint64_t size)
      : file_(file), root_(root), height_(height), size_(size) {}

  /// Point lookup through `pool`. Returns the value or nullopt.
  Result<std::optional<uint64_t>> Lookup(storage::BufferPool& pool,
                                         uint64_t key) const;

  /// Calls `fn(key, value)` for every entry with lo <= key <= hi, in key
  /// order; stops early if `fn` returns false.
  Status ScanRange(storage::BufferPool& pool, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, uint64_t)>& fn) const;

  storage::FileId file() const { return file_; }
  storage::PageNo root() const { return root_; }
  /// Number of levels (1 = the root is a leaf).
  uint32_t height() const { return height_; }
  /// Number of stored entries.
  uint64_t size() const { return size_; }

 private:
  /// Descends to the leaf that may contain `key`; returns its page number.
  Result<storage::PageNo> FindLeaf(storage::BufferPool& pool,
                                   uint64_t key) const;

  storage::FileId file_;
  storage::PageNo root_;
  uint32_t height_;
  uint64_t size_;
};

}  // namespace mcn::index

#endif  // MCN_INDEX_BPLUS_TREE_H_
