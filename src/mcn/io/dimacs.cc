#include "mcn/io/dimacs.h"

#include <fstream>
#include <iomanip>
#include <memory>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "mcn/common/macros.h"

namespace mcn::io {
namespace {

Status ParseError(size_t line_no, const std::string& why) {
  return Status::Corruption("line " + std::to_string(line_no) + ": " + why);
}

}  // namespace

Status WriteGraph(std::ostream& out, const graph::MultiCostGraph& g) {
  out << "c mcn extended DIMACS multi-cost network\n";
  out << "p mcn " << g.num_nodes() << " " << g.num_edges() << " "
      << g.num_costs() << "\n";
  out << std::setprecision(17);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "v " << (v + 1) << " " << g.x(v) << " " << g.y(v) << "\n";
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::EdgeRecord& er = g.edge(e);
    out << "a " << (er.u + 1) << " " << (er.v + 1);
    for (int i = 0; i < g.num_costs(); ++i) out << " " << er.w[i];
    out << "\n";
  }
  if (!out.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Result<graph::MultiCostGraph> ReadGraph(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  uint32_t nodes = 0, edges = 0;
  int d = 0;
  bool have_header = false;
  std::vector<std::pair<double, double>> coords;
  std::unique_ptr<graph::MultiCostGraph> g;
  uint32_t edges_read = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'p') {
      std::string fmt;
      ls >> fmt >> nodes >> edges >> d;
      if (!ls || fmt != "mcn") return ParseError(line_no, "bad problem line");
      if (d < 1 || d > graph::kMaxCostTypes) {
        return ParseError(line_no, "unsupported cost count");
      }
      coords.assign(nodes, {0.0, 0.0});
      have_header = true;
    } else if (kind == 'v') {
      if (!have_header) return ParseError(line_no, "v before p");
      uint64_t id;
      double x, y;
      ls >> id >> x >> y;
      if (!ls || id < 1 || id > nodes) {
        return ParseError(line_no, "bad vertex line");
      }
      coords[id - 1] = {x, y};
    } else if (kind == 'a') {
      if (!have_header) return ParseError(line_no, "a before p");
      if (g == nullptr) {
        g = std::make_unique<graph::MultiCostGraph>(d);
        for (auto [x, y] : coords) g->AddNode(x, y);
      }
      uint64_t u, v;
      ls >> u >> v;
      if (!ls || u < 1 || v < 1 || u > nodes || v > nodes) {
        return ParseError(line_no, "bad arc endpoints");
      }
      graph::CostVector w(d);
      for (int i = 0; i < d; ++i) {
        ls >> w[i];
      }
      if (!ls) return ParseError(line_no, "bad arc costs");
      auto added = g->AddEdge(static_cast<graph::NodeId>(u - 1),
                              static_cast<graph::NodeId>(v - 1), w);
      if (!added.ok()) return ParseError(line_no, added.status().message());
      ++edges_read;
    } else {
      return ParseError(line_no, std::string("unknown line kind '") + kind +
                                     "'");
    }
  }
  if (!have_header) return Status::Corruption("missing problem line");
  if (g == nullptr) {
    g = std::make_unique<graph::MultiCostGraph>(d);
    for (auto [x, y] : coords) g->AddNode(x, y);
  }
  if (edges_read != edges) {
    return Status::Corruption("edge count mismatch: header says " +
                              std::to_string(edges) + ", read " +
                              std::to_string(edges_read));
  }
  g->Finalize();
  return std::move(*g);
}

Status WriteFacilities(std::ostream& out, const graph::MultiCostGraph& g,
                       const graph::FacilitySet& facilities) {
  out << "c mcn facilities: f <u> <v> <frac-from-canonical-u>\n";
  out << std::setprecision(17);
  for (const graph::Facility& f : facilities.all()) {
    const graph::EdgeRecord& er = g.edge(f.edge);
    out << "f " << (er.u + 1) << " " << (er.v + 1) << " " << f.frac << "\n";
  }
  if (!out.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Result<graph::FacilitySet> ReadFacilities(std::istream& in,
                                          const graph::MultiCostGraph& g) {
  graph::FacilitySet facilities;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind != 'f') return ParseError(line_no, "expected facility line");
    uint64_t u, v;
    double frac;
    ls >> u >> v >> frac;
    if (!ls || u < 1 || v < 1 || u > g.num_nodes() || v > g.num_nodes() ||
        frac < 0.0 || frac > 1.0) {
      return ParseError(line_no, "bad facility line");
    }
    auto edge = g.FindEdge(static_cast<graph::NodeId>(u - 1),
                           static_cast<graph::NodeId>(v - 1));
    if (!edge.ok()) return ParseError(line_no, "facility on missing edge");
    facilities.Add(edge.value(), frac);
  }
  facilities.Finalize();
  return facilities;
}

Status WriteGraphToFile(const std::string& path,
                        const graph::MultiCostGraph& g) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteGraph(out, g);
}

Result<graph::MultiCostGraph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraph(in);
}

Status WriteFacilitiesToFile(const std::string& path,
                             const graph::MultiCostGraph& g,
                             const graph::FacilitySet& facilities) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteFacilities(out, g, facilities);
}

Result<graph::FacilitySet> ReadFacilitiesFromFile(
    const std::string& path, const graph::MultiCostGraph& g) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadFacilities(in, g);
}

}  // namespace mcn::io
