// Text I/O for multi-cost networks: an extended DIMACS shortest-path
// format. Lets users run the library on real road networks (e.g. the 9th
// DIMACS challenge graphs) by merging per-cost .gr files, and exports
// generated networks for reuse.
//
// Format (1-based node ids, like DIMACS):
//   c <comment>
//   p mcn <num_nodes> <num_edges> <num_costs>
//   v <id> <x> <y>                       (optional coordinate lines)
//   a <u> <v> <w_1> ... <w_d>            (undirected edge, one per edge)
// Facility files:
//   c <comment>
//   f <u> <v> <frac>                     (facility on edge (u,v))
#ifndef MCN_IO_DIMACS_H_
#define MCN_IO_DIMACS_H_

#include <iosfwd>
#include <string>

#include "mcn/common/result.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::io {

/// Writes `g` in the extended DIMACS format (with coordinates).
Status WriteGraph(std::ostream& out, const graph::MultiCostGraph& g);

/// Parses an extended DIMACS stream into a finalized graph.
Result<graph::MultiCostGraph> ReadGraph(std::istream& in);

/// Writes the facility set (`f u v frac` lines).
Status WriteFacilities(std::ostream& out, const graph::MultiCostGraph& g,
                       const graph::FacilitySet& facilities);

/// Parses facilities against `g` (edges must exist). Returns a finalized
/// set.
Result<graph::FacilitySet> ReadFacilities(std::istream& in,
                                          const graph::MultiCostGraph& g);

/// Convenience file wrappers.
Status WriteGraphToFile(const std::string& path,
                        const graph::MultiCostGraph& g);
Result<graph::MultiCostGraph> ReadGraphFromFile(const std::string& path);
Status WriteFacilitiesToFile(const std::string& path,
                             const graph::MultiCostGraph& g,
                             const graph::FacilitySet& facilities);
Result<graph::FacilitySet> ReadFacilitiesFromFile(
    const std::string& path, const graph::MultiCostGraph& g);

}  // namespace mcn::io

#endif  // MCN_IO_DIMACS_H_
