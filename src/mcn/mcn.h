// Umbrella header for the mcn library: preference queries (skyline, top-k)
// in large multi-cost transportation networks, after Mouratidis, Lin & Yiu,
// ICDE 2010. See README.md for a tour and examples/ for runnable programs.
#ifndef MCN_MCN_H_
#define MCN_MCN_H_

#include "mcn/algo/common.h"
#include "mcn/algo/incremental_topk.h"
#include "mcn/algo/naive.h"
#include "mcn/algo/skyline_query.h"
#include "mcn/algo/topk_query.h"
#include "mcn/common/logging.h"
#include "mcn/common/random.h"
#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/common/stopwatch.h"
#include "mcn/expand/astar.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/expand/engines.h"
#include "mcn/gen/workload.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/location.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/io/dimacs.h"
#include "mcn/mcpp/pareto_paths.h"
#include "mcn/net/catalog.h"
#include "mcn/net/network_builder.h"
#include "mcn/net/network_reader.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_reader.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/skyline/skyline.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/persistence.h"
#include "mcn/topk/topk.h"

#endif  // MCN_MCN_H_
