#include "mcn/mcpp/pareto_paths.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "mcn/common/macros.h"

namespace mcn::mcpp {
namespace {

/// Arena-allocated search label: a path to `node` with cost vector `costs`,
/// reconstructed via `parent` chains.
struct Label {
  graph::CostVector costs;
  graph::NodeId node;
  int32_t parent;  // index into the arena; -1 for the source label
  bool pruned = false;
};

bool LexLess(const graph::CostVector& a, const graph::CostVector& b) {
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

/// True when any vector in `set` (indices into `arena`) weakly dominates c.
bool DominatedOrEqual(const std::vector<Label>& arena,
                      const std::vector<int32_t>& set,
                      const graph::CostVector& c, McppStats* stats) {
  for (int32_t idx : set) {
    ++stats->dominance_checks;
    if (arena[idx].costs.DominatesOrEquals(c)) return true;
  }
  return false;
}

/// Removes from `set` the labels strictly dominated by `c`, marking them
/// pruned.
void PruneDominated(std::vector<Label>& arena, std::vector<int32_t>& set,
                    const graph::CostVector& c, McppStats* stats) {
  size_t keep = 0;
  for (size_t i = 0; i < set.size(); ++i) {
    ++stats->dominance_checks;
    if (c.Dominates(arena[set[i]].costs)) {
      arena[set[i]].pruned = true;
    } else {
      set[keep++] = set[i];
    }
  }
  set.resize(keep);
}

std::vector<ParetoPath> ExtractPaths(const std::vector<Label>& arena,
                                     const std::vector<int32_t>& target_set) {
  std::vector<ParetoPath> paths;
  paths.reserve(target_set.size());
  for (int32_t idx : target_set) {
    ParetoPath p;
    p.costs = arena[idx].costs;
    for (int32_t at = idx; at >= 0; at = arena[at].parent) {
      p.nodes.push_back(arena[at].node);
    }
    std::reverse(p.nodes.begin(), p.nodes.end());
    paths.push_back(std::move(p));
  }
  std::sort(paths.begin(), paths.end(),
            [](const ParetoPath& a, const ParetoPath& b) {
              return LexLess(a.costs, b.costs);
            });
  return paths;
}

Result<std::vector<ParetoPath>> LabelSetting(const graph::MultiCostGraph& g,
                                             graph::NodeId source,
                                             graph::NodeId target,
                                             const McppOptions& options,
                                             McppStats* stats) {
  std::vector<Label> arena;
  std::vector<std::vector<int32_t>> pareto(g.num_nodes());

  struct HeapEntry {
    graph::CostVector costs;
    int32_t label;
    bool operator>(const HeapEntry& o) const {
      if (costs == o.costs) return label > o.label;
      return LexLess(o.costs, costs);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap;

  arena.push_back(Label{graph::CostVector(g.num_costs(), 0.0), source, -1});
  ++stats->labels_created;
  heap.push(HeapEntry{arena[0].costs, 0});

  while (!heap.empty()) {
    HeapEntry entry = heap.top();
    heap.pop();
    // Copy: the arena may reallocate while this label is extended.
    Label label = arena[entry.label];
    // Lexicographically later labels cannot dominate earlier settled ones,
    // so a popped label is final unless already dominated at its node.
    if (DominatedOrEqual(arena, pareto[label.node], label.costs, stats)) {
      continue;
    }
    if (options.target_pruning &&
        DominatedOrEqual(arena, pareto[target], label.costs, stats)) {
      continue;
    }
    pareto[label.node].push_back(entry.label);
    ++stats->labels_settled;
    if (label.node == target) continue;  // do not extend past the target
    for (const graph::AdjacentEdge& adj : g.Neighbors(label.node)) {
      graph::CostVector nc = label.costs + g.edge(adj.edge).w;
      if (DominatedOrEqual(arena, pareto[adj.neighbor], nc, stats)) continue;
      if (options.target_pruning &&
          DominatedOrEqual(arena, pareto[target], nc, stats)) {
        continue;
      }
      if (arena.size() >= options.max_labels) {
        return Status::OutOfRange("MCPP label budget exceeded");
      }
      arena.push_back(Label{nc, adj.neighbor,
                            static_cast<int32_t>(entry.label)});
      ++stats->labels_created;
      heap.push(HeapEntry{nc, static_cast<int32_t>(arena.size() - 1)});
    }
  }
  return ExtractPaths(arena, pareto[target]);
}

Result<std::vector<ParetoPath>> LabelCorrecting(
    const graph::MultiCostGraph& g, graph::NodeId source,
    graph::NodeId target, const McppOptions& options, McppStats* stats) {
  std::vector<Label> arena;
  std::vector<std::vector<int32_t>> pareto(g.num_nodes());
  std::deque<int32_t> queue;  // labels waiting to be extended

  arena.push_back(Label{graph::CostVector(g.num_costs(), 0.0), source, -1});
  ++stats->labels_created;
  pareto[source].push_back(0);
  queue.push_back(0);

  while (!queue.empty()) {
    int32_t lid = queue.front();
    queue.pop_front();
    // Copy: the arena may reallocate while extending.
    Label label = arena[lid];
    if (label.pruned) continue;  // superseded since enqueued
    ++stats->labels_settled;
    if (label.node == target) continue;
    for (const graph::AdjacentEdge& adj : g.Neighbors(label.node)) {
      graph::CostVector nc = label.costs + g.edge(adj.edge).w;
      if (DominatedOrEqual(arena, pareto[adj.neighbor], nc, stats)) continue;
      if (arena.size() >= options.max_labels) {
        return Status::OutOfRange("MCPP label budget exceeded");
      }
      PruneDominated(arena, pareto[adj.neighbor], nc, stats);
      arena.push_back(Label{nc, adj.neighbor, lid});
      ++stats->labels_created;
      int32_t nid = static_cast<int32_t>(arena.size() - 1);
      pareto[adj.neighbor].push_back(nid);
      queue.push_back(nid);
    }
  }
  return ExtractPaths(arena, pareto[target]);
}

}  // namespace

Result<std::vector<ParetoPath>> ParetoShortestPaths(
    const graph::MultiCostGraph& g, graph::NodeId source,
    graph::NodeId target, const McppOptions& options, McppStats* stats) {
  if (!g.finalized()) {
    return Status::FailedPrecondition("MCPP: graph not finalized");
  }
  if (source >= g.num_nodes() || target >= g.num_nodes()) {
    return Status::InvalidArgument("MCPP: node out of range");
  }
  McppStats local;
  McppStats* s = stats != nullptr ? stats : &local;
  *s = McppStats();
  if (options.method == Method::kLabelSetting) {
    return LabelSetting(g, source, target, options, s);
  }
  return LabelCorrecting(g, source, target, options, s);
}

}  // namespace mcn::mcpp
