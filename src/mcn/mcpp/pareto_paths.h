// Multi-criteria Pareto path computation (MCPP, paper §II-D): the skyline of
// *paths* between a source and a destination node in an MCN. Implements the
// two classic families the paper cites: label-setting (Martins 1984) and
// label-correcting (Skriver & Andersen 2000). Returned are the distinct
// Pareto-optimal cost vectors with one witness path each.
//
// This is the operations-research sibling of the paper's facility skyline:
// a complement for route-level questions ("all trade-off routes between two
// points"), not a substitute for the MCN skyline (see paper §II-D for the
// three differences).
#ifndef MCN_MCPP_PARETO_PATHS_H_
#define MCN_MCPP_PARETO_PATHS_H_

#include <cstdint>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/cost_vector.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::mcpp {

/// One Pareto-optimal route.
struct ParetoPath {
  graph::CostVector costs;
  std::vector<graph::NodeId> nodes;  // source first, target last
};

enum class Method { kLabelSetting, kLabelCorrecting };

struct McppOptions {
  Method method = Method::kLabelSetting;
  /// Hard cap on created labels; exceeding it returns OutOfRange (Pareto
  /// sets can grow exponentially in adversarial inputs).
  size_t max_labels = 5'000'000;
  /// Prune labels dominated by the target's current Pareto set (admissible;
  /// label-setting only).
  bool target_pruning = true;
};

struct McppStats {
  uint64_t labels_created = 0;
  uint64_t labels_settled = 0;
  uint64_t dominance_checks = 0;
};

/// All Pareto-optimal s->t paths (distinct cost vectors, one witness each),
/// sorted lexicographically by cost vector. Empty when t is unreachable.
Result<std::vector<ParetoPath>> ParetoShortestPaths(
    const graph::MultiCostGraph& g, graph::NodeId source,
    graph::NodeId target, const McppOptions& options = {},
    McppStats* stats = nullptr);

}  // namespace mcn::mcpp

#endif  // MCN_MCPP_PARETO_PATHS_H_
