#include "mcn/net/catalog.h"

#include <fstream>
#include <map>
#include <sstream>

#include "mcn/common/macros.h"
#include "mcn/storage/persistence.h"

namespace mcn::net {
namespace {

constexpr char kHeader[] = "mcn-catalog-v1";

}  // namespace

Status SaveCatalog(const NetworkFiles& files, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << kHeader << "\n";
  out << "adjacency_file=" << files.adjacency_file << "\n";
  out << "facility_file=" << files.facility_file << "\n";
  out << "adj_tree_file=" << files.adjacency_tree.file() << "\n";
  out << "adj_tree_root=" << files.adjacency_tree.root() << "\n";
  out << "adj_tree_height=" << files.adjacency_tree.height() << "\n";
  out << "adj_tree_size=" << files.adjacency_tree.size() << "\n";
  out << "fac_tree_file=" << files.facility_tree.file() << "\n";
  out << "fac_tree_root=" << files.facility_tree.root() << "\n";
  out << "fac_tree_height=" << files.facility_tree.height() << "\n";
  out << "fac_tree_size=" << files.facility_tree.size() << "\n";
  out << "num_nodes=" << files.num_nodes << "\n";
  out << "num_edges=" << files.num_edges << "\n";
  out << "num_facilities=" << files.num_facilities << "\n";
  out << "num_costs=" << files.num_costs << "\n";
  out << "total_pages=" << files.total_pages << "\n";
  // Landmark index keys are written only when an index was built; readers
  // of older catalogs (and older readers of newer catalogs) interoperate
  // because the keys are optional on load.
  if (files.landmark.present()) {
    out << "lm_file=" << files.landmark.file << "\n";
    out << "lm_landmarks=" << files.landmark.num_landmarks << "\n";
    out << "lm_nodes=" << files.landmark.num_nodes << "\n";
    out << "lm_costs=" << files.landmark.num_costs << "\n";
    out << "lm_records_per_page=" << files.landmark.records_per_page << "\n";
    out << "lm_pages=" << files.landmark.num_pages << "\n";
  }
  if (!out.good()) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<NetworkFiles> LoadCatalog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Corruption(path + ": not an mcn catalog");
  }
  std::map<std::string, uint64_t> kv;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("bad catalog line: " + line);
    }
    std::istringstream value(line.substr(eq + 1));
    uint64_t v = 0;
    value >> v;
    if (!value) return Status::Corruption("bad catalog value: " + line);
    kv[line.substr(0, eq)] = v;
  }
  for (const char* key :
       {"adjacency_file", "facility_file", "adj_tree_file", "adj_tree_root",
        "adj_tree_height", "adj_tree_size", "fac_tree_file",
        "fac_tree_root", "fac_tree_height", "fac_tree_size", "num_nodes",
        "num_edges", "num_facilities", "num_costs", "total_pages"}) {
    if (kv.find(key) == kv.end()) {
      return Status::Corruption(std::string("catalog misses key ") + key);
    }
  }
  NetworkFiles files;
  files.adjacency_file = static_cast<storage::FileId>(kv["adjacency_file"]);
  files.facility_file = static_cast<storage::FileId>(kv["facility_file"]);
  files.adjacency_tree = index::BPlusTree(
      static_cast<storage::FileId>(kv["adj_tree_file"]),
      static_cast<storage::PageNo>(kv["adj_tree_root"]),
      static_cast<uint32_t>(kv["adj_tree_height"]), kv["adj_tree_size"]);
  files.facility_tree = index::BPlusTree(
      static_cast<storage::FileId>(kv["fac_tree_file"]),
      static_cast<storage::PageNo>(kv["fac_tree_root"]),
      static_cast<uint32_t>(kv["fac_tree_height"]), kv["fac_tree_size"]);
  files.num_nodes = static_cast<uint32_t>(kv["num_nodes"]);
  files.num_edges = static_cast<uint32_t>(kv["num_edges"]);
  files.num_facilities = static_cast<uint32_t>(kv["num_facilities"]);
  files.num_costs = static_cast<int>(kv["num_costs"]);
  files.total_pages = kv["total_pages"];
  if (kv.count("lm_landmarks") != 0 && kv["lm_landmarks"] > 0) {
    for (const char* key : {"lm_file", "lm_nodes", "lm_costs",
                            "lm_records_per_page", "lm_pages"}) {
      if (kv.find(key) == kv.end()) {
        return Status::Corruption(std::string("catalog misses key ") + key);
      }
    }
    files.landmark.file = static_cast<storage::FileId>(kv["lm_file"]);
    files.landmark.num_landmarks = static_cast<uint32_t>(kv["lm_landmarks"]);
    files.landmark.num_nodes = static_cast<uint32_t>(kv["lm_nodes"]);
    files.landmark.num_costs = static_cast<int>(kv["lm_costs"]);
    files.landmark.records_per_page =
        static_cast<uint32_t>(kv["lm_records_per_page"]);
    files.landmark.num_pages = kv["lm_pages"];
  }
  return files;
}

Status SaveNetworkDatabase(const storage::DiskManager& disk,
                           const NetworkFiles& files,
                           const std::string& base_path) {
  MCN_RETURN_IF_ERROR(storage::SaveDiskImage(disk, base_path + ".img"));
  return SaveCatalog(files, base_path + ".cat");
}

Result<LoadedDatabase> LoadNetworkDatabase(const std::string& base_path) {
  LoadedDatabase db;
  MCN_ASSIGN_OR_RETURN(db.disk,
                       storage::LoadDiskImage(base_path + ".img"));
  MCN_ASSIGN_OR_RETURN(db.files, LoadCatalog(base_path + ".cat"));
  // Cross-validate the catalog against the image.
  if (db.files.adjacency_file >= db.disk.num_files() ||
      db.files.facility_file >= db.disk.num_files()) {
    return Status::Corruption("catalog references missing files");
  }
  return db;
}

}  // namespace mcn::net
