// Catalog persistence: the NetworkFiles metadata (file ids, B+-tree roots
// and heights, entity counts) as a small text file, the companion of
// storage::SaveDiskImage / LoadDiskImage. Together they let a built network
// database be stored once and reopened by later processes.
#ifndef MCN_NET_CATALOG_H_
#define MCN_NET_CATALOG_H_

#include <string>

#include "mcn/common/result.h"
#include "mcn/net/network_builder.h"

namespace mcn::net {

/// Writes the catalog for `files` to `path` (overwriting).
Status SaveCatalog(const NetworkFiles& files, const std::string& path);

/// Reads a catalog previously written by SaveCatalog. The returned handle
/// is only meaningful against the disk image saved alongside it.
Result<NetworkFiles> LoadCatalog(const std::string& path);

/// Convenience: disk image + catalog in one call (paths `base + ".img"`
/// and `base + ".cat"`).
Status SaveNetworkDatabase(const storage::DiskManager& disk,
                           const NetworkFiles& files,
                           const std::string& base_path);
struct LoadedDatabase {
  storage::DiskManager disk;
  NetworkFiles files;
};
Result<LoadedDatabase> LoadNetworkDatabase(const std::string& base_path);

}  // namespace mcn::net

#endif  // MCN_NET_CATALOG_H_
