#include "mcn/net/format.h"

#include <cstring>

#include "mcn/common/macros.h"

namespace mcn::net {
namespace {

template <typename T>
void Append(std::vector<std::byte>& out, T v) {
  size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
T Read(std::span<const std::byte> bytes, size_t at) {
  T v;
  MCN_CHECK(at + sizeof(T) <= bytes.size());
  std::memcpy(&v, bytes.data() + at, sizeof(T));
  return v;
}

}  // namespace

std::vector<std::byte> EncodeAdjRecord(graph::NodeId node,
                                       const std::vector<AdjEntry>& entries,
                                       int num_costs) {
  std::vector<std::byte> out;
  out.reserve(AdjRecordBytes(static_cast<uint32_t>(entries.size()),
                             num_costs));
  Append<uint32_t>(out, node);
  Append<uint16_t>(out, static_cast<uint16_t>(entries.size()));
  Append<uint16_t>(out, 0);
  for (const AdjEntry& e : entries) {
    Append<uint32_t>(out, e.neighbor);
    Append<uint32_t>(out, e.fac.page);
    Append<uint16_t>(out, e.fac.slot);
    Append<uint16_t>(out, e.fac.count);
    MCN_DCHECK(e.w.dim() == num_costs);
    for (int i = 0; i < num_costs; ++i) Append<double>(out, e.w[i]);
  }
  return out;
}

graph::NodeId DecodeAdjRecord(std::span<const std::byte> bytes, int num_costs,
                              std::vector<AdjEntry>* entries) {
  entries->clear();
  graph::NodeId node = Read<uint32_t>(bytes, 0);
  uint16_t degree = Read<uint16_t>(bytes, 4);
  MCN_CHECK(bytes.size() >= AdjRecordBytes(degree, num_costs));
  entries->reserve(degree);
  size_t at = kAdjRecordHeader;
  for (uint16_t i = 0; i < degree; ++i) {
    AdjEntry e;
    e.neighbor = Read<uint32_t>(bytes, at);
    e.fac.page = Read<uint32_t>(bytes, at + 4);
    e.fac.slot = Read<uint16_t>(bytes, at + 8);
    e.fac.count = Read<uint16_t>(bytes, at + 10);
    e.w = graph::CostVector(num_costs);
    for (int c = 0; c < num_costs; ++c) {
      e.w[c] = Read<double>(bytes, at + 12 + 8 * static_cast<size_t>(c));
    }
    entries->push_back(e);
    at += AdjEntryBytes(num_costs);
  }
  return node;
}

std::vector<std::byte> EncodeFacRecord(
    graph::EdgeKey edge, const std::vector<FacilityOnEdge>& facilities) {
  std::vector<std::byte> out;
  out.reserve(FacRecordBytes(static_cast<uint32_t>(facilities.size())));
  Append<uint32_t>(out, edge.u);
  Append<uint32_t>(out, edge.v);
  Append<uint16_t>(out, static_cast<uint16_t>(facilities.size()));
  Append<uint16_t>(out, 0);
  for (const FacilityOnEdge& f : facilities) {
    Append<uint32_t>(out, f.facility);
    Append<double>(out, f.frac);
  }
  return out;
}

graph::EdgeKey DecodeFacRecord(std::span<const std::byte> bytes,
                               std::vector<FacilityOnEdge>* facilities) {
  facilities->clear();
  graph::EdgeKey edge;
  edge.u = Read<uint32_t>(bytes, 0);
  edge.v = Read<uint32_t>(bytes, 4);
  uint16_t count = Read<uint16_t>(bytes, 8);
  MCN_CHECK(bytes.size() >= FacRecordBytes(count));
  facilities->reserve(count);
  size_t at = kFacRecordHeader;
  for (uint16_t i = 0; i < count; ++i) {
    FacilityOnEdge f;
    f.facility = Read<uint32_t>(bytes, at);
    f.frac = Read<double>(bytes, at + 4);
    facilities->push_back(f);
    at += 12;
  }
  return edge;
}

}  // namespace mcn::net
