// On-disk record formats for the network storage scheme of the paper's
// Fig. 2: a paged adjacency file (per-node adjacency records), a paged
// facility file (per-edge facility lists), an adjacency tree (B+-tree:
// node id -> record position) and a facility tree (B+-tree: facility id ->
// containing edge).
//
// Adjacency record (slotted; self-describing):
//   u32 node_id, u16 degree, u16 reserved,
//   degree x { u32 neighbor, u32 fac_page, u16 fac_slot, u16 fac_count,
//              d x f64 cost }
//
// Facility record, one per edge carrying facilities (slotted):
//   u32 edge_u, u32 edge_v, u16 count, u16 reserved,
//   count x { u32 facility_id, f64 frac }   (frac measured from edge_u)
#ifndef MCN_NET_FORMAT_H_
#define MCN_NET_FORMAT_H_

#include <cstdint>
#include <vector>

#include "mcn/graph/cost_vector.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/storage/page.h"

namespace mcn::net {

/// Position of an edge's facility record in the facility file. `count == 0`
/// (with page == kInvalidPageNo) means the edge carries no facilities, so
/// the facility file need not be touched at all for it.
struct FacRef {
  storage::PageNo page = storage::kInvalidPageNo;
  uint16_t slot = 0;
  uint16_t count = 0;

  bool empty() const { return count == 0; }
};

/// One decoded entry of a node's adjacency record.
struct AdjEntry {
  graph::NodeId neighbor = graph::kInvalidNode;
  FacRef fac;
  graph::CostVector w;
};

/// One decoded entry of an edge's facility record. `frac` is measured from
/// the canonical endpoint u of the edge.
struct FacilityOnEdge {
  graph::FacilityId facility = 0;
  double frac = 0.0;
};

/// Position of a record in a slotted file, packed into the 64-bit value slot
/// of the B+-tree.
struct RecordPos {
  storage::PageNo page = storage::kInvalidPageNo;
  uint16_t slot = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordPos Unpack(uint64_t v) {
    RecordPos p;
    p.page = static_cast<storage::PageNo>(v >> 16);
    p.slot = static_cast<uint16_t>(v & 0xFFFF);
    return p;
  }
};

/// Encoded sizes.
inline constexpr size_t kAdjRecordHeader = 8;
inline size_t AdjEntryBytes(int num_costs) {
  return 12 + 8 * static_cast<size_t>(num_costs);
}
inline size_t AdjRecordBytes(uint32_t degree, int num_costs) {
  return kAdjRecordHeader + degree * AdjEntryBytes(num_costs);
}
inline constexpr size_t kFacRecordHeader = 12;
inline size_t FacRecordBytes(uint32_t count) {
  return kFacRecordHeader + count * 12u;
}

/// Encoding/decoding of the records (used by the builder, the reader and
/// format tests).
std::vector<std::byte> EncodeAdjRecord(graph::NodeId node,
                                       const std::vector<AdjEntry>& entries,
                                       int num_costs);
/// Decodes into `entries` (cleared first). Returns the record's node id.
graph::NodeId DecodeAdjRecord(std::span<const std::byte> bytes, int num_costs,
                              std::vector<AdjEntry>* entries);

std::vector<std::byte> EncodeFacRecord(
    graph::EdgeKey edge, const std::vector<FacilityOnEdge>& facilities);
/// Decodes into `facilities` (cleared first). Returns the edge key.
graph::EdgeKey DecodeFacRecord(std::span<const std::byte> bytes,
                               std::vector<FacilityOnEdge>* facilities);

}  // namespace mcn::net

#endif  // MCN_NET_FORMAT_H_
