#include "mcn/net/landmark_index.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "mcn/common/macros.h"
#include "mcn/expand/dijkstra.h"
#include "mcn/graph/location.h"
#include "mcn/net/slotted_writer.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::net {
namespace {

constexpr uint32_t kMagic = 0x31494C4Du;  // 'MLI1' little-endian
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderFixedBytes = 24;  // 6 x u32 before the landmark ids

void PutU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

uint32_t GetU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

size_t RowBytes(int num_costs, uint32_t num_landmarks) {
  return sizeof(float) * static_cast<size_t>(num_costs) * num_landmarks;
}

}  // namespace

float RoundDownToFloat(double x) {
  MCN_DCHECK(x >= 0.0);
  if (std::isinf(x)) return std::numeric_limits<float>::infinity();
  if (x >= static_cast<double>(std::numeric_limits<float>::max())) {
    // FLT_MAX <= x, so FLT_MAX is itself a valid lower bound (and the cast
    // below would overflow).
    return std::numeric_limits<float>::max();
  }
  float f = static_cast<float>(x);
  if (static_cast<double>(f) > x) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

std::vector<graph::NodeId> SelectLandmarks(
    const graph::MultiCostGraph& graph, uint32_t num_landmarks,
    int num_shards, std::span<const uint32_t> node_shard) {
  MCN_CHECK(graph.finalized());
  const uint32_t n = graph.num_nodes();
  if (num_landmarks == 0 || n == 0) return {};
  const uint32_t want = std::min(num_landmarks, n);

  // Candidate pools, one per shard. With a real partition the pool is the
  // shard's boundary nodes (endpoints of cross-shard edges) — the nodes
  // remote expansions enter through — falling back to all of the shard's
  // nodes when it has no boundary. Unsharded: one pool of every node.
  const bool sharded = num_shards > 1 && node_shard.size() == n;
  const int groups = sharded ? num_shards : 1;
  std::vector<std::vector<graph::NodeId>> pools(groups);
  if (sharded) {
    std::vector<bool> is_boundary(n, false);
    for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      const graph::EdgeRecord& rec = graph.edge(e);
      if (node_shard[rec.u] != node_shard[rec.v]) {
        is_boundary[rec.u] = true;
        is_boundary[rec.v] = true;
      }
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (is_boundary[v]) pools[node_shard[v]].push_back(v);
    }
    for (int s = 0; s < groups; ++s) {
      if (!pools[s].empty()) continue;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (node_shard[v] == static_cast<uint32_t>(s)) pools[s].push_back(v);
      }
    }
  } else {
    pools[0].resize(n);
    for (graph::NodeId v = 0; v < n; ++v) pools[0][v] = v;
  }

  // Farthest-point sampling over the dimension-0 metric. min_dist starts at
  // +inf, so the first pick of each pool degenerates to its smallest id —
  // every argmax breaks ties towards the smallest id, making the selection
  // a deterministic function of (graph, partition, num_landmarks).
  std::vector<double> min_dist(n, expand::kInfCost);
  std::vector<bool> chosen_flag(n, false);
  std::vector<graph::NodeId> chosen;
  chosen.reserve(want);

  auto pick_from = [&](std::span<const graph::NodeId> pool) {
    graph::NodeId best = graph::kInvalidNode;
    for (graph::NodeId v : pool) {
      if (chosen_flag[v]) continue;
      if (best == graph::kInvalidNode || min_dist[v] > min_dist[best] ||
          (min_dist[v] == min_dist[best] && v < best)) {
        best = v;
      }
    }
    return best;
  };
  auto take = [&](graph::NodeId v) {
    chosen_flag[v] = true;
    chosen.push_back(v);
    std::vector<double> dist = expand::ShortestPathCosts(
        graph, /*cost_index=*/0, graph::Location::AtNode(v));
    for (graph::NodeId u = 0; u < n; ++u) {
      if (dist[u] < min_dist[u]) min_dist[u] = dist[u];
    }
  };

  // Per-shard quotas split like frame budgets: base + one of the remainder
  // for the first (want % groups) shards.
  const uint32_t base = want / static_cast<uint32_t>(groups);
  const uint32_t rem = want % static_cast<uint32_t>(groups);
  for (int s = 0; s < groups; ++s) {
    const uint32_t quota = base + (static_cast<uint32_t>(s) < rem ? 1 : 0);
    for (uint32_t t = 0; t < quota; ++t) {
      graph::NodeId v = pick_from(pools[s]);
      if (v == graph::kInvalidNode) break;  // pool exhausted; fill below
      take(v);
    }
  }
  // Unfilled quota (tiny pools): global farthest-point rounds.
  while (chosen.size() < want) {
    graph::NodeId best = graph::kInvalidNode;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (chosen_flag[v]) continue;
      if (best == graph::kInvalidNode || min_dist[v] > min_dist[best] ||
          (min_dist[v] == min_dist[best] && v < best)) {
        best = v;
      }
    }
    if (best == graph::kInvalidNode) break;
    take(best);
  }
  return chosen;
}

Result<LandmarkIndexFiles> BuildLandmarkIndex(
    storage::DiskManager* disk, const graph::MultiCostGraph& graph,
    std::span<const graph::NodeId> landmarks, const std::string& file_name) {
  MCN_CHECK(disk != nullptr);
  MCN_CHECK(graph.finalized());
  LandmarkIndexFiles files;
  if (landmarks.empty()) return files;

  const uint32_t L = static_cast<uint32_t>(landmarks.size());
  const int d = graph.num_costs();
  const uint32_t n = graph.num_nodes();
  const size_t row_bytes = RowBytes(d, L);
  const size_t header_bytes = kHeaderFixedBytes + 4u * L;
  const size_t max_record = storage::SlottedPageBuilder::MaxRecordSize();
  if (row_bytes > max_record || header_bytes > max_record) {
    return Status::InvalidArgument(
        "landmark index row does not fit one page (d*L too large)");
  }
  for (graph::NodeId lm : landmarks) {
    if (lm >= n) {
      return Status::InvalidArgument("landmark node id out of range");
    }
  }

  // One reverse Dijkstra per (landmark, dimension); edges are undirected,
  // so the forward run from the landmark is the reverse distance. Stored
  // rounded down (RoundDownToFloat) to stay an admissible lower bound.
  std::vector<std::vector<float>> columns(static_cast<size_t>(d) * L);
  for (int i = 0; i < d; ++i) {
    for (uint32_t l = 0; l < L; ++l) {
      std::vector<double> dist = expand::ShortestPathCosts(
          graph, i, graph::Location::AtNode(landmarks[l]));
      std::vector<float>& col = columns[static_cast<size_t>(i) * L + l];
      col.resize(n);
      for (graph::NodeId v = 0; v < n; ++v) {
        col[v] = RoundDownToFloat(dist[v]);
      }
    }
  }

  const uint32_t rpp = static_cast<uint32_t>(
      (storage::kPageSize - 4) / (row_bytes + 4));
  MCN_CHECK(rpp > 0);

  storage::FileId file = disk->CreateFile(file_name);
  SlottedFileWriter writer(disk, file);

  // Header record padded to the page capacity, so the first node record
  // opens page 1 and node n addresses as (1 + n/rpp, n%rpp) directly.
  std::vector<std::byte> header(max_record, std::byte{0});
  PutU32(&header[0], kMagic);
  PutU32(&header[4], kVersion);
  PutU32(&header[8], n);
  PutU32(&header[12], static_cast<uint32_t>(d));
  PutU32(&header[16], L);
  PutU32(&header[20], rpp);
  for (uint32_t l = 0; l < L; ++l) {
    PutU32(&header[kHeaderFixedBytes + 4u * l], landmarks[l]);
  }
  RecordPos pos;
  MCN_RETURN_IF_ERROR(writer.Append(header, &pos));
  MCN_CHECK(pos.page == 0 && pos.slot == 0);

  std::vector<std::byte> rec(row_bytes);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::byte* p = rec.data();
    for (int i = 0; i < d; ++i) {
      for (uint32_t l = 0; l < L; ++l) {
        const float f = columns[static_cast<size_t>(i) * L + l][v];
        std::memcpy(p, &f, sizeof(float));
        p += sizeof(float);
      }
    }
    MCN_RETURN_IF_ERROR(writer.Append(rec, &pos));
    MCN_CHECK(pos.page == 1 + v / rpp && pos.slot == v % rpp);
  }
  MCN_RETURN_IF_ERROR(writer.Finish());

  files.file = file;
  files.num_landmarks = L;
  files.num_nodes = n;
  files.num_costs = d;
  files.records_per_page = rpp;
  MCN_ASSIGN_OR_RETURN(uint32_t pages, disk->NumPages(file));
  files.num_pages = pages;
  return files;
}

LandmarkIndexReader::LandmarkIndexReader(storage::DiskManager* disk,
                                         const LandmarkIndexFiles& files,
                                         size_t pool_frames)
    : files_(files), pool_(disk, pool_frames) {}

Status LandmarkIndexReader::Validate() {
  if (!files_.present()) {
    return Status::InvalidArgument("no landmark index in this database");
  }
  // Header validation is load-time work, not query I/O: raw page access.
  MCN_ASSIGN_OR_RETURN(const std::byte* page,
                       pool_.disk()->PageData(storage::PageId{files_.file, 0}));
  storage::SlottedPageReader reader(page);
  if (reader.count() < 1) {
    return Status::Corruption("landmark index: empty header page");
  }
  // The page may come from a loaded image: bounds-checked access only.
  MCN_ASSIGN_OR_RETURN(std::span<const std::byte> rec, reader.TryRecord(0));
  if (rec.size() < kHeaderFixedBytes) {
    return Status::Corruption("landmark index: short header record");
  }
  if (GetU32(&rec[0]) != kMagic) {
    return Status::Corruption("landmark index: bad magic");
  }
  if (GetU32(&rec[4]) != kVersion) {
    return Status::Corruption("landmark index: unsupported version " +
                              std::to_string(GetU32(&rec[4])));
  }
  const uint32_t n = GetU32(&rec[8]);
  const uint32_t d = GetU32(&rec[12]);
  const uint32_t L = GetU32(&rec[16]);
  const uint32_t rpp = GetU32(&rec[20]);
  if (n != files_.num_nodes || d != static_cast<uint32_t>(files_.num_costs) ||
      L != files_.num_landmarks || rpp != files_.records_per_page) {
    return Status::Corruption(
        "landmark index: header disagrees with catalog");
  }
  if (rpp == 0) {
    // LoadNodeRow divides by records_per_page; a zero here would only
    // come from a corrupt image that the catalog happens to agree with.
    return Status::Corruption("landmark index: zero records per page");
  }
  if (rec.size() < kHeaderFixedBytes + 4u * L) {
    return Status::Corruption("landmark index: truncated landmark ids");
  }
  landmark_ids_.resize(L);
  for (uint32_t l = 0; l < L; ++l) {
    landmark_ids_[l] = GetU32(&rec[kHeaderFixedBytes + 4u * l]);
  }
  validated_ = true;
  return Status::OK();
}

Status LandmarkIndexReader::LoadNodeRow(graph::NodeId v, float* out) {
  MCN_DCHECK(validated_);
  if (v >= files_.num_nodes) {
    return Status::InvalidArgument("LoadNodeRow: node out of range");
  }
  const uint32_t rpp = files_.records_per_page;
  const storage::PageId id{files_.file,
                           static_cast<storage::PageNo>(1 + v / rpp)};
  MCN_ASSIGN_OR_RETURN(storage::BufferPool::PageGuard guard, pool_.Fetch(id));
  storage::SlottedPageReader reader(guard.data());
  const uint16_t slot = static_cast<uint16_t>(v % rpp);
  // The page may come from a loaded image: bounds-checked access only.
  MCN_ASSIGN_OR_RETURN(std::span<const std::byte> rec,
                       reader.TryRecord(slot));
  const size_t bytes = RowBytes(files_.num_costs, files_.num_landmarks);
  if (rec.size() != bytes) {
    return Status::Corruption("landmark index: bad node record size");
  }
  std::memcpy(out, rec.data(), bytes);
  return Status::OK();
}

}  // namespace mcn::net
