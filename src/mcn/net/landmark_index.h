// Landmark lower-bound index (DESIGN.md §12): a build-time Fig. 2-style
// file set storing, per node, the exact single-criterion network distance
// to each of L landmarks, for every cost dimension. At query time the
// triangle inequality turns two row loads into a component-wise lower
// bound on the network distance between any node pair — the admissible
// bound the skyline prune oracle (algo/prune_oracle.h) uses to elide
// frontier expansions before their adjacency probe touches a page.
//
// File layout (slotted pages, one file):
//   page 0: one header record, padded to SlottedPageBuilder::MaxRecordSize()
//           so node records start on page 1:
//     u32 magic 'MLI1', u32 version, u32 num_nodes, u32 num_costs,
//     u32 num_landmarks, u32 records_per_page, L x u32 landmark node id
//   page 1+: fixed-size node records in node-id order, records_per_page per
//           page, so node n lives at (1 + n / rpp, n % rpp) with no tree
//           probe:
//     d x L x f32 distance, dimension-major, rounded *down* to f32
//     (+inf where the landmark is unreachable in that dimension)
//
// Distances are stored rounded down so a stored value is always a valid
// lower bound; the matching upper bound is one ulp up (LandmarkUpperBound).
// The index is exact metadata, not a cache: queries with and without it
// return byte-identical results (the oracle's exactness argument).
#ifndef MCN_NET_LANDMARK_INDEX_H_
#define MCN_NET_LANDMARK_INDEX_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/storage/buffer_pool.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::net {

/// Frames for the dedicated landmark-index pool a reader owns. The row file
/// is small (d*L floats per node) and probed with strong locality; a few
/// frames keep the miss rate low without distorting the main pool's budget.
inline constexpr size_t kLandmarkPoolFrames = 16;

/// Handle to a built landmark index. Cheap to copy; `present()` is false on
/// a default-constructed value (no index built).
struct LandmarkIndexFiles {
  storage::FileId file = 0;
  uint32_t num_landmarks = 0;
  uint32_t num_nodes = 0;
  int num_costs = 0;
  uint32_t records_per_page = 0;
  uint64_t num_pages = 0;  ///< header page + node-record pages

  bool present() const { return num_landmarks > 0; }
};

/// Rounds a non-negative double down to float: the result is always <= x,
/// so stored distances stay admissible lower bounds. +inf passes through
/// (unreachable marker).
float RoundDownToFloat(double x);

/// The matching upper bound for a stored lower bound: one ulp up covers the
/// worst-case round-down error. +inf stays +inf.
inline float LandmarkUpperBound(float lo) {
  if (std::isinf(lo)) return lo;
  return std::nextafterf(lo, std::numeric_limits<float>::infinity());
}

/// Deterministic landmark selection: farthest-point sampling over the
/// dimension-0 network metric, seeded at the smallest-id candidate and
/// breaking argmax ties towards the smallest node id. `node_shard` (empty =
/// single shard) biases the candidate pool towards boundary nodes —
/// endpoints of cross-shard edges — and splits `num_landmarks` across the
/// `num_shards` shards with the same remainder rule as the frame budgets,
/// so a sharded build spends its quota where expansions escape tiles.
/// Returns at most num_landmarks node ids (fewer only on tiny graphs).
std::vector<graph::NodeId> SelectLandmarks(
    const graph::MultiCostGraph& graph, uint32_t num_landmarks,
    int num_shards, std::span<const uint32_t> node_shard);

/// Runs one single-criterion Dijkstra per (landmark, dimension) and writes
/// the row file described above into a fresh file on `disk`. The graph must
/// be finalized; fails if a row record cannot fit one page.
Result<LandmarkIndexFiles> BuildLandmarkIndex(
    storage::DiskManager* disk, const graph::MultiCostGraph& graph,
    std::span<const graph::NodeId> landmarks, const std::string& file_name);

/// Per-worker BufferPool-backed reader over a built index. Thread
/// confinement follows the pool: one reader per worker thread. Index pages
/// are charged to this reader's own pool, never to the network pools, so
/// the main-pool miss counts of an index-off run are directly comparable.
class LandmarkIndexReader {
 public:
  /// `disk` must outlive the reader (shard 0's disk for sharded builds).
  LandmarkIndexReader(storage::DiskManager* disk,
                      const LandmarkIndexFiles& files,
                      size_t pool_frames = kLandmarkPoolFrames);

  /// Validates the header page against `files` (magic, version, counts)
  /// and loads the landmark ids. Must succeed before LoadNodeRow.
  Status Validate();

  uint32_t num_landmarks() const { return files_.num_landmarks; }
  uint32_t num_nodes() const { return files_.num_nodes; }
  int num_costs() const { return files_.num_costs; }
  const std::vector<graph::NodeId>& landmark_ids() const {
    return landmark_ids_;
  }
  const LandmarkIndexFiles& files() const { return files_; }

  /// Copies node `v`'s stored lower-bound row into `out`, which must hold
  /// num_costs() * num_landmarks() floats (dimension-major). One counted
  /// fetch against the index pool.
  Status LoadNodeRow(graph::NodeId v, float* out);

  const storage::BufferPool& pool() const { return pool_; }
  void ResetIoState() {
    pool_.Clear();
    pool_.ResetStats();
  }

 private:
  LandmarkIndexFiles files_;
  storage::BufferPool pool_;
  std::vector<graph::NodeId> landmark_ids_;
  bool validated_ = false;
};

}  // namespace mcn::net

#endif  // MCN_NET_LANDMARK_INDEX_H_
