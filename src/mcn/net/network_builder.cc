#include "mcn/net/network_builder.h"

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcn/common/macros.h"
#include "mcn/net/slotted_writer.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::net {

Result<NetworkFiles> BuildNetwork(storage::DiskManager* disk,
                                  const graph::MultiCostGraph& graph,
                                  const graph::FacilitySet& facilities) {
  MCN_CHECK(disk != nullptr);
  if (!graph.finalized()) {
    return Status::FailedPrecondition("BuildNetwork: graph not finalized");
  }
  if (!facilities.finalized()) {
    return Status::FailedPrecondition(
        "BuildNetwork: facility set not finalized");
  }

  NetworkFiles files;
  files.num_nodes = graph.num_nodes();
  files.num_edges = graph.num_edges();
  files.num_facilities = static_cast<uint32_t>(facilities.size());
  files.num_costs = graph.num_costs();

  files.facility_file = disk->CreateFile("facility_file");
  files.adjacency_file = disk->CreateFile("adjacency_file");
  storage::FileId adj_tree_file = disk->CreateFile("adjacency_tree");
  storage::FileId fac_tree_file = disk->CreateFile("facility_tree");

  // 1. Facility file: one record per edge that carries facilities, in edge
  //    order. Remember each edge's FacRef for the adjacency entries.
  std::unordered_map<graph::EdgeId, FacRef> edge_fac_refs;
  {
    SlottedFileWriter writer(disk, files.facility_file);
    std::vector<FacilityOnEdge> record;
    for (graph::EdgeId e : facilities.EdgesWithFacilities()) {
      record.clear();
      for (graph::FacilityId f : facilities.OnEdge(e)) {
        record.push_back(FacilityOnEdge{f, facilities[f].frac});
      }
      const graph::EdgeRecord& er = graph.edge(e);
      std::vector<std::byte> bytes =
          EncodeFacRecord(graph::EdgeKey(er.u, er.v), record);
      RecordPos pos;
      MCN_RETURN_IF_ERROR(writer.Append(bytes, &pos));
      FacRef ref;
      ref.page = pos.page;
      ref.slot = pos.slot;
      ref.count = static_cast<uint16_t>(record.size());
      edge_fac_refs[e] = ref;
    }
    MCN_RETURN_IF_ERROR(writer.Finish());
  }

  // 2. Adjacency file: one record per node, in node order.
  std::vector<index::BPlusTree::Entry> adj_tree_entries;
  adj_tree_entries.reserve(graph.num_nodes());
  {
    SlottedFileWriter writer(disk, files.adjacency_file);
    std::vector<AdjEntry> entries;
    for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
      entries.clear();
      for (const graph::AdjacentEdge& adj : graph.Neighbors(v)) {
        AdjEntry e;
        e.neighbor = adj.neighbor;
        auto it = edge_fac_refs.find(adj.edge);
        if (it != edge_fac_refs.end()) e.fac = it->second;
        e.w = graph.edge(adj.edge).w;
        entries.push_back(e);
      }
      std::vector<std::byte> bytes =
          EncodeAdjRecord(v, entries, graph.num_costs());
      RecordPos pos;
      MCN_RETURN_IF_ERROR(writer.Append(bytes, &pos));
      adj_tree_entries.emplace_back(v, pos.Pack());
    }
    MCN_RETURN_IF_ERROR(writer.Finish());
  }

  // 3. Adjacency tree: node id -> record position.
  MCN_ASSIGN_OR_RETURN(
      files.adjacency_tree,
      index::BPlusTree::BulkLoad(disk, adj_tree_file, adj_tree_entries));

  // 4. Facility tree: facility id -> containing edge (canonical key).
  std::vector<index::BPlusTree::Entry> fac_tree_entries;
  fac_tree_entries.reserve(facilities.size());
  for (graph::FacilityId f = 0; f < facilities.size(); ++f) {
    const graph::EdgeRecord& er = graph.edge(facilities[f].edge);
    fac_tree_entries.emplace_back(f, graph::EdgeKey(er.u, er.v).Pack());
  }
  MCN_ASSIGN_OR_RETURN(
      files.facility_tree,
      index::BPlusTree::BulkLoad(disk, fac_tree_file, fac_tree_entries));

  for (storage::FileId f : {files.adjacency_file, files.facility_file,
                            adj_tree_file, fac_tree_file}) {
    MCN_ASSIGN_OR_RETURN(uint32_t pages, disk->NumPages(f));
    files.total_pages += pages;
  }
  return files;
}

}  // namespace mcn::net
