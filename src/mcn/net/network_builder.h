// NetworkBuilder: materializes an in-memory MultiCostGraph + FacilitySet as
// the disk-resident storage scheme of the paper's Fig. 2 (adjacency tree,
// adjacency file, facility file, facility tree) on a DiskManager.
#ifndef MCN_NET_NETWORK_BUILDER_H_
#define MCN_NET_NETWORK_BUILDER_H_

#include <cstdint>

#include "mcn/common/result.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/index/bplus_tree.h"
#include "mcn/net/format.h"
#include "mcn/net/landmark_index.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::net {

/// Handle to a built on-disk network: the four files of Fig. 2 plus the
/// metadata queries need. Cheap to copy.
struct NetworkFiles {
  storage::FileId adjacency_file = 0;
  storage::FileId facility_file = 0;
  index::BPlusTree adjacency_tree{0, storage::kInvalidPageNo, 0, 0};
  index::BPlusTree facility_tree{0, storage::kInvalidPageNo, 0, 0};

  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  uint32_t num_facilities = 0;
  int num_costs = 0;

  /// Pages across the four structures; the paper sizes the LRU buffer as a
  /// percentage of this. The optional landmark index below is deliberately
  /// *excluded*: index-on and index-off runs must size the main pool
  /// identically (the index reader owns its own small pool).
  uint64_t total_pages = 0;

  /// Optional landmark lower-bound index (DESIGN.md §12); `present()` is
  /// false when the database was built without one.
  LandmarkIndexFiles landmark;
};

/// Writes the storage scheme for `graph` + `facilities` into fresh files on
/// `disk`. Both inputs must be finalized. Build-time writes bypass the
/// buffer pool (load cost is not query cost). Fails if a node's adjacency
/// record or an edge's facility record would exceed one page.
Result<NetworkFiles> BuildNetwork(storage::DiskManager* disk,
                                  const graph::MultiCostGraph& graph,
                                  const graph::FacilitySet& facilities);

}  // namespace mcn::net

#endif  // MCN_NET_NETWORK_BUILDER_H_
