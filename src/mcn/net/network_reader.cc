#include "mcn/net/network_reader.h"

#include <string>

#include "mcn/common/macros.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::net {

namespace {

/// One kProbeFetch event per traced record fetch (obs/trace.h): captures
/// the pool's miss count up front; Record() flags the fetch as a miss if
/// any page of the call missed. Everything is skipped (two loads + branch)
/// unless tracing is on AND a query context is installed AND the reader
/// has fetch tracing enabled.
class FetchTrace {
 public:
  FetchTrace(bool reader_traces, const storage::BufferPool* pool)
      : context_(obs::CurrentTraceContext()) {
    if (!reader_traces || !context_.active() ||
        !obs::Tracer::Global().enabled()) {
      return;
    }
    pool_ = pool;
    misses_before_ = pool->stats().misses;
  }

  void Record(uint64_t key) {
    if (pool_ == nullptr) return;
    const uint64_t flags =
        pool_->stats().misses > misses_before_ ? obs::kFetchMiss : 0;
    obs::RecordInstant(context_, obs::EventType::kProbeFetch, key, flags);
  }

 private:
  obs::TraceContext context_;
  const storage::BufferPool* pool_ = nullptr;
  uint64_t misses_before_ = 0;
};

}  // namespace

NetworkReader::NetworkReader(const NetworkFiles& files,
                             storage::BufferPool* pool)
    : files_(files), pool_(pool) {
  MCN_CHECK(pool != nullptr);
}

Status NetworkReader::GetAdjacency(graph::NodeId node,
                                   std::vector<AdjEntry>* out) const {
  out->clear();
  if (node >= files_.num_nodes) {
    return Status::InvalidArgument("GetAdjacency: node out of range");
  }
  FetchTrace fetch_trace(trace_fetches(), pool_);
  MCN_ASSIGN_OR_RETURN(auto pos_value,
                       files_.adjacency_tree.Lookup(*pool_, node));
  if (!pos_value.has_value()) {
    return Status::Corruption("adjacency tree misses node " +
                              std::to_string(node));
  }
  RecordPos pos = RecordPos::Unpack(*pos_value);
  MCN_ASSIGN_OR_RETURN(auto guard,
                       pool_->Fetch({files_.adjacency_file, pos.page}));
  storage::SlottedPageReader page(guard.data());
  if (pos.slot >= page.count()) {
    return Status::Corruption("adjacency record slot out of range");
  }
  graph::NodeId stored =
      DecodeAdjRecord(page.Record(pos.slot), files_.num_costs, out);
  if (stored != node) {
    return Status::Corruption("adjacency record for node " +
                              std::to_string(stored) + ", expected " +
                              std::to_string(node));
  }
  fetch_trace.Record(node);
  return Status::OK();
}

Status NetworkReader::GetFacilities(graph::EdgeKey edge, const FacRef& ref,
                                    std::vector<FacilityOnEdge>* out) const {
  out->clear();
  if (ref.empty()) return Status::OK();
  FetchTrace fetch_trace(trace_fetches(), pool_);
  MCN_ASSIGN_OR_RETURN(auto guard,
                       pool_->Fetch({files_.facility_file, ref.page}));
  storage::SlottedPageReader page(guard.data());
  if (ref.slot >= page.count()) {
    return Status::Corruption("facility record slot out of range");
  }
  DecodeFacRecord(page.Record(ref.slot), out);
  if (out->size() != ref.count) {
    return Status::Corruption("facility record count mismatch");
  }
  fetch_trace.Record(edge.u);
  return Status::OK();
}

Result<graph::EdgeKey> NetworkReader::LocateFacilityEdge(
    graph::FacilityId fac) const {
  MCN_ASSIGN_OR_RETURN(auto value, files_.facility_tree.Lookup(*pool_, fac));
  if (!value.has_value()) {
    return Status::NotFound("facility " + std::to_string(fac) +
                            " not in facility tree");
  }
  return graph::EdgeKey::Unpack(*value);
}

Result<AdjEntry> NetworkReader::FindEdgeEntry(graph::NodeId a,
                                              graph::NodeId b) const {
  std::vector<AdjEntry> entries;
  MCN_RETURN_IF_ERROR(GetAdjacency(a, &entries));
  for (const AdjEntry& e : entries) {
    if (e.neighbor == b) return e;
  }
  return Status::NotFound("no edge between " + std::to_string(a) + " and " +
                          std::to_string(b));
}

}  // namespace mcn::net
