// NetworkReader: query-time access to the disk-resident network through the
// buffer pool. Every call is charged to the pool's hit/miss statistics,
// which is exactly the I/O model of the paper's experiments.
//
// Since the sharded-partition refactor (DESIGN.md §8) this class doubles as
// the polymorphic record-access seam of the stack: the record getters are
// virtual, so a shard::ShardedNetworkReader can route each request to the
// owning shard's pool while FetchProvider/engine code upstream stays
// oblivious. The base class is the flat single-file implementation.
#ifndef MCN_NET_NETWORK_READER_H_
#define MCN_NET_NETWORK_READER_H_

#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/index/bplus_tree.h"
#include "mcn/net/format.h"
#include "mcn/net/network_builder.h"
#include "mcn/obs/trace.h"
#include "mcn/storage/buffer_pool.h"

namespace mcn::net {

/// Read-side handle over a built network. Not thread-safe (shares the pool);
/// one reader is confined to one thread.
class NetworkReader {
 public:
  /// `pool` must outlive the reader and be backed by the DiskManager the
  /// network was built on.
  NetworkReader(const NetworkFiles& files, storage::BufferPool* pool);
  virtual ~NetworkReader() = default;

  int num_costs() const { return files_.num_costs; }
  uint32_t num_nodes() const { return files_.num_nodes; }
  uint32_t num_edges() const { return files_.num_edges; }
  uint32_t num_facilities() const { return files_.num_facilities; }
  uint64_t total_pages() const { return files_.total_pages; }
  storage::BufferPool* pool() const { return pool_; }

  /// Reads `node`'s adjacency record: an adjacency-tree probe plus one
  /// adjacency-file page fetch. Fills `out` (cleared first).
  virtual Status GetAdjacency(graph::NodeId node,
                              std::vector<AdjEntry>* out) const;

  /// Reads `edge`'s facility record via the FacRef stored in an adjacency
  /// entry. The edge key identifies the record's owner (routing readers
  /// dispatch on it; the flat reader only needs the ref). Fills `out`
  /// (cleared first).
  virtual Status GetFacilities(graph::EdgeKey edge, const FacRef& ref,
                               std::vector<FacilityOnEdge>* out) const;

  /// Facility-tree probe: the edge containing facility `fac`.
  virtual Result<graph::EdgeKey> LocateFacilityEdge(
      graph::FacilityId fac) const;

  /// Hit/miss counters of the pools this reader fetches through (one pool
  /// here; a routing reader sums its per-shard set).
  virtual storage::BufferPool::Stats PoolStats() const {
    return pool_->stats();
  }

  /// Clears buffer contents and statistics (cold cache between queries).
  virtual void ResetIoState() {
    pool_->Clear();
    pool_->ResetStats();
  }

  /// Convenience: the adjacency entry of edge (a, b), found by scanning a's
  /// record. Used to seed expansions when the query lies on an edge.
  Result<AdjEntry> FindEdgeEntry(graph::NodeId a, graph::NodeId b) const;

  /// Whether the record getters emit kProbeFetch trace events (obs/trace.h).
  /// Routing readers that record their own routed-fetch events (where the
  /// local/remote flag is known) suppress their inner flat readers with
  /// false, so each record fetch yields exactly one event.
  void set_trace_fetches(bool v) { trace_fetches_ = v; }
  bool trace_fetches() const { return trace_fetches_; }

 protected:
  /// For routing subclasses that own per-shard pools instead of one flat
  /// pool: `files` carries the global metadata (counts, d, total pages);
  /// its file ids/trees are not meaningful and the base record getters
  /// must all be overridden.
  explicit NetworkReader(const NetworkFiles& files)
      : files_(files), pool_(nullptr) {}

 private:
  NetworkFiles files_;
  storage::BufferPool* pool_;
  bool trace_fetches_ = true;
};

}  // namespace mcn::net

#endif  // MCN_NET_NETWORK_READER_H_
