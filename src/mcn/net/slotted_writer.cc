#include "mcn/net/slotted_writer.h"

#include <cstring>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::net {

using storage::kPageSize;

SlottedFileWriter::SlottedFileWriter(storage::DiskManager* disk,
                                     storage::FileId file)
    : disk_(disk), file_(file), buf_(kPageSize, std::byte{0}),
      builder_(buf_.data()) {}

Status SlottedFileWriter::Append(std::span<const std::byte> record,
                                 RecordPos* pos) {
  if (record.size() > storage::SlottedPageBuilder::MaxRecordSize()) {
    return Status::InvalidArgument("record of " +
                                   std::to_string(record.size()) +
                                   " bytes exceeds page capacity");
  }
  if (!builder_.Fits(record.size())) {
    MCN_RETURN_IF_ERROR(Flush());
  }
  uint16_t slot = 0;
  MCN_CHECK(builder_.TryAppend(record, &slot));
  if (pos != nullptr) {
    pos->page = next_page_;
    pos->slot = slot;
  }
  dirty_ = true;
  return Status::OK();
}

Status SlottedFileWriter::Finish() {
  if (dirty_) return Flush();
  return Status::OK();
}

Status SlottedFileWriter::Flush() {
  MCN_ASSIGN_OR_RETURN(storage::PageNo page, disk_->AllocatePage(file_));
  MCN_CHECK(page == next_page_);
  MCN_RETURN_IF_ERROR(disk_->WritePage({file_, page}, buf_.data()));
  ++next_page_;
  std::memset(buf_.data(), 0, kPageSize);
  builder_ = storage::SlottedPageBuilder(buf_.data());
  dirty_ = false;
  return Status::OK();
}

}  // namespace mcn::net
