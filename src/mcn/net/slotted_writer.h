// SlottedFileWriter: appends variable-size records into consecutive slotted
// pages of a DiskManager file, flushing a page when the next record does not
// fit. Shared by the flat NetworkBuilder and the sharded build path
// (shard/sharded_builder.cc), which lay the same records into different
// file sets. Build-time writes go straight to the DiskManager — load cost
// is not query cost.
#ifndef MCN_NET_SLOTTED_WRITER_H_
#define MCN_NET_SLOTTED_WRITER_H_

#include <span>
#include <vector>

#include "mcn/common/status.h"
#include "mcn/net/format.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::net {

class SlottedFileWriter {
 public:
  SlottedFileWriter(storage::DiskManager* disk, storage::FileId file);

  /// Appends `record`; outputs its position (may be null). Fails if the
  /// record can never fit in a page.
  Status Append(std::span<const std::byte> record, RecordPos* pos);

  /// Writes the trailing partial page, if any.
  Status Finish();

 private:
  Status Flush();

  storage::DiskManager* disk_;
  storage::FileId file_;
  std::vector<std::byte> buf_;
  storage::SlottedPageBuilder builder_;
  storage::PageNo next_page_ = 0;
  bool dirty_ = false;
};

}  // namespace mcn::net

#endif  // MCN_NET_SLOTTED_WRITER_H_
