#include "mcn/obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

namespace mcn::obs {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// JSON string escaping for the few fields that carry free text (kind and
/// status names are ASCII identifiers today, but the log must never emit
/// malformed JSON regardless of what lands in them).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

std::string ToHex(const std::string& bytes) {
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kHexDigits[c >> 4]);
    hex.push_back(kHexDigits[c & 0xf]);
  }
  return hex;
}

bool FromHex(const std::string& hex, std::string* bytes) {
  if (hex.size() % 2 != 0) return false;
  bytes->clear();
  bytes->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string DigestToJson(const QueryDigest& d) {
  std::string out;
  out.reserve(256 + d.spec_frame_hex.size());
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"seq\": %" PRIu64 ", \"query\": %u, ",
                d.seq, d.trace_query_id);
  out += buf;
  out += "\"kind\": ";
  AppendJsonString(&out, d.kind);
  out += ", \"status\": ";
  AppendJsonString(&out, d.status);
  std::snprintf(buf, sizeof(buf),
                ", \"worker\": %d, \"shard\": %d, \"session_batch\": %s, "
                "\"queue_ms\": %.3f, \"exec_ms\": %.3f, \"stall_ms\": %.3f, "
                "\"latency_ms\": %.3f, \"buffer_misses\": %" PRIu64
                ", \"buffer_accesses\": %" PRIu64
                // Hex string, not a JSON number: u64 hashes exceed 2^53 and
                // would be silently rounded by double-based JSON parsers.
                ", \"result_hash\": \"%016" PRIx64 "\", \"replay_hex\": ",
                d.worker, d.shard, d.session_batch ? "true" : "false",
                d.queue_ms, d.exec_ms, d.stall_ms, d.latency_ms,
                d.buffer_misses, d.buffer_accesses, d.result_hash);
  out += buf;
  AppendJsonString(&out, d.spec_frame_hex);
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
}

void FlightRecorder::Record(QueryDigest digest) {
  bool slow = false;
  std::string line;
  {
    MutexLock lock(&mu_);
    digest.seq = ++recorded_;
    slow = options_.slow_query_ms > 0 &&
           digest.latency_ms >= options_.slow_query_ms;
    if (slow) {
      ++slow_logged_;
      line = DigestToJson(digest);
    }
    if (ring_.size() < options_.capacity) {
      ring_.push_back(std::move(digest));
    } else {
      ring_[next_] = std::move(digest);
    }
    next_ = (next_ + 1) % options_.capacity;
  }
  if (!slow) return;
  // I/O outside the lock: a slow filesystem must not stall recording.
  if (options_.log_path.empty()) {
    std::fprintf(stderr, "[mcn slow-query] %s\n", line.c_str());
  } else {
    std::FILE* f = std::fopen(options_.log_path.c_str(), "a");
    if (f != nullptr) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
}

std::vector<QueryDigest> FlightRecorder::Recent() const {
  MutexLock lock(&mu_);
  std::vector<QueryDigest> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;  // not yet wrapped: ring_ is already oldest-first
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  MutexLock lock(&mu_);
  return recorded_;
}

uint64_t FlightRecorder::slow_logged() const {
  MutexLock lock(&mu_);
  return slow_logged_;
}

}  // namespace mcn::obs
