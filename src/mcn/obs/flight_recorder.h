// Flight recorder + slow-query log (DESIGN.md §11).
//
// A bounded in-memory ring of the last-N completed-query digests — enough
// to answer "what just happened" on a live server without any tracing
// enabled — plus a structured one-line-JSON slow-query log: any query
// whose wall latency exceeds the configured threshold is dumped with its
// spec serialized as a hex-encoded wire frame (`replay_hex`), so
// tools/replay_query.py can re-send the exact bytes against a server for
// byte-for-byte reproduction.
//
// Recording takes one short mutex on query completion (not per probe or
// per turn), which is far off the hot path; the same digest feeds both the
// ring and the slow log.
#ifndef MCN_OBS_FLIGHT_RECORDER_H_
#define MCN_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"

namespace mcn::obs {

/// Lower-case hex of `bytes` ("" for empty).
std::string ToHex(const std::string& bytes);
/// Inverse of ToHex; returns false on odd length or non-hex characters.
bool FromHex(const std::string& hex, std::string* bytes);

/// Everything the recorder keeps about one finished query.
struct QueryDigest {
  uint64_t seq = 0;            ///< recorder-assigned, 1-based, monotone
  uint32_t trace_query_id = 0; ///< 0 when tracing was off
  std::string kind;            ///< "skyline" | "topk" | "incremental" | ...
  int worker = -1;
  int shard = -1;
  std::string status;          ///< StatusCodeToString of the result
  bool session_batch = false;  ///< SessionNext batch, not a one-shot query
  double queue_ms = 0;         ///< admission -> execution start
  double exec_ms = 0;          ///< execution start -> completion
  double stall_ms = 0;         ///< modeled I/O stall inside exec
  double latency_ms = 0;       ///< admission -> completion (queue + exec)
  uint64_t buffer_misses = 0;
  uint64_t buffer_accesses = 0;
  uint64_t result_hash = 0;
  std::string spec_frame_hex;  ///< hex kExecute wire frame for replay
};

/// Formats `digest` as the recorder's one-line JSON object (no newline).
std::string DigestToJson(const QueryDigest& digest);

class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 256;     ///< digests retained in the ring
    double slow_query_ms = 0;  ///< 0 disables the slow-query log
    std::string log_path;      ///< "" logs slow queries to stderr
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);

  /// Stamps `digest.seq`, appends it to the ring and, when it qualifies,
  /// writes the slow-query log line.
  void Record(QueryDigest digest);

  /// The retained digests, oldest first.
  std::vector<QueryDigest> Recent() const;

  uint64_t recorded() const;
  uint64_t slow_logged() const;
  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable Mutex mu_;
  /// wraps at `next_`
  std::vector<QueryDigest> ring_ MCN_GUARDED_BY(mu_);
  size_t next_ MCN_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ MCN_GUARDED_BY(mu_) = 0;
  uint64_t slow_logged_ MCN_GUARDED_BY(mu_) = 0;
};

}  // namespace mcn::obs

#endif  // MCN_OBS_FLIGHT_RECORDER_H_
