#include "mcn/obs/metrics.h"

#include <cmath>
#include <thread>

namespace mcn::obs {

int ClampSlots(int requested) {
  if (requested < 1) requested = 1;
  if (requested > kMaxSlots) requested = kMaxSlots;
  return static_cast<int>(std::bit_ceil(static_cast<unsigned>(requested)));
}

int CurrentThreadSlot() {
  static std::atomic<int> next{0};
  thread_local const int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void Histogram::SnapshotInto(
    std::vector<std::pair<uint32_t, uint64_t>>* buckets, uint64_t* count,
    uint64_t* sum) const {
  uint64_t dense[kNumBuckets] = {};
  uint64_t total = 0, value_sum = 0;
  for (const Slot& s : slots_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      dense[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    value_sum += s.sum.load(std::memory_order_relaxed);
  }
  buckets->clear();
  for (int b = 0; b < kNumBuckets; ++b) {
    if (dense[b] == 0) continue;
    buckets->emplace_back(static_cast<uint32_t>(b), dense[b]);
    total += dense[b];
  }
  *count = total;
  *sum = value_sum;
}

double HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (const auto& [index, c] : buckets) {
    cumulative += c;
    if (cumulative >= rank) {
      const auto lo =
          static_cast<double>(Histogram::BucketLowerBound(index));
      const int last = Histogram::kNumBuckets - 1;
      const double hi =
          static_cast<int>(index) >= last
              ? lo * 1.125
              : static_cast<double>(Histogram::BucketUpperBound(index));
      return (lo + hi) / 2.0;
    }
  }
  return 0;  // unreachable when count == sum of buckets
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  // Merge two ascending sparse lists.
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

void Snapshot::Merge(const Snapshot& other) {
  MergeRowsByName(&counters, other.counters,
                  [](CounterRow& into, const CounterRow& from) {
                    into.value += from.value;
                  });
  MergeRowsByName(&gauges, other.gauges,
                  [](GaugeRow& into, const GaugeRow& from) {
                    into.value = from.value;
                  });
  MergeRowsByName(&histograms, other.histograms,
                  [](HistogramSnapshot& into, const HistogramSnapshot& from) {
                    into.Merge(from);
                  });
}

uint64_t Snapshot::CounterValue(const std::string& name,
                                uint64_t fallback) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.value;
  }
  return fallback;
}

double Snapshot::GaugeValue(const std::string& name, double fallback) const {
  for (const GaugeRow& row : gauges) {
    if (row.name == name) return row.value;
  }
  return fallback;
}

const HistogramSnapshot* Snapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void Snapshot::AddCounter(const std::string& name, uint64_t value) {
  std::vector<CounterRow> one{{name, value}};
  MergeRowsByName(&counters, one,
                  [](CounterRow& into, const CounterRow& from) {
                    into.value += from.value;
                  });
}

void Snapshot::SetGauge(const std::string& name, double value) {
  std::vector<GaugeRow> one{{name, value}};
  MergeRowsByName(&gauges, one, [](GaugeRow& into, const GaugeRow& from) {
    into.value = from.value;
  });
}

Registry::Registry(int slots_hint)
    : num_slots_(ClampSlots(
          slots_hint > 0
              ? slots_hint
              : static_cast<int>(std::thread::hardware_concurrency()))) {}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>(num_slots_));
  return counters_.back().second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>(num_slots_));
  return histograms_.back().second.get();
}

Snapshot Registry::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    histogram->SnapshotInto(&h.buckets, &h.count, &h.sum);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace mcn::obs
