// Lock-light metrics registry (DESIGN.md §11): process- or service-scoped
// named counters, gauges and log-bucketed latency histograms.
//
// Hot-path contract: recording into an existing instrument takes NO lock —
// counters and histograms keep per-slot cache-line-padded relaxed atomics
// (slot = the caller's worker index, or a stable per-thread ordinal), so
// concurrent workers never contend on a line. The registry mutex is taken
// only to create an instrument (once, at service construction) and to cut
// a snapshot.
//
// Snapshots are plain value types merged by instrument name —
// MergeRowsByName is the one aggregation routine shared by registry
// snapshots, DiskManager::Stats and the sharded-service rollups that used
// to hand-roll their own loops. exec::ServiceStats is a thin view over one
// of these snapshots (exec/service_stats.h).
//
// Histogram bucketing: values 0..15 get exact unit buckets; above that,
// each power-of-two octave is split into 8 sub-buckets, so any recorded
// value lands in a bucket whose width is at most 1/8 of its lower bound
// (quantile estimates carry ≤ 12.5% relative error). 496 buckets cover
// the full uint64 range; snapshots store them sparsely.
#ifndef MCN_OBS_METRICS_H_
#define MCN_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"

namespace mcn::obs {

/// Upper bound on per-instrument slot arrays (beyond ~64 workers, slot
/// sharing costs contention, not correctness — values are always summed).
inline constexpr int kMaxSlots = 64;

/// `requested` rounded up to a power of two, clamped to [1, kMaxSlots].
/// Power-of-two slot counts let the record path mask instead of divide.
int ClampSlots(int requested);

/// A stable small ordinal for the calling thread (assigned on first use),
/// used as the default slot so unrelated threads rarely share a line.
int CurrentThreadSlot();

/// Monotonic named counter. Add() is lock-free (relaxed per-slot atomics);
/// Value()/Reset() are snapshot-time operations.
class Counter {
 public:
  explicit Counter(int num_slots)
      : slots_(ClampSlots(num_slots)),
        mask_(static_cast<uint32_t>(slots_.size() - 1)) {}

  void Add(uint64_t delta) { Add(delta, CurrentThreadSlot()); }
  void Add(uint64_t delta, int slot) {
    slots_[static_cast<uint32_t>(slot) & mask_].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  /// One slot's share (exact per-worker attribution when the owning
  /// registry was sized with at least one slot per worker).
  uint64_t SlotValue(int slot) const {
    return slots_[static_cast<uint32_t>(slot) & mask_].v.load(
        std::memory_order_relaxed);
  }
  int num_slots() const { return static_cast<int>(slots_.size()); }

  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::vector<Slot> slots_;
  uint32_t mask_;
};

/// Last-value gauge (doubles, e.g. open sessions or uptime). Set wins —
/// gauges are not sharded; they are written rarely.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Log-bucketed histogram over uint64 values (microseconds by convention).
/// Record() is lock-free; see the file comment for the bucket layout.
class Histogram {
 public:
  static constexpr int kIdentityBuckets = 16;  ///< exact buckets for 0..15
  static constexpr int kSubBuckets = 8;        ///< per octave above that
  /// Octaves 4..63 each contribute kSubBuckets buckets.
  static constexpr int kNumBuckets = kIdentityBuckets + (64 - 4) * kSubBuckets;

  /// The bucket index `v` lands in (total order preserved: the index is
  /// monotone in v).
  static int BucketIndex(uint64_t v) {
    if (v < kIdentityBuckets) return static_cast<int>(v);
    const int octave = 63 - std::countl_zero(v);
    const int sub = static_cast<int>((v >> (octave - 3)) & 7);
    return kIdentityBuckets + (octave - 4) * kSubBuckets + sub;
  }
  /// Smallest value mapping to `index` (inclusive).
  static uint64_t BucketLowerBound(int index) {
    if (index < kIdentityBuckets) return static_cast<uint64_t>(index);
    const int octave = 4 + (index - kIdentityBuckets) / kSubBuckets;
    const int sub = (index - kIdentityBuckets) % kSubBuckets;
    return (uint64_t{1} << octave) +
           (static_cast<uint64_t>(sub) << (octave - 3));
  }
  /// Exclusive upper bound of `index` (UINT64_MAX for the last bucket).
  static uint64_t BucketUpperBound(int index) {
    if (index + 1 >= kNumBuckets) return UINT64_MAX;
    return BucketLowerBound(index + 1);
  }

  explicit Histogram(int num_slots)
      : slots_(ClampSlots(num_slots)),
        mask_(static_cast<uint32_t>(slots_.size() - 1)) {}

  void Record(uint64_t value) { Record(value, CurrentThreadSlot()); }
  void Record(uint64_t value, int slot) {
    Slot& s = slots_[static_cast<uint32_t>(slot) & mask_];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  void Reset() {
    for (Slot& s : slots_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

  /// Sparse merged view of every slot (count derived from the buckets).
  struct Dense;  // internal to the .cc
  void SnapshotInto(std::vector<std::pair<uint32_t, uint64_t>>* buckets,
                    uint64_t* count, uint64_t* sum) const;

 private:
  struct Slot {
    /// Not line-padded per bucket (that would be 32KB/slot); different
    /// slots still live in different allocated regions, which is what
    /// kills the cross-worker contention.
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };
  std::vector<Slot> slots_;
  uint32_t mask_;
};

// ------------------------------------------------------------- snapshots

struct CounterRow {
  std::string name;
  uint64_t value = 0;
};

struct GaugeRow {
  std::string name;
  double value = 0;
};

/// Point-in-time copy of one histogram: sparse ascending (index, count)
/// pairs plus the value sum.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;  ///< always the sum of bucket counts
  uint64_t sum = 0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0;
  }
  /// Nearest-rank quantile estimate, q in [0,1]: the midpoint of the
  /// bucket holding the rank-ceil(q*count) sample (≤ 12.5% relative
  /// error by the bucket-width bound).
  double ValueAtQuantile(double q) const;

  void Merge(const HistogramSnapshot& other);
};

/// One registry's instruments at a point in time. Rows keep registry
/// insertion order; Merge() combines by name (sum counters/histograms,
/// last-write gauges), appending names unseen on the left.
struct Snapshot {
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramSnapshot> histograms;

  void Merge(const Snapshot& other);

  /// Value of a named counter/gauge (fallback when absent).
  uint64_t CounterValue(const std::string& name, uint64_t fallback = 0) const;
  double GaugeValue(const std::string& name, double fallback = 0) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Convenience mutators for derived rows (e.g. sampled reader counters
  /// appended by QueryService::MetricsSnapshot). AddCounter sums into an
  /// existing same-named row.
  void AddCounter(const std::string& name, uint64_t value);
  void SetGauge(const std::string& name, double value);
};

/// THE shared name-keyed merge: for each row of `from`, combine into the
/// same-named row of `*into` (appending a copy when absent). `combine`
/// takes (Row& into, const Row& from). Quadratic in distinct names, which
/// is fine for the few dozen instruments a snapshot carries.
template <typename Row, typename Fn>
void MergeRowsByName(std::vector<Row>* into, const std::vector<Row>& from,
                     Fn combine) {
  for (const Row& row : from) {
    auto it = std::find_if(into->begin(), into->end(), [&](const Row& r) {
      return r.name == row.name;
    });
    if (it == into->end()) {
      into->push_back(row);
    } else {
      combine(*it, row);
    }
  }
}

// -------------------------------------------------------------- registry

/// Create-or-get named instruments. Returned pointers are stable for the
/// registry's lifetime — resolve once, record forever without a lock.
class Registry {
 public:
  /// `slots_hint`: expected concurrent recorder count (a service passes
  /// its worker count so per-worker slots are exact). 0 = a default sized
  /// for the machine.
  explicit Registry(int slots_hint = 0);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  Snapshot TakeSnapshot() const;
  /// Zeroes every instrument (call only while recorders are quiesced
  /// enough that a racing Add being lost or kept is acceptable).
  void ResetAll();

  int num_slots() const { return num_slots_; }

  /// The process-wide registry (e.g. wire-server counters). Services keep
  /// their own Registry so tests never see cross-instance bleed-through.
  static Registry& Default();

 private:
  int num_slots_;
  mutable Mutex mu_;  ///< creation + snapshot only, never recording
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      MCN_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_
      MCN_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_
      MCN_GUARDED_BY(mu_);
};

}  // namespace mcn::obs

#endif  // MCN_OBS_METRICS_H_
