// Observability compile gate (DESIGN.md §11).
//
// MCN_OBS=1 (the default) compiles the full tracing layer (obs/trace.h):
// per-query TraceContext propagation, per-thread event rings, Chrome
// trace_event export. MCN_OBS=0 (cmake -DMCN_OBS=OFF) replaces every
// tracing entry point with empty inline stubs — call sites compile
// unchanged and the optimizer erases them — for builds that want zero
// tracing residue on the hot path.
//
// The metrics registry (obs/metrics.h) and flight recorder
// (obs/flight_recorder.h) are NOT gated: they are the production stats
// surface (ServiceStats is a view over registry snapshots) and stay
// compiled in every build. Their hot path is lock-free relaxed atomics;
// the bench-gated overhead budget (≤2% QPS with metrics on, tracing off)
// is enforced by the CI bench smoke.
#ifndef MCN_OBS_OBS_H_
#define MCN_OBS_OBS_H_

#ifndef MCN_OBS
#define MCN_OBS 1
#endif

#endif  // MCN_OBS_OBS_H_
