#include "mcn/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mcn::obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kQuery:
      return "query";
    case EventType::kAdmission:
      return "admission";
    case EventType::kQueueWait:
      return "queue_wait";
    case EventType::kExec:
      return "exec";
    case EventType::kExpansionTurn:
      return "expansion_turn";
    case EventType::kProbeFetch:
      return "probe_fetch";
    case EventType::kDominanceRound:
      return "dominance_round";
    case EventType::kSessionBatch:
      return "session_batch";
    case EventType::kWireEncode:
      return "wire_encode";
    case EventType::kWireDecode:
      return "wire_decode";
    case EventType::kStall:
      return "stall";
    case EventType::kProbePrune:
      return "probe_prune";
    case EventType::kIoBatch:
      return "io_batch";
  }
  return "unknown";
}

#if MCN_OBS

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t events_per_ring) {
  if (events_per_ring == 0) events_per_ring = 1;
  MutexLock lock(&rings_mu_);
  capacity_ = events_per_ring;
  for (auto& ring : rings_) {
    MutexLock ring_lock(&ring->mu);
    ring->events.assign(capacity_, TraceEvent{});
    ring->head = 0;
    ring->appended = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

Tracer::Ring* Tracer::ThreadRing() {
  // One ring per recording thread, owned by the tracer (it must outlive
  // the thread for export). There is exactly one Tracer (Global), so a
  // plain thread_local cache is safe; rings are resized in place by
  // Enable, never freed, so the cached pointer stays valid.
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    MutexLock lock(&rings_mu_);
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->events.assign(capacity_, TraceEvent{});
  }
  return ring;
}

void Tracer::Append(const TraceEvent& event) {
  if (!enabled()) return;
  Ring* ring = ThreadRing();
  MutexLock lock(&ring->mu);
  if (ring->events.empty()) return;
  ring->events[ring->head] = event;
  ring->head = (ring->head + 1) % ring->events.size();
  ++ring->appended;
}

void Tracer::Clear() {
  MutexLock lock(&rings_mu_);
  for (auto& ring : rings_) {
    MutexLock ring_lock(&ring->mu);
    ring->head = 0;
    ring->appended = 0;
  }
}

uint64_t Tracer::total_appended() const {
  MutexLock lock(&rings_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    MutexLock ring_lock(&ring->mu);
    total += ring->appended;
  }
  return total;
}

namespace {

/// Event-specific argument names keep the Perfetto UI readable; every
/// event also carries the owning query id.
void AppendArgs(std::string* out, const TraceEvent& e) {
  char buf[160];
  const char* a0 = "arg0";
  const char* a1 = nullptr;
  switch (e.type) {
    case EventType::kQuery:
    case EventType::kExec:
      a0 = "kind";
      break;
    case EventType::kAdmission:
      a0 = "group";
      break;
    case EventType::kQueueWait:
      a0 = "worker";
      break;
    case EventType::kExpansionTurn:
      a0 = "width";
      a1 = "pooled";
      break;
    case EventType::kDominanceRound:
      a0 = "round";
      break;
    case EventType::kSessionBatch:
      a0 = "n";
      break;
    case EventType::kWireEncode:
    case EventType::kWireDecode:
      a0 = "bytes";
      break;
    case EventType::kStall:
      a0 = "misses";
      break;
    case EventType::kProbePrune:
      a0 = "cut";
      a1 = "checked";
      break;
    case EventType::kIoBatch:
      a0 = "pages";
      a1 = "turn_misses";
      break;
    case EventType::kProbeFetch:
      // Decoded flag bits: the hit/miss + local/remote attribution the
      // acceptance trace must show per probe fetch.
      std::snprintf(buf, sizeof(buf),
                    "{\"query\": %u, \"node\": %" PRIu64
                    ", \"miss\": %d, \"remote\": %d}",
                    e.query_id, e.arg0, (e.arg1 & kFetchMiss) ? 1 : 0,
                    (e.arg1 & kFetchRemote) ? 1 : 0);
      out->append(buf);
      return;
  }
  if (a1 != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  "{\"query\": %u, \"%s\": %" PRIu64 ", \"%s\": %" PRIu64 "}",
                  e.query_id, a0, e.arg0, a1, e.arg1);
  } else {
    std::snprintf(buf, sizeof(buf), "{\"query\": %u, \"%s\": %" PRIu64 "}",
                  e.query_id, a0, e.arg0);
  }
  out->append(buf);
}

}  // namespace

std::string Tracer::ExportChromeJson() {
  struct Tagged {
    TraceEvent event;
    int tid;
  };
  std::vector<Tagged> all;
  {
    MutexLock lock(&rings_mu_);
    for (size_t r = 0; r < rings_.size(); ++r) {
      Ring& ring = *rings_[r];
      MutexLock ring_lock(&ring.mu);
      const size_t cap = ring.events.size();
      if (cap == 0 || ring.appended == 0) continue;
      const size_t n = ring.appended < cap
                           ? static_cast<size_t>(ring.appended)
                           : cap;
      // Oldest-first: a wrapped ring's oldest event sits at head.
      const size_t start = ring.appended < cap ? 0 : ring.head;
      for (size_t i = 0; i < n; ++i) {
        all.push_back(
            {ring.events[(start + i) % cap], static_cast<int>(r + 1)});
      }
    }
  }
  // Timestamp order; an enclosing span sorts before the children it
  // shares a start with (longer duration first), which is what keeps
  // "X" events properly nested per track in the viewer.
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.event.ts_us != b.event.ts_us) {
                       return a.event.ts_us < b.event.ts_us;
                     }
                     return a.event.dur_us > b.event.dur_us;
                   });
  std::string out;
  out.reserve(128 + all.size() * 160);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[192];
  for (size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i].event;
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"cat\": \"mcn\", \"ph\": \"i\", "
                    "\"s\": \"t\", \"ts\": %" PRIu64
                    ", \"pid\": 1, \"tid\": %d, \"args\": ",
                    EventTypeName(e.type), e.ts_us, all[i].tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"cat\": \"mcn\", \"ph\": \"X\", "
                    "\"ts\": %" PRIu64 ", \"dur\": %u"
                    ", \"pid\": 1, \"tid\": %d, \"args\": ",
                    EventTypeName(e.type), e.ts_us, e.dur_us, all[i].tid);
    }
    out += buf;
    AppendArgs(&out, e);
    out += i + 1 < all.size() ? "},\n" : "}\n";
  }
  out += "]}\n";
  return out;
}

void TraceSpan::Finish() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.ts_us = start_us_;
  const uint64_t now = tracer.NowMicros();
  event.dur_us = static_cast<uint32_t>(now > start_us_ ? now - start_us_ : 0);
  event.query_id = query_id_;
  event.type = type_;
  event.arg0 = arg0_;
  event.arg1 = arg1_;
  tracer.Append(event);
}

void RecordInstant(TraceContext context, EventType type, uint64_t arg0,
                   uint64_t arg1) {
  if (!context.active()) return;
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  TraceEvent event;
  event.ts_us = tracer.NowMicros();
  event.query_id = context.query_id;
  event.type = type;
  event.arg0 = arg0;
  event.arg1 = arg1;
  event.instant = true;
  tracer.Append(event);
}

void RecordSpanSince(TraceContext context, EventType type,
                     std::chrono::steady_clock::time_point start,
                     uint64_t arg0, uint64_t arg1) {
  if (!context.active()) return;
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  TraceEvent event;
  event.ts_us = tracer.ToMicros(start);
  const uint64_t now = tracer.NowMicros();
  event.dur_us =
      static_cast<uint32_t>(now > event.ts_us ? now - event.ts_us : 0);
  event.query_id = context.query_id;
  event.type = type;
  event.arg0 = arg0;
  event.arg1 = arg1;
  tracer.Append(event);
}

#endif  // MCN_OBS

}  // namespace mcn::obs
