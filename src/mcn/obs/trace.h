// Query trace spans (DESIGN.md §11): a per-query TraceContext threaded
// QueryService → ExpansionExecutor → ParallelProbeScheduler →
// NetworkReader, recording typed events into preallocated per-thread ring
// buffers, exportable as Chrome trace_event JSON (chrome://tracing /
// https://ui.perfetto.dev).
//
// Model: the global Tracer is off by default. When off, every entry point
// is one relaxed atomic load + branch (and with MCN_OBS=0 the whole layer
// compiles to empty inline stubs — see obs/obs.h). When on, each thread
// appends fixed-size TraceEvents to its own ring under an uncontended
// per-ring mutex (the mutex exists so a live export can read a ring that
// is still being written — rings are never contended across threads).
// Rings are bounded and wrap: a saturated trace keeps the most recent
// events per thread, which is what a flight-recorder-style capture wants.
//
// Context propagation is by value: QueryService stamps a fresh query id at
// admission, carries it in the Task, and installs it thread-locally
// (TraceContextScope) on the executing worker; ParallelProbeScheduler
// captures the caller's context at each turn and re-installs it on
// probe-pool threads, so per-probe fetch events land under the owning
// query regardless of which thread fetched.
//
// Determinism: tracing records wall-clock observations only — it never
// feeds back into expansion order, fetch counts or result hashes.
#ifndef MCN_OBS_TRACE_H_
#define MCN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "mcn/obs/obs.h"

#if MCN_OBS
#include <atomic>
#include <memory>
#include <vector>

#include "mcn/common/mutex.h"
#include "mcn/common/thread_annotations.h"
#endif

namespace mcn::obs {

/// Typed trace events (the taxonomy of DESIGN.md §11).
enum class EventType : uint8_t {
  kQuery = 0,       ///< whole request: admission -> completion (arg0 = kind)
  kAdmission,       ///< instant at Submit (arg0 = group index)
  kQueueWait,       ///< admission -> start of execution (arg0 = worker)
  kExec,            ///< engine construction + computation (arg0 = kind)
  kExpansionTurn,   ///< one turn barrier (arg0 = width, arg1 = pooled)
  kProbeFetch,      ///< one record fetch (arg0 = node, arg1 = flag bits)
  kDominanceRound,  ///< one skyline drain round (arg0 = round)
  kSessionBatch,    ///< one SessionNext batch (arg0 = n)
  kWireEncode,      ///< response frame encode + send (arg0 = bytes)
  kWireDecode,      ///< request frame decode (arg0 = bytes)
  kStall,           ///< modeled I/O stall sleep (arg0 = misses)
  kProbePrune,      ///< prune-index cuts in one query (arg0 = cut,
                    ///< arg1 = checked)
  kIoBatch,         ///< one batched turn replay (arg0 = pages,
                    ///< arg1 = turn max misses)
};
const char* EventTypeName(EventType type);

/// kProbeFetch arg1 flag bits.
inline constexpr uint64_t kFetchMiss = 1;    ///< missed the buffer pool
inline constexpr uint64_t kFetchRemote = 2;  ///< routed off the home shard

/// By-value query identity. id 0 = not traced (tracer off at admission).
struct TraceContext {
  uint32_t query_id = 0;
  bool active() const { return query_id != 0; }
};

#if MCN_OBS

/// One recorded event; ts/dur are microseconds since the tracer epoch.
struct TraceEvent {
  uint64_t ts_us = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t dur_us = 0;
  uint32_t query_id = 0;
  EventType type = EventType::kQuery;
  bool instant = false;
};

/// Global trace collector. Enable/Disable/Export are control-plane calls;
/// Append is the data plane (see the file comment).
class Tracer {
 public:
  static Tracer& Global();

  /// Turns collection on. Per-thread rings hold `events_per_ring` events
  /// (existing rings are resized; their content is cleared).
  void Enable(size_t events_per_ring = 1 << 16);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh nonzero query id.
  uint32_t NewQueryId() {
    return 1 + next_query_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends to the calling thread's ring (no-op while disabled).
  void Append(const TraceEvent& event);

  /// Microseconds since the tracer epoch (a process-start steady clock).
  uint64_t NowMicros() const { return ToMicros(Clock::now()); }
  uint64_t ToMicros(std::chrono::steady_clock::time_point t) const {
    if (t < epoch_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
            .count());
  }

  /// All rings merged into a Chrome trace_event JSON document
  /// ({"traceEvents": [...]}), events in timestamp order, one tid per
  /// recording thread. Safe against concurrent appends.
  std::string ExportChromeJson();

  /// Drops every buffered event (rings stay allocated).
  void Clear();

  /// Events appended since Enable (wrapped events still count).
  uint64_t total_appended() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Ring {
    Mutex mu;
    /// fixed capacity, wraps at head
    std::vector<TraceEvent> events MCN_GUARDED_BY(mu);
    size_t head MCN_GUARDED_BY(mu) = 0;
    uint64_t appended MCN_GUARDED_BY(mu) = 0;
  };

  Tracer() : epoch_(Clock::now()) {}
  Ring* ThreadRing();

  Clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> next_query_{0};
  mutable Mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_ MCN_GUARDED_BY(rings_mu_);
  size_t capacity_ MCN_GUARDED_BY(rings_mu_) = 1 << 16;
};

namespace internal {
inline thread_local TraceContext g_trace_context;
}  // namespace internal

inline TraceContext CurrentTraceContext() {
  return internal::g_trace_context;
}

/// Installs `context` as the thread's current query for its scope.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context)
      : previous_(internal::g_trace_context) {
    internal::g_trace_context = context;
  }
  ~TraceContextScope() { internal::g_trace_context = previous_; }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// A fresh context when tracing is on, the inactive context otherwise.
inline TraceContext StartQueryTrace() {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return {};
  return TraceContext{tracer.NewQueryId()};
}

/// RAII complete-span ("ph":"X") under the thread's current context.
/// Construction is one relaxed load + branch when tracing is off or the
/// thread has no active query.
class TraceSpan {
 public:
  explicit TraceSpan(EventType type, uint64_t arg0 = 0, bool enabled = true) {
    if (!enabled) return;
    Tracer& tracer = Tracer::Global();
    if (!tracer.enabled()) return;
    const TraceContext context = CurrentTraceContext();
    if (!context.active()) return;
    active_ = true;
    type_ = type;
    arg0_ = arg0;
    query_id_ = context.query_id;
    start_us_ = tracer.NowMicros();
  }
  ~TraceSpan() { Finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  void set_arg0(uint64_t v) { arg0_ = v; }
  void set_arg1(uint64_t v) { arg1_ = v; }

  /// Records the event now (idempotent; the destructor calls it).
  void Finish();

 private:
  bool active_ = false;
  EventType type_ = EventType::kQuery;
  uint32_t query_id_ = 0;
  uint64_t arg0_ = 0;
  uint64_t arg1_ = 0;
  uint64_t start_us_ = 0;
};

/// Zero-duration event ("ph":"i") under `context` (useful on threads that
/// have not installed the context, e.g. Submit's caller).
void RecordInstant(TraceContext context, EventType type, uint64_t arg0 = 0,
                   uint64_t arg1 = 0);

/// Complete span whose start predates the call (e.g. queue wait measured
/// from the admission timestamp), under `context`.
void RecordSpanSince(TraceContext context, EventType type,
                     std::chrono::steady_clock::time_point start,
                     uint64_t arg0 = 0, uint64_t arg1 = 0);

#else  // !MCN_OBS — tracing compiled out; call sites build unchanged.

struct TraceEvent {};

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Enable(size_t = 0) {}
  void Disable() {}
  bool enabled() const { return false; }
  uint32_t NewQueryId() { return 0; }
  void Append(const TraceEvent&) {}
  uint64_t NowMicros() const { return 0; }
  uint64_t ToMicros(std::chrono::steady_clock::time_point) const { return 0; }
  std::string ExportChromeJson() { return "{\"traceEvents\": []}\n"; }
  void Clear() {}
  uint64_t total_appended() const { return 0; }
};

inline TraceContext CurrentTraceContext() { return {}; }

class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext) {}
};

inline TraceContext StartQueryTrace() { return {}; }

class TraceSpan {
 public:
  explicit TraceSpan(EventType, uint64_t = 0, bool = true) {}
  bool active() const { return false; }
  void set_arg0(uint64_t) {}
  void set_arg1(uint64_t) {}
  void Finish() {}
};

inline void RecordInstant(TraceContext, EventType, uint64_t = 0,
                          uint64_t = 0) {}
inline void RecordSpanSince(TraceContext, EventType,
                            std::chrono::steady_clock::time_point,
                            uint64_t = 0, uint64_t = 0) {}

#endif  // MCN_OBS

}  // namespace mcn::obs

#endif  // MCN_OBS_TRACE_H_
