#include "mcn/shard/partition.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "mcn/common/macros.h"

namespace mcn::shard {

std::vector<uint32_t> Partition::ShardSizes() const {
  std::vector<uint32_t> sizes(num_shards, 0);
  for (ShardId s : node_shard) {
    if (s < sizes.size()) ++sizes[s];
  }
  return sizes;
}

Status Partition::Validate() const {
  if (num_shards <= 0) {
    return Status::InvalidArgument("partition: num_shards must be > 0");
  }
  for (graph::NodeId v = 0; v < node_shard.size(); ++v) {
    if (node_shard[v] >= static_cast<ShardId>(num_shards)) {
      return Status::Internal("partition: node " + std::to_string(v) +
                              " routed to shard " +
                              std::to_string(node_shard[v]) + " of " +
                              std::to_string(num_shards));
    }
  }
  for (uint32_t size : ShardSizes()) {
    if (size == 0) return Status::Internal("partition: empty shard");
  }
  return Status::OK();
}

Partition SingleShardPartition(uint32_t num_nodes) {
  Partition p;
  p.num_shards = 1;
  p.node_shard.assign(num_nodes, 0);
  return p;
}

Result<Partition> GridTilePartitioner::Build(
    const graph::MultiCostGraph& graph, int num_shards) const {
  if (num_shards <= 0) {
    return Status::InvalidArgument("GridTilePartitioner: num_shards <= 0");
  }
  const uint32_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("GridTilePartitioner: no nodes");
  if (static_cast<uint32_t>(num_shards) > n) {
    return Status::InvalidArgument(
        "GridTilePartitioner: more shards than nodes");
  }
  if (num_shards == 1) return SingleShardPartition(n);

  // Oversample the grid so each shard spans several cells — the greedy
  // packing below can then hit node-count targets even when the nodes are
  // clustered. Clamped so the cell walk stays trivial.
  int side = cells_per_side_;
  if (side <= 0) {
    side = static_cast<int>(
        std::ceil(std::sqrt(16.0 * static_cast<double>(num_shards))));
    side = std::clamp(side, 4, 128);
  }

  double min_x = graph.x(0), max_x = graph.x(0);
  double min_y = graph.y(0), max_y = graph.y(0);
  for (graph::NodeId v = 1; v < n; ++v) {
    min_x = std::min(min_x, graph.x(v));
    max_x = std::max(max_x, graph.x(v));
    min_y = std::min(min_y, graph.y(v));
    max_y = std::max(max_y, graph.y(v));
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;

  auto cell_coord = [&](double value, double lo, double span) -> int {
    if (span <= 0) return 0;  // degenerate axis: everything in column 0
    int c = static_cast<int>((value - lo) / span * side);
    return std::clamp(c, 0, side - 1);
  };

  // Count nodes per cell, then walk cells in boustrophedon row order (row
  // 0 left->right, row 1 right->left, ...) so consecutive cells — and
  // hence the node runs packed into one shard — are spatially adjacent.
  std::vector<uint32_t> cell_count(
      static_cast<size_t>(side) * static_cast<size_t>(side), 0);
  std::vector<int> node_cell(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    int cx = cell_coord(graph.x(v), min_x, span_x);
    int cy = cell_coord(graph.y(v), min_y, span_y);
    int cell = cy * side + cx;
    node_cell[v] = cell;
    ++cell_count[cell];
  }

  std::vector<int> walk;
  walk.reserve(cell_count.size());
  for (int row = 0; row < side; ++row) {
    if (row % 2 == 0) {
      for (int col = 0; col < side; ++col) walk.push_back(row * side + col);
    } else {
      for (int col = side - 1; col >= 0; --col) {
        walk.push_back(row * side + col);
      }
    }
  }

  // Greedy contiguous packing: close a shard once it reaches the running
  // node-count target (recomputed from what is left, so late shards absorb
  // imbalance instead of starving).
  std::vector<ShardId> cell_shard(cell_count.size(), 0);
  ShardId shard = 0;
  uint32_t in_shard = 0;
  uint32_t assigned = 0;
  uint32_t target = (n + num_shards - 1) / num_shards;
  for (int cell : walk) {
    cell_shard[cell] = shard;
    in_shard += cell_count[cell];
    assigned += cell_count[cell];
    if (shard + 1 < static_cast<ShardId>(num_shards) && in_shard >= target) {
      ++shard;
      in_shard = 0;
      const int remaining_shards = num_shards - static_cast<int>(shard);
      target = std::max<uint32_t>(
          1, (n - assigned + remaining_shards - 1) / remaining_shards);
    }
  }

  Partition p;
  p.num_shards = num_shards;
  p.node_shard.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    p.node_shard[v] = cell_shard[node_cell[v]];
  }

  // The greedy walk can still strand a trailing shard empty when the node
  // distribution collapses into few cells; backfill deterministically by
  // reassigning the highest-id nodes of the fullest shards.
  std::vector<uint32_t> sizes = p.ShardSizes();
  for (ShardId s = 0; s < static_cast<ShardId>(num_shards); ++s) {
    while (sizes[s] == 0) {
      ShardId donor = static_cast<ShardId>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      MCN_CHECK(sizes[donor] > 1);
      for (graph::NodeId v = n; v-- > 0;) {
        if (p.node_shard[v] == donor) {
          p.node_shard[v] = s;
          --sizes[donor];
          ++sizes[s];
          break;
        }
      }
    }
  }

  MCN_RETURN_IF_ERROR(p.Validate());
  return p;
}

}  // namespace mcn::shard
