// Network partitioning for sharded storage (DESIGN.md §8): split the road
// network into K node-disjoint shards and materialize a NodeId -> ShardId
// routing table that every layer above (builder, reader, executor) consults.
//
// Ownership rules, fixed across the stack:
//   * a node belongs to exactly one shard (the routing table);
//   * an edge — and therefore its facility record and the facilities on
//     it — belongs to the shard of its canonical endpoint u (u < v);
//   * an edge whose endpoints resolve to different shards is a *boundary*
//     edge; the builder writes it into the owner shard's boundary file
//     (shard/sharded_builder.h) so a future multi-node deployment can
//     exchange frontiers without consulting the full graph.
//
// The partitioner is pluggable: GridTilePartitioner cuts the planar node
// coordinates into grid tiles and packs them, in boustrophedon order, into
// K contiguous balanced shards. A METIS-style min-cut partitioner can slot
// in behind the same interface later.
#ifndef MCN_SHARD_PARTITION_H_
#define MCN_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/multi_cost_graph.h"

namespace mcn::shard {

using ShardId = uint32_t;
inline constexpr ShardId kInvalidShard = 0xFFFFFFFFu;

/// Shared remote-fetch ratio convention (DESIGN.md §8): the fraction of
/// routed fetches that crossed a shard boundary. Used identically by the
/// reader stats, the service per-shard rows and the bench metrics.
inline double RemoteRatio(uint64_t local_fetches, uint64_t remote_fetches) {
  const uint64_t total = local_fetches + remote_fetches;
  return total > 0
             ? static_cast<double>(remote_fetches) / static_cast<double>(total)
             : 0.0;
}

/// The materialized routing table: every node's owning shard. Value type,
/// cheap to share by const reference.
struct Partition {
  int num_shards = 0;
  std::vector<ShardId> node_shard;  ///< NodeId-indexed

  ShardId of_node(graph::NodeId v) const { return node_shard[v]; }
  /// Edge ownership: the shard of the canonical endpoint u.
  ShardId of_edge(graph::EdgeKey e) const { return node_shard[e.u]; }
  bool is_boundary(graph::EdgeKey e) const {
    return node_shard[e.u] != node_shard[e.v];
  }

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(node_shard.size());
  }

  /// Nodes per shard (sums to num_nodes).
  std::vector<uint32_t> ShardSizes() const;

  /// OK iff every node resolves to a shard in [0, num_shards) and no shard
  /// is empty.
  Status Validate() const;
};

/// Strategy interface; implementations must be deterministic functions of
/// the graph (the routing table is part of the reproducibility contract).
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual Result<Partition> Build(const graph::MultiCostGraph& graph,
                                  int num_shards) const = 0;
};

/// Grid-tile partitioner over the planar node coordinates: an oversampled
/// grid of cells (so skewed node distributions still balance), cells walked
/// in boustrophedon row order (spatially contiguous runs), packed greedily
/// into K shards of ~equal node count. K = 1 degenerates to the identity
/// partition. Requires num_shards <= num_nodes.
class GridTilePartitioner : public Partitioner {
 public:
  /// `cells_per_side` overrides the default grid resolution (0 = auto:
  /// enough cells that each shard spans several tiles).
  explicit GridTilePartitioner(int cells_per_side = 0)
      : cells_per_side_(cells_per_side) {}

  Result<Partition> Build(const graph::MultiCostGraph& graph,
                          int num_shards) const override;

 private:
  int cells_per_side_;
};

/// The K = 1 identity partition (today's unsharded layout).
Partition SingleShardPartition(uint32_t num_nodes);

}  // namespace mcn::shard

#endif  // MCN_SHARD_PARTITION_H_
