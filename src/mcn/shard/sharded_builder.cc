#include "mcn/shard/sharded_builder.h"

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "mcn/common/macros.h"
#include "mcn/index/bplus_tree.h"
#include "mcn/net/format.h"
#include "mcn/net/slotted_writer.h"
#include "mcn/storage/slotted_page.h"

namespace mcn::shard {
namespace {

using storage::kPageSize;

constexpr uint32_t kRoutingMagic = 0x4D434E53u;  // "MCNS"

template <typename T>
void Append(std::vector<std::byte>& out, T v) {
  size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
T ReadAt(std::span<const std::byte> bytes, size_t at) {
  T v;
  MCN_CHECK(at + sizeof(T) <= bytes.size());
  std::memcpy(&v, bytes.data() + at, sizeof(T));
  return v;
}

/// Appends u32 values into consecutive raw pages of `file`, padding the
/// last page with zeros.
class RawU32Writer {
 public:
  RawU32Writer(storage::DiskManager* disk, storage::FileId file)
      : disk_(disk), file_(file), buf_(kPageSize, std::byte{0}) {}

  Status Push(uint32_t v) {
    std::memcpy(buf_.data() + at_, &v, sizeof(uint32_t));
    at_ += sizeof(uint32_t);
    if (at_ == kPageSize) return Flush();
    return Status::OK();
  }

  Status Finish() {
    if (at_ > 0) return Flush();
    return Status::OK();
  }

 private:
  Status Flush() {
    MCN_ASSIGN_OR_RETURN(storage::PageNo page, disk_->AllocatePage(file_));
    MCN_RETURN_IF_ERROR(disk_->WritePage({file_, page}, buf_.data()));
    std::memset(buf_.data(), 0, kPageSize);
    at_ = 0;
    return Status::OK();
  }

  storage::DiskManager* disk_;
  storage::FileId file_;
  std::vector<std::byte> buf_;
  size_t at_ = 0;
};

/// Reads the u32 stream back (header page included in `pages`).
class RawU32Reader {
 public:
  RawU32Reader(const storage::DiskManager& disk, storage::FileId file)
      : disk_(disk), file_(file) {}

  Result<uint32_t> Next() {
    if (page_bytes_ == nullptr || at_ == kPageSize) {
      MCN_ASSIGN_OR_RETURN(page_bytes_, disk_.PageData({file_, page_}));
      ++page_;
      at_ = 0;
    }
    uint32_t v;
    std::memcpy(&v, page_bytes_ + at_, sizeof(uint32_t));
    at_ += sizeof(uint32_t);
    return v;
  }

 private:
  const storage::DiskManager& disk_;
  storage::FileId file_;
  storage::PageNo page_ = 0;
  const std::byte* page_bytes_ = nullptr;
  size_t at_ = 0;
};

}  // namespace

std::vector<std::byte> EncodeBoundaryRecord(const BoundaryEdge& edge) {
  std::vector<std::byte> out;
  out.reserve(20 + 8 * static_cast<size_t>(edge.w.dim()));
  Append<uint32_t>(out, edge.edge.u);
  Append<uint32_t>(out, edge.edge.v);
  Append<uint32_t>(out, edge.owner_shard);
  Append<uint32_t>(out, edge.peer_shard);
  Append<uint16_t>(out, static_cast<uint16_t>(edge.w.dim()));
  Append<uint16_t>(out, 0);
  for (int i = 0; i < edge.w.dim(); ++i) Append<double>(out, edge.w[i]);
  return out;
}

Result<BoundaryEdge> DecodeBoundaryRecord(std::span<const std::byte> bytes) {
  if (bytes.size() < 20) {
    return Status::Corruption("boundary record too short");
  }
  BoundaryEdge edge;
  edge.edge.u = ReadAt<uint32_t>(bytes, 0);
  edge.edge.v = ReadAt<uint32_t>(bytes, 4);
  edge.owner_shard = ReadAt<uint32_t>(bytes, 8);
  edge.peer_shard = ReadAt<uint32_t>(bytes, 12);
  uint16_t d = ReadAt<uint16_t>(bytes, 16);
  if (d > graph::kMaxCostTypes || bytes.size() < 20 + 8u * d) {
    return Status::Corruption("boundary record cost vector malformed");
  }
  edge.w = graph::CostVector(d);
  for (int i = 0; i < d; ++i) {
    edge.w[i] = ReadAt<double>(bytes, 20 + 8 * static_cast<size_t>(i));
  }
  return edge;
}

Result<ShardedNetworkFiles> BuildShardedNetwork(
    ShardedStorage* storage, const graph::MultiCostGraph& graph,
    const graph::FacilitySet& facilities) {
  MCN_CHECK(storage != nullptr);
  if (!graph.finalized()) {
    return Status::FailedPrecondition(
        "BuildShardedNetwork: graph not finalized");
  }
  if (!facilities.finalized()) {
    return Status::FailedPrecondition(
        "BuildShardedNetwork: facility set not finalized");
  }
  const Partition& part = storage->partition();
  if (part.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "BuildShardedNetwork: partition covers " +
        std::to_string(part.num_nodes()) + " nodes, graph has " +
        std::to_string(graph.num_nodes()));
  }
  MCN_RETURN_IF_ERROR(part.Validate());
  const int k = part.num_shards;
  const int d = graph.num_costs();

  ShardedNetworkFiles files;
  files.shards.resize(k);
  files.boundary_files.resize(k);
  files.num_nodes = graph.num_nodes();
  files.num_edges = graph.num_edges();
  files.num_facilities = static_cast<uint32_t>(facilities.size());
  files.num_costs = d;
  files.facility_shard.resize(facilities.size(), kInvalidShard);

  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    net::NetworkFiles& nf = files.shards[s];
    // Same creation order as the flat builder, so K = 1 reproduces its
    // file ids and page images exactly.
    nf.facility_file = storage->disk(s)->CreateFile("facility_file");
    nf.adjacency_file = storage->disk(s)->CreateFile("adjacency_file");
    nf.num_nodes = graph.num_nodes();  // global: range checks stay global
    nf.num_costs = d;
  }
  std::vector<storage::FileId> adj_tree_files(k), fac_tree_files(k);

  // 1. Facility files: one record per facility-carrying edge, flat edge
  //    order, routed to the edge's owner shard. The FacRef positions are
  //    shard-local; adjacency entries of *any* shard embed them (a
  //    boundary edge's facility record lives with its owner).
  std::unordered_map<graph::EdgeId, net::FacRef> edge_fac_refs;
  {
    std::vector<std::unique_ptr<net::SlottedFileWriter>> writers;
    writers.reserve(k);
    for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
      writers.push_back(std::make_unique<net::SlottedFileWriter>(
          storage->disk(s), files.shards[s].facility_file));
    }
    std::vector<net::FacilityOnEdge> record;
    for (graph::EdgeId e : facilities.EdgesWithFacilities()) {
      record.clear();
      for (graph::FacilityId f : facilities.OnEdge(e)) {
        record.push_back(net::FacilityOnEdge{f, facilities[f].frac});
      }
      const graph::EdgeRecord& er = graph.edge(e);
      const graph::EdgeKey key(er.u, er.v);
      const ShardId owner = part.of_edge(key);
      std::vector<std::byte> bytes = net::EncodeFacRecord(key, record);
      net::RecordPos pos;
      MCN_RETURN_IF_ERROR(writers[owner]->Append(bytes, &pos));
      net::FacRef ref;
      ref.page = pos.page;
      ref.slot = pos.slot;
      ref.count = static_cast<uint16_t>(record.size());
      edge_fac_refs[e] = ref;
      for (graph::FacilityId f : facilities.OnEdge(e)) {
        files.facility_shard[f] = owner;
        ++files.shards[owner].num_facilities;
      }
    }
    for (auto& writer : writers) MCN_RETURN_IF_ERROR(writer->Finish());
  }

  // 2. Adjacency files: one record per node, flat node order, routed to
  //    the node's shard. Record contents (entries, FacRefs, costs) match
  //    the flat build byte for byte.
  std::vector<std::vector<index::BPlusTree::Entry>> adj_tree_entries(k);
  {
    std::vector<std::unique_ptr<net::SlottedFileWriter>> writers;
    writers.reserve(k);
    for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
      writers.push_back(std::make_unique<net::SlottedFileWriter>(
          storage->disk(s), files.shards[s].adjacency_file));
    }
    std::vector<net::AdjEntry> entries;
    for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
      entries.clear();
      for (const graph::AdjacentEdge& adj : graph.Neighbors(v)) {
        net::AdjEntry e;
        e.neighbor = adj.neighbor;
        auto it = edge_fac_refs.find(adj.edge);
        if (it != edge_fac_refs.end()) e.fac = it->second;
        e.w = graph.edge(adj.edge).w;
        entries.push_back(e);
      }
      const ShardId owner = part.of_node(v);
      std::vector<std::byte> bytes = net::EncodeAdjRecord(v, entries, d);
      net::RecordPos pos;
      MCN_RETURN_IF_ERROR(writers[owner]->Append(bytes, &pos));
      adj_tree_entries[owner].emplace_back(v, pos.Pack());
    }
    for (auto& writer : writers) MCN_RETURN_IF_ERROR(writer->Finish());
  }

  // 3. Per-shard adjacency trees (node id -> record position; keys are
  //    strictly increasing within a shard because pass 2 ran in node
  //    order).
  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    adj_tree_files[s] = storage->disk(s)->CreateFile("adjacency_tree");
    MCN_ASSIGN_OR_RETURN(
        files.shards[s].adjacency_tree,
        index::BPlusTree::BulkLoad(storage->disk(s), adj_tree_files[s],
                                   adj_tree_entries[s]));
  }

  // 4. Per-shard facility trees (facility id -> containing edge), each
  //    holding the facilities owned by the shard.
  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    fac_tree_files[s] = storage->disk(s)->CreateFile("facility_tree");
    std::vector<index::BPlusTree::Entry> entries;
    for (graph::FacilityId f = 0; f < facilities.size(); ++f) {
      if (files.facility_shard[f] != s) continue;
      const graph::EdgeRecord& er = graph.edge(facilities[f].edge);
      entries.emplace_back(f, graph::EdgeKey(er.u, er.v).Pack());
    }
    MCN_ASSIGN_OR_RETURN(
        files.shards[s].facility_tree,
        index::BPlusTree::BulkLoad(storage->disk(s), fac_tree_files[s],
                                   entries));
  }

  // 5. Boundary files: every cross-shard edge, in edge order, written to
  //    its owner shard with the peer shard and cost vector.
  {
    std::vector<std::unique_ptr<net::SlottedFileWriter>> writers;
    writers.reserve(k);
    for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
      files.boundary_files[s] = storage->disk(s)->CreateFile("boundary_file");
      writers.push_back(std::make_unique<net::SlottedFileWriter>(
          storage->disk(s), files.boundary_files[s]));
    }
    for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      const graph::EdgeRecord& er = graph.edge(e);
      const graph::EdgeKey key(er.u, er.v);
      if (!part.is_boundary(key)) continue;
      BoundaryEdge be;
      be.edge = key;
      be.owner_shard = part.of_edge(key);
      be.peer_shard = part.of_node(key.v);
      be.w = er.w;
      MCN_RETURN_IF_ERROR(
          writers[be.owner_shard]->Append(EncodeBoundaryRecord(be), nullptr));
      ++files.num_boundary_edges;
    }
    for (auto& writer : writers) MCN_RETURN_IF_ERROR(writer->Finish());
  }

  // 6. Routing table on shard 0, so the image set is self-describing.
  MCN_ASSIGN_OR_RETURN(
      files.routing_file,
      WriteRoutingTable(storage->disk(0), part, files.facility_shard));

  // Totals: per-shard num_edges (owned) and query-file pages.
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    const graph::EdgeRecord& er = graph.edge(e);
    ++files.shards[part.of_edge(graph::EdgeKey(er.u, er.v))].num_edges;
  }
  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    net::NetworkFiles& nf = files.shards[s];
    for (storage::FileId f : {nf.adjacency_file, nf.facility_file,
                              adj_tree_files[s], fac_tree_files[s]}) {
      MCN_ASSIGN_OR_RETURN(uint32_t pages, storage->disk(s)->NumPages(f));
      nf.total_pages += pages;
    }
    files.total_pages += nf.total_pages;
  }
  return files;
}

Result<std::vector<BoundaryEdge>> ReadBoundaryRecords(
    const storage::DiskManager& disk, storage::FileId boundary_file) {
  std::vector<BoundaryEdge> edges;
  MCN_ASSIGN_OR_RETURN(uint32_t pages, disk.NumPages(boundary_file));
  for (storage::PageNo p = 0; p < pages; ++p) {
    MCN_ASSIGN_OR_RETURN(const std::byte* bytes,
                         disk.PageData({boundary_file, p}));
    storage::SlottedPageReader page(bytes);
    for (uint16_t slot = 0; slot < page.count(); ++slot) {
      MCN_ASSIGN_OR_RETURN(BoundaryEdge edge,
                           DecodeBoundaryRecord(page.Record(slot)));
      edges.push_back(edge);
    }
  }
  return edges;
}

Result<storage::FileId> WriteRoutingTable(
    storage::DiskManager* shard0_disk, const Partition& partition,
    const std::vector<ShardId>& facility_shard) {
  MCN_CHECK(shard0_disk != nullptr);
  storage::FileId file = shard0_disk->CreateFile("routing_table");
  RawU32Writer writer(shard0_disk, file);
  MCN_RETURN_IF_ERROR(writer.Push(kRoutingMagic));
  MCN_RETURN_IF_ERROR(
      writer.Push(static_cast<uint32_t>(partition.num_shards)));
  MCN_RETURN_IF_ERROR(writer.Push(partition.num_nodes()));
  MCN_RETURN_IF_ERROR(
      writer.Push(static_cast<uint32_t>(facility_shard.size())));
  for (ShardId s : partition.node_shard) MCN_RETURN_IF_ERROR(writer.Push(s));
  for (ShardId s : facility_shard) MCN_RETURN_IF_ERROR(writer.Push(s));
  MCN_RETURN_IF_ERROR(writer.Finish());
  return file;
}

Result<RoutingTable> ReadRoutingTable(const storage::DiskManager& disk,
                                      storage::FileId routing_file) {
  RawU32Reader reader(disk, routing_file);
  MCN_ASSIGN_OR_RETURN(uint32_t magic, reader.Next());
  if (magic != kRoutingMagic) {
    return Status::Corruption("routing table: bad magic");
  }
  MCN_ASSIGN_OR_RETURN(uint32_t num_shards, reader.Next());
  MCN_ASSIGN_OR_RETURN(uint32_t num_nodes, reader.Next());
  MCN_ASSIGN_OR_RETURN(uint32_t num_facilities, reader.Next());
  if (num_shards == 0 || num_shards > 1u << 16) {
    return Status::Corruption("routing table: implausible shard count");
  }
  // Bound the entity counts before reserving, so a corrupt header page
  // surfaces as Corruption instead of a multi-gigabyte allocation.
  if (num_nodes > 1u << 28 || num_facilities > 1u << 28) {
    return Status::Corruption("routing table: implausible entity counts");
  }
  RoutingTable table;
  table.partition.num_shards = static_cast<int>(num_shards);
  table.partition.node_shard.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    MCN_ASSIGN_OR_RETURN(uint32_t s, reader.Next());
    table.partition.node_shard.push_back(s);
  }
  table.facility_shard.reserve(num_facilities);
  for (uint32_t i = 0; i < num_facilities; ++i) {
    MCN_ASSIGN_OR_RETURN(uint32_t s, reader.Next());
    table.facility_shard.push_back(s);
  }
  MCN_RETURN_IF_ERROR(table.partition.Validate());
  return table;
}

}  // namespace mcn::shard
