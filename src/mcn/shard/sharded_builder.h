// Sharded build path (DESIGN.md §8): materializes a MultiCostGraph +
// FacilitySet as K per-shard file sets on a ShardedStorage, mirroring the
// flat net::BuildNetwork scheme shard-wise:
//
//   per shard: facility_file, adjacency_file, adjacency_tree,
//              facility_tree  (exactly the Fig. 2 quartet, holding only
//              the shard's owned nodes/edges/facilities), plus a
//   boundary_file  — one explicit record per owned cross-shard edge
//              (endpoints, peer shard, cost vector), the hand-off data a
//              multi-node deployment would exchange; and on shard 0 a
//   routing_table  — the NodeId -> ShardId and FacilityId -> ShardId
//              tables as raw pages, so a sharded database image is
//              self-describing across processes.
//
// Record *contents* are byte-identical to the flat build (only page
// placement and FacRef positions differ), which is what makes result
// hashes and logical/physical record-fetch counts invariant in K — the
// determinism contract the differential sweep enforces. With K = 1 the
// four query files are page-for-page identical to net::BuildNetwork.
#ifndef MCN_SHARD_SHARDED_BUILDER_H_
#define MCN_SHARD_SHARDED_BUILDER_H_

#include <cstdint>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/graph/facility.h"
#include "mcn/graph/multi_cost_graph.h"
#include "mcn/net/network_builder.h"
#include "mcn/shard/partition.h"
#include "mcn/shard/sharded_storage.h"

namespace mcn::shard {

/// One cross-shard edge as stored in the owner shard's boundary file.
struct BoundaryEdge {
  graph::EdgeKey edge;
  ShardId owner_shard = kInvalidShard;  ///< == of_node(edge.u)
  ShardId peer_shard = kInvalidShard;   ///< == of_node(edge.v)
  graph::CostVector w;

  bool operator==(const BoundaryEdge& o) const {
    if (!(edge == o.edge) || owner_shard != o.owner_shard ||
        peer_shard != o.peer_shard || w.dim() != o.w.dim()) {
      return false;
    }
    for (int i = 0; i < w.dim(); ++i) {
      if (w[i] != o.w[i]) return false;
    }
    return true;
  }
};

/// Boundary record wire format (slotted):
///   u32 u, u32 v, u32 owner_shard, u32 peer_shard,
///   u16 num_costs, u16 reserved, d x f64 cost
std::vector<std::byte> EncodeBoundaryRecord(const BoundaryEdge& edge);
Result<BoundaryEdge> DecodeBoundaryRecord(std::span<const std::byte> bytes);

/// Handle to a built sharded network: the per-shard Fig. 2 quartets plus
/// the shard metadata queries and routing need. Cheap to copy.
struct ShardedNetworkFiles {
  std::vector<net::NetworkFiles> shards;        ///< per-shard quartet
  std::vector<storage::FileId> boundary_files;  ///< per shard
  storage::FileId routing_file = 0;             ///< on shard 0

  /// FacilityId -> owning shard (the shard of the facility's edge),
  /// materialized at build time for facility-tree routing.
  std::vector<ShardId> facility_shard;

  /// Global metadata (whole-network totals).
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
  uint32_t num_facilities = 0;
  int num_costs = 0;
  /// Query-file pages (the four Fig. 2 files) summed over shards; the LRU
  /// buffer is sized from this, exactly like the flat total_pages.
  uint64_t total_pages = 0;
  uint32_t num_boundary_edges = 0;

  /// Optional landmark lower-bound index (DESIGN.md §12). One *global*
  /// index whose file lives on shard 0's disk (landmark selection is
  /// boundary-biased per shard, but rows cover every node). Excluded from
  /// total_pages like the flat field.
  net::LandmarkIndexFiles landmark;

  int num_shards() const { return static_cast<int>(shards.size()); }

  /// Metadata-only NetworkFiles carrying the global totals, for code that
  /// reads counts off a reader handle (file ids/trees are not meaningful).
  net::NetworkFiles Global() const {
    net::NetworkFiles g;
    g.num_nodes = num_nodes;
    g.num_edges = num_edges;
    g.num_facilities = num_facilities;
    g.num_costs = num_costs;
    g.total_pages = total_pages;
    return g;
  }
};

/// Writes the sharded storage scheme for `graph` + `facilities` onto
/// `storage` (whose partition decides ownership). Every shard's disk must
/// be empty. Same preconditions as net::BuildNetwork.
Result<ShardedNetworkFiles> BuildShardedNetwork(
    ShardedStorage* storage, const graph::MultiCostGraph& graph,
    const graph::FacilitySet& facilities);

/// Decodes every record of a boundary file (raw page access: tooling and
/// tests, not charged to any pool).
Result<std::vector<BoundaryEdge>> ReadBoundaryRecords(
    const storage::DiskManager& disk, storage::FileId boundary_file);

/// Routing-table persistence on shard 0's disk (raw pages):
///   page 0: u32 magic, u32 num_shards, u32 num_nodes, u32 num_facilities
///   then num_nodes + num_facilities u32 shard ids, packed.
/// Lets a sharded database image round-trip through storage::SaveDiskImage
/// without out-of-band metadata.
Result<storage::FileId> WriteRoutingTable(
    storage::DiskManager* shard0_disk, const Partition& partition,
    const std::vector<ShardId>& facility_shard);
struct RoutingTable {
  Partition partition;
  std::vector<ShardId> facility_shard;
};
Result<RoutingTable> ReadRoutingTable(const storage::DiskManager& disk,
                                      storage::FileId routing_file);

}  // namespace mcn::shard

#endif  // MCN_SHARD_SHARDED_BUILDER_H_
