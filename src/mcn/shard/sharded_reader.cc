#include "mcn/shard/sharded_reader.h"

#include <string>

#include "mcn/common/macros.h"

namespace mcn::shard {

size_t FramesPerShard(size_t total_frames, int num_shards) {
  MCN_CHECK(num_shards > 0);
  if (total_frames == 0) return 0;
  const size_t per_shard = total_frames / static_cast<size_t>(num_shards);
  return per_shard > 0 ? per_shard : 1;
}

std::vector<size_t> SplitFramesAcrossShards(size_t total_frames,
                                            int num_shards) {
  MCN_CHECK(num_shards > 0);
  const size_t k = static_cast<size_t>(num_shards);
  std::vector<size_t> frames(k, total_frames / k);
  const size_t remainder = total_frames % k;
  for (size_t s = 0; s < remainder; ++s) ++frames[s];
  if (total_frames > 0) {
    // One-frame floor: a zero-capacity pool cannot serve any fetch.
    for (size_t& f : frames) {
      if (f == 0) f = 1;
    }
  }
  return frames;
}

ShardedNetworkReader::ShardedNetworkReader(ShardedStorage* storage,
                                           const ShardedNetworkFiles& files,
                                           size_t frames_per_shard)
    : ShardedNetworkReader(
          storage, files,
          std::vector<size_t>(static_cast<size_t>(files.num_shards()),
                              frames_per_shard)) {}

ShardedNetworkReader::ShardedNetworkReader(ShardedStorage* storage,
                                           const ShardedNetworkFiles& files,
                                           const std::vector<size_t>& frames)
    : net::NetworkReader(files.Global()),
      storage_(storage),
      partition_(&storage->partition()),
      facility_shard_(&files.facility_shard),
      fetches_to_shard_(files.num_shards()) {
  MCN_CHECK(storage != nullptr);
  MCN_CHECK(files.num_shards() == storage->num_shards());
  MCN_CHECK(frames.size() == static_cast<size_t>(files.num_shards()));
  const int k = files.num_shards();
  pools_.reserve(k);
  readers_.reserve(k);
  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    pools_.push_back(std::make_unique<storage::BufferPool>(
        storage->disk(s), frames[s]));
    readers_.push_back(std::make_unique<net::NetworkReader>(
        files.shards[s], pools_.back().get()));
    // This routing layer records the per-fetch trace events itself (it
    // knows the local/remote flag); suppress the inner flat readers so a
    // routed fetch yields exactly one kProbeFetch event.
    readers_.back()->set_trace_fetches(false);
  }
}

/// Records one kProbeFetch trace event for a routed record fetch, with the
/// miss flag from shard `s`'s pool delta and the remote flag from the
/// home-shard affinity. No-op unless tracing is on and a query context is
/// installed on this thread.
class ShardedNetworkReader::FetchTrace {
 public:
  FetchTrace(const ShardedNetworkReader* reader, ShardId s)
      : context_(obs::CurrentTraceContext()) {
    if (!reader->trace_fetches() || !context_.active() ||
        !obs::Tracer::Global().enabled()) {
      return;
    }
    reader_ = reader;
    shard_ = s;
    misses_before_ = reader->pools_[s]->stats().misses;
  }

  void Record(uint64_t key) {
    if (reader_ == nullptr) return;
    uint64_t flags = 0;
    if (reader_->pools_[shard_]->stats().misses > misses_before_) {
      flags |= obs::kFetchMiss;
    }
    if (reader_->home_shard_ != kInvalidShard &&
        shard_ != reader_->home_shard_) {
      flags |= obs::kFetchRemote;
    }
    obs::RecordInstant(context_, obs::EventType::kProbeFetch, key, flags);
  }

 private:
  obs::TraceContext context_;
  const ShardedNetworkReader* reader_ = nullptr;
  ShardId shard_ = kInvalidShard;
  uint64_t misses_before_ = 0;
};

ShardId ShardedNetworkReader::Route(ShardId target) const {
  MCN_DCHECK(target < readers_.size());
  fetches_to_shard_[target].fetch_add(1, std::memory_order_relaxed);
  if (home_shard_ != kInvalidShard && target != home_shard_) {
    remote_fetches_.fetch_add(1, std::memory_order_relaxed);
  } else {
    local_fetches_.fetch_add(1, std::memory_order_relaxed);
  }
  return target;
}

Status ShardedNetworkReader::GetAdjacency(
    graph::NodeId node, std::vector<net::AdjEntry>* out) const {
  if (node >= num_nodes()) {
    return Status::InvalidArgument("GetAdjacency: node out of range");
  }
  const ShardId s = Route(partition_->of_node(node));
  FetchTrace fetch_trace(this, s);
  const Status status = readers_[s]->GetAdjacency(node, out);
  if (status.ok()) fetch_trace.Record(node);
  return status;
}

Status ShardedNetworkReader::GetFacilities(
    graph::EdgeKey edge, const net::FacRef& ref,
    std::vector<net::FacilityOnEdge>* out) const {
  if (ref.empty()) {
    out->clear();
    return Status::OK();  // no record to route (flat reader contract)
  }
  if (edge.u >= num_nodes()) {
    return Status::InvalidArgument("GetFacilities: edge out of range");
  }
  const ShardId s = Route(partition_->of_edge(edge));
  FetchTrace fetch_trace(this, s);
  const Status status = readers_[s]->GetFacilities(edge, ref, out);
  if (status.ok()) fetch_trace.Record(edge.u);
  return status;
}

Result<graph::EdgeKey> ShardedNetworkReader::LocateFacilityEdge(
    graph::FacilityId fac) const {
  if (fac >= facility_shard_->size()) {
    return Status::NotFound("facility " + std::to_string(fac) +
                            " not in routing table");
  }
  const ShardId s = Route((*facility_shard_)[fac]);
  return readers_[s]->LocateFacilityEdge(fac);
}

storage::BufferPool::Stats ShardedNetworkReader::PoolStats() const {
  storage::BufferPool::Stats total{};
  for (const auto& pool : pools_) {
    const storage::BufferPool::Stats s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

void ShardedNetworkReader::ResetIoState() {
  for (const auto& pool : pools_) {
    pool->Clear();
    pool->ResetStats();
  }
}

ShardedNetworkReader::ShardIoStats ShardedNetworkReader::shard_io_stats()
    const {
  ShardIoStats stats;
  stats.local_fetches = local_fetches_.load(std::memory_order_relaxed);
  stats.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
  stats.fetches_to_shard.reserve(fetches_to_shard_.size());
  for (const auto& counter : fetches_to_shard_) {
    stats.fetches_to_shard.push_back(
        counter.load(std::memory_order_relaxed));
  }
  return stats;
}

void ShardedNetworkReader::ResetShardIoStats() {
  local_fetches_.store(0, std::memory_order_relaxed);
  remote_fetches_.store(0, std::memory_order_relaxed);
  for (auto& counter : fetches_to_shard_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mcn::shard
