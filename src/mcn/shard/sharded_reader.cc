#include "mcn/shard/sharded_reader.h"

#include <string>

#include "mcn/common/macros.h"

namespace mcn::shard {

size_t FramesPerShard(size_t total_frames, int num_shards) {
  MCN_CHECK(num_shards > 0);
  if (total_frames == 0) return 0;
  const size_t per_shard = total_frames / static_cast<size_t>(num_shards);
  return per_shard > 0 ? per_shard : 1;
}

ShardedNetworkReader::ShardedNetworkReader(ShardedStorage* storage,
                                           const ShardedNetworkFiles& files,
                                           size_t frames_per_shard)
    : net::NetworkReader(files.Global()),
      storage_(storage),
      partition_(&storage->partition()),
      facility_shard_(&files.facility_shard),
      fetches_to_shard_(files.num_shards()) {
  MCN_CHECK(storage != nullptr);
  MCN_CHECK(files.num_shards() == storage->num_shards());
  const int k = files.num_shards();
  pools_.reserve(k);
  readers_.reserve(k);
  for (ShardId s = 0; s < static_cast<ShardId>(k); ++s) {
    pools_.push_back(std::make_unique<storage::BufferPool>(
        storage->disk(s), frames_per_shard));
    readers_.push_back(std::make_unique<net::NetworkReader>(
        files.shards[s], pools_.back().get()));
  }
}

ShardId ShardedNetworkReader::Route(ShardId target) const {
  MCN_DCHECK(target < readers_.size());
  fetches_to_shard_[target].fetch_add(1, std::memory_order_relaxed);
  if (home_shard_ != kInvalidShard && target != home_shard_) {
    remote_fetches_.fetch_add(1, std::memory_order_relaxed);
  } else {
    local_fetches_.fetch_add(1, std::memory_order_relaxed);
  }
  return target;
}

Status ShardedNetworkReader::GetAdjacency(
    graph::NodeId node, std::vector<net::AdjEntry>* out) const {
  if (node >= num_nodes()) {
    return Status::InvalidArgument("GetAdjacency: node out of range");
  }
  const ShardId s = Route(partition_->of_node(node));
  return readers_[s]->GetAdjacency(node, out);
}

Status ShardedNetworkReader::GetFacilities(
    graph::EdgeKey edge, const net::FacRef& ref,
    std::vector<net::FacilityOnEdge>* out) const {
  if (ref.empty()) {
    out->clear();
    return Status::OK();  // no record to route (flat reader contract)
  }
  if (edge.u >= num_nodes()) {
    return Status::InvalidArgument("GetFacilities: edge out of range");
  }
  const ShardId s = Route(partition_->of_edge(edge));
  return readers_[s]->GetFacilities(edge, ref, out);
}

Result<graph::EdgeKey> ShardedNetworkReader::LocateFacilityEdge(
    graph::FacilityId fac) const {
  if (fac >= facility_shard_->size()) {
    return Status::NotFound("facility " + std::to_string(fac) +
                            " not in routing table");
  }
  const ShardId s = Route((*facility_shard_)[fac]);
  return readers_[s]->LocateFacilityEdge(fac);
}

storage::BufferPool::Stats ShardedNetworkReader::PoolStats() const {
  storage::BufferPool::Stats total{};
  for (const auto& pool : pools_) {
    const storage::BufferPool::Stats s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

void ShardedNetworkReader::ResetIoState() {
  for (const auto& pool : pools_) {
    pool->Clear();
    pool->ResetStats();
  }
}

ShardedNetworkReader::ShardIoStats ShardedNetworkReader::shard_io_stats()
    const {
  ShardIoStats stats;
  stats.local_fetches = local_fetches_.load(std::memory_order_relaxed);
  stats.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
  stats.fetches_to_shard.reserve(fetches_to_shard_.size());
  for (const auto& counter : fetches_to_shard_) {
    stats.fetches_to_shard.push_back(
        counter.load(std::memory_order_relaxed));
  }
  return stats;
}

void ShardedNetworkReader::ResetShardIoStats() {
  local_fetches_.store(0, std::memory_order_relaxed);
  remote_fetches_.store(0, std::memory_order_relaxed);
  for (auto& counter : fetches_to_shard_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mcn::shard
