// ShardedNetworkReader: the routing implementation of the NetworkReader
// seam (DESIGN.md §8). One instance is a *per-worker* reader set: it owns
// one BufferPool per shard (each over that shard's DiskManager) plus a
// flat per-shard NetworkReader, and dispatches every record request
// through the routing table:
//
//   GetAdjacency(v)         -> shard of v          (NodeId table)
//   GetFacilities(edge,...) -> shard of edge.u     (edge ownership rule)
//   LocateFacilityEdge(f)   -> shard of f's edge   (FacilityId table)
//
// Affinity accounting: the reader carries a *home shard* (the shard the
// owning worker is bound to, or the shard of the query's location). Every
// routed fetch increments either the local or the remote counter — the
// §2 I/O accounting's measure of how often an expansion escapes its tile.
// Counters are relaxed atomics so a service Snapshot can read them while
// the owning worker keeps executing; everything else follows the base
// contract (one reader per thread).
//
// Like the flat reader, record fetches are charged to the (per-shard)
// pools' hit/miss statistics; PoolStats()/ResetIoState() aggregate over
// the shard set so callers stay oblivious to K.
#ifndef MCN_SHARD_SHARDED_READER_H_
#define MCN_SHARD_SHARDED_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mcn/net/network_reader.h"
#include "mcn/shard/sharded_builder.h"
#include "mcn/shard/sharded_storage.h"
#include "mcn/storage/buffer_pool.h"

namespace mcn::shard {

class ShardedNetworkReader : public net::NetworkReader {
 public:
  /// Routed-fetch counters (record granularity, like FetchProvider::Stats).
  struct ShardIoStats {
    uint64_t local_fetches = 0;   ///< routed to the home shard
    uint64_t remote_fetches = 0;  ///< routed across a shard boundary
    std::vector<uint64_t> fetches_to_shard;  ///< per target shard

    uint64_t total() const { return local_fetches + remote_fetches; }
    double RemoteRatio() const {
      return shard::RemoteRatio(local_fetches, remote_fetches);
    }
  };

  /// `storage`/`files` describe a built sharded network; both must outlive
  /// the reader. `frames_per_shard` sizes each shard's LRU pool — callers
  /// splitting a flat budget B across K shards pass
  /// SplitFramesAcrossShards(B, K) to the vector overload below so no
  /// remainder frames are dropped.
  ShardedNetworkReader(ShardedStorage* storage,
                       const ShardedNetworkFiles& files,
                       size_t frames_per_shard);
  /// Per-shard pool sizes (`frames[s]` frames for shard s); `frames` must
  /// have one entry per shard.
  ShardedNetworkReader(ShardedStorage* storage,
                       const ShardedNetworkFiles& files,
                       const std::vector<size_t>& frames);

  int num_shards() const { return static_cast<int>(readers_.size()); }

  /// Binds the affinity used by the local/remote split. kInvalidShard (the
  /// default) counts every fetch as remote-neutral local.
  void set_home_shard(ShardId s) { home_shard_ = s; }
  ShardId home_shard() const { return home_shard_; }

  Status GetAdjacency(graph::NodeId node,
                      std::vector<net::AdjEntry>* out) const override;
  Status GetFacilities(graph::EdgeKey edge, const net::FacRef& ref,
                       std::vector<net::FacilityOnEdge>* out) const override;
  Result<graph::EdgeKey> LocateFacilityEdge(
      graph::FacilityId fac) const override;

  /// Aggregated over the per-shard pools.
  storage::BufferPool::Stats PoolStats() const override;
  void ResetIoState() override;

  ShardIoStats shard_io_stats() const;
  void ResetShardIoStats();

  const storage::BufferPool& shard_pool(ShardId s) const {
    return *pools_[s];
  }

 private:
  class FetchTrace;  ///< per-routed-fetch kProbeFetch recorder (see .cc)

  ShardId Route(ShardId target) const;  ///< counts, returns target

  ShardedStorage* storage_;
  const Partition* partition_;
  /// Borrowed from the ShardedNetworkFiles (which must outlive the
  /// reader, per the constructor contract) — one routing table, not one
  /// copy per reader.
  const std::vector<ShardId>* facility_shard_;
  std::vector<std::unique_ptr<storage::BufferPool>> pools_;
  std::vector<std::unique_ptr<net::NetworkReader>> readers_;
  ShardId home_shard_ = kInvalidShard;

  mutable std::atomic<uint64_t> local_fetches_{0};
  mutable std::atomic<uint64_t> remote_fetches_{0};
  mutable std::vector<std::atomic<uint64_t>> fetches_to_shard_;
};

/// Even split of a flat frame budget across K shard pools (at least one
/// frame each when the budget is non-zero, so tiny buffers stay usable).
/// Deprecated in favor of SplitFramesAcrossShards: the floored division
/// silently drops up to K-1 remainder frames, shrinking the effective
/// buffer of non-divisible budgets.
size_t FramesPerShard(size_t total_frames, int num_shards);

/// Exact split of a flat frame budget across K shard pools: shard s gets
/// total/K frames plus one of the total%K remainder frames (s < total%K),
/// so the sum equals `total_frames` whenever total_frames >= K. Budgets
/// smaller than K keep the one-frame floor (every pool must be usable), the
/// only case where the sum exceeds the budget.
std::vector<size_t> SplitFramesAcrossShards(size_t total_frames,
                                            int num_shards);

}  // namespace mcn::shard

#endif  // MCN_SHARD_SHARDED_READER_H_
