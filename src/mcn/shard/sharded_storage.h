// ShardedStorage: the per-shard storage root (DESIGN.md §8). One instance
// owns K DiskManagers — one simulated disk per network shard — plus the
// Partition routing table that maps every NodeId to its owning shard. The
// sharded build path (sharded_builder.h) lays each tile's pages into its
// shard's disk; readers route each fetch through the table.
//
// K = 1 degenerates to today's single-manager layout: one disk, identical
// page images to the flat net::BuildNetwork (asserted by the shard tests).
//
// Concurrency: same single-writer/multi-reader contract as DiskManager,
// applied shard-wise. Begin/EndConcurrentReads freeze every shard at once.
#ifndef MCN_SHARD_SHARDED_STORAGE_H_
#define MCN_SHARD_SHARDED_STORAGE_H_

#include <utility>
#include <vector>

#include "mcn/shard/partition.h"
#include "mcn/storage/disk_manager.h"

namespace mcn::shard {

class ShardedStorage {
 public:
  explicit ShardedStorage(Partition partition)
      : partition_(std::move(partition)),
        disks_(static_cast<size_t>(partition_.num_shards)) {}

  ShardedStorage(const ShardedStorage&) = delete;
  ShardedStorage& operator=(const ShardedStorage&) = delete;

  int num_shards() const { return partition_.num_shards; }
  const Partition& partition() const { return partition_; }

  storage::DiskManager* disk(ShardId s) { return &disks_[s]; }
  const storage::DiskManager& disk(ShardId s) const { return disks_[s]; }

  /// Per-shard counter snapshots, in shard order.
  std::vector<storage::DiskManager::Stats> ShardStats() const {
    std::vector<storage::DiskManager::Stats> stats;
    stats.reserve(disks_.size());
    for (const auto& d : disks_) stats.push_back(d.stats());
    return stats;
  }

  /// All shards summed (per-file rows merged by name), the figure-parity
  /// aggregate of §2.
  storage::DiskManager::Stats MergedStats() const {
    const auto parts = ShardStats();
    return storage::DiskManager::MergeStats(parts);
  }

  void ResetStats() {
    for (auto& d : disks_) d.ResetStats();
  }

  /// Freezes/unfreezes every shard read-only (see DiskManager).
  void BeginConcurrentReads() {
    for (auto& d : disks_) d.BeginConcurrentReads();
  }
  void EndConcurrentReads() {
    for (auto& d : disks_) d.EndConcurrentReads();
  }

  size_t TotalPages() const {
    size_t total = 0;
    for (const auto& d : disks_) total += d.TotalPages();
    return total;
  }

 private:
  Partition partition_;
  std::vector<storage::DiskManager> disks_;
};

}  // namespace mcn::shard

#endif  // MCN_SHARD_SHARDED_STORAGE_H_
