#include <algorithm>

#include "mcn/skyline/skyline.h"

namespace mcn::skyline {

std::vector<uint32_t> BlockNestedLoopSkyline(std::span<const Tuple> data,
                                             SkylineStats* stats) {
  SkylineStats local;
  // Window of indices into `data`, pairwise incomparable.
  std::vector<size_t> window;
  for (size_t i = 0; i < data.size(); ++i) {
    const graph::CostVector& v = data[i].values;
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const graph::CostVector& wv = data[window[w]].values;
      ++local.dominance_checks;
      if (wv.Dominates(v)) {
        dominated = true;
        // Everything from `w` on survives untouched.
        for (size_t r = w; r < window.size(); ++r) {
          window[keep++] = window[r];
        }
        break;
      }
      ++local.dominance_checks;
      if (!v.Dominates(wv)) window[keep++] = window[w];
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  std::vector<uint32_t> result;
  result.reserve(window.size());
  std::sort(window.begin(), window.end());
  for (size_t i : window) result.push_back(data[i].id);
  if (stats != nullptr) *stats = local;
  return result;
}

std::vector<uint32_t> BruteForceSkyline(std::span<const Tuple> data,
                                        SkylineStats* stats) {
  SkylineStats local;
  std::vector<uint32_t> result;
  for (size_t i = 0; i < data.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < data.size() && !dominated; ++j) {
      if (i == j) continue;
      ++local.dominance_checks;
      dominated = data[j].values.Dominates(data[i].values);
    }
    if (!dominated) result.push_back(data[i].id);
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace mcn::skyline
