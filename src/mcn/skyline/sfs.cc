#include <algorithm>
#include <numeric>

#include "mcn/skyline/skyline.h"

namespace mcn::skyline {

std::vector<uint32_t> SortFilterSkyline(std::span<const Tuple> data,
                                        SkylineStats* stats) {
  SkylineStats local;
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  // Monotone presort: if a dominates b (strictly), sum(a) < sum(b), so a
  // precedes b and one pass suffices.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return data[a].values.Sum() < data[b].values.Sum();
  });
  std::vector<size_t> window;
  for (size_t idx : order) {
    const graph::CostVector& v = data[idx].values;
    bool dominated = false;
    for (size_t w : window) {
      ++local.dominance_checks;
      if (data[w].values.Dominates(v)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(idx);
  }
  std::vector<uint32_t> result;
  result.reserve(window.size());
  for (size_t i : window) result.push_back(data[i].id);
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace mcn::skyline
