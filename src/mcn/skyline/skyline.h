// Conventional skyline operators over materialized tuples (paper §II-A).
// Used by the naive MCN baseline (which first computes every facility's
// complete cost vector) and available as standalone operators.
#ifndef MCN_SKYLINE_SKYLINE_H_
#define MCN_SKYLINE_SKYLINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mcn/graph/cost_vector.h"

namespace mcn::skyline {

/// A tuple with an id and a d-dimensional value vector (smaller is better).
struct Tuple {
  uint32_t id = 0;
  graph::CostVector values;
};

struct SkylineStats {
  uint64_t dominance_checks = 0;
};

/// Block-nested-loops skyline (Börzsönyi et al.): maintains a window of
/// incomparable tuples. This in-memory variant keeps the whole window
/// resident (no overflow file). Output in input order of the survivors.
std::vector<uint32_t> BlockNestedLoopSkyline(std::span<const Tuple> data,
                                             SkylineStats* stats = nullptr);

/// Sort-filter-skyline (Chomicki et al.): presort by a monotone score
/// (component sum) so that no tuple can dominate an earlier one; a single
/// filtering pass then suffices. Output in the monotone order.
std::vector<uint32_t> SortFilterSkyline(std::span<const Tuple> data,
                                        SkylineStats* stats = nullptr);

/// Reference O(n^2) implementation (tests and small inputs).
std::vector<uint32_t> BruteForceSkyline(std::span<const Tuple> data,
                                        SkylineStats* stats = nullptr);

}  // namespace mcn::skyline

#endif  // MCN_SKYLINE_SKYLINE_H_
