#include "mcn/storage/buffer_pool.h"

#include "mcn/common/macros.h"

namespace mcn::storage {

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
    o.frame_ = 0;
  }
  return *this;
}

const std::byte* BufferPool::PageGuard::data() const {
  MCN_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].data;
}

PageId BufferPool::PageGuard::id() const {
  MCN_DCHECK(pool_ != nullptr);
  return pool_->frames_[frame_].id;
}

void BufferPool::PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = 0;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_frames)
    : disk_(disk), capacity_(capacity_frames) {
  MCN_CHECK(disk != nullptr);
  frames_.resize(capacity_frames);
  free_.reserve(capacity_frames);
  for (size_t i = 0; i < capacity_frames; ++i) {
    free_.push_back(static_cast<uint32_t>(i));
  }
}

BufferPool::~BufferPool() {
  // All guards must be released before the pool dies.
  for (const Frame& frame : frames_) {
    MCN_CHECK(frame.pins == 0);
  }
}

uint32_t BufferPool::AllocFrame() {
  if (!free_.empty()) {
    uint32_t fi = free_.back();
    free_.pop_back();
    return fi;
  }
  uint32_t fi = static_cast<uint32_t>(frames_.size());
  frames_.emplace_back();
  return fi;
}

void BufferPool::LruPushBack(uint32_t fi) {
  Frame& frame = frames_[fi];
  MCN_DCHECK(!frame.in_lru);
  frame.lru_prev = lru_tail_;
  frame.lru_next = kNullFrame;
  if (lru_tail_ != kNullFrame) {
    frames_[lru_tail_].lru_next = fi;
  } else {
    lru_head_ = fi;
  }
  lru_tail_ = fi;
  frame.in_lru = true;
}

void BufferPool::LruRemove(uint32_t fi) {
  Frame& frame = frames_[fi];
  MCN_DCHECK(frame.in_lru);
  if (frame.lru_prev != kNullFrame) {
    frames_[frame.lru_prev].lru_next = frame.lru_next;
  } else {
    lru_head_ = frame.lru_next;
  }
  if (frame.lru_next != kNullFrame) {
    frames_[frame.lru_next].lru_prev = frame.lru_prev;
  } else {
    lru_tail_ = frame.lru_prev;
  }
  frame.in_lru = false;
}

void BufferPool::EvictLruFront() {
  uint32_t victim = lru_head_;
  MCN_DCHECK(victim != kNullFrame);
  LruRemove(victim);
  table_.Erase(frames_[victim].id.Pack());
  free_.push_back(victim);
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId id) {
  uint32_t fi = table_.Find(id.Pack());
  if (fi != FlatU64Map::kNoValue) {
    Frame& frame = frames_[fi];
    if (frame.in_lru) LruRemove(fi);
    ++frame.pins;
    ++stats_.hits;
    return PageGuard(this, fi);
  }

  fi = AllocFrame();
  Frame& frame = frames_[fi];
  frame.id = id;
  frame.pins = 1;
  Result<const std::byte*> read = disk_->ReadPageRef(id);
  if (!read.ok()) {
    frame.pins = 0;
    free_.push_back(fi);
    return read.status();
  }
  frame.data = read.value();
  ++stats_.misses;
  if (record_misses_) missed_.push_back(id);
  table_.Insert(id.Pack(), fi);
  TrimToCapacity();
  return PageGuard(this, fi);
}

void BufferPool::Unpin(uint32_t fi) {
  Frame& frame = frames_[fi];
  MCN_DCHECK(frame.pins > 0);
  --frame.pins;
  if (frame.pins == 0) {
    LruPushBack(fi);
    TrimToCapacity();
  }
}

void BufferPool::TrimToCapacity() {
  while (table_.size() > capacity_ && lru_head_ != kNullFrame) {
    ++stats_.evictions;
    EvictLruFront();
  }
}

void BufferPool::SetCapacity(size_t capacity_frames) {
  capacity_ = capacity_frames;
  TrimToCapacity();
}

void BufferPool::Clear() {
  while (lru_head_ != kNullFrame) {
    EvictLruFront();
  }
}

}  // namespace mcn::storage
