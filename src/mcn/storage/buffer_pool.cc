#include "mcn/storage/buffer_pool.h"

#include "mcn/common/macros.h"

namespace mcn::storage {

/// A resident page.
struct Frame {
  PageId id;
  uint32_t pins = 0;
  std::list<Frame*>::iterator lru_it;
  bool in_lru = false;
  std::unique_ptr<std::byte[]> data;
};

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
    o.frame_ = nullptr;
  }
  return *this;
}

const std::byte* BufferPool::PageGuard::data() const {
  MCN_DCHECK(frame_ != nullptr);
  return frame_->data.get();
}

PageId BufferPool::PageGuard::id() const {
  MCN_DCHECK(frame_ != nullptr);
  return frame_->id;
}

void BufferPool::PageGuard::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_);
    frame_ = nullptr;
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_frames)
    : disk_(disk), capacity_(capacity_frames) {
  MCN_CHECK(disk != nullptr);
}

BufferPool::~BufferPool() {
  // All guards must be released before the pool dies.
  for (auto& [id, frame] : table_) {
    MCN_CHECK(frame->pins == 0);
  }
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame* frame = it->second.get();
    if (frame->in_lru) {
      lru_.erase(frame->lru_it);
      frame->in_lru = false;
    }
    ++frame->pins;
    ++stats_.hits;
    return PageGuard(this, frame);
  }

  auto frame_owner = std::make_unique<Frame>();
  Frame* frame = frame_owner.get();
  frame->id = id;
  frame->pins = 1;
  frame->data = std::make_unique<std::byte[]>(kPageSize);
  MCN_RETURN_IF_ERROR(disk_->ReadPage(id, frame->data.get()));
  ++stats_.misses;
  table_.emplace(id, std::move(frame_owner));
  TrimToCapacity();
  return PageGuard(this, frame);
}

void BufferPool::Unpin(Frame* frame) {
  MCN_DCHECK(frame->pins > 0);
  --frame->pins;
  if (frame->pins == 0) {
    lru_.push_back(frame);
    frame->lru_it = std::prev(lru_.end());
    frame->in_lru = true;
    TrimToCapacity();
  }
}

void BufferPool::TrimToCapacity() {
  while (table_.size() > capacity_ && !lru_.empty()) {
    Frame* victim = lru_.front();
    lru_.pop_front();
    victim->in_lru = false;
    ++stats_.evictions;
    table_.erase(victim->id);
  }
}

void BufferPool::SetCapacity(size_t capacity_frames) {
  capacity_ = capacity_frames;
  TrimToCapacity();
}

void BufferPool::Clear() {
  while (!lru_.empty()) {
    Frame* victim = lru_.front();
    lru_.pop_front();
    victim->in_lru = false;
    table_.erase(victim->id);
  }
}

}  // namespace mcn::storage
