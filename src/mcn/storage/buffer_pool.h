// BufferPool: an LRU page cache with pinning, sitting between query
// operators and the DiskManager. This is the paper's "LRU buffer" whose size
// (0%..2% of the MCN pages) is an experiment parameter (Figs. 9(b)/11(b)).
#ifndef MCN_STORAGE_BUFFER_POOL_H_
#define MCN_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "mcn/common/result.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/page.h"

namespace mcn::storage {

/// Read-only LRU buffer pool. Capacity counts resident frames; pinned frames
/// can never be evicted and may transiently push residency above capacity
/// (they are trimmed as soon as they are unpinned). Capacity 0 reproduces the
/// paper's "no buffer" configuration: every fetch is a disk read.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    uint64_t accesses() const { return hits + misses; }
  };

  /// RAII pin on a fetched page; the page data stays valid while the guard
  /// lives. Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
    PageGuard& operator=(PageGuard&& o) noexcept;
    ~PageGuard() { Release(); }

    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;

    const std::byte* data() const;
    PageId id() const;
    bool valid() const { return frame_ != nullptr; }

    /// Drops the pin early.
    void Release();

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, struct Frame* frame)
        : pool_(pool), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    struct Frame* frame_ = nullptr;
  };

  /// `disk` must outlive the pool.
  BufferPool(DiskManager* disk, size_t capacity_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard on the page, reading it from disk on a miss.
  Result<PageGuard> Fetch(PageId id);

  /// Changes the capacity; evicts unpinned LRU frames to fit.
  void SetCapacity(size_t capacity_frames);
  size_t capacity() const { return capacity_; }

  /// Number of resident frames (pinned + cached).
  size_t resident_frames() const { return table_.size(); }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Evicts every unpinned frame (e.g. between benchmark runs).
  void Clear();

  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  void Unpin(Frame* frame);
  void TrimToCapacity();

  DiskManager* disk_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>, PageIdHash> table_;
  // Unpinned frames only; front = least recently used.
  std::list<Frame*> lru_;
  Stats stats_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_BUFFER_POOL_H_
