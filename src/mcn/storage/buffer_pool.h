// BufferPool: an LRU page cache with pinning, sitting between query
// operators and the DiskManager. This is the paper's "LRU buffer" whose size
// (0%..2% of the MCN pages) is an experiment parameter (Figs. 9(b)/11(b)).
//
// Frames live in a preallocated array and recycle through a free list; the
// LRU order is an intrusive doubly-linked list threaded through the frames
// and the page table is an open-addressed FlatU64Map, so fetch/unpin/evict
// are allocation-free O(1) in steady state. Since the pool is read-only,
// frames borrow the simulated disk's stable page bytes (a counted
// ReadPageRef) instead of copying 4KB per miss (DESIGN.md §4).
#ifndef MCN_STORAGE_BUFFER_POOL_H_
#define MCN_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcn/common/flat_u64_map.h"
#include "mcn/common/result.h"
#include "mcn/storage/disk_manager.h"
#include "mcn/storage/page.h"

namespace mcn::storage {

/// Read-only LRU buffer pool. Capacity counts resident frames; pinned frames
/// can never be evicted and may transiently push residency above capacity
/// (they are trimmed as soon as they are unpinned). Capacity 0 reproduces the
/// paper's "no buffer" configuration: every fetch is a disk read.
///
/// Threading: a pool is confined to one thread (one executor worker owns one
/// pool). Many pools may share one read-only DiskManager concurrently — the
/// disk's read path is thread-safe (DESIGN.md §6).
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    uint64_t accesses() const { return hits + misses; }
  };

  /// RAII pin on a fetched page; the page data stays valid while the guard
  /// lives. Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
    PageGuard& operator=(PageGuard&& o) noexcept;
    ~PageGuard() { Release(); }

    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;

    const std::byte* data() const;
    PageId id() const;
    bool valid() const { return pool_ != nullptr; }

    /// Drops the pin early.
    void Release();

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, uint32_t frame)
        : pool_(pool), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    uint32_t frame_ = 0;  // index into pool_->frames_ (stable under growth)
  };

  /// `disk` must outlive the pool.
  BufferPool(DiskManager* disk, size_t capacity_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard on the page, reading it from disk on a miss.
  Result<PageGuard> Fetch(PageId id);

  /// Changes the capacity; evicts unpinned LRU frames to fit.
  void SetCapacity(size_t capacity_frames);
  size_t capacity() const { return capacity_; }

  /// Number of resident frames (pinned + cached).
  size_t resident_frames() const { return table_.size(); }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Miss log for batched turn replay (DESIGN.md §13): when enabled, every
  /// miss appends its PageId; DrainMissedPages hands the accumulated list
  /// over (and clears it). Same thread-confinement as the pool itself —
  /// the probe scheduler drains at a turn barrier, which happens-after
  /// every probe of the turn.
  void set_record_misses(bool on) { record_misses_ = on; }
  std::vector<PageId> DrainMissedPages() {
    std::vector<PageId> out;
    out.swap(missed_);
    return out;
  }

  /// Evicts every unpinned frame (e.g. between benchmark runs).
  void Clear();

  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  static constexpr uint32_t kNullFrame = 0xFFFFFFFFu;

  struct Frame {
    PageId id;
    uint32_t pins = 0;
    // Intrusive LRU links (unpinned resident frames only).
    uint32_t lru_prev = kNullFrame;
    uint32_t lru_next = kNullFrame;
    bool in_lru = false;
    const std::byte* data = nullptr;  ///< borrowed from the DiskManager
  };

  /// Recycles a free frame, or materializes a new one (only on first use
  /// beyond the preallocated set, e.g. pinned overflow).
  uint32_t AllocFrame();
  void LruPushBack(uint32_t fi);
  void LruRemove(uint32_t fi);
  void EvictLruFront();

  void Unpin(uint32_t fi);
  void TrimToCapacity();

  DiskManager* disk_;
  size_t capacity_;
  FlatU64Map table_;  ///< packed PageId -> frame index
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_;
  uint32_t lru_head_ = kNullFrame;  ///< least recently used
  uint32_t lru_tail_ = kNullFrame;
  Stats stats_;
  bool record_misses_ = false;
  std::vector<PageId> missed_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_BUFFER_POOL_H_
