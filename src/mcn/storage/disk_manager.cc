#include "mcn/storage/disk_manager.h"

#include <cstring>

namespace mcn::storage {

FileId DiskManager::CreateFile(std::string name) {
  files_.push_back(File{std::move(name), {}});
  return static_cast<FileId>(files_.size() - 1);
}

Result<PageNo> DiskManager::AllocatePage(FileId file) {
  if (file >= files_.size()) {
    return Status::InvalidArgument("AllocatePage: no such file");
  }
  auto& pages = files_[file].pages;
  pages.emplace_back(kPageSize, std::byte{0});
  return static_cast<PageNo>(pages.size() - 1);
}

Status DiskManager::CheckPage(PageId id) const {
  if (id.file >= files_.size()) {
    return Status::InvalidArgument("no such file: " + std::to_string(id.file));
  }
  if (id.page >= files_[id.file].pages.size()) {
    return Status::OutOfRange("page " + std::to_string(id.page) +
                              " out of range for file " +
                              files_[id.file].name);
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, std::byte* out) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(out, files_[id.file].pages[id.page].data(), kPageSize);
  ++stats_.page_reads;
  return Status::OK();
}

Result<const std::byte*> DiskManager::ReadPageRef(PageId id) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  ++stats_.page_reads;
  return files_[id.file].pages[id.page].data();
}

Status DiskManager::WritePage(PageId id, const std::byte* data) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(files_[id.file].pages[id.page].data(), data, kPageSize);
  ++stats_.page_writes;
  return Status::OK();
}

Result<const std::byte*> DiskManager::PageData(PageId id) const {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  return files_[id.file].pages[id.page].data();
}

Result<uint32_t> DiskManager::NumPages(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("NumPages: no such file");
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

size_t DiskManager::TotalPages() const {
  size_t total = 0;
  for (const auto& f : files_) total += f.pages.size();
  return total;
}

Result<std::string> DiskManager::FileName(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("FileName: no such file");
  }
  return files_[file].name;
}

}  // namespace mcn::storage
