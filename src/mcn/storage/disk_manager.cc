#include "mcn/storage/disk_manager.h"

#include <cstring>
#include <utility>

#include "mcn/common/macros.h"

namespace mcn::storage {

DiskManager::DiskManager(DiskManager&& o) noexcept
    : files_(std::move(o.files_)),
      page_reads_(o.page_reads_.load(std::memory_order_relaxed)),
      page_writes_(o.page_writes_.load(std::memory_order_relaxed)) {
  MCN_DCHECK(o.concurrent_reader_scopes() == 0);
}

DiskManager& DiskManager::operator=(DiskManager&& o) noexcept {
  MCN_DCHECK(concurrent_reader_scopes() == 0);
  MCN_DCHECK(o.concurrent_reader_scopes() == 0);
  files_ = std::move(o.files_);
  page_reads_.store(o.page_reads_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  page_writes_.store(o.page_writes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  return *this;
}

void DiskManager::CheckMutable() const {
  // Single-writer/multi-reader contract: no mutation while a concurrent
  // reader scope (an executor sharing this disk) is open.
  MCN_DCHECK(concurrent_reader_scopes() == 0);
}

void DiskManager::EndConcurrentReads() {
  int prev = concurrent_readers_.fetch_sub(1, std::memory_order_relaxed);
  MCN_DCHECK(prev > 0);
  (void)prev;
}

void DiskManager::ResetStats() {
  CheckMutable();
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
}

FileId DiskManager::CreateFile(std::string name) {
  CheckMutable();
  files_.push_back(File{std::move(name), {}});
  return static_cast<FileId>(files_.size() - 1);
}

Result<PageNo> DiskManager::AllocatePage(FileId file) {
  CheckMutable();
  if (file >= files_.size()) {
    return Status::InvalidArgument("AllocatePage: no such file");
  }
  auto& pages = files_[file].pages;
  pages.emplace_back(kPageSize, std::byte{0});
  return static_cast<PageNo>(pages.size() - 1);
}

Status DiskManager::CheckPage(PageId id) const {
  if (id.file >= files_.size()) {
    return Status::InvalidArgument("no such file: " + std::to_string(id.file));
  }
  if (id.page >= files_[id.file].pages.size()) {
    return Status::OutOfRange("page " + std::to_string(id.page) +
                              " out of range for file " +
                              files_[id.file].name);
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, std::byte* out) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(out, files_[id.file].pages[id.page].data(), kPageSize);
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<const std::byte*> DiskManager::ReadPageRef(PageId id) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  return files_[id.file].pages[id.page].data();
}

Status DiskManager::WritePage(PageId id, const std::byte* data) {
  CheckMutable();
  MCN_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(files_[id.file].pages[id.page].data(), data, kPageSize);
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<const std::byte*> DiskManager::PageData(PageId id) const {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  return files_[id.file].pages[id.page].data();
}

Result<uint32_t> DiskManager::NumPages(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("NumPages: no such file");
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

size_t DiskManager::TotalPages() const {
  size_t total = 0;
  for (const auto& f : files_) total += f.pages.size();
  return total;
}

Result<std::string> DiskManager::FileName(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("FileName: no such file");
  }
  return files_[file].name;
}

}  // namespace mcn::storage
