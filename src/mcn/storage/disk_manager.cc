#include "mcn/storage/disk_manager.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "mcn/common/fault_injector.h"
#include "mcn/common/macros.h"
#include "mcn/obs/metrics.h"
#include "mcn/storage/persistence.h"

namespace mcn::storage {

DiskManager::Stats& DiskManager::Stats::operator+=(const Stats& o) {
  page_reads += o.page_reads;
  page_writes += o.page_writes;
  batch_reads += o.batch_reads;
  batch_pages += o.batch_pages;
  batch_max_pages = std::max(batch_max_pages, o.batch_max_pages);
  // Merge the per-file breakdown by name, so same-kind files of different
  // managers (e.g. every shard's "adjacency_file") fold into one row —
  // the same name-keyed merge the metrics registry snapshots use.
  obs::MergeRowsByName(&per_file_reads, o.per_file_reads,
                       [](FileReads& into, const FileReads& from) {
                         into.reads += from.reads;
                       });
  return *this;
}

uint64_t DiskManager::Stats::ReadsForFile(const std::string& name) const {
  for (const FileReads& fr : per_file_reads) {
    if (fr.name == name) return fr.reads;
  }
  return 0;
}

DiskManager::Stats DiskManager::MergeStats(std::span<const Stats> parts) {
  Stats total;
  for (const Stats& s : parts) total += s;
  return total;
}

DiskManager::DiskManager(DiskManager&& o) noexcept
    : files_(std::move(o.files_)),
      page_reads_(o.page_reads_.load(std::memory_order_relaxed)),
      page_writes_(o.page_writes_.load(std::memory_order_relaxed)),
      batch_reads_(o.batch_reads_.load(std::memory_order_relaxed)),
      batch_pages_(o.batch_pages_.load(std::memory_order_relaxed)),
      batch_max_pages_(o.batch_max_pages_.load(std::memory_order_relaxed)),
      backend_(std::move(o.backend_)),
      backend_page0_offset_(std::move(o.backend_page0_offset_)) {
  MCN_DCHECK(o.concurrent_reader_scopes() == 0);
}

DiskManager& DiskManager::operator=(DiskManager&& o) noexcept {
  MCN_DCHECK(concurrent_reader_scopes() == 0);
  MCN_DCHECK(o.concurrent_reader_scopes() == 0);
  files_ = std::move(o.files_);
  page_reads_.store(o.page_reads_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  page_writes_.store(o.page_writes_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  batch_reads_.store(o.batch_reads_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  batch_pages_.store(o.batch_pages_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  batch_max_pages_.store(o.batch_max_pages_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  backend_ = std::move(o.backend_);
  backend_page0_offset_ = std::move(o.backend_page0_offset_);
  return *this;
}

void DiskManager::CheckMutable() const {
  // Single-writer/multi-reader contract: no mutation while a concurrent
  // reader scope (an executor sharing this disk) is open.
  MCN_DCHECK(concurrent_reader_scopes() == 0);
}

void DiskManager::EndConcurrentReads() {
  int prev = concurrent_readers_.fetch_sub(1, std::memory_order_relaxed);
  MCN_DCHECK(prev > 0);
  (void)prev;
}

DiskManager::Stats DiskManager::stats() const {
  Stats s;
  s.page_reads = page_reads_.load(std::memory_order_relaxed);
  s.page_writes = page_writes_.load(std::memory_order_relaxed);
  s.batch_reads = batch_reads_.load(std::memory_order_relaxed);
  s.batch_pages = batch_pages_.load(std::memory_order_relaxed);
  s.batch_max_pages = batch_max_pages_.load(std::memory_order_relaxed);
  s.per_file_reads.reserve(files_.size());
  for (const File& f : files_) {
    s.per_file_reads.push_back(
        Stats::FileReads{f.name, f.reads.load(std::memory_order_relaxed)});
  }
  return s;
}

void DiskManager::ResetStats() {
  CheckMutable();
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
  batch_reads_.store(0, std::memory_order_relaxed);
  batch_pages_.store(0, std::memory_order_relaxed);
  batch_max_pages_.store(0, std::memory_order_relaxed);
  for (File& f : files_) f.reads.store(0, std::memory_order_relaxed);
}

FileId DiskManager::CreateFile(std::string name) {
  CheckMutable();
  files_.emplace_back(std::move(name),
                      std::vector<std::vector<std::byte>>{});
  return static_cast<FileId>(files_.size() - 1);
}

Result<PageNo> DiskManager::AllocatePage(FileId file) {
  CheckMutable();
  if (file >= files_.size()) {
    return Status::InvalidArgument("AllocatePage: no such file");
  }
  auto& pages = files_[file].pages;
  pages.emplace_back(kPageSize, std::byte{0});
  return static_cast<PageNo>(pages.size() - 1);
}

Status DiskManager::CheckPage(PageId id) const {
  if (id.file >= files_.size()) {
    return Status::InvalidArgument("no such file: " + std::to_string(id.file));
  }
  if (id.page >= files_[id.file].pages.size()) {
    return Status::OutOfRange("page " + std::to_string(id.page) +
                              " out of range for file " +
                              files_[id.file].name);
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, std::byte* out) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    MCN_RETURN_IF_ERROR(fi->OnDiskRead());
  }
  std::memcpy(out, files_[id.file].pages[id.page].data(), kPageSize);
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  files_[id.file].reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<const std::byte*> DiskManager::ReadPageRef(PageId id) {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  // Fault seam (DESIGN.md §10): an injected failure happens *before* the
  // counters tick, like a real EIO — the read never completed, so replay
  // parity after healing compares equal logical/physical totals.
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    MCN_RETURN_IF_ERROR(fi->OnDiskRead());
  }
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  files_[id.file].reads.fetch_add(1, std::memory_order_relaxed);
  return files_[id.file].pages[id.page].data();
}

Status DiskManager::ReadPagesBatch(std::span<const PageId> ids,
                                   std::span<std::byte* const> out) {
  MCN_CHECK(ids.size() == out.size());
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) {
    MCN_RETURN_IF_ERROR(CheckPage(id));
  }
  // Fault seam, per page and before any read or counter tick, like
  // ReadPageRef: an injected EIO means the batch never completed.
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    for (size_t i = 0; i < ids.size(); ++i) {
      MCN_RETURN_IF_ERROR(backend_ != nullptr ? fi->OnFileRead()
                                              : fi->OnDiskRead());
    }
  }
  if (backend_ != nullptr) {
    std::vector<uint64_t> offsets(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      offsets[i] = backend_page0_offset_[ids[i].file] +
                   static_cast<uint64_t>(ids[i].page) * kPageSize;
    }
    MCN_RETURN_IF_ERROR(backend_->ReadBatch(offsets, out, kPageSize));
  } else {
    for (size_t i = 0; i < ids.size(); ++i) {
      std::memcpy(out[i], files_[ids[i].file].pages[ids[i].page].data(),
                  kPageSize);
    }
  }
  // Counter equivalence: n batched pages tick exactly like n ReadPage
  // calls, plus the batch_* accounting.
  page_reads_.fetch_add(ids.size(), std::memory_order_relaxed);
  for (PageId id : ids) {
    files_[id.file].reads.fetch_add(1, std::memory_order_relaxed);
  }
  batch_reads_.fetch_add(1, std::memory_order_relaxed);
  batch_pages_.fetch_add(ids.size(), std::memory_order_relaxed);
  uint64_t seen = batch_max_pages_.load(std::memory_order_relaxed);
  while (seen < ids.size() &&
         !batch_max_pages_.compare_exchange_weak(seen, ids.size(),
                                                 std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status DiskManager::AttachFileBackend(const std::string& path,
                                      IoBackendKind requested) {
  CheckMutable();
  if (requested == IoBackendKind::kMemory) {
    return Status::InvalidArgument(
        "AttachFileBackend: kMemory means no backend — use "
        "DetachFileBackend");
  }
  MCN_RETURN_IF_ERROR(SaveDiskImage(*this, path));
  // The MCNDISK1 layout (persistence.h) is deterministic, so page offsets
  // are computable: 8-byte magic + u32 file count, then per file a
  // u32 name_len + name + u32 num_pages header followed by the raw pages.
  backend_page0_offset_.clear();
  backend_page0_offset_.reserve(files_.size());
  uint64_t offset = 8 + 4;
  for (const File& f : files_) {
    offset += 4 + f.name.size() + 4;
    backend_page0_offset_.push_back(offset);
    offset += static_cast<uint64_t>(f.pages.size()) * kPageSize;
  }
  MCN_ASSIGN_OR_RETURN(backend_, FileIoBackend::Open(path, requested));
  return Status::OK();
}

void DiskManager::DetachFileBackend() {
  CheckMutable();
  backend_.reset();
  backend_page0_offset_.clear();
}

Status DiskManager::WritePage(PageId id, const std::byte* data) {
  CheckMutable();
  MCN_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(files_[id.file].pages[id.page].data(), data, kPageSize);
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<const std::byte*> DiskManager::PageData(PageId id) const {
  MCN_RETURN_IF_ERROR(CheckPage(id));
  return files_[id.file].pages[id.page].data();
}

Result<uint32_t> DiskManager::NumPages(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("NumPages: no such file");
  }
  return static_cast<uint32_t>(files_[file].pages.size());
}

size_t DiskManager::TotalPages() const {
  size_t total = 0;
  for (const auto& f : files_) total += f.pages.size();
  return total;
}

Result<std::string> DiskManager::FileName(FileId file) const {
  if (file >= files_.size()) {
    return Status::InvalidArgument("FileName: no such file");
  }
  return files_[file].name;
}

}  // namespace mcn::storage
