// DiskManager: an in-memory simulated disk of paged files with I/O
// accounting. It substitutes for the physical disk of the paper's testbed;
// every page read/write is counted so that experiments can report exact I/O
// numbers and model I/O-dominated running time (see DESIGN.md §3).
//
// Concurrency contract (DESIGN.md §6): the disk is built single-threaded,
// then shared read-only by any number of concurrent readers (one BufferPool
// per executor worker). Read paths (ReadPage/ReadPageRef/PageData and the
// metadata getters) are safe to call from multiple threads once no mutator
// runs concurrently — the page bytes are immutable after build and the I/O
// counters are relaxed atomics. Mutators (CreateFile/AllocatePage/WritePage)
// and ResetStats are single-writer only; the exec::QueryService brackets its
// lifetime with BeginConcurrentReads/EndConcurrentReads so that a mutation
// while readers are active trips an MCN_DCHECK instead of silently racing.
#ifndef MCN_STORAGE_DISK_MANAGER_H_
#define MCN_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/storage/io_backend.h"
#include "mcn/storage/page.h"

namespace mcn::storage {

/// A set of named paged files stored in memory, with read/write counters.
/// Single-writer/multi-reader: see the concurrency contract above.
class DiskManager {
 public:
  /// A plain snapshot of the atomic counters (coherent enough for the
  /// experiments: readers are quiesced whenever totals are compared).
  /// `per_file_reads` breaks the read total down by file, keyed by file
  /// name so that snapshots from different managers (e.g. the shards of a
  /// shard::ShardedStorage) merge into one figure-parity total: operator+=
  /// sums same-named files and appends unseen ones.
  struct Stats {
    /// One file's slice of the read counter.
    struct FileReads {
      std::string name;
      uint64_t reads = 0;
    };

    uint64_t page_reads = 0;
    uint64_t page_writes = 0;
    /// Batched-read accounting (DESIGN.md §13): ReadPagesBatch calls,
    /// pages served through them (each also counted in page_reads — the
    /// single-read/batched-read counter-equivalence contract), and the
    /// widest batch seen. operator+= sums the first two and maxes the
    /// third (a merged snapshot's widest batch is the widest anywhere).
    uint64_t batch_reads = 0;
    uint64_t batch_pages = 0;
    uint64_t batch_max_pages = 0;
    std::vector<FileReads> per_file_reads;

    Stats& operator+=(const Stats& o);
    friend Stats operator+(Stats a, const Stats& b) { return a += b; }

    /// `per_file_reads` entry for `name` (0 when the file never appeared).
    uint64_t ReadsForFile(const std::string& name) const;
  };

  /// Sums a span of snapshots (per-shard counters -> one aggregate).
  static Stats MergeStats(std::span<const Stats> parts);

  DiskManager() = default;

  // Movable but not copyable: page storage may be large. Moves are
  // build-time operations (single-threaded; counters snapshotted).
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  DiskManager(DiskManager&& o) noexcept;
  DiskManager& operator=(DiskManager&& o) noexcept;

  /// Creates an empty file and returns its id.
  FileId CreateFile(std::string name);

  /// Appends a zeroed page to `file` and returns its page number.
  /// Allocation itself is not counted as an I/O (builders batch their
  /// writes via WritePage).
  Result<PageNo> AllocatePage(FileId file);

  /// Copies a full page into `out` (which must hold kPageSize bytes).
  Status ReadPage(PageId id, std::byte* out);

  /// Counted zero-copy read: returns a pointer to the page's bytes, valid
  /// while the file exists. Used by the (read-only) BufferPool so a miss
  /// costs no 4KB copy — physical I/O cost is modeled from the read count,
  /// not from simulation memcpy time (DESIGN.md §3). Safe for concurrent
  /// readers: the bytes are immutable and the counter is atomic.
  Result<const std::byte*> ReadPageRef(PageId id);

  /// Overwrites a full page from `data` (kPageSize bytes).
  Status WritePage(PageId id, const std::byte* data);

  /// Batched counted read (DESIGN.md §13): fills out[i] (kPageSize bytes
  /// each) with the page bytes of ids[i]. With a file backend attached the
  /// pages come off the on-disk image through one overlapped submission
  /// (io_uring or the preadv worker ring); otherwise they are memcpy'd
  /// from the in-memory files. Counter contract: a batch of n pages ticks
  /// page_reads and the per-file counters exactly as n ReadPage calls
  /// would, plus the batch_* stats. Safe for concurrent readers.
  Status ReadPagesBatch(std::span<const PageId> ids,
                        std::span<std::byte* const> out);

  /// Spills the (frozen) in-memory image to `path` in the MCNDISK1 format
  /// of storage/persistence.h and opens it as the physical plane behind
  /// ReadPagesBatch. `requested` must be kPreadv or kIoUring; an io_uring
  /// that the kernel refuses degrades to kPreadv (io_backend() reports
  /// what actually runs). Build-time only (CheckMutable); the in-memory
  /// pages remain authoritative for ReadPage/ReadPageRef/PageData, so
  /// pointer stability and all existing callers are untouched.
  Status AttachFileBackend(const std::string& path, IoBackendKind requested);

  /// Drops the file backend; ReadPagesBatch serves from memory again.
  void DetachFileBackend();

  /// Active physical read path (kMemory when no backend is attached).
  IoBackendKind io_backend() const {
    return backend_ == nullptr ? IoBackendKind::kMemory : backend_->kind();
  }

  /// Raw, uncounted access to a page's bytes (persistence/tooling only —
  /// query code must go through the BufferPool so I/O is accounted).
  Result<const std::byte*> PageData(PageId id) const;

  /// Number of pages currently allocated in `file`.
  Result<uint32_t> NumPages(FileId file) const;

  /// Total pages across all files (the paper sizes the LRU buffer as a
  /// percentage of this).
  size_t TotalPages() const;

  size_t num_files() const { return files_.size(); }
  Result<std::string> FileName(FileId file) const;

  Stats stats() const;
  void ResetStats();

  /// Registers/unregisters a concurrent-reader scope (e.g. one
  /// exec::QueryService). While any scope is open, mutators and ResetStats
  /// MCN_DCHECK-fail: the disk is frozen read-only.
  void BeginConcurrentReads() {
    concurrent_readers_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndConcurrentReads();

  int concurrent_reader_scopes() const {
    return concurrent_readers_.load(std::memory_order_relaxed);
  }

 private:
  struct File {
    std::string name;
    std::vector<std::vector<std::byte>> pages;
    /// Per-file slice of the read counter (relaxed, like the totals).
    std::atomic<uint64_t> reads{0};

    File(std::string n, std::vector<std::vector<std::byte>> p)
        : name(std::move(n)), pages(std::move(p)) {}
    // Movable so files_ can grow (build-time only; counters snapshotted).
    File(File&& o) noexcept
        : name(std::move(o.name)),
          pages(std::move(o.pages)),
          reads(o.reads.load(std::memory_order_relaxed)) {}
    File& operator=(File&& o) noexcept {
      name = std::move(o.name);
      pages = std::move(o.pages);
      reads.store(o.reads.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };

  Status CheckPage(PageId id) const;
  void CheckMutable() const;

  std::vector<File> files_;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::atomic<uint64_t> batch_reads_{0};
  std::atomic<uint64_t> batch_pages_{0};
  std::atomic<uint64_t> batch_max_pages_{0};
  std::atomic<int> concurrent_readers_{0};
  /// Physical plane behind ReadPagesBatch; null = serve from memory.
  std::unique_ptr<FileIoBackend> backend_;
  /// Byte offset of each file's page 0 in the attached image (MCNDISK1
  /// layout); indexed by FileId, valid while backend_ is set.
  std::vector<uint64_t> backend_page0_offset_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_DISK_MANAGER_H_
