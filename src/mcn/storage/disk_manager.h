// DiskManager: an in-memory simulated disk of paged files with I/O
// accounting. It substitutes for the physical disk of the paper's testbed;
// every page read/write is counted so that experiments can report exact I/O
// numbers and model I/O-dominated running time (see DESIGN.md §3).
#ifndef MCN_STORAGE_DISK_MANAGER_H_
#define MCN_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mcn/common/result.h"
#include "mcn/common/status.h"
#include "mcn/storage/page.h"

namespace mcn::storage {

/// A set of named paged files stored in memory, with read/write counters.
/// Not thread-safe (queries in this library are single-threaded, as in the
/// paper).
class DiskManager {
 public:
  struct Stats {
    uint64_t page_reads = 0;
    uint64_t page_writes = 0;
  };

  DiskManager() = default;

  // Movable but not copyable: page storage may be large.
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  DiskManager(DiskManager&&) = default;
  DiskManager& operator=(DiskManager&&) = default;

  /// Creates an empty file and returns its id.
  FileId CreateFile(std::string name);

  /// Appends a zeroed page to `file` and returns its page number.
  /// Allocation itself is not counted as an I/O (builders batch their
  /// writes via WritePage).
  Result<PageNo> AllocatePage(FileId file);

  /// Copies a full page into `out` (which must hold kPageSize bytes).
  Status ReadPage(PageId id, std::byte* out);

  /// Counted zero-copy read: returns a pointer to the page's bytes, valid
  /// while the file exists. Used by the (read-only) BufferPool so a miss
  /// costs no 4KB copy — physical I/O cost is modeled from the read count,
  /// not from simulation memcpy time (DESIGN.md §3).
  Result<const std::byte*> ReadPageRef(PageId id);

  /// Overwrites a full page from `data` (kPageSize bytes).
  Status WritePage(PageId id, const std::byte* data);

  /// Raw, uncounted access to a page's bytes (persistence/tooling only —
  /// query code must go through the BufferPool so I/O is accounted).
  Result<const std::byte*> PageData(PageId id) const;

  /// Number of pages currently allocated in `file`.
  Result<uint32_t> NumPages(FileId file) const;

  /// Total pages across all files (the paper sizes the LRU buffer as a
  /// percentage of this).
  size_t TotalPages() const;

  size_t num_files() const { return files_.size(); }
  Result<std::string> FileName(FileId file) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  struct File {
    std::string name;
    std::vector<std::vector<std::byte>> pages;
  };

  Status CheckPage(PageId id) const;

  std::vector<File> files_;
  Stats stats_;
};

}  // namespace mcn::storage

#endif  // MCN_STORAGE_DISK_MANAGER_H_
